//! Large-swarm stress tests — `#[ignore]`d by default; run explicitly:
//!
//! ```console
//! $ cargo test --release --test stress -- --ignored
//! ```

use freezetag::core::{solve, Algorithm};
use freezetag::instances::generators::{grid_lattice, snake, uniform_disk};

#[test]
#[ignore = "large: run with --ignored in release mode"]
fn separator_on_two_thousand_robots() {
    let inst = uniform_disk(2000, 60.0, 1);
    let tuple = inst.admissible_tuple();
    let rep = solve(&inst, &tuple, Algorithm::Separator).expect("valid run");
    assert!(rep.all_awake);
    assert_eq!(rep.wake_count, 2000);
}

#[test]
#[ignore = "large: run with --ignored in release mode"]
fn grid_on_long_corridor() {
    let inst = snake(8, 200.0, 3.0, 1.5);
    let tuple = inst.admissible_tuple();
    let rep = solve(&inst, &tuple, Algorithm::Grid).expect("valid run");
    assert!(rep.all_awake);
    // Energy budget survives at scale.
    let ell = tuple.ell;
    assert!(rep.max_energy <= 80.0 * ell * ell + 60.0 * ell + 40.0);
}

#[test]
#[ignore = "large: run with --ignored in release mode"]
fn wave_on_big_lattice() {
    let inst = grid_lattice(40, 40, 2.0);
    let tuple = inst.admissible_tuple();
    let rep = solve(&inst, &tuple, Algorithm::Wave).expect("valid run");
    assert!(rep.all_awake);
    assert_eq!(rep.wake_count, 1600);
}

#[test]
#[ignore = "large: run with --ignored in release mode"]
fn all_algorithms_agree_on_coverage_at_scale() {
    let inst = uniform_disk(800, 40.0, 2);
    let tuple = inst.admissible_tuple();
    for alg in [Algorithm::Separator, Algorithm::Grid, Algorithm::Wave] {
        let rep = solve(&inst, &tuple, alg).expect("valid run");
        assert_eq!(rep.wake_count, 800, "{alg}");
    }
}
