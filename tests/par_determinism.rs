//! Property tests pinning the intra-job parallelism contract: a run on a
//! `ParPool` of 2–4 threads is bit-identical to the sequential run — same
//! schedule (wake log, per-robot wake times and travel), same aggregates,
//! same look count — for all three distributed algorithms, both recorders,
//! and adversarial worlds.
//!
//! This is what licenses `--sim-threads`: the pool only fans out pure
//! batches (sensing queries, frontier bucketing, grid-build key passes)
//! with order-preserving merges, so thread scheduling can never reach an
//! output bit.

use freezetag::core::{run_algorithm, Algorithm};
use freezetag::exp::{AlgSpec, Engine, EngineConfig, ScenarioSpec};
use freezetag::instances::registry;
use freezetag::sim::{
    ConcreteWorld, ParPool, Recorder, RobotId, Schedule, Sim, StatsRecorder, WorldView,
};
use proptest::prelude::*;

/// An engine whose single-run entry points execute with the given
/// intra-job pool width — the test-facing face of `--sim-threads`.
fn sim_engine(sim_threads: usize) -> Engine {
    Engine::new(EngineConfig {
        threads: 1,
        sim_threads,
        cache_capacity: 0,
    })
}

/// Bitwise schedule comparison: wake log, aggregates, and per-robot wake
/// time / travel / final state.
fn assert_schedules_identical(a: &Schedule, b: &Schedule, n: usize, label: &str) {
    assert_eq!(a.wakes(), b.wakes(), "{label}: wake logs differ");
    assert_eq!(a.makespan().to_bits(), b.makespan().to_bits(), "{label}");
    assert_eq!(
        a.completion_time().to_bits(),
        b.completion_time().to_bits(),
        "{label}"
    );
    assert_eq!(
        a.max_energy().to_bits(),
        b.max_energy().to_bits(),
        "{label}"
    );
    assert_eq!(
        a.total_energy().to_bits(),
        b.total_energy().to_bits(),
        "{label}"
    );
    for i in 0..=n {
        let r = RobotId::from_index(i);
        match (a.timeline(r), b.timeline(r)) {
            (None, None) => {}
            (Some(ta), Some(tb)) => {
                assert_eq!(
                    ta.start_time().to_bits(),
                    tb.start_time().to_bits(),
                    "{label} {r}"
                );
                assert_eq!(ta.travel().to_bits(), tb.travel().to_bits(), "{label} {r}");
                assert_eq!(
                    ta.current_time().to_bits(),
                    tb.current_time().to_bits(),
                    "{label} {r}"
                );
                assert_eq!(ta.current_pos(), tb.current_pos(), "{label} {r}");
            }
            _ => panic!("{label}: robot {r} activated in one run only"),
        }
    }
}

/// A random registry scenario: generator, parameters, seed (mirrors the
/// recorder-parity suite).
fn arb_scenario() -> impl Strategy<Value = (&'static str, Vec<(&'static str, f64)>, u64)> {
    let disk = (6usize..28, 3.0f64..9.0, 0u64..1_000_000_000)
        .prop_map(|(n, radius, seed)| ("disk", vec![("n", n as f64), ("radius", radius)], seed));
    let lattice = (2usize..6, 1.0f64..2.0).prop_map(|(side, spacing)| {
        (
            "lattice",
            vec![("side", side as f64), ("spacing", spacing)],
            0u64,
        )
    });
    let clusters = (2usize..4, 4usize..9, 0u64..1_000_000_000).prop_map(|(clusters, per, seed)| {
        (
            "clusters",
            vec![("clusters", clusters as f64), ("per", per as f64)],
            seed,
        )
    });
    prop_oneof![disk, lattice, clusters]
}

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    (0usize..3).prop_map(|i| [Algorithm::Separator, Algorithm::Grid, Algorithm::Wave][i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Full-recorder schedules are bit-identical between the sequential
    /// pool and ParPool(2..=4), for all three algorithms.
    #[test]
    fn parallel_schedule_matches_sequential_bitwise(
        (generator, params, seed) in arb_scenario(),
        alg in arb_algorithm(),
        threads in 2usize..5,
    ) {
        let params: registry::ParamMap =
            params.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        let inst = registry::build_instance(generator, &params, seed).expect("builds");
        let tuple = inst.admissible_tuple();

        let mut seq = Sim::new(ConcreteWorld::new(&inst));
        run_algorithm(&mut seq, &tuple, alg);
        let looks_seq = seq.world().look_count();
        let (_, schedule_seq, _) = seq.into_parts();

        let pool = ParPool::new(threads);
        let mut par = Sim::new(ConcreteWorld::with_pool(&inst, &pool)).with_pool(pool);
        prop_assert_eq!(par.sim_threads(), threads);
        run_algorithm(&mut par, &tuple, alg);
        prop_assert_eq!(looks_seq, par.world().look_count());
        let (_, schedule_par, _) = par.into_parts();

        assert_schedules_identical(
            &schedule_seq,
            &schedule_par,
            inst.n(),
            &format!("{alg} threads={threads}"),
        );
    }

    /// Stats-recorder aggregates are bit-identical between the sequential
    /// pool and ParPool(2..=4).
    #[test]
    fn parallel_stats_match_sequential_bitwise(
        (generator, params, seed) in arb_scenario(),
        alg in arb_algorithm(),
        threads in 2usize..5,
    ) {
        let params: registry::ParamMap =
            params.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        let inst = registry::build_instance(generator, &params, seed).expect("builds");
        let tuple = inst.admissible_tuple();

        let run = |pool: ParPool| {
            let mut sim: Sim<ConcreteWorld, StatsRecorder> =
                Sim::with_stats(ConcreteWorld::with_pool(&inst, &pool)).with_pool(pool);
            run_algorithm(&mut sim, &tuple, alg);
            let looks = sim.world().look_count();
            let (_, rec, _) = sim.into_recorder_parts();
            (looks, rec)
        };
        let (looks_seq, rec_seq) = run(ParPool::sequential());
        let (looks_par, rec_par) = run(ParPool::new(threads));

        prop_assert_eq!(looks_seq, looks_par);
        prop_assert_eq!(rec_seq.makespan().to_bits(), rec_par.makespan().to_bits());
        prop_assert_eq!(
            rec_seq.completion_time().to_bits(),
            rec_par.completion_time().to_bits()
        );
        prop_assert_eq!(rec_seq.max_energy().to_bits(), rec_par.max_energy().to_bits());
        prop_assert_eq!(
            rec_seq.total_energy().to_bits(),
            rec_par.total_energy().to_bits()
        );
        prop_assert_eq!(rec_seq.wakes(), rec_par.wakes());
        prop_assert_eq!(rec_seq.memory_bytes(), rec_par.memory_bytes());
        for i in 0..=inst.n() {
            let r = RobotId::from_index(i);
            prop_assert_eq!(
                rec_seq.wake_time(r).map(f64::to_bits),
                rec_par.wake_time(r).map(f64::to_bits)
            );
            prop_assert_eq!(
                rec_seq.travel(r).map(f64::to_bits),
                rec_par.travel(r).map(f64::to_bits)
            );
        }
    }

    /// Adversarial worlds (impure sensing: the pool must stay out of the
    /// look path) still produce identical runs at any `sim_threads`.
    #[test]
    fn adversarial_runs_are_sim_thread_invariant(
        ell in 1.5f64..3.0,
        n in 10usize..40,
        threads in 2usize..5,
    ) {
        let spec = ScenarioSpec::new("theorem2")
            .with("ell", ell)
            .with("rho", 8.0)
            .with("n", n as f64);
        let alg = AlgSpec::from(Algorithm::Separator);
        let seq = sim_engine(1).single(&spec, alg, 1).expect("runs");
        let par = sim_engine(threads).single(&spec, alg, 1).expect("runs");
        prop_assert_eq!(seq.report.makespan.to_bits(), par.report.makespan.to_bits());
        prop_assert_eq!(seq.report.looks, par.report.looks);
        prop_assert_eq!(&seq.positions, &par.positions);
        assert_schedules_identical(&seq.schedule, &par.schedule, seq.n, "theorem2");
    }
}

/// A mid-size stats job (20k robots) where the batched sensing path
/// genuinely fans out to worker threads (slot query batches exceed the
/// parallel threshold), pinned bit-identical across pool widths through
/// the engine's `--sim-threads` entry point.
#[test]
fn scale_family_stats_are_bitwise_identical_across_pools() {
    let spec = ScenarioSpec::new("uniform_1m")
        .with("n", 20_000.0)
        .with("radius", 60.0);
    let alg = AlgSpec::from(Algorithm::Grid);
    let seq = sim_engine(1).single_stats(&spec, alg, 42).expect("runs");
    for threads in [2, 4] {
        let par = sim_engine(threads)
            .single_stats(&spec, alg, 42)
            .expect("runs");
        assert_eq!(seq.n, par.n);
        assert!(par.all_awake);
        assert_eq!(
            seq.makespan.to_bits(),
            par.makespan.to_bits(),
            "t={threads}"
        );
        assert_eq!(
            seq.completion_time.to_bits(),
            par.completion_time.to_bits(),
            "t={threads}"
        );
        assert_eq!(
            seq.max_energy.to_bits(),
            par.max_energy.to_bits(),
            "t={threads}"
        );
        assert_eq!(
            seq.total_energy.to_bits(),
            par.total_energy.to_bits(),
            "t={threads}"
        );
        assert_eq!(seq.looks, par.looks, "t={threads}");
        assert_eq!(seq.peak_mem_bytes, par.peak_mem_bytes, "t={threads}");
        assert_eq!(seq.ell.to_bits(), par.ell.to_bits(), "t={threads}");
        assert_eq!(seq.rho.to_bits(), par.rho.to_bits(), "t={threads}");
    }
}
