//! Integration tests for the `dftp` command-line driver: the documented
//! subcommands succeed on small deterministic instances, and malformed
//! invocations fail with usage text on stderr.

use std::process::{Command, Output};

fn dftp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dftp"))
        .args(args)
        .output()
        .expect("failed to spawn dftp")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn solve_separator_on_disk_succeeds() {
    let out = dftp(&[
        "solve",
        "--alg",
        "separator",
        "--gen",
        "disk",
        "--n",
        "50",
        "--radius",
        "10",
        "--seed",
        "1",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("ASeparator"),
        "missing algorithm name: {text}"
    );
    assert!(text.contains("makespan"), "missing makespan line: {text}");
    assert!(text.contains("all awake"), "missing all-awake line: {text}");
    assert!(text.contains("true"), "robots left asleep: {text}");
}

#[test]
fn solve_is_deterministic_for_a_seed() {
    let args = [
        "solve", "--alg", "grid", "--gen", "disk", "--n", "40", "--radius", "8", "--seed", "7",
    ];
    let a = dftp(&args);
    let b = dftp(&args);
    assert!(a.status.success());
    assert_eq!(stdout(&a), stdout(&b), "same seed must reproduce the run");
}

#[test]
fn params_reports_instance_parameters() {
    let out = dftp(&[
        "params",
        "--gen",
        "lattice",
        "--side",
        "5",
        "--spacing",
        "1.5",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for needle in ["n     =", "ρ*", "ℓ*", "tuple"] {
        assert!(text.contains(needle), "missing `{needle}` in: {text}");
    }
}

#[test]
fn compare_runs_all_three_algorithms() {
    let out = dftp(&[
        "compare",
        "--gen",
        "snake",
        "--legs",
        "2",
        "--leg",
        "12",
        "--spacing",
        "1",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for alg in ["ASeparator", "AGrid", "AWave"] {
        assert!(
            text.contains(alg),
            "missing {alg} in compare output: {text}"
        );
    }
}

#[test]
fn no_arguments_fails_with_usage() {
    let out = dftp(&[]);
    assert!(!out.status.success(), "bare invocation must fail");
    assert!(stderr(&out).contains("usage:"), "stderr: {}", stderr(&out));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = dftp(&["frobnicate"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown command"), "stderr: {err}");
    assert!(err.contains("usage:"), "stderr: {err}");
}

#[test]
fn unknown_algorithm_fails_with_usage() {
    let out = dftp(&["solve", "--alg", "teleport", "--gen", "disk"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown algorithm"), "stderr: {err}");
    assert!(err.contains("usage:"), "stderr: {err}");
}

#[test]
fn malformed_flag_value_fails_with_usage() {
    let out = dftp(&["solve", "--gen", "disk", "--n", "not-a-number"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("--n expects"), "stderr: {err}");
    assert!(err.contains("usage:"), "stderr: {err}");
}

#[test]
fn dangling_flag_fails_with_usage() {
    let out = dftp(&["solve", "--gen"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage:"), "stderr: {}", stderr(&out));
}

#[test]
fn unknown_option_fails_with_usage() {
    let out = dftp(&["solve", "--gen", "disk", "--frobnicate", "3"]);
    assert!(!out.status.success(), "unknown options must be rejected");
    let err = stderr(&out);
    assert!(
        err.contains("unknown option '--frobnicate'"),
        "stderr: {err}"
    );
    assert!(err.contains("usage:"), "stderr: {err}");
}

#[test]
fn option_of_a_different_generator_is_rejected() {
    // --radius belongs to disk/ring, not to the lattice generator.
    let out = dftp(&["solve", "--gen", "lattice", "--radius", "5"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown option '--radius'"), "stderr: {err}");
}

#[test]
fn strategy_on_non_separator_algorithm_is_rejected() {
    let out = dftp(&[
        "solve",
        "--alg",
        "grid",
        "--strategy",
        "chain",
        "--gen",
        "disk",
    ]);
    assert!(!out.status.success(), "--strategy must not be ignored");
    let err = stderr(&out);
    assert!(
        err.contains("--strategy only applies to --alg separator"),
        "stderr: {err}"
    );
}

#[test]
fn solve_central_anytime_is_byte_identical_across_workers() {
    let run = |workers: &str| {
        dftp(&[
            "solve",
            "--algorithm",
            "central-anytime",
            "--gen",
            "disk",
            "--n",
            "80",
            "--radius",
            "15",
            "--seed",
            "4",
            "--workers",
            workers,
        ])
    };
    let one = run("1");
    assert!(one.status.success(), "stderr: {}", stderr(&one));
    let text = stdout(&one);
    assert!(text.contains("central[anytime] on n=80"), "{text}");
    assert!(text.contains("tree digest 0x"), "{text}");
    assert!(text.contains("rounds "), "{text}");
    for workers in ["2", "4"] {
        let par = run(workers);
        assert!(par.status.success(), "stderr: {}", stderr(&par));
        assert_eq!(
            text,
            stdout(&par),
            "solve output must be byte-identical at --workers {workers}"
        );
    }
}

#[test]
fn solve_central_strategy_and_optimal_run_without_the_simulator() {
    let out = dftp(&[
        "solve",
        "--algorithm",
        "central:greedy",
        "--gen",
        "disk",
        "--n",
        "30",
        "--radius",
        "8",
        "--seed",
        "2",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("central[greedy] on n=30"), "{text}");
    assert!(text.contains("tree digest 0x"), "{text}");
    let out = dftp(&[
        "solve",
        "--algorithm",
        "optimal",
        "--gen",
        "disk",
        "--n",
        "6",
        "--radius",
        "4",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("central[optimal] on n=6"),
        "{}",
        stdout(&out)
    );
    // Branch and bound is exponential: a large n is an error, not a hang.
    let out = dftp(&[
        "solve",
        "--algorithm",
        "optimal",
        "--gen",
        "disk",
        "--n",
        "50",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("n=50 > 10"), "{}", stderr(&out));
}

#[test]
fn solve_central_anytime_rejects_zero_budget_and_zero_workers() {
    let base = [
        "solve",
        "--algorithm",
        "central-anytime",
        "--gen",
        "disk",
        "--n",
        "20",
    ];
    let mut zero_workers = base.to_vec();
    zero_workers.extend(["--workers", "0"]);
    let out = dftp(&zero_workers);
    assert!(!out.status.success(), "--workers 0 must be rejected");
    assert!(
        stderr(&out).contains("--workers must be at least 1"),
        "stderr: {}",
        stderr(&out)
    );
    let mut zero_budget = base.to_vec();
    zero_budget.extend(["--time-budget", "0"]);
    let out = dftp(&zero_budget);
    assert!(!out.status.success(), "--time-budget 0 must be rejected");
    assert!(
        stderr(&out).contains("--time-budget must be positive"),
        "stderr: {}",
        stderr(&out)
    );
    let mut bad_budget = base.to_vec();
    bad_budget.extend(["--time-budget", "soon"]);
    let out = dftp(&bad_budget);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("--time-budget expects seconds"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn solve_central_option_combinations_are_validated() {
    // --workers/--time-budget without central-anytime.
    let out = dftp(&[
        "solve",
        "--algorithm",
        "central:greedy",
        "--gen",
        "disk",
        "--workers",
        "2",
    ]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("--workers only applies to --algorithm central-anytime"),
        "stderr: {}",
        stderr(&out)
    );
    let out = dftp(&[
        "solve",
        "--alg",
        "grid",
        "--gen",
        "disk",
        "--time-budget",
        "5",
    ]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("--time-budget only applies"),
        "stderr: {}",
        stderr(&out)
    );
    // --algorithm and --alg cannot be mixed.
    let out = dftp(&[
        "solve",
        "--alg",
        "grid",
        "--algorithm",
        "central-anytime",
        "--gen",
        "disk",
    ]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("--algorithm replaces --alg"),
        "stderr: {}",
        stderr(&out)
    );
    // A distributed spec under --algorithm points back to --alg.
    let out = dftp(&["solve", "--algorithm", "wave", "--gen", "disk"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("use --alg wave"),
        "stderr: {}",
        stderr(&out)
    );
    // Centralized baselines need concrete positions.
    let out = dftp(&[
        "solve",
        "--algorithm",
        "central-anytime",
        "--gen",
        "theorem2",
        "--n",
        "40",
    ]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("needs known positions"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn solve_central_anytime_accepts_a_time_budget() {
    // A generous budget on a tiny instance: the iteration budget ends the
    // search long before the deadline, so the result is still the
    // deterministic fixed-iteration answer.
    let budgeted = dftp(&[
        "solve",
        "--algorithm",
        "central-anytime",
        "--gen",
        "disk",
        "--n",
        "40",
        "--seed",
        "6",
        "--time-budget",
        "120",
    ]);
    assert!(budgeted.status.success(), "stderr: {}", stderr(&budgeted));
    let unbudgeted = dftp(&[
        "solve",
        "--algorithm",
        "central-anytime",
        "--gen",
        "disk",
        "--n",
        "40",
        "--seed",
        "6",
    ]);
    assert_eq!(stdout(&budgeted), stdout(&unbudgeted));
}

#[test]
fn solve_runs_adversarial_layouts_through_the_engine() {
    let out = dftp(&[
        "solve",
        "--alg",
        "separator",
        "--gen",
        "theorem2",
        "--ell",
        "2",
        "--rho",
        "8",
        "--n",
        "40",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("ASeparator on n="), "{text}");
    assert!(text.contains("all awake: true"), "{text}");
}

#[test]
fn sweep_with_optimal_baseline_succeeds() {
    let out = dftp(&[
        "sweep",
        "--scenarios",
        "disk:n=8:radius=5",
        "--algs",
        "optimal,central:quadtree,separator:greedy",
        "--seeds",
        "2",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("central[optimal]"), "{text}");
    assert!(
        text.contains("\"max_energy\":{\"mean\":null"),
        "unmeasured central energy must emit null: {text}"
    );
}

#[test]
fn unknown_sweep_option_and_format_are_rejected() {
    let out = dftp(&["sweep", "--scenarios", "disk", "--bogus", "1"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("unknown option '--bogus'"),
        "stderr: {}",
        stderr(&out)
    );
    let out = dftp(&["sweep", "--scenarios", "disk:n=5", "--format", "yaml"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("unknown format 'yaml'"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn sweep_emits_identical_json_for_any_thread_count() {
    let run = |threads: &str| {
        dftp(&[
            "sweep",
            "--scenarios",
            "disk:n=15:radius=5,ring:n=12:radius=6",
            "--algs",
            "grid,wave",
            "--seeds",
            "2",
            "--plan-seed",
            "5",
            "--threads",
            threads,
        ])
    };
    let one = run("1");
    let three = run("3");
    assert!(one.status.success(), "stderr: {}", stderr(&one));
    assert!(three.status.success(), "stderr: {}", stderr(&three));
    assert_eq!(
        stdout(&one),
        stdout(&three),
        "aggregated sweep JSON must be byte-identical across thread counts"
    );
    let text = stdout(&one);
    assert!(text.contains("\"groups\""), "missing groups: {text}");
    assert!(text.contains("\"makespan\""), "missing stats: {text}");
    assert!(text.contains("\"p95\""), "missing percentiles: {text}");
}

#[test]
fn sweep_stats_profile_matches_full_and_is_thread_stable() {
    let run = |profile: &str, threads: &str| {
        dftp(&[
            "sweep",
            "--scenarios",
            "disk:n=20:radius=6",
            "--algs",
            "grid,wave",
            "--seeds",
            "2",
            "--plan-seed",
            "9",
            "--profile",
            profile,
            "--threads",
            threads,
        ])
    };
    let stats1 = run("stats", "1");
    let stats4 = run("stats", "4");
    assert!(stats1.status.success(), "stderr: {}", stderr(&stats1));
    assert_eq!(
        stdout(&stats1),
        stdout(&stats4),
        "stats-profile sweep output must be byte-identical across threads"
    );
    let text = stdout(&stats1);
    assert!(text.contains("\"profile\": \"stats\""), "{text}");
    assert!(text.contains("\"peak_mem_bytes\""), "{text}");
    // The shared statistics agree with the full profile: compare after
    // erasing the fields that legitimately differ (profile label and
    // recorder memory).
    let full = stdout(&run("full", "1"));
    let strip = |t: &str| -> String {
        t.lines()
            .map(|l| {
                let l = match l.find("\"peak_mem_bytes\"") {
                    // The stats blob is the record's tail before `}`.
                    Some(i) => &l[..i],
                    None => l,
                };
                l.to_string()
            })
            .filter(|l| !l.contains("\"profile\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip(&text),
        strip(&full),
        "stats aggregates must match the full profile"
    );
}

#[test]
fn sweep_emits_identical_json_for_any_sim_thread_count() {
    let run = |sim_threads: &str| {
        dftp(&[
            "sweep",
            "--scenarios",
            "uniform_1m:n=5000:radius=30,disk:n=25:radius=6",
            "--algs",
            "grid",
            "--seeds",
            "2",
            "--plan-seed",
            "11",
            "--profile",
            "stats",
            "--sim-threads",
            sim_threads,
        ])
    };
    let one = run("1");
    assert!(one.status.success(), "stderr: {}", stderr(&one));
    for sim_threads in ["2", "4"] {
        let par = run(sim_threads);
        assert!(par.status.success(), "stderr: {}", stderr(&par));
        assert_eq!(
            stdout(&one),
            stdout(&par),
            "sweep output must be byte-identical at --sim-threads {sim_threads}"
        );
    }
    // And the two parallelism axes compose without touching output.
    let both = dftp(&[
        "sweep",
        "--scenarios",
        "uniform_1m:n=5000:radius=30,disk:n=25:radius=6",
        "--algs",
        "grid",
        "--seeds",
        "2",
        "--plan-seed",
        "11",
        "--profile",
        "stats",
        "--threads",
        "2",
        "--sim-threads",
        "2",
    ]);
    assert!(both.status.success(), "stderr: {}", stderr(&both));
    assert_eq!(stdout(&one), stdout(&both), "--threads x --sim-threads");
}

#[test]
fn sweep_rejects_zero_sim_threads_cleanly() {
    let out = dftp(&["sweep", "--scenarios", "disk:n=10", "--sim-threads", "0"]);
    assert!(!out.status.success(), "--sim-threads 0 must be an error");
    let err = stderr(&out);
    assert!(
        err.contains("--sim-threads must be at least 1"),
        "stderr: {err}"
    );
    assert!(err.contains("usage:"), "stderr: {err}");
    assert!(
        !err.contains("panicked"),
        "must fail cleanly, not panic: {err}"
    );
}

#[test]
fn sweep_rejects_unknown_profile_and_adversarial_stats() {
    let out = dftp(&["sweep", "--scenarios", "disk:n=5", "--profile", "lossy"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("unknown profile 'lossy'"),
        "stderr: {}",
        stderr(&out)
    );
    let out = dftp(&[
        "sweep",
        "--scenarios",
        "theorem2:n=20",
        "--algs",
        "separator",
        "--profile",
        "stats",
    ]);
    assert!(
        !out.status.success(),
        "adversarial + stats must be rejected"
    );
    assert!(
        stderr(&out).contains("full profile"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn sweep_jsonl_has_one_record_per_job() {
    let out = dftp(&[
        "sweep",
        "--scenarios",
        "disk:n=10:radius=4",
        "--algs",
        "grid",
        "--seeds",
        "3",
        "--format",
        "jsonl",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert_eq!(text.lines().count(), 3, "3 jobs expected: {text}");
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"algorithm\":\"AGrid\""), "{line}");
    }
}

#[test]
fn generate_round_trips_through_the_csv_loader() {
    let path = std::env::temp_dir().join(format!("dftp_gen_{}.csv", std::process::id()));
    let out = dftp(&[
        "generate",
        "--gen",
        "disk",
        "--n",
        "12",
        "--radius",
        "4",
        "--seed",
        "3",
        "--out",
        path.to_str().expect("utf-8 temp path"),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = std::fs::read_to_string(&path).expect("generated file");
    std::fs::remove_file(&path).ok();
    let inst = freezetag::instances::io::from_csv(&text).expect("parseable CSV");
    assert_eq!(inst.n(), 12);
    assert_eq!(
        inst,
        freezetag::instances::generators::uniform_disk(12, 4.0, 3),
        "generate must write exactly the registry instance"
    );
}

#[test]
fn sweep_algorithms_filter_subsets_the_axis() {
    // The filtered sweep must produce exactly the wave cells of the full
    // plan — same derived seeds (they key on scenario × repetition, not on
    // the algorithm), so results pair with a full run's wave rows.
    let base = [
        "sweep",
        "--scenarios",
        "disk:n=15:radius=5",
        "--algs",
        "separator,grid,wave",
        "--seeds",
        "2",
        "--plan-seed",
        "9",
        "--format",
        "jsonl",
    ];
    let full = dftp(&base);
    assert!(full.status.success(), "stderr: {}", stderr(&full));
    let mut filtered_args = base.to_vec();
    filtered_args.extend(["--algorithms", "wave"]);
    let filtered = dftp(&filtered_args);
    assert!(filtered.status.success(), "stderr: {}", stderr(&filtered));
    let full_text = stdout(&full);
    assert_eq!(
        full_text
            .lines()
            .filter(|l| l.contains("\"algorithm\":\"AWave\""))
            .count(),
        2
    );
    let filtered_text = stdout(&filtered);
    assert_eq!(filtered_text.lines().count(), 2, "{filtered_text}");
    // Every filtered row is an AWave row with a seed present in the full
    // run's wave rows (paired design survives the filter).
    let seed_of = |line: &str| -> String {
        let at = line.find("\"seed\":").expect("seed field");
        line[at..]
            .split(',')
            .next()
            .expect("seed value")
            .to_string()
    };
    let full_wave_seeds: Vec<String> = full_text
        .lines()
        .filter(|l| l.contains("\"algorithm\":\"AWave\""))
        .map(seed_of)
        .collect();
    for line in filtered_text.lines() {
        assert!(line.contains("\"algorithm\":\"AWave\""), "{line}");
        assert!(
            full_wave_seeds.contains(&seed_of(line)),
            "filtered job ran an unpaired seed: {line}"
        );
    }
}

#[test]
fn sweep_algorithms_filter_rejects_unknown_and_disjoint_names() {
    // A name the parser does not know fails with the parser's message.
    let out = dftp(&[
        "sweep",
        "--scenarios",
        "disk:n=10",
        "--algorithms",
        "teleport",
    ]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown algorithm spec"), "stderr: {err}");
    // A valid algorithm missing from the plan's axis is rejected too —
    // a filter that silently ran nothing would be worse than an error.
    let out = dftp(&[
        "sweep",
        "--scenarios",
        "disk:n=10",
        "--algs",
        "grid,wave",
        "--algorithms",
        "central:greedy",
    ]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("but the plan's axis is"), "stderr: {err}");
    assert!(err.contains("AGrid"), "stderr: {err}");
}

#[test]
fn scale_families_resolve_on_the_cli() {
    // Shrunk members of the 100k families run end to end through the
    // stats profile (the full-size defaults are CI's scale smoke).
    let out = dftp(&[
        "sweep",
        "--scenarios",
        "wave_100k:n=40:radius=8,separator_100k:n=40:radius=8",
        "--algs",
        "wave,separator",
        "--algorithms",
        "wave",
        "--seeds",
        "1",
        "--profile",
        "stats",
        "--format",
        "jsonl",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert_eq!(text.lines().count(), 2, "{text}");
    for line in text.lines() {
        assert!(line.contains("\"all_awake\":true"), "{line}");
        assert!(line.contains("\"ell\":4"), "declared ell must flow: {line}");
    }
}

#[test]
fn sweep_streamed_out_file_matches_the_buffered_stdout_bytes() {
    // The --out path streams records through the bounded-window runner
    // and the incremental writer; the file must hold exactly the bytes
    // the buffered stdout path prints — modulo wall_time_s, the one
    // field a machine may change between the two runs.
    let strip_wall = |text: &str| -> String {
        text.lines()
            .map(|l| match l.find(",\"wall_time_s\":") {
                Some(i) => format!("{}}}", &l[..i]),
                None => l.to_string(),
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    let base = [
        "sweep",
        "--scenarios",
        "disk:n=15:radius=5,ring:n=12:radius=6",
        "--algs",
        "grid,wave",
        "--seeds",
        "2",
        "--plan-seed",
        "5",
        "--threads",
        "3",
        "--format",
        "jsonl",
    ];
    let buffered = dftp(&base);
    assert!(buffered.status.success(), "stderr: {}", stderr(&buffered));
    let path = std::env::temp_dir().join(format!("dftp_stream_{}.jsonl", std::process::id()));
    let mut streamed_args = base.to_vec();
    let path_str = path.to_str().expect("utf-8 temp path");
    streamed_args.extend(["--out", path_str, "--flush-every", "2"]);
    let streamed = dftp(&streamed_args);
    assert!(streamed.status.success(), "stderr: {}", stderr(&streamed));
    let file = std::fs::read_to_string(&path).expect("streamed file");
    std::fs::remove_file(&path).ok();
    assert_eq!(
        strip_wall(&file),
        strip_wall(&stdout(&buffered)),
        "streamed --out bytes must match the buffered emitter"
    );
    // With --out, stdout carries the summary table instead of records.
    let summary = stdout(&streamed);
    assert!(summary.contains("| scenario |"), "{summary}");
    assert!(summary.contains("8 jobs on"), "{summary}");
}

#[test]
fn sweep_streamed_csv_and_json_formats_write_well_formed_files() {
    let path = std::env::temp_dir().join(format!("dftp_stream_{}.out", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path");
    let run = |format: &str| {
        dftp(&[
            "sweep",
            "--scenarios",
            "disk:n=10:radius=4",
            "--algs",
            "grid",
            "--seeds",
            "2",
            "--format",
            format,
            "--out",
            path_str,
        ])
    };
    let csv = run("csv");
    assert!(csv.status.success(), "stderr: {}", stderr(&csv));
    let text = std::fs::read_to_string(&path).expect("csv file");
    assert!(text.starts_with("job,scenario"), "{text}");
    assert_eq!(text.lines().count(), 3, "header + 2 rows: {text}");
    let json = run("json");
    assert!(json.status.success(), "stderr: {}", stderr(&json));
    let text = std::fs::read_to_string(&path).expect("json file");
    std::fs::remove_file(&path).ok();
    assert!(text.contains("\"groups\""), "{text}");
    assert!(
        !text.contains("wall_time"),
        "aggregate doc must stay deterministic: {text}"
    );
}

#[test]
fn sweep_rejects_zero_flush_cadence_and_compressed_adversarial() {
    let out = dftp(&["sweep", "--scenarios", "disk:n=5", "--flush-every", "0"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("--flush-every must be at least 1"),
        "stderr: {}",
        stderr(&out)
    );
    let out = dftp(&[
        "sweep",
        "--scenarios",
        "theorem2:n=20",
        "--algs",
        "separator",
        "--profile",
        "compressed",
    ]);
    assert!(
        !out.status.success(),
        "adversarial + compressed must be rejected"
    );
    assert!(
        stderr(&out).contains("full profile"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn sweep_compressed_profile_matches_full_aggregates_on_the_cli() {
    let run = |profile: &str| {
        dftp(&[
            "sweep",
            "--scenarios",
            "disk:n=20:radius=6",
            "--algs",
            "grid,wave",
            "--seeds",
            "2",
            "--plan-seed",
            "9",
            "--profile",
            profile,
            "--threads",
            "2",
        ])
    };
    let compressed = run("compressed");
    assert!(
        compressed.status.success(),
        "stderr: {}",
        stderr(&compressed)
    );
    let text = stdout(&compressed);
    assert!(text.contains("\"profile\": \"compressed\""), "{text}");
    // Validated + aggregate-identical: erase the fields that legitimately
    // differ (profile label, recorder memory) and compare with full.
    let full = stdout(&run("full"));
    let strip = |t: &str| -> String {
        t.lines()
            .map(|l| match l.find("\"peak_mem_bytes\"") {
                Some(i) => l[..i].to_string(),
                None => l.to_string(),
            })
            .filter(|l| !l.contains("\"profile\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip(&text),
        strip(&full),
        "compressed aggregates must match the full profile"
    );
}

#[test]
fn sweep_resume_completes_an_interrupted_out_file_byte_identically() {
    use freezetag::core::Algorithm;
    use freezetag::exp::{journal, ExperimentPlan, ScenarioSpec};
    let strip_wall = |text: &str| -> String {
        text.lines()
            .map(|l| match l.find(",\"wall_time_s\":") {
                Some(i) => format!("{}}}", &l[..i]),
                None => l.to_string(),
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    let dir = std::env::temp_dir().join(format!("dftp_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let reference = dir.join("ref.jsonl");
    let partial = dir.join("part.jsonl");
    let args = |out: &str| {
        vec![
            "sweep".to_string(),
            "--scenarios".into(),
            "disk:n=15:radius=5".into(),
            "--algs".into(),
            "grid,wave".into(),
            "--seeds".into(),
            "2".into(),
            "--plan-seed".into(),
            "5".into(),
            "--format".into(),
            "jsonl".into(),
            "--out".into(),
            out.to_string(),
        ]
    };
    let full = dftp(
        &args(reference.to_str().unwrap())
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
    );
    assert!(full.status.success(), "stderr: {}", stderr(&full));
    assert!(
        !journal::journal_path(&reference).exists(),
        "completed sweep must clear its journal"
    );
    let complete = std::fs::read_to_string(&reference).expect("reference file");
    assert_eq!(complete.lines().count(), 4);

    // Fabricate the on-disk state an interruption leaves: two complete
    // records, a torn third, and the journal still standing.
    let mut torn: String = complete.lines().take(2).map(|l| format!("{l}\n")).collect();
    torn.push_str("{\"job\":2,\"scen");
    std::fs::write(&partial, torn).expect("write partial");
    let plan = ExperimentPlan::new("sweep")
        .scenario(ScenarioSpec::parse("disk:n=15:radius=5").expect("spec"))
        .algorithm(Algorithm::Grid)
        .algorithm(Algorithm::Wave)
        .seeds(2)
        .plan_seed(5);
    journal::write_journal(&partial, &journal::plan_fingerprint(&plan, "jsonl"))
        .expect("write journal");

    let mut resume_args = args(partial.to_str().unwrap());
    resume_args.push("--resume".into());
    let resumed = dftp(&resume_args.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(resumed.status.success(), "stderr: {}", stderr(&resumed));
    assert!(
        stderr(&resumed).contains("resuming"),
        "stderr: {}",
        stderr(&resumed)
    );
    let text = std::fs::read_to_string(&partial).expect("resumed file");
    assert_eq!(
        strip_wall(&text),
        strip_wall(&complete),
        "resumed file must hold the exact bytes of an unbroken run"
    );
    assert!(
        !journal::journal_path(&partial).exists(),
        "resumed completion must clear the journal"
    );

    // Error paths: --resume without a journal, and against a journal
    // recording a different plan.
    let rerun = dftp(&resume_args.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(!rerun.status.success());
    assert!(stderr(&rerun).contains("no journal"), "{}", stderr(&rerun));
    journal::write_journal(
        &partial,
        &journal::plan_fingerprint(&plan.clone().seeds(3), "jsonl"),
    )
    .expect("write journal");
    let mismatched = dftp(&resume_args.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(!mismatched.status.success());
    assert!(
        stderr(&mismatched).contains("mismatch"),
        "{}",
        stderr(&mismatched)
    );
    std::fs::remove_dir_all(&dir).ok();
}
