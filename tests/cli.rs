//! Integration tests for the `dftp` command-line driver: the documented
//! subcommands succeed on small deterministic instances, and malformed
//! invocations fail with usage text on stderr.

use std::process::{Command, Output};

fn dftp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dftp"))
        .args(args)
        .output()
        .expect("failed to spawn dftp")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn solve_separator_on_disk_succeeds() {
    let out = dftp(&[
        "solve",
        "--alg",
        "separator",
        "--gen",
        "disk",
        "--n",
        "50",
        "--radius",
        "10",
        "--seed",
        "1",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("ASeparator"),
        "missing algorithm name: {text}"
    );
    assert!(text.contains("makespan"), "missing makespan line: {text}");
    assert!(text.contains("all awake"), "missing all-awake line: {text}");
    assert!(text.contains("true"), "robots left asleep: {text}");
}

#[test]
fn solve_is_deterministic_for_a_seed() {
    let args = [
        "solve", "--alg", "grid", "--gen", "disk", "--n", "40", "--radius", "8", "--seed", "7",
    ];
    let a = dftp(&args);
    let b = dftp(&args);
    assert!(a.status.success());
    assert_eq!(stdout(&a), stdout(&b), "same seed must reproduce the run");
}

#[test]
fn params_reports_instance_parameters() {
    let out = dftp(&[
        "params",
        "--gen",
        "lattice",
        "--side",
        "5",
        "--spacing",
        "1.5",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for needle in ["n     =", "ρ*", "ℓ*", "tuple"] {
        assert!(text.contains(needle), "missing `{needle}` in: {text}");
    }
}

#[test]
fn compare_runs_all_three_algorithms() {
    let out = dftp(&[
        "compare",
        "--gen",
        "snake",
        "--legs",
        "2",
        "--leg",
        "12",
        "--spacing",
        "1",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for alg in ["ASeparator", "AGrid", "AWave"] {
        assert!(
            text.contains(alg),
            "missing {alg} in compare output: {text}"
        );
    }
}

#[test]
fn no_arguments_fails_with_usage() {
    let out = dftp(&[]);
    assert!(!out.status.success(), "bare invocation must fail");
    assert!(stderr(&out).contains("usage:"), "stderr: {}", stderr(&out));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = dftp(&["frobnicate"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown command"), "stderr: {err}");
    assert!(err.contains("usage:"), "stderr: {err}");
}

#[test]
fn unknown_algorithm_fails_with_usage() {
    let out = dftp(&["solve", "--alg", "teleport", "--gen", "disk"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown algorithm"), "stderr: {err}");
    assert!(err.contains("usage:"), "stderr: {err}");
}

#[test]
fn malformed_flag_value_fails_with_usage() {
    let out = dftp(&["solve", "--gen", "disk", "--n", "not-a-number"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("--n expects"), "stderr: {err}");
    assert!(err.contains("usage:"), "stderr: {err}");
}

#[test]
fn dangling_flag_fails_with_usage() {
    let out = dftp(&["solve", "--gen"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage:"), "stderr: {}", stderr(&out));
}
