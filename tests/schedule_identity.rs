//! Schedule byte-identity pins for the knowledge-store refactor.
//!
//! The grid-indexed `Knowledge` rewrite (and every optimization that rode
//! along with it) must change *speed only*: `ASeparator` and `AWave`
//! schedules have to stay bit-for-bit identical to the pre-refactor
//! implementation. The hashes below were captured from the seed (BTreeMap
//! knowledge) code on one representative instance per concrete generator
//! family, plus every Lemma 2 wake-strategy for `ASeparator` — a change to
//! any wake time, segment endpoint, or event order flips the FNV-1a hash.
//!
//! To regenerate after an *intentional* schedule change (which also
//! requires regenerating BENCH_results.json):
//! `cargo test --release --test schedule_identity -- --ignored --nocapture`

use freezetag::central::WakeStrategy;
use freezetag::core::{a_separator, a_wave, ASeparatorConfig, AWaveConfig};
use freezetag::instances::registry::{self, ParamMap};
use freezetag::sim::{ConcreteWorld, Schedule, Sim, WorldView};

/// FNV-1a over the full schedule: every timeline (robot, activation,
/// segment endpoints/times) in deterministic order plus the wake log.
fn schedule_hash(schedule: &Schedule) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for tl in schedule.timelines() {
        eat(tl.robot().index() as u64);
        eat(tl.start_time().to_bits());
        eat(tl.start_pos().x.to_bits());
        eat(tl.start_pos().y.to_bits());
        eat(tl.segments().len() as u64);
        for s in tl.segments() {
            eat(s.start_time.to_bits());
            eat(s.end_time.to_bits());
            eat(s.from.x.to_bits());
            eat(s.from.y.to_bits());
            eat(s.to.x.to_bits());
            eat(s.to.y.to_bits());
        }
    }
    for w in schedule.wakes() {
        eat(w.waker.index() as u64);
        eat(w.target.index() as u64);
        eat(w.time.to_bits());
        eat(w.pos.x.to_bits());
        eat(w.pos.y.to_bits());
    }
    h
}

/// One pinned case: `(label, generator, params, seed, algorithm)` where
/// algorithm is `"wave"` or a separator strategy name.
type Case = (
    &'static str,
    &'static str,
    &'static [(&'static str, f64)],
    u64,
    &'static str,
);

const CASES: &[Case] = &[
    (
        "disk/sep",
        "uniform_disk",
        &[("n", 60.0), ("radius", 12.0)],
        1,
        "quadtree",
    ),
    (
        "disk/sep/greedy",
        "uniform_disk",
        &[("n", 60.0), ("radius", 12.0)],
        1,
        "greedy",
    ),
    (
        "disk/sep/median",
        "uniform_disk",
        &[("n", 60.0), ("radius", 12.0)],
        1,
        "median",
    ),
    (
        "disk/sep/chain",
        "uniform_disk",
        &[("n", 60.0), ("radius", 12.0)],
        1,
        "chain",
    ),
    (
        "disk/sep/s2",
        "uniform_disk",
        &[("n", 60.0), ("radius", 12.0)],
        2,
        "quadtree",
    ),
    (
        "disk/wave",
        "uniform_disk",
        &[("n", 60.0), ("radius", 12.0)],
        1,
        "wave",
    ),
    (
        "disk/wave/s2",
        "uniform_disk",
        &[("n", 60.0), ("radius", 12.0)],
        2,
        "wave",
    ),
    (
        "lattice/sep",
        "grid_lattice",
        &[("side", 8.0), ("spacing", 1.5)],
        1,
        "quadtree",
    ),
    (
        "lattice/wave",
        "grid_lattice",
        &[("side", 8.0), ("spacing", 1.5)],
        1,
        "wave",
    ),
    (
        "snake/sep",
        "snake",
        &[("legs", 3.0), ("leg", 20.0), ("spacing", 1.5)],
        1,
        "quadtree",
    ),
    (
        "snake/wave",
        "snake",
        &[("legs", 3.0), ("leg", 20.0), ("spacing", 1.5)],
        1,
        "wave",
    ),
    (
        "ring/sep",
        "ring",
        &[("n", 30.0), ("radius", 8.0)],
        3,
        "quadtree",
    ),
    (
        "ring/wave",
        "ring",
        &[("n", 30.0), ("radius", 8.0)],
        3,
        "wave",
    ),
    (
        "clusters/sep",
        "clustered",
        &[("clusters", 3.0), ("per", 12.0), ("spread", 12.0)],
        4,
        "quadtree",
    ),
    (
        "clusters/wave",
        "clustered",
        &[("clusters", 3.0), ("per", 12.0), ("spread", 12.0)],
        4,
        "wave",
    ),
    (
        "bridge/sep",
        "two_clusters_bridge",
        &[("per", 12.0), ("gap", 14.0)],
        5,
        "quadtree",
    ),
    (
        "bridge/wave",
        "two_clusters_bridge",
        &[("per", 12.0), ("gap", 14.0)],
        5,
        "wave",
    ),
    (
        "skewed/sep",
        "skewed",
        &[("n", 25.0), ("radius", 3.0), ("far", 5.0)],
        6,
        "quadtree",
    ),
    (
        "skewed/wave",
        "skewed",
        &[("n", 25.0), ("radius", 3.0), ("far", 5.0)],
        6,
        "wave",
    ),
    ("path/sep", "theorem6", &[], 1, "quadtree"),
    ("path/wave", "theorem6", &[], 1, "wave"),
];

/// Hashes captured on the seed implementation (see module docs).
const EXPECTED: &[(&str, u64)] = &[
    ("disk/sep", 0x10c2807dbbf09ee7),
    ("disk/sep/greedy", 0x059d2a4796ecabce),
    ("disk/sep/median", 0x0523879ea49554ca),
    ("disk/sep/chain", 0xb0604225c11ff7ac),
    ("disk/sep/s2", 0x4f218b22ea769d66),
    ("disk/wave", 0x848d8ac42dc92946),
    ("disk/wave/s2", 0x539923053a84edc0),
    ("lattice/sep", 0x9ddc606747317e3d),
    ("lattice/wave", 0xefe4771a62f5513e),
    ("snake/sep", 0xc8ee46b2a5887de7),
    ("snake/wave", 0x13d2b5c0d04e2aa6),
    ("ring/sep", 0xf4b884e3d32eff79),
    ("ring/wave", 0xf8a5af83a2dd1707),
    ("clusters/sep", 0x6ef75d6809953613),
    ("clusters/wave", 0x3eb8b41ccf18da73),
    ("bridge/sep", 0xb65b098f8bf306a3),
    ("bridge/wave", 0x50ab3427bb19c320),
    ("skewed/sep", 0xaeebab0b83bce0fd),
    ("skewed/wave", 0xc30e1f3233cb3c53),
    ("path/sep", 0x21c06c170b35d13d),
    ("path/wave", 0x926e57a8b57d489d),
];

fn run_case(case: &Case) -> u64 {
    let &(label, generator, params, seed, alg) = case;
    let params: ParamMap = params.iter().map(|&(k, v)| (k.to_string(), v)).collect();
    let inst = registry::build_instance(generator, &params, seed)
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    let tuple = inst.admissible_tuple();
    let mut sim = Sim::new(ConcreteWorld::new(&inst));
    match alg {
        "wave" => a_wave(&mut sim, &AWaveConfig { ell: tuple.ell }),
        strategy => {
            let strategy = match strategy {
                "quadtree" => WakeStrategy::Quadtree,
                "greedy" => WakeStrategy::Greedy,
                "median" => WakeStrategy::MedianSplit,
                "chain" => WakeStrategy::Chain,
                other => panic!("unknown strategy {other}"),
            };
            a_separator(&mut sim, &ASeparatorConfig { tuple, strategy });
        }
    }
    assert!(sim.world().all_awake(), "{label}: robots left asleep");
    let (_, schedule, _) = sim.into_parts();
    schedule_hash(&schedule)
}

#[test]
fn schedules_match_seed_hashes() {
    assert_eq!(CASES.len(), EXPECTED.len(), "pin table out of sync");
    let mut failures = Vec::new();
    for (case, &(label, want)) in CASES.iter().zip(EXPECTED) {
        assert_eq!(case.0, label, "pin table out of sync at {label}");
        let got = run_case(case);
        if got != want {
            failures.push(format!("{label}: got {got:#018x}, pinned {want:#018x}"));
        }
    }
    assert!(
        failures.is_empty(),
        "schedules diverged from the seed implementation:\n{}",
        failures.join("\n")
    );
}

/// Regeneration helper: prints the pin table (see module docs).
#[test]
#[ignore = "regeneration helper, not a check"]
fn dump_seed_hashes() {
    for case in CASES {
        println!("    (\"{}\", {:#018x}),", case.0, run_case(case));
    }
}
