//! Schedule byte-identity pins for the knowledge-store refactor.
//!
//! The grid-indexed `Knowledge` rewrite (and every optimization that rode
//! along with it) must change *speed only*: `ASeparator` and `AWave`
//! schedules have to stay bit-for-bit identical to the pre-refactor
//! implementation. The hashes below were captured from the seed (BTreeMap
//! knowledge) code on one representative instance per concrete generator
//! family, plus every Lemma 2 wake-strategy for `ASeparator` — a change to
//! any wake time, segment endpoint, or event order flips the FNV-1a hash.
//!
//! To regenerate after an *intentional* schedule change (which also
//! requires regenerating BENCH_results.json):
//! `cargo test --release --test schedule_identity -- --ignored --nocapture`

use freezetag::central::WakeStrategy;
use freezetag::core::{a_separator, a_wave, ASeparatorConfig, AWaveConfig};
use freezetag::instances::registry::{self, ParamMap};
use freezetag::sim::{ConcreteWorld, Schedule, Sim, WorldView};

/// FNV-1a over the full schedule: every timeline (robot, activation,
/// segment endpoints/times) in deterministic order plus the wake log.
fn schedule_hash(schedule: &Schedule) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bits: u64| {
        for b in bits.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for tl in schedule.timelines() {
        eat(tl.robot().index() as u64);
        eat(tl.start_time().to_bits());
        eat(tl.start_pos().x.to_bits());
        eat(tl.start_pos().y.to_bits());
        eat(tl.segments().len() as u64);
        for s in tl.segments() {
            eat(s.start_time.to_bits());
            eat(s.end_time.to_bits());
            eat(s.from.x.to_bits());
            eat(s.from.y.to_bits());
            eat(s.to.x.to_bits());
            eat(s.to.y.to_bits());
        }
    }
    for w in schedule.wakes() {
        eat(w.waker.index() as u64);
        eat(w.target.index() as u64);
        eat(w.time.to_bits());
        eat(w.pos.x.to_bits());
        eat(w.pos.y.to_bits());
    }
    h
}

/// One pinned case: `(label, generator, params, seed, algorithm)` where
/// algorithm is `"wave"` or a separator strategy name.
type Case = (
    &'static str,
    &'static str,
    &'static [(&'static str, f64)],
    u64,
    &'static str,
);

const CASES: &[Case] = &[
    (
        "disk/sep",
        "uniform_disk",
        &[("n", 60.0), ("radius", 12.0)],
        1,
        "quadtree",
    ),
    (
        "disk/sep/greedy",
        "uniform_disk",
        &[("n", 60.0), ("radius", 12.0)],
        1,
        "greedy",
    ),
    (
        "disk/sep/median",
        "uniform_disk",
        &[("n", 60.0), ("radius", 12.0)],
        1,
        "median",
    ),
    (
        "disk/sep/chain",
        "uniform_disk",
        &[("n", 60.0), ("radius", 12.0)],
        1,
        "chain",
    ),
    (
        "disk/sep/s2",
        "uniform_disk",
        &[("n", 60.0), ("radius", 12.0)],
        2,
        "quadtree",
    ),
    (
        "disk/wave",
        "uniform_disk",
        &[("n", 60.0), ("radius", 12.0)],
        1,
        "wave",
    ),
    (
        "disk/wave/s2",
        "uniform_disk",
        &[("n", 60.0), ("radius", 12.0)],
        2,
        "wave",
    ),
    (
        "lattice/sep",
        "grid_lattice",
        &[("side", 8.0), ("spacing", 1.5)],
        1,
        "quadtree",
    ),
    (
        "lattice/wave",
        "grid_lattice",
        &[("side", 8.0), ("spacing", 1.5)],
        1,
        "wave",
    ),
    (
        "snake/sep",
        "snake",
        &[("legs", 3.0), ("leg", 20.0), ("spacing", 1.5)],
        1,
        "quadtree",
    ),
    (
        "snake/wave",
        "snake",
        &[("legs", 3.0), ("leg", 20.0), ("spacing", 1.5)],
        1,
        "wave",
    ),
    (
        "ring/sep",
        "ring",
        &[("n", 30.0), ("radius", 8.0)],
        3,
        "quadtree",
    ),
    (
        "ring/wave",
        "ring",
        &[("n", 30.0), ("radius", 8.0)],
        3,
        "wave",
    ),
    (
        "clusters/sep",
        "clustered",
        &[("clusters", 3.0), ("per", 12.0), ("spread", 12.0)],
        4,
        "quadtree",
    ),
    (
        "clusters/wave",
        "clustered",
        &[("clusters", 3.0), ("per", 12.0), ("spread", 12.0)],
        4,
        "wave",
    ),
    (
        "bridge/sep",
        "two_clusters_bridge",
        &[("per", 12.0), ("gap", 14.0)],
        5,
        "quadtree",
    ),
    (
        "bridge/wave",
        "two_clusters_bridge",
        &[("per", 12.0), ("gap", 14.0)],
        5,
        "wave",
    ),
    (
        "skewed/sep",
        "skewed",
        &[("n", 25.0), ("radius", 3.0), ("far", 5.0)],
        6,
        "quadtree",
    ),
    (
        "skewed/wave",
        "skewed",
        &[("n", 25.0), ("radius", 3.0), ("far", 5.0)],
        6,
        "wave",
    ),
    ("path/sep", "theorem6", &[], 1, "quadtree"),
    ("path/wave", "theorem6", &[], 1, "wave"),
];

/// Pinned hashes (see module docs). Captured on the seed (BTreeMap
/// knowledge) implementation, re-captured once at the sweeper cap of the
/// kernel PR: `explore` stopped cutting a rectangle into more strips than
/// `⌈height/√2⌉` (surplus members duplicate coverage — snapshot rows `√2`
/// apart already certify the rectangle), an intentional schedule change
/// that cut `wave_100k` sensing volume ~40×. Cases whose teams never
/// exceeded the cap (e.g. `disk/sep/s2`, `skewed/sep`) kept their seed
/// hashes — everything else was regenerated with the helper below. The
/// pins must be identical with and without `--features simd`.
const EXPECTED: &[(&str, u64)] = &[
    ("disk/sep", 0xe8b19251361f8ebe),
    ("disk/sep/greedy", 0x8597de3834af1466),
    ("disk/sep/median", 0xcbf48a114d6907ba),
    ("disk/sep/chain", 0xc7afb6c88c1e7f5f),
    ("disk/sep/s2", 0x4f218b22ea769d66),
    ("disk/wave", 0x17d88f61ad40115c),
    ("disk/wave/s2", 0x9abf1936779ef843),
    ("lattice/sep", 0x4abe02ba36adc7c4),
    ("lattice/wave", 0xd3fd1edf9f44d4f5),
    ("snake/sep", 0xddb1ad02ad477114),
    ("snake/wave", 0x4f4236f67795703d),
    ("ring/sep", 0x1f2cfd6f9acd785c),
    ("ring/wave", 0x5fc0be2599db9c6b),
    ("clusters/sep", 0xd224c4a5faed205c),
    ("clusters/wave", 0xece2f1d83ec31b6a),
    ("bridge/sep", 0xccae106417288cc5),
    ("bridge/wave", 0xc2e7a0b7d7151979),
    ("skewed/sep", 0xaeebab0b83bce0fd),
    ("skewed/wave", 0x578246a75c75fc86),
    ("path/sep", 0x96eb296bbfd92b73),
    ("path/wave", 0x18bbf95e47bbb5b5),
];

fn run_case(case: &Case) -> u64 {
    let &(label, generator, params, seed, alg) = case;
    let params: ParamMap = params.iter().map(|&(k, v)| (k.to_string(), v)).collect();
    let inst = registry::build_instance(generator, &params, seed)
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    let tuple = inst.admissible_tuple();
    let mut sim = Sim::new(ConcreteWorld::new(&inst));
    match alg {
        "wave" => a_wave(&mut sim, &AWaveConfig { ell: tuple.ell }),
        strategy => {
            let strategy = match strategy {
                "quadtree" => WakeStrategy::Quadtree,
                "greedy" => WakeStrategy::Greedy,
                "median" => WakeStrategy::MedianSplit,
                "chain" => WakeStrategy::Chain,
                other => panic!("unknown strategy {other}"),
            };
            a_separator(&mut sim, &ASeparatorConfig { tuple, strategy });
        }
    }
    assert!(sim.world().all_awake(), "{label}: robots left asleep");
    let (_, schedule, _) = sim.into_parts();
    schedule_hash(&schedule)
}

#[test]
fn schedules_match_seed_hashes() {
    assert_eq!(CASES.len(), EXPECTED.len(), "pin table out of sync");
    let mut failures = Vec::new();
    for (case, &(label, want)) in CASES.iter().zip(EXPECTED) {
        assert_eq!(case.0, label, "pin table out of sync at {label}");
        let got = run_case(case);
        if got != want {
            failures.push(format!("{label}: got {got:#018x}, pinned {want:#018x}"));
        }
    }
    assert!(
        failures.is_empty(),
        "schedules diverged from the seed implementation:\n{}",
        failures.join("\n")
    );
}

/// Regeneration helper: prints the pin table (see module docs).
#[test]
#[ignore = "regeneration helper, not a check"]
fn dump_seed_hashes() {
    for case in CASES {
        println!("    (\"{}\", {:#018x}),", case.0, run_case(case));
    }
}
