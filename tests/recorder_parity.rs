//! Property tests pinning the recorder contract: a `StatsRecorder` or
//! `CompressedRecorder` run is bit-identical to the statistics derived
//! from a `FullRecorder` run of the same algorithm on the same instance —
//! makespan, completion time, total/max energy, per-robot wake times and
//! per-robot travel — for all three distributed algorithms on random
//! registry instances.
//!
//! This is what licenses the `--profile stats` and `--profile compressed`
//! execution paths: neither recorder is an approximation — they run the
//! same arithmetic, one throwing the segments away, the other
//! delta-encoding them.

use freezetag::core::{run_algorithm, Algorithm};
use freezetag::instances::registry;
use freezetag::sim::{
    CompressedRecorder, ConcreteWorld, Recorder, RobotId, Sim, StatsRecorder, WakeEvent, WorldView,
};
use proptest::prelude::*;

/// A random registry scenario: generator, parameters, seed.
fn arb_scenario() -> impl Strategy<Value = (&'static str, Vec<(&'static str, f64)>, u64)> {
    let disk = (6usize..28, 3.0f64..9.0, 0u64..1_000_000_000)
        .prop_map(|(n, radius, seed)| ("disk", vec![("n", n as f64), ("radius", radius)], seed));
    let lattice = (2usize..6, 1.0f64..2.0).prop_map(|(side, spacing)| {
        (
            "lattice",
            vec![("side", side as f64), ("spacing", spacing)],
            0u64,
        )
    });
    let ring = (6usize..20, 4.0f64..8.0, 0u64..1_000_000_000)
        .prop_map(|(n, radius, seed)| ("ring", vec![("n", n as f64), ("radius", radius)], seed));
    let clusters = (2usize..4, 4usize..9, 0u64..1_000_000_000).prop_map(|(clusters, per, seed)| {
        (
            "clusters",
            vec![("clusters", clusters as f64), ("per", per as f64)],
            seed,
        )
    });
    prop_oneof![disk, lattice, ring, clusters]
}

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    (0usize..3).prop_map(|i| [Algorithm::Separator, Algorithm::Grid, Algorithm::Wave][i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn stats_recorder_matches_full_recorder_bitwise(
        (generator, params, seed) in arb_scenario(),
        alg in arb_algorithm(),
    ) {
        let params: registry::ParamMap =
            params.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        let inst = registry::build_instance(generator, &params, seed).expect("builds");
        let tuple = inst.admissible_tuple();

        let mut full = Sim::new(ConcreteWorld::new(&inst));
        run_algorithm(&mut full, &tuple, alg);
        let (world_full, schedule, _) = full.into_parts();

        let mut stats: Sim<ConcreteWorld, StatsRecorder> =
            Sim::with_stats(ConcreteWorld::new(&inst));
        run_algorithm(&mut stats, &tuple, alg);
        let looks_stats = stats.world().look_count();
        prop_assert_eq!(world_full.look_count(), looks_stats);
        let (_, rec, _) = stats.into_recorder_parts();

        // Aggregates, bit for bit.
        prop_assert_eq!(schedule.makespan().to_bits(), rec.makespan().to_bits());
        prop_assert_eq!(
            schedule.completion_time().to_bits(),
            rec.completion_time().to_bits()
        );
        prop_assert_eq!(schedule.max_energy().to_bits(), rec.max_energy().to_bits());
        prop_assert_eq!(
            schedule.total_energy().to_bits(),
            rec.total_energy().to_bits()
        );
        prop_assert_eq!(schedule.active_count(), rec.active_count());
        prop_assert_eq!(schedule.wakes(), rec.wakes());

        // Per-robot wake times and travel, bit for bit.
        for i in 0..=inst.n() {
            let r = RobotId::from_index(i);
            let (full_wake, full_travel) = match schedule.timeline(r) {
                Some(tl) => (Some(tl.start_time()), Some(tl.travel())),
                None => (None, None),
            };
            prop_assert_eq!(full_wake.map(f64::to_bits), rec.wake_time(r).map(f64::to_bits));
            prop_assert_eq!(full_travel.map(f64::to_bits), rec.travel(r).map(f64::to_bits));
        }

        // The constant-memory recorder is never larger than the full one
        // (equality only on degenerate no-move runs, which these are not).
        prop_assert!(rec.memory_bytes() < schedule.memory_bytes());
    }

    #[test]
    fn compressed_recorder_matches_full_recorder_bitwise(
        (generator, params, seed) in arb_scenario(),
        alg in arb_algorithm(),
    ) {
        let params: registry::ParamMap =
            params.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        let inst = registry::build_instance(generator, &params, seed).expect("builds");
        let tuple = inst.admissible_tuple();

        let mut full = Sim::new(ConcreteWorld::new(&inst));
        run_algorithm(&mut full, &tuple, alg);
        let (world_full, schedule, _) = full.into_parts();

        let mut comp: Sim<ConcreteWorld, CompressedRecorder> =
            Sim::with_compressed(ConcreteWorld::new(&inst));
        run_algorithm(&mut comp, &tuple, alg);
        prop_assert_eq!(world_full.look_count(), comp.world().look_count());
        let (_, rec, _) = comp.into_recorder_parts();

        // Aggregates, bit for bit.
        prop_assert_eq!(schedule.makespan().to_bits(), rec.makespan().to_bits());
        prop_assert_eq!(
            schedule.completion_time().to_bits(),
            rec.completion_time().to_bits()
        );
        prop_assert_eq!(schedule.max_energy().to_bits(), rec.max_energy().to_bits());
        prop_assert_eq!(
            schedule.total_energy().to_bits(),
            rec.total_energy().to_bits()
        );
        prop_assert_eq!(schedule.active_count(), rec.active_count());

        // The wake log round-trips through its snapshot blocks.
        let mut wakes: Vec<WakeEvent> = Vec::new();
        rec.for_each_wake_from(0, &mut |w| wakes.push(*w));
        prop_assert_eq!(schedule.wakes(), wakes.as_slice());

        // Per-robot wake times and travel, bit for bit.
        for i in 0..=inst.n() {
            let r = RobotId::from_index(i);
            let (full_wake, full_travel) = match schedule.timeline(r) {
                Some(tl) => (Some(tl.start_time()), Some(tl.travel())),
                None => (None, None),
            };
            prop_assert_eq!(full_wake.map(f64::to_bits), rec.wake_time(r).map(f64::to_bits));
            prop_assert_eq!(full_travel.map(f64::to_bits), rec.travel(r).map(f64::to_bits));
        }

        // Keeping every segment in delta-encoded blocks must still beat
        // the flat segment store.
        prop_assert!(rec.memory_bytes() < schedule.memory_bytes());
    }
}
