//! Property-based tests (proptest) of the paper's structural lemmas:
//! Proposition 1, Lemma 3, Lemma 6, sweep coverage, wake-tree invariants
//! and validator soundness, over randomized point sets.

use freezetag::central::{greedy_wake_tree, quadtree_wake_tree};
use freezetag::geometry::{sweep, Point, Rect, Square};
use freezetag::graph::{bfs_hops, connectivity_threshold, dijkstra, DiskGraph, InstanceParams};
use freezetag::sim::RobotId;
use proptest::prelude::*;

fn arb_points(max_n: usize, span: f64) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((-span..span, -span..span), 2..max_n).prop_map(|v| {
        let mut pts = vec![Point::ORIGIN];
        pts.extend(
            v.into_iter()
                .map(|(x, y)| Point::new(x, y))
                .filter(|p| p.norm() > 1e-6),
        );
        pts
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Proposition 1: 0 < ℓ* ≤ ρ* ≤ ξ_ℓ ≤ n·ℓ* (source excluded from n+1
    /// count as in the paper's proof).
    #[test]
    fn proposition_1_chain(pts in arb_points(40, 30.0)) {
        prop_assume!(pts.len() >= 2);
        let params = InstanceParams::compute(&pts, 0, None);
        let xi = params.xi_ell.expect("xi at ell* is finite by definition");
        prop_assert!(params.ell_star > 0.0);
        prop_assert!(params.ell_star <= params.rho_star + 1e-9);
        prop_assert!(params.rho_star <= xi + 1e-9);
        prop_assert!(xi <= pts.len() as f64 * params.ell_star + 1e-9);
    }

    /// Lemma 6: ξ_ℓ ≤ 12ρ*²/ℓ and hop count ≤ 1 + 2ξ_ℓ/ℓ.
    #[test]
    fn lemma_6_bounds(pts in arb_points(40, 25.0), slack in 1.0f64..3.0) {
        prop_assume!(pts.len() >= 2);
        let ell_star = connectivity_threshold(&pts);
        prop_assume!(ell_star > 1e-6);
        let ell = ell_star * slack;
        let params = InstanceParams::compute(&pts, 0, Some(ell));
        let xi = params.xi_ell.expect("connected at ell >= ell*");
        prop_assert!(xi <= 12.0 * params.rho_star * params.rho_star / ell + 1e-6,
            "xi={xi} exceeds 12rho^2/ell");
        let g = DiskGraph::new(pts.clone(), ell);
        let hops = bfs_hops(&g, 0);
        let bound = 1.0 + 2.0 * xi / ell;
        for (v, &h) in hops.iter().enumerate() {
            prop_assert!(h != usize::MAX, "vertex {v} unreachable");
            prop_assert!((h as f64) <= bound + 1e-9, "vertex {v}: hops {h} > {bound}");
        }
    }

    /// Lemma 3 (separator): any ℓ-hop path from strictly inside the hole
    /// to outside the square passes through the ring.
    #[test]
    fn lemma_3_separator_catches_paths(
        cx in -5.0f64..5.0, cy in -5.0f64..5.0,
        width in 8.0f64..24.0, ell in 0.5f64..2.0,
        dir in 0.0f64..std::f64::consts::TAU,
    ) {
        let square = Square::new(Point::new(cx, cy), width);
        let sep = square.separator(ell);
        prop_assume!(!sep.is_degenerate());
        // Build a straight chain of points spaced ell from the centre
        // heading outward beyond the square.
        let step = Point::new(dir.cos(), dir.sin()) * ell;
        let mut p = square.center();
        let mut crossed = false;
        for _ in 0..((width / ell) as usize + 3) {
            if sep.contains(p) {
                crossed = true;
            }
            p = p + step;
        }
        prop_assert!(crossed, "chain escaped without touching the separator");
    }

    /// Sweep coverage: every point of the rectangle lies within distance 1
    /// of a snapshot position.
    #[test]
    fn sweep_covers_rectangle(
        w in 0.5f64..20.0, h in 0.5f64..20.0,
        fx in 0.0f64..1.0, fy in 0.0f64..1.0,
    ) {
        let rect = Rect::with_size(Point::new(-3.0, 2.0), w, h);
        let snaps = sweep::snapshot_positions(&rect);
        let probe = Point::new(rect.min().x + w * fx, rect.min().y + h * fy);
        let d = snaps.iter().map(|s| s.dist(probe)).fold(f64::INFINITY, f64::min);
        prop_assert!(d <= 1.0 + 1e-9, "probe {probe} at distance {d}");
    }

    /// Wake trees: both strategies wake each robot exactly once and their
    /// makespans dominate the farthest-robot distance (trivial optimum).
    #[test]
    fn wake_tree_invariants(pts in arb_points(30, 15.0)) {
        prop_assume!(pts.len() >= 2);
        let items: Vec<(RobotId, Point)> = pts[1..]
            .iter()
            .enumerate()
            .map(|(i, &p)| (RobotId::sleeper(i), p))
            .collect();
        let far = items.iter().map(|&(_, p)| p.norm()).fold(0.0f64, f64::max);
        for tree in [
            quadtree_wake_tree(Point::ORIGIN, &items),
            greedy_wake_tree(Point::ORIGIN, &items),
        ] {
            prop_assert_eq!(tree.robot_count(), items.len());
            let woken = tree.woken_robots(); // panics on duplicates
            prop_assert_eq!(woken.len(), items.len());
            prop_assert!(tree.makespan() >= far - 1e-9);
            prop_assert!(tree.total_length() >= far - 1e-9);
        }
    }

    /// The quadtree strategy stays O(R): makespan ≤ 10 × farthest distance.
    #[test]
    fn quadtree_is_linear_in_radius(pts in arb_points(60, 40.0)) {
        prop_assume!(pts.len() >= 3);
        let items: Vec<(RobotId, Point)> = pts[1..]
            .iter()
            .enumerate()
            .map(|(i, &p)| (RobotId::sleeper(i), p))
            .collect();
        let far = items.iter().map(|&(_, p)| p.norm()).fold(0.0f64, f64::max);
        prop_assume!(far > 1.0);
        let tree = quadtree_wake_tree(Point::ORIGIN, &items);
        prop_assert!(tree.makespan() <= 10.0 * far, "c = {}", tree.makespan() / far);
    }

    /// Connectivity threshold is exact: connected at ℓ*, disconnected just
    /// below (when ℓ* separates two strictly positive distances).
    #[test]
    fn threshold_exactness(pts in arb_points(25, 20.0)) {
        prop_assume!(pts.len() >= 3);
        let t = connectivity_threshold(&pts);
        prop_assume!(t > 1e-6);
        prop_assert!(DiskGraph::new(pts.clone(), t + 1e-9).is_connected());
        let below = t * (1.0 - 1e-6);
        // Strictly below the bottleneck the graph must split, unless some
        // other edge has exactly the same length (rare but possible).
        let g = DiskGraph::new(pts.clone(), below);
        if g.is_connected() {
            // Permitted only if a tie exists: verify some pair sits within
            // 1e-5 of the threshold besides the bottleneck.
            let mut near = 0;
            for (i, a) in pts.iter().enumerate() {
                for b in pts.iter().skip(i + 1) {
                    if (a.dist(*b) - t).abs() < 1e-5 {
                        near += 1;
                    }
                }
            }
            prop_assert!(near >= 1, "graph connected below a unique bottleneck");
        }
    }

    /// CSV round trip: `io::from_csv ∘ io::to_csv` is the identity on
    /// instances — shortest round-trip float formatting preserves every
    /// coordinate bit.
    #[test]
    fn csv_round_trip_is_identity(pts in arb_points(30, 50.0)) {
        prop_assume!(pts.len() >= 2);
        let inst = freezetag::instances::Instance::with_source(pts[0], pts[1..].to_vec());
        let text = freezetag::instances::io::to_csv(&inst);
        let back = freezetag::instances::io::from_csv(&text).expect("own output parses");
        prop_assert_eq!(inst, back);
    }

    /// Dijkstra distances are consistent: parent pointers reconstruct
    /// distances and the triangle inequality holds edge-wise.
    #[test]
    fn dijkstra_tree_consistency(pts in arb_points(30, 12.0)) {
        prop_assume!(pts.len() >= 2);
        let ell = connectivity_threshold(&pts).max(1e-3);
        let g = DiskGraph::new(pts.clone(), ell);
        let sp = dijkstra(&g, 0);
        for v in 1..pts.len() {
            if let Some(p) = sp.parent(v) {
                let edge = pts[p].dist(pts[v]);
                prop_assert!(edge <= ell + 1e-9);
                prop_assert!((sp.dist(p) + edge - sp.dist(v)).abs() < 1e-6);
            }
        }
    }
}
