//! Integration tests of the experiment engine through the facade crate:
//! determinism across thread counts, paired seeding, and the
//! machine-readable emission formats.

use freezetag::core::Algorithm;
use freezetag::exp::{agg, emit, run_plan, ExperimentPlan, ScenarioSpec};

fn reference_plan() -> ExperimentPlan {
    ExperimentPlan::new("engine-determinism")
        .scenario(
            ScenarioSpec::new("disk")
                .with("n", 30.0)
                .with("radius", 8.0),
        )
        .scenario(
            ScenarioSpec::new("clusters")
                .with("clusters", 3.0)
                .with("per", 10.0),
        )
        .algorithm(Algorithm::Separator)
        .algorithm(Algorithm::Grid)
        .seeds(3)
        .plan_seed(99)
}

#[test]
fn same_plan_seed_gives_identical_results_for_any_thread_count() {
    let plan = reference_plan();
    let one = run_plan(&plan, 1).expect("single-threaded run");
    let four = run_plan(&plan, 4).expect("multi-threaded run");
    assert_eq!(one.len(), 12);
    for (a, b) in one.iter().zip(&four) {
        let mut b = b.clone();
        b.wall_time_s = a.wall_time_s;
        assert_eq!(*a, b, "job {} differs across thread counts", a.job);
    }
    let json_one = emit::aggregates_to_json(&plan, &agg::aggregate(&one));
    let json_four = emit::aggregates_to_json(&plan, &agg::aggregate(&four));
    assert_eq!(
        json_one, json_four,
        "aggregated JSON must be byte-identical for any thread count"
    );
}

#[test]
fn different_plan_seeds_change_seeded_scenarios() {
    let base = reference_plan();
    let reseeded = reference_plan().plan_seed(100);
    let a = run_plan(&base, 2).expect("plan runs");
    let b = run_plan(&reseeded, 2).expect("plan runs");
    assert!(
        a.iter().zip(&b).any(|(x, y)| x.seed != y.seed),
        "plan seed must flow into job seeds"
    );
    assert!(
        a.iter().zip(&b).any(|(x, y)| x.makespan != y.makespan),
        "different plan seeds must produce different disk instances"
    );
}

#[test]
fn algorithms_within_a_cell_share_their_instance() {
    let plan = reference_plan();
    let results = run_plan(&plan, 2).expect("plan runs");
    // Jobs 0..3 are ASeparator on disk seeds 0..3; jobs 3..6 AGrid, same
    // scenario and repetitions: the paired design means identical seeds
    // and hence identical instances (same n, ell, rho, xi).
    for rep in 0..3 {
        let sep = &results[rep];
        let grid = &results[rep + 3];
        assert_eq!(sep.seed, grid.seed, "rep {rep} not paired");
        assert_eq!(sep.ell, grid.ell);
        assert_eq!(sep.rho, grid.rho);
        assert_eq!(sep.xi_ell, grid.xi_ell);
    }
}

#[test]
fn bench_results_document_has_the_promised_schema() {
    let plan = reference_plan();
    let results = run_plan(&plan, 2).expect("plan runs");
    let aggregates = agg::aggregate(&results);
    assert_eq!(aggregates.len(), 4, "2 scenarios × 2 algorithms");
    let doc = emit::bench_results_json(&plan, &aggregates, 2, 1.25);
    for needle in [
        "\"schema\": \"freezetag-bench-results/v1\"",
        "\"plan\": \"engine-determinism\"",
        "\"seeds_per_cell\": 3",
        "\"threads\": 2",
        "\"total_wall_time_s\": 1.25",
        "\"scenario\":\"disk\"",
        "\"algorithm\":\"AGrid\"",
        "\"makespan\":{\"mean\":",
        "\"p95\":",
        "\"wall_time_s\":",
    ] {
        assert!(doc.contains(needle), "missing `{needle}` in:\n{doc}");
    }
}
