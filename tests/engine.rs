//! Integration tests of the experiment engine through the facade crate:
//! determinism across thread counts, paired seeding, and the
//! machine-readable emission formats.

use freezetag::core::Algorithm;
use freezetag::exp::{agg, emit, Engine, ExperimentPlan, ScenarioSpec};

fn reference_plan() -> ExperimentPlan {
    ExperimentPlan::new("engine-determinism")
        .scenario(
            ScenarioSpec::new("disk")
                .with("n", 30.0)
                .with("radius", 8.0),
        )
        .scenario(
            ScenarioSpec::new("clusters")
                .with("clusters", 3.0)
                .with("per", 10.0),
        )
        .algorithm(Algorithm::Separator)
        .algorithm(Algorithm::Grid)
        .seeds(3)
        .plan_seed(99)
}

#[test]
fn same_plan_seed_gives_identical_results_for_any_thread_count() {
    let plan = reference_plan();
    let one = Engine::with_threads(1)
        .run(&plan)
        .expect("single-threaded run");
    let four = Engine::with_threads(4)
        .run(&plan)
        .expect("multi-threaded run");
    assert_eq!(one.len(), 12);
    for (a, b) in one.iter().zip(&four) {
        let mut b = b.clone();
        b.wall_time_s = a.wall_time_s;
        assert_eq!(*a, b, "job {} differs across thread counts", a.job);
    }
    let json_one = emit::aggregates_to_json(&plan, &agg::aggregate(&one));
    let json_four = emit::aggregates_to_json(&plan, &agg::aggregate(&four));
    assert_eq!(
        json_one, json_four,
        "aggregated JSON must be byte-identical for any thread count"
    );
}

#[test]
fn different_plan_seeds_change_seeded_scenarios() {
    let base = reference_plan();
    let reseeded = reference_plan().plan_seed(100);
    let a = Engine::with_threads(2).run(&base).expect("plan runs");
    let b = Engine::with_threads(2).run(&reseeded).expect("plan runs");
    assert!(
        a.iter().zip(&b).any(|(x, y)| x.seed != y.seed),
        "plan seed must flow into job seeds"
    );
    assert!(
        a.iter().zip(&b).any(|(x, y)| x.makespan != y.makespan),
        "different plan seeds must produce different disk instances"
    );
}

#[test]
fn algorithms_within_a_cell_share_their_instance() {
    let plan = reference_plan();
    let results = Engine::with_threads(2).run(&plan).expect("plan runs");
    // Jobs 0..3 are ASeparator on disk seeds 0..3; jobs 3..6 AGrid, same
    // scenario and repetitions: the paired design means identical seeds
    // and hence identical instances (same n, ell, rho, xi).
    for rep in 0..3 {
        let sep = &results[rep];
        let grid = &results[rep + 3];
        assert_eq!(sep.seed, grid.seed, "rep {rep} not paired");
        assert_eq!(sep.ell, grid.ell);
        assert_eq!(sep.rho, grid.rho);
        assert_eq!(sep.xi_ell, grid.xi_ell);
    }
}

#[test]
fn bench_results_document_has_the_promised_schema() {
    let plan = reference_plan();
    let results = Engine::with_threads(2).run(&plan).expect("plan runs");
    let aggregates = agg::aggregate(&results);
    assert_eq!(aggregates.len(), 4, "2 scenarios × 2 algorithms");
    let doc = emit::bench_results_json(&plan, &aggregates, 2, 1.25);
    for needle in [
        "\"schema\": \"freezetag-bench-results/v2\"",
        "\"plan\": \"engine-determinism\"",
        "\"seeds_per_cell\": 3",
        "\"profile\": \"full\"",
        "\"threads\": 2",
        "\"total_wall_time_s\": 1.25",
        "\"jobs_per_s\": 9.6",
        "\"scenario\":\"disk\"",
        "\"algorithm\":\"AGrid\"",
        "\"makespan\":{\"mean\":",
        "\"peak_mem_bytes\":{\"mean\":",
        "\"p95\":",
        "\"wall_time_s\":",
    ] {
        assert!(doc.contains(needle), "missing `{needle}` in:\n{doc}");
    }
}

#[test]
fn stats_profile_is_deterministic_and_matches_full_aggregates() {
    use freezetag::exp::Profile;
    let full = reference_plan();
    let stats = reference_plan().profile(Profile::Stats);
    let a = Engine::with_threads(2).run(&full).expect("full plan runs");
    let b1 = Engine::with_threads(1)
        .run(&stats)
        .expect("stats plan runs");
    let b4 = Engine::with_threads(4)
        .run(&stats)
        .expect("stats plan runs");
    // Stats output is byte-identical across thread counts.
    for (x, y) in b1.iter().zip(&b4) {
        let mut y = y.clone();
        y.wall_time_s = x.wall_time_s;
        assert_eq!(*x, y, "stats job {} differs across thread counts", x.job);
    }
    // And bit-identical to the full profile on every shared statistic.
    for (f, s) in a.iter().zip(&b1) {
        assert_eq!(f.makespan.to_bits(), s.makespan.to_bits(), "job {}", f.job);
        assert_eq!(f.completion_time.to_bits(), s.completion_time.to_bits());
        assert_eq!(f.max_energy.to_bits(), s.max_energy.to_bits());
        assert_eq!(f.total_energy.to_bits(), s.total_energy.to_bits());
        assert_eq!(f.looks, s.looks);
        assert_eq!(f.all_awake, s.all_awake);
        assert_eq!(s.xi_ell, None, "stats profile must skip ξ_ℓ");
        assert!(
            s.peak_mem_bytes < f.peak_mem_bytes,
            "job {}: stats recorder ({}) not smaller than full ({})",
            f.job,
            s.peak_mem_bytes,
            f.peak_mem_bytes
        );
    }
}

#[test]
fn inadmissible_preset_tuple_is_a_clean_error_not_a_panic() {
    // A scale family shrunk so far that its radius exceeds n·ℓ: the
    // declared ℓ rounds to an inadmissible tuple, which must surface as a
    // sweep error, not a worker-thread panic.
    use freezetag::exp::Profile;
    let plan = ExperimentPlan::new("bad-preset")
        .scenario(
            ScenarioSpec::new("uniform_1m")
                .with("n", 10.0)
                .with("radius", 500.0),
        )
        .algorithm(Algorithm::Grid)
        .profile(Profile::Stats);
    let err = Engine::with_threads(1).run(&plan).unwrap_err();
    assert!(
        err.to_string().contains("inadmissible"),
        "unexpected error: {err}"
    );
}

#[test]
fn stats_profile_rejects_adversarial_scenarios_up_front() {
    use freezetag::exp::Profile;
    let plan = ExperimentPlan::new("stats-adv")
        .scenario(ScenarioSpec::new("theorem2"))
        .algorithm(Algorithm::Separator)
        .profile(Profile::Stats);
    let err = Engine::with_threads(1).run(&plan).unwrap_err();
    assert!(
        err.to_string().contains("full profile"),
        "unexpected error: {err}"
    );
}
