//! Parity suite: the grid-indexed SoA [`Knowledge`] store against a
//! straightforward `BTreeMap` model (the data structure it replaced).
//!
//! Arbitrary interleavings of `note_sighting` / `note_awake` / `merge` /
//! `clear` must leave both stores observably identical: id-ordered
//! iteration, region filters, point lookups, radius and rectangle
//! visitors. This is what lets the algorithms swap full-map rescans for
//! bounded grid queries without any behavioural wiggle room.

use freezetag::core::knowledge::Knowledge;
use freezetag::geometry::{Point, Rect};
use freezetag::sim::RobotId;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The reference semantics, transcribed from the pre-refactor store plus
/// the documented origin-overwrite rule (first look wins once awake).
#[derive(Debug, Clone, Default)]
struct Model {
    robots: BTreeMap<usize, (Point, bool)>,
}

impl Model {
    fn note_sighting(&mut self, id: usize, pos: Point) {
        let e = self.robots.entry(id).or_insert((pos, false));
        if !e.1 {
            e.0 = pos;
        }
    }

    fn note_awake(&mut self, id: usize, origin: Point) {
        let e = self.robots.entry(id).or_insert((origin, true));
        e.1 = true;
    }

    fn merge(&mut self, other: &Model) {
        for (&id, &(origin, awake)) in &other.robots {
            let e = self.robots.entry(id).or_insert((origin, awake));
            e.1 |= awake;
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Sighting(usize, Point),
    Awake(usize, Point),
    /// Merge a second store built from the given ops into the main one.
    Merge(Vec<(bool, usize, Point)>),
    Clear,
}

fn arb_point() -> impl Strategy<Value = Point> {
    (-30.0f64..30.0, -30.0f64..30.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_op() -> impl Strategy<Value = Op> {
    // (the vendored proptest subset has no weighted prop_oneof; the decode
    // strategy below skews towards sightings instead)
    (
        0u32..11,
        (0usize..40, arb_point()),
        prop::collection::vec((0u32..2, 0usize..40, arb_point()), 0..10),
    )
        .prop_map(|(kind, (id, p), merge_ops)| match kind {
            0..=5 => Op::Sighting(id, p),
            6..=8 => Op::Awake(id, p),
            9 => Op::Merge(
                merge_ops
                    .into_iter()
                    .map(|(awake, id, p)| (awake == 1, id, p))
                    .collect(),
            ),
            _ => Op::Clear,
        })
}

fn check_equal(k: &Knowledge, m: &Model, cell: f64) -> Result<(), TestCaseError> {
    // Cardinality + id-ordered iteration.
    prop_assert_eq!(k.len(), m.robots.len());
    prop_assert_eq!(k.is_empty(), m.robots.is_empty());
    let got: Vec<(usize, Point, bool)> = k
        .iter()
        .map(|(id, info)| (id.index(), info.origin, info.awake))
        .collect();
    let want: Vec<(usize, Point, bool)> =
        m.robots.iter().map(|(&id, &(p, a))| (id, p, a)).collect();
    prop_assert_eq!(&got, &want);
    // Point lookups.
    for id in 0..45 {
        let rid = RobotId::from_index(id);
        let want = m.robots.get(&id).copied();
        let got = k.get(rid).map(|i| (i.origin, i.awake));
        prop_assert_eq!(got, want);
        prop_assert_eq!(k.is_awake(rid), want.is_some_and(|(_, a)| a));
    }
    // Region filters (id order).
    let filt = |p: Point| p.x + p.y < 3.0;
    let got: Vec<usize> = k.asleep_where(filt).map(|(id, _)| id.index()).collect();
    let want: Vec<usize> = m
        .robots
        .iter()
        .filter(|(_, &(p, a))| !a && filt(p))
        .map(|(&id, _)| id)
        .collect();
    prop_assert_eq!(got, want);
    // Radius visitor: superset-free, exact acceptance (dist <= r + EPS).
    for (q, r) in [
        (Point::ORIGIN, 5.0),
        (Point::new(10.0, -10.0), 2.0 * cell),
        (Point::new(-3.0, 4.0), 0.0),
    ] {
        let mut got: Vec<usize> = Vec::new();
        k.for_each_known_within(q, r, |id, origin, awake| {
            let info = k.get(id).expect("visited robots are known");
            assert_eq!((info.origin, info.awake), (origin, awake));
            got.push(id.index());
        });
        got.sort_unstable();
        let want: Vec<usize> = m
            .robots
            .iter()
            .filter(|(_, &(p, _))| p.dist(q) <= r + freezetag::geometry::EPS)
            .map(|(&id, _)| id)
            .collect();
        prop_assert_eq!(&got, &want);
    }
    // Rect visitor: a superset of the rect with exact origins, each robot
    // exactly once.
    let rect = Rect::with_size(Point::new(-8.0, -8.0), 16.0, 10.0);
    let mut got: Vec<usize> = Vec::new();
    k.for_each_known_in_rect(&rect, |id, origin, _| {
        if rect.contains(origin) {
            got.push(id.index());
        }
    });
    got.sort_unstable();
    prop_assert!(
        got.windows(2).all(|w| w[0] != w[1]),
        "rect visitor reported a robot twice"
    );
    let want: Vec<usize> = m
        .robots
        .iter()
        .filter(|(_, &(p, _))| rect.contains(p))
        .map(|(&id, _)| id)
        .collect();
    prop_assert_eq!(&got, &want);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any op sequence leaves the grid store and the map model
    /// observationally identical, for several grid cell widths.
    #[test]
    fn grid_store_matches_map_model(
        ops in prop::collection::vec(arb_op(), 0..60),
        cell in (0u32..4).prop_map(|i| [0.5f64, 1.0, 4.0, 17.0][i as usize]),
    ) {
        let mut k = Knowledge::with_cell_width(cell);
        let mut m = Model::default();
        for op in &ops {
            match op {
                Op::Sighting(id, p) => {
                    k.note_sighting(RobotId::from_index(*id), *p);
                    m.note_sighting(*id, *p);
                }
                Op::Awake(id, p) => {
                    k.note_awake(RobotId::from_index(*id), *p);
                    m.note_awake(*id, *p);
                }
                Op::Merge(other_ops) => {
                    let mut ok = Knowledge::with_cell_width(cell);
                    let mut om = Model::default();
                    for &(awake, id, p) in other_ops {
                        if awake {
                            ok.note_awake(RobotId::from_index(id), p);
                            om.note_awake(id, p);
                        } else {
                            ok.note_sighting(RobotId::from_index(id), p);
                            om.note_sighting(id, p);
                        }
                    }
                    k.merge(&ok);
                    m.merge(&om);
                }
                Op::Clear => {
                    k.clear();
                    m.robots.clear();
                }
            }
            check_equal(&k, &m, cell)?;
        }
    }
}
