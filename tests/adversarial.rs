//! Integration tests of the lower-bound machinery: the adaptive adversary
//! of Theorems 2–3 and the prescribed-eccentricity construction of
//! Theorem 6, run against the real algorithms.

use freezetag::core::bounds;
use freezetag::core::{run_algorithm, solve, Algorithm};
use freezetag::geometry::Point;
use freezetag::instances::adversarial::{theorem2_layout, theorem3_layout};
use freezetag::instances::path_construction::{theorem6_instance, theorem6_path, Theorem6Params};
use freezetag::instances::AdmissibleTuple;
use freezetag::sim::{validate, AdversarialWorld, RobotId, Sim, ValidationOptions, WorldView};

#[test]
fn aseparator_beats_the_adversary_and_validates() {
    let (ell, rho) = (2.0, 16.0);
    let layout = theorem2_layout(ell, rho, 1000);
    let n = layout.n();
    let tuple = AdmissibleTuple::new(ell, rho, n);
    let mut sim = Sim::new(AdversarialWorld::new(layout));
    run_algorithm(&mut sim, &tuple, Algorithm::Separator);
    assert!(sim.world().all_awake(), "adversarial robots left asleep");
    let positions = sim
        .world()
        .final_positions()
        .expect("all robots pinned at the end");
    let (_, schedule, _) = sim.into_parts();
    let rep = validate(
        &schedule,
        Point::ORIGIN,
        &positions,
        &ValidationOptions::default(),
    )
    .expect("adversarial schedule validates");
    assert_eq!(rep.wake_count, n);
    // The Ω(ρ) term: someone reached the top of the spine.
    assert!(rep.makespan >= rho / 2.0 - ell);
}

#[test]
fn adversarial_makespan_grows_with_disk_count() {
    // The ℓ² log m adversarial term: doubling ρ (≈4× m) must not shrink
    // the makespan; and the measured makespan dominates the area bound
    // m·πr²/2 divided by the awake-robot count integral (coarse check:
    // simply monotone growth).
    let ell = 2.0;
    let mut last = 0.0;
    for rho in [8.0, 16.0, 32.0] {
        let layout = theorem2_layout(ell, rho, 100_000);
        let tuple = AdmissibleTuple::new(ell, rho, layout.n());
        let mut sim = Sim::new(AdversarialWorld::new(layout));
        run_algorithm(&mut sim, &tuple, Algorithm::Separator);
        assert!(sim.world().all_awake());
        let makespan = sim.schedule().makespan();
        assert!(
            makespan > last,
            "makespan {makespan} did not grow past {last} at rho={rho}"
        );
        last = makespan;
    }
}

#[test]
fn theorem3_budget_starved_searcher_finds_nothing() {
    for ell in [3.0, 6.0, 10.0] {
        let budget = 0.85 * bounds::infeasible_energy_threshold(ell);
        let mut sim = Sim::new(AdversarialWorld::new(theorem3_layout(ell, 2)));
        let rect = freezetag::geometry::Disk::new(Point::ORIGIN, ell).bounding_rect();
        let mut spent = 0.0;
        let mut pos = Point::ORIGIN;
        for snap in freezetag::geometry::sweep::snapshot_positions(&rect) {
            let step = pos.dist(snap);
            if spent + step > budget {
                break;
            }
            spent += step;
            pos = snap;
            sim.move_to(RobotId::SOURCE, snap);
            assert!(
                sim.look(RobotId::SOURCE).is_empty(),
                "ell={ell}: budget-starved sweep discovered a robot"
            );
        }
        assert_eq!(sim.world().asleep_count(), 2);
    }
}

#[test]
fn theorem3_sufficient_budget_does_find_the_robot() {
    // Sanity inverse: with ~4x the threshold the same sweep succeeds
    // (the disk sweep needs ~2·area/2 plus slack for row overheads).
    let ell = 5.0;
    let budget = 4.0 * bounds::infeasible_energy_threshold(ell);
    let mut sim = Sim::new(AdversarialWorld::new(theorem3_layout(ell, 1)));
    let rect = freezetag::geometry::Disk::new(Point::ORIGIN, ell).bounding_rect();
    let mut spent = 0.0;
    let mut pos = Point::ORIGIN;
    let mut found = false;
    for snap in freezetag::geometry::sweep::snapshot_positions(&rect) {
        let step = pos.dist(snap);
        if spent + step > budget {
            break;
        }
        spent += step;
        pos = snap;
        sim.move_to(RobotId::SOURCE, snap);
        if !sim.look(RobotId::SOURCE).is_empty() {
            found = true;
            break;
        }
    }
    assert!(found, "a full sweep within 4x threshold must discover");
}

#[test]
fn theorem6_instances_have_prescribed_shape_and_solve() {
    let params = Theorem6Params {
        ell: 1.0,
        rho: 30.0,
        budget: 4.0,
        xi: 60.0,
    };
    let path = theorem6_path(&params);
    assert!((path.length() - params.xi).abs() < 1e-6);
    let inst = theorem6_instance(&params);
    let tuple = inst.admissible_tuple();
    let ip = inst.params(Some(tuple.ell));
    let xi = ip.xi_ell.expect("connected");
    assert!(xi >= 0.7 * params.xi && xi <= 1.3 * params.xi + params.rho);
    for alg in [Algorithm::Grid, Algorithm::Wave] {
        let rep = solve(&inst, &tuple, alg).expect("valid run");
        assert!(rep.all_awake);
        // Ω(ξ): the wake wave must traverse the corridor.
        assert!(
            rep.makespan >= 0.5 * xi,
            "{alg}: makespan {} below the Ω(ξ) floor {xi}",
            rep.makespan
        );
    }
}

#[test]
fn adversary_never_reveals_prematurely() {
    // Replay a full ASeparator run against the adversary, recording every
    // (look position, time); then check every pinned position was never
    // within vision range of an *earlier* look. This is the adversary's
    // defining soundness property, checked end-to-end.
    let layout = theorem2_layout(2.0, 8.0, 200);
    let tuple = AdmissibleTuple::new(2.0, 8.0, layout.n());
    let world = AdversarialWorld::new(layout);
    let mut sim = Sim::new(RecordingWorld {
        inner: world,
        log: Vec::new(),
    });
    run_algorithm(&mut sim, &tuple, Algorithm::Separator);
    assert!(sim.world().all_awake());
    let world = sim.world();
    let positions = world.inner.final_positions().expect("all pinned");
    for (i, &pos) in positions.iter().enumerate() {
        // Find the first look that saw this robot.
        let first_seen = world
            .log
            .iter()
            .position(|(p, _, seen)| {
                seen.contains(&RobotId::sleeper(i)) && p.dist(pos) <= 1.0 + 1e-9
            })
            .unwrap_or(usize::MAX);
        for (k, (p, _, _)) in world.log.iter().enumerate() {
            if k < first_seen {
                assert!(
                    p.dist(pos) > 1.0 - 1e-6,
                    "robot {i} at {pos} was visible from look #{k} at {p} before its discovery"
                );
            }
        }
    }
}

/// A `WorldView` decorator recording every look (position, time, result).
struct RecordingWorld {
    inner: AdversarialWorld,
    log: Vec<(Point, f64, Vec<RobotId>)>,
}

impl WorldView for RecordingWorld {
    fn n(&self) -> usize {
        self.inner.n()
    }
    fn source_pos(&self) -> Point {
        self.inner.source_pos()
    }
    fn look_into(&mut self, from: Point, time: f64, out: &mut Vec<freezetag::sim::Sighting>) {
        self.inner.look_into(from, time, out);
        self.log
            .push((from, time, out.iter().map(|s| s.id).collect()));
    }
    fn wake(&mut self, target: RobotId, time: f64) -> Result<(), freezetag::sim::SimError> {
        self.inner.wake(target, time)
    }
    fn is_awake(&self, target: RobotId) -> bool {
        self.inner.is_awake(target)
    }
    fn wake_time(&self, target: RobotId) -> Option<f64> {
        self.inner.wake_time(target)
    }
    fn position(&self, target: RobotId) -> Option<Point> {
        self.inner.position(target)
    }
    fn look_count(&self) -> usize {
        self.inner.look_count()
    }
}
