//! Property and determinism tests of the anytime wake-tree optimizer:
//! the delta-evaluation cache is pinned bit-equal against a
//! full-recompute oracle over random move sequences, moves preserve the
//! wake-tree invariants, and the best tree is byte-identical at any
//! worker count.

use freezetag::central::{
    anytime_wake_tree, greedy_wake_tree, quadtree_wake_tree, AnytimeConfig, OptTree,
};
use freezetag::geometry::Point;
use freezetag::sim::{CancelToken, ParPool, RobotId};
use proptest::prelude::*;

fn arb_items(max_n: usize, span: f64) -> impl Strategy<Value = Vec<(RobotId, Point)>> {
    prop::collection::vec((-span..span, -span..span), 2..max_n).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (x, y))| (RobotId::sleeper(i), Point::new(x, y)))
            .collect()
    })
}

/// A random move: `(kind, a, b)` with indices drawn large and reduced
/// modulo the tree size at application time, so the strategy is
/// independent of the instance size.
fn arb_moves(max_len: usize) -> impl Strategy<Value = Vec<(bool, usize, usize)>> {
    prop::collection::vec(
        (0usize..2, 0usize..1 << 20, 0usize..1 << 20).prop_map(|(k, a, b)| (k == 0, a, b)),
        1..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole pin: after every applied move, every cached subtree
    /// height is bit-equal to a full bottom-up recomputation, and the
    /// incremental makespan is exactly the oracle's.
    #[test]
    fn delta_evaluation_matches_the_full_recompute_oracle(
        items in arb_items(60, 25.0),
        moves in arb_moves(120),
    ) {
        let mut tree = OptTree::from_wake_tree(&quadtree_wake_tree(Point::ORIGIN, &items));
        prop_assert!(tree.cache_matches_oracle());
        let len = tree.len();
        for (reassign, a, b) in moves {
            let applied = if reassign {
                tree.reassign(1 + a % (len - 1), b % len)
            } else {
                tree.swap(1 + a % (len - 1), 1 + b % (len - 1))
            };
            if applied {
                prop_assert!(tree.cache_matches_oracle(),
                    "cache drifted from the oracle after a move");
            }
            prop_assert_eq!(tree.makespan().to_bits(), tree.oracle_makespan().to_bits());
        }
    }

    /// Moves never break the wake-tree structure: converting back passes
    /// the arity assertions of `add_child`, wakes every robot exactly
    /// once, and agrees with the cache on the makespan up to the
    /// accumulation-order ulp.
    #[test]
    fn moves_preserve_wake_tree_invariants(
        items in arb_items(50, 20.0),
        moves in arb_moves(80),
    ) {
        let mut tree = OptTree::from_wake_tree(&quadtree_wake_tree(Point::ORIGIN, &items));
        let len = tree.len();
        for (reassign, a, b) in moves {
            if reassign {
                tree.reassign(1 + a % (len - 1), b % len);
            } else {
                tree.swap(1 + a % (len - 1), 1 + b % (len - 1));
            }
        }
        let back = tree.to_wake_tree();
        prop_assert_eq!(back.robot_count(), items.len());
        prop_assert_eq!(back.woken_robots().len(), items.len());
        let slack = 1e-9 * back.makespan().max(1.0);
        prop_assert!((back.makespan() - tree.makespan()).abs() <= slack);
    }

    /// A revert is exact: applying a move and its inverse restores the
    /// makespan bits (the acceptance loop relies on this).
    #[test]
    fn reassign_then_revert_restores_the_makespan_bits(
        items in arb_items(40, 15.0),
        a in 0usize..1 << 20,
        b in 0usize..1 << 20,
    ) {
        let mut tree = OptTree::from_wake_tree(&quadtree_wake_tree(Point::ORIGIN, &items));
        let len = tree.len();
        let before = tree.makespan();
        let v = 1 + a % (len - 1);
        let old_parent = tree.parent(v).expect("non-root has a parent");
        if tree.reassign(v, b % len) {
            prop_assert!(tree.reassign(v, old_parent), "revert must apply");
        }
        prop_assert_eq!(tree.makespan().to_bits(), before.to_bits());
        prop_assert!(tree.cache_matches_oracle());
    }

    /// The full optimizer run is byte-identical at pool widths 1, 2 and
    /// 4 on arbitrary instances — the `--workers` contract.
    #[test]
    fn optimizer_is_byte_identical_across_pool_widths(
        items in arb_items(40, 20.0),
        seed in 0u64..1 << 40,
    ) {
        let config = AnytimeConfig {
            rounds: 3,
            moves_per_round: 120,
            ..AnytimeConfig::default()
        };
        let run = |threads| anytime_wake_tree(
            Point::ORIGIN,
            &items,
            &config,
            seed,
            &ParPool::new(threads),
            &CancelToken::never(),
        );
        let base = run(1);
        for threads in [2, 4] {
            let other = run(threads);
            prop_assert_eq!(base.tree.digest(), other.tree.digest());
            prop_assert_eq!(&base.tree, &other.tree);
            prop_assert_eq!(base.makespan.to_bits(), other.makespan.to_bits());
            prop_assert_eq!(base.moves_tried, other.moves_tried);
            prop_assert_eq!(base.moves_accepted, other.moves_accepted);
        }
    }
}

#[test]
fn optimizer_dominates_the_greedy_baseline_on_mixed_instances() {
    // Small enough for the greedy seed tree, so domination is by
    // construction; strict improvement happens on most instances.
    let mut strict = 0;
    for seed in 1..=4u64 {
        let items: Vec<(RobotId, Point)> = (0..150)
            .map(|i| {
                let angle = (i as f64) * 2.4 + seed as f64;
                let r = 3.0 + (i as f64).sqrt() * (seed as f64).sqrt();
                (
                    RobotId::sleeper(i),
                    Point::new(r * angle.cos(), r * angle.sin()),
                )
            })
            .collect();
        let greedy = greedy_wake_tree(Point::ORIGIN, &items).makespan();
        let report = anytime_wake_tree(
            Point::ORIGIN,
            &items,
            &AnytimeConfig::default(),
            seed,
            &ParPool::new(2),
            &CancelToken::never(),
        );
        assert!(
            report.makespan <= greedy + 1e-12,
            "seed {seed}: anytime {} worse than greedy {greedy}",
            report.makespan
        );
        if report.makespan < greedy - 1e-9 {
            strict += 1;
        }
    }
    assert!(
        strict >= 2,
        "anytime should strictly beat greedy on most instances, got {strict}/4"
    );
}
