//! Shape-level reproduction of the paper's theorems: measured makespans
//! and energies against the Table 1 bounds, across parameter sweeps.
//! (Absolute constants are ours; boundedness of the ratios is the claim.)

use freezetag::core::bounds;
use freezetag::core::{estimate_radius, solve, Algorithm};
use freezetag::instances::generators::{grid_lattice, snake, uniform_disk};
use freezetag::sim::{ConcreteWorld, Sim};

/// Theorem 1: ASeparator makespan / (ρ + ℓ² log(ρ/ℓ)) bounded across a
/// ρ/ℓ sweep.
#[test]
fn theorem1_separator_ratio_bounded() {
    let mut ratios = Vec::new();
    for &(side, spacing) in &[(5usize, 2.0), (9, 2.0), (13, 2.0)] {
        let inst = grid_lattice(side, side, spacing);
        let tuple = inst.admissible_tuple();
        let rep = solve(&inst, &tuple, Algorithm::Separator).unwrap();
        assert!(rep.all_awake);
        let bound = bounds::separator_makespan_bound(tuple.rho, tuple.ell);
        ratios.push(rep.makespan / bound);
    }
    let max = ratios.iter().cloned().fold(0.0, f64::max);
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max < 60.0,
        "ASeparator ratio exploded: {ratios:?} (shape violated)"
    );
    assert!(
        max / min < 4.0,
        "ASeparator ratio drifts across the sweep: {ratios:?}"
    );
}

/// Theorem 4: AGrid energy Θ(ℓ²) — constant per-robot energy across a ξ
/// sweep at fixed ℓ (the wave travels farther, the battery does not).
#[test]
fn theorem4_grid_energy_independent_of_xi() {
    let mut energies = Vec::new();
    for &legs in &[2usize, 4, 6] {
        let inst = snake(legs, 20.0, 1.5, 1.0);
        let tuple = inst.admissible_tuple();
        let rep = solve(&inst, &tuple, Algorithm::Grid).unwrap();
        assert!(rep.all_awake);
        energies.push(rep.max_energy);
    }
    let max = energies.iter().cloned().fold(0.0, f64::max);
    let min = energies.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max / min < 2.0,
        "AGrid per-robot energy grew with ξ: {energies:?}"
    );
}

/// Theorem 4 vs 5: makespan scaling — AGrid grows linearly with ξ (at
/// fixed ℓ), AWave sublinearly enough that the AGrid/AWave ratio grows and
/// eventually crosses 1 (the Table 1 crossover). `AWave`'s fixed overhead
/// (squares of width 8ℓ²log₂ℓ with ℓ clamped to 4) means the corridors
/// must be long for the crossover to appear.
#[test]
fn theorem5_wave_beats_grid_at_large_xi() {
    // Matching the table1 harness geometry: legs of 2ℓ risers, spacing ℓ.
    let small = snake(4, 33.0, 4.0, 2.0); // ξ ≈ 140
    let large = snake(4, 123.0, 4.0, 2.0); // ξ ≈ 500
    let ts = small.admissible_tuple();
    let tl = large.admissible_tuple();
    let g_small = solve(&small, &ts, Algorithm::Grid).unwrap().makespan;
    let w_small = solve(&small, &ts, Algorithm::Wave).unwrap().makespan;
    let g_large = solve(&large, &tl, Algorithm::Grid).unwrap().makespan;
    let w_large = solve(&large, &tl, Algorithm::Wave).unwrap().makespan;
    let gain_small = g_small / w_small;
    let gain_large = g_large / w_large;
    assert!(
        gain_large > gain_small,
        "AWave advantage must grow with ξ: small {gain_small:.2}, large {gain_large:.2}"
    );
    assert!(
        gain_large > 1.2,
        "AWave should win outright on the long corridor (gain {gain_large:.2})"
    );
}

/// Theorem 5: AWave energy stays Θ(ℓ² log ℓ) while ξ grows.
#[test]
fn theorem5_wave_energy_bounded() {
    for &legs in &[2usize, 5] {
        let inst = snake(legs, 30.0, 1.5, 1.0);
        let tuple = inst.admissible_tuple();
        let rep = solve(&inst, &tuple, Algorithm::Wave).unwrap();
        assert!(rep.all_awake);
        let budget = 800.0 * bounds::wave_energy_shape(tuple.ell) + 500.0;
        assert!(
            rep.max_energy <= budget,
            "legs={legs}: AWave energy {} above Θ(ℓ² log ℓ) budget {budget}",
            rep.max_energy
        );
    }
}

/// Makespan floors: every algorithm's makespan dominates ρ* (someone must
/// reach the farthest robot) — the trivial part of every lower bound.
#[test]
fn all_makespans_dominate_rho_star() {
    let inst = uniform_disk(40, 13.0, 3);
    let rho_star = inst.params(None).rho_star;
    let tuple = inst.admissible_tuple();
    for alg in [Algorithm::Separator, Algorithm::Grid, Algorithm::Wave] {
        let rep = solve(&inst, &tuple, alg).unwrap();
        assert!(rep.makespan >= rho_star - 1e-6, "{alg} beat the ρ* floor");
    }
}

/// Section 5: the ρ̂ estimate lands in a constant window around ρ*.
#[test]
fn section5_radius_window() {
    for seed in [1u64, 2, 3] {
        let inst = uniform_disk(50, 14.0, seed);
        let tuple = inst.admissible_tuple();
        let rho_star = inst.params(None).rho_star;
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        let est = estimate_radius(&mut sim, tuple.ell);
        assert!(
            est.rho_hat >= rho_star / std::f64::consts::SQRT_2 - 1e-6,
            "seed {seed}: rho_hat {} under the containment floor {rho_star}",
            est.rho_hat
        );
        assert!(
            est.rho_hat <= 4.0 * rho_star + 4.0 * tuple.ell,
            "seed {seed}: rho_hat {} above the doubling ceiling",
            est.rho_hat
        );
    }
}

/// Exploration lower bound intuition from the introduction: discovering a
/// robot at distance D with unit vision needs Ω(D²) travel in the worst
/// case — check our separator algorithm's *total* travel on a sparse
/// instance indeed grows superlinearly in ρ.
#[test]
fn exploration_work_grows_superlinearly() {
    let small = grid_lattice(3, 3, 4.0);
    let big = grid_lattice(6, 6, 4.0);
    let ts = small.admissible_tuple();
    let tb = big.admissible_tuple();
    let e_small = solve(&small, &ts, Algorithm::Separator)
        .unwrap()
        .total_energy;
    let e_big = solve(&big, &tb, Algorithm::Separator).unwrap().total_energy;
    let rho_ratio = tb.rho / ts.rho;
    assert!(
        e_big / e_small > rho_ratio,
        "total work should outgrow ρ: {e_small} → {e_big} (ρ ×{rho_ratio})"
    );
}
