//! End-to-end integration: every generator family × every algorithm, with
//! full schedule validation (kinematics, wake legality, coverage).

use freezetag::core::{solve, Algorithm, RunReport};
use freezetag::instances::generators::{
    clustered, grid_lattice, ring, snake, two_clusters_bridge, uniform_disk,
};
use freezetag::instances::Instance;

const ALGS: [Algorithm; 3] = [Algorithm::Separator, Algorithm::Grid, Algorithm::Wave];

fn check(inst: &Instance, label: &str) -> Vec<RunReport> {
    let tuple = inst.admissible_tuple();
    ALGS.iter()
        .map(|&alg| {
            let rep = solve(inst, &tuple, alg)
                .unwrap_or_else(|e| panic!("{label}/{alg}: invalid schedule: {e}"));
            assert!(rep.all_awake, "{label}/{alg}: robots left asleep");
            assert_eq!(rep.wake_count, inst.n(), "{label}/{alg}: wake count");
            assert!(
                rep.makespan <= rep.completion_time + 1e-9,
                "{label}/{alg}: makespan after completion"
            );
            rep
        })
        .collect()
}

#[test]
fn uniform_disk_all_algorithms() {
    let inst = uniform_disk(45, 9.0, 1);
    check(&inst, "disk");
}

#[test]
fn lattice_all_algorithms() {
    let inst = grid_lattice(6, 6, 1.5);
    check(&inst, "lattice");
}

#[test]
fn snake_all_algorithms() {
    let inst = snake(3, 15.0, 2.0, 1.0);
    check(&inst, "snake");
}

#[test]
fn ring_all_algorithms() {
    let inst = ring(24, 8.0, 1.0, 3);
    check(&inst, "ring");
}

#[test]
fn clustered_all_algorithms() {
    let inst = clustered(3, 10, 1.5, 12.0, 5);
    check(&inst, "clustered");
}

#[test]
fn bridge_all_algorithms() {
    let inst = two_clusters_bridge(12, 1.0, 14.0, 1.5, 8);
    check(&inst, "bridge");
}

#[test]
fn single_robot_instances() {
    for pos in [
        freezetag::geometry::Point::new(0.5, 0.0),
        freezetag::geometry::Point::new(3.0, 4.0),
        freezetag::geometry::Point::new(-7.0, 2.0),
    ] {
        let inst = Instance::new(vec![pos]);
        check(&inst, "single");
    }
}

#[test]
fn colinear_robots() {
    let pts: Vec<_> = (1..=20)
        .map(|i| freezetag::geometry::Point::new(i as f64 * 0.9, 0.0))
        .collect();
    let inst = Instance::new(pts);
    check(&inst, "line");
}

#[test]
fn coincident_cluster() {
    // Several robots at (almost) the same spot plus a far one.
    let mut pts = vec![freezetag::geometry::Point::new(2.0, 2.0); 5];
    pts.push(freezetag::geometry::Point::new(6.0, 6.0));
    let inst = Instance::new(pts);
    check(&inst, "coincident");
}

#[test]
fn loose_tuples_also_work() {
    // Feeding the algorithms slack bounds (ℓ, ρ larger than necessary)
    // must still produce valid complete runs (Definition 1 quantifies over
    // all admissible tuples dominating the instance).
    let inst = uniform_disk(30, 7.0, 9);
    let tuple = inst.loose_tuple(2.0, 1.5);
    for alg in ALGS {
        let rep = solve(&inst, &tuple, alg).expect("valid run");
        assert!(rep.all_awake, "{alg} with loose tuple left robots asleep");
    }
}

#[test]
fn makespan_dominates_radius() {
    // Trivial lower bound: someone must physically reach the farthest
    // robot, so makespan ≥ ρ* for every algorithm.
    let inst = uniform_disk(40, 11.0, 17);
    let rho_star = inst.params(None).rho_star;
    for rep in check(&inst, "radius-lb") {
        assert!(
            rep.makespan >= rho_star - 1e-6,
            "{}: makespan {} below rho* {}",
            rep.algorithm,
            rep.makespan,
            rho_star
        );
    }
}

#[test]
fn deterministic_replays() {
    // Same instance, same tuple, same algorithm → identical makespan.
    let inst = uniform_disk(35, 8.0, 23);
    let tuple = inst.admissible_tuple();
    for alg in ALGS {
        let a = solve(&inst, &tuple, alg).unwrap();
        let b = solve(&inst, &tuple, alg).unwrap();
        assert_eq!(a.makespan, b.makespan, "{alg} not deterministic");
        assert_eq!(a.total_energy, b.total_energy);
        assert_eq!(a.looks, b.looks);
    }
}

#[test]
fn off_origin_sources_work() {
    // The paper fixes p0 = (0,0); our implementation supports arbitrary
    // source positions (tilings and squares are translated). All three
    // algorithms must be translation-invariant.
    let base = uniform_disk(30, 7.0, 41);
    let offset = freezetag::geometry::Point::new(103.7, -55.2);
    let shifted = Instance::with_source(
        offset,
        base.positions().iter().map(|&p| p + offset).collect(),
    );
    let tuple = shifted.admissible_tuple();
    for alg in ALGS {
        let rep = solve(&shifted, &tuple, alg).unwrap_or_else(|e| panic!("offset/{alg}: {e}"));
        assert!(rep.all_awake, "offset/{alg}: robots left asleep");
    }
    // And the makespans match the origin-centred run (same tuple).
    let tuple0 = base.admissible_tuple();
    assert_eq!(tuple.ell, tuple0.ell);
    for alg in ALGS {
        let a = solve(&base, &tuple0, alg).unwrap().makespan;
        let b = solve(&shifted, &tuple, alg).unwrap().makespan;
        assert!(
            (a - b).abs() < 1e-6,
            "{alg}: translation changed the makespan {a} → {b}"
        );
    }
}

#[test]
fn energy_hierarchy_holds() {
    // AGrid's worst-robot energy ≤ AWave's ≤ (typically) ASeparator's
    // round-trip-heavy profile; at minimum AGrid must respect Θ(ℓ²) while
    // the others are allowed more.
    let inst = uniform_disk(50, 10.0, 31);
    let tuple = inst.admissible_tuple();
    let grid = solve(&inst, &tuple, Algorithm::Grid).unwrap();
    let ell = tuple.ell;
    assert!(
        grid.max_energy <= 80.0 * ell * ell + 60.0 * ell + 40.0,
        "AGrid energy {} not O(ell^2)",
        grid.max_energy
    );
}
