//! Integration tests for `dftp serve`: an in-process [`Server`] driven by
//! a hand-rolled `TcpStream` client — submission, status, streaming,
//! cache hits on resubmission, cooperative cancel, deadlines — plus
//! property tests hammering the HTTP request-head parser.
//!
//! The load-bearing claim: the chunked JSONL a stream replies with is
//! byte-identical (modulo `wall_time_s`) to what `dftp sweep --format
//! jsonl` prints for the same plan.

use freezetag::exp::serve::{parse_request_head, ServeConfig, Server};
use freezetag::exp::EngineConfig;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn spawn_server() -> Server {
    Server::spawn(ServeConfig {
        engine: EngineConfig {
            threads: 2,
            cache_capacity: 256,
            ..EngineConfig::default()
        },
        ..ServeConfig::default()
    })
    .expect("bind 127.0.0.1:0")
}

/// One full HTTP exchange: write the request, read to EOF (the server
/// closes every connection), split into (status line, headers, body).
fn http(addr: SocketAddr, request: &str) -> (String, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read reply");
    let head_end = reply
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("reply has a blank line")
        + 4;
    let head = String::from_utf8_lossy(&reply[..head_end]).into_owned();
    let (status, headers) = head.split_once("\r\n").expect("status line");
    (
        status.to_string(),
        headers.to_string(),
        reply[head_end..].to_vec(),
    )
}

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let (status, _, body) = http(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"));
    (status, String::from_utf8_lossy(&body).into_owned())
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (String, String) {
    let (status, _, reply) = http(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    (status, String::from_utf8_lossy(&reply).into_owned())
}

/// Decodes a chunked transfer-encoded body into its payload bytes.
fn dechunk(mut body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    loop {
        let line_end = body
            .windows(2)
            .position(|w| w == b"\r\n")
            .expect("chunk size line");
        let size_text = std::str::from_utf8(&body[..line_end]).expect("chunk size utf-8");
        let size = usize::from_str_radix(size_text.trim(), 16).expect("chunk size hex");
        body = &body[line_end + 2..];
        if size == 0 {
            return out;
        }
        out.extend_from_slice(&body[..size]);
        assert_eq!(&body[size..size + 2], b"\r\n", "chunk terminator");
        body = &body[size + 2..];
    }
}

fn submit(addr: SocketAddr, params: &str) -> u64 {
    let (status, body) = post(addr, "/plans", params);
    assert!(status.contains("202"), "{status}: {body}");
    let id_text = body
        .strip_prefix("{\"id\":")
        .and_then(|r| r.split(',').next())
        .expect("id field");
    id_text.parse().expect("numeric id")
}

fn field_u64(status_json: &str, key: &str) -> u64 {
    let marker = format!("\"{key}\":");
    let rest = &status_json[status_json.find(&marker).expect(key) + marker.len()..];
    rest.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect(key)
}

fn wait_terminal(addr: SocketAddr, id: u64, budget: Duration) -> String {
    let start = Instant::now();
    loop {
        let (status, body) = get(addr, &format!("/plans/{id}"));
        assert!(status.contains("200"), "{status}: {body}");
        if ["\"done\"", "\"cancelled\"", "\"failed\""]
            .iter()
            .any(|p| body.contains(p))
        {
            return body;
        }
        assert!(
            start.elapsed() < budget,
            "plan {id} not terminal within {budget:?}: {body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn strip_wall(text: &str) -> String {
    text.lines()
        .map(|l| match l.find(",\"wall_time_s\":") {
            Some(i) => format!("{}}}", &l[..i]),
            None => l.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

const PLAN: &str =
    "scenarios=disk:n=15:radius=5,ring:n=12:radius=6&algs=grid,wave&seeds=2&plan-seed=5";

#[test]
fn streamed_jsonl_matches_the_cli_sweep_bytes() {
    let server = spawn_server();
    let id = submit(server.addr(), PLAN);
    let (status, _, body) = http(
        server.addr(),
        &format!("GET /plans/{id}/stream HTTP/1.1\r\nHost: t\r\n\r\n"),
    );
    assert!(status.contains("200"), "{status}");
    let streamed = String::from_utf8(dechunk(&body)).expect("jsonl utf-8");

    let cli = std::process::Command::new(env!("CARGO_BIN_EXE_dftp"))
        .args([
            "sweep",
            "--scenarios",
            "disk:n=15:radius=5,ring:n=12:radius=6",
            "--algs",
            "grid,wave",
            "--seeds",
            "2",
            "--plan-seed",
            "5",
            "--format",
            "jsonl",
        ])
        .output()
        .expect("spawn dftp");
    assert!(cli.status.success());
    let cli_text = String::from_utf8_lossy(&cli.stdout);
    assert_eq!(
        strip_wall(&streamed),
        strip_wall(&cli_text),
        "serve must stream the exact bytes dftp sweep prints"
    );
}

#[test]
fn resubmission_is_served_from_the_cache_with_identical_bytes() {
    let server = spawn_server();
    let addr = server.addr();
    let stream_of = |id: u64| {
        let (_, _, body) = http(
            addr,
            &format!("GET /plans/{id}/stream HTTP/1.1\r\nHost: t\r\n\r\n"),
        );
        String::from_utf8(dechunk(&body)).expect("jsonl utf-8")
    };
    let first = submit(addr, PLAN);
    let first_text = stream_of(first);
    let first_status = wait_terminal(addr, first, Duration::from_secs(30));
    assert_eq!(field_u64(&first_status, "cache_hits"), 0);
    assert_eq!(field_u64(&first_status, "cache_misses"), 8);

    let second = submit(addr, PLAN);
    let second_text = stream_of(second);
    let second_status = wait_terminal(addr, second, Duration::from_secs(30));
    assert_eq!(
        field_u64(&second_status, "cache_hits"),
        8,
        "repeat submission must be answered from the cache: {second_status}"
    );
    assert_eq!(field_u64(&second_status, "cache_misses"), 0);
    // Cache hits keep the original wall_time_s, so the full bytes —
    // including that field — only match after stripping it.
    assert_eq!(strip_wall(&first_text), strip_wall(&second_text));

    let (_, health) = get(addr, "/health");
    assert!(health.contains("\"cache_hits\":8"), "{health}");
    assert!(health.contains("\"cache_misses\":8"), "{health}");
}

#[test]
fn cancelled_plan_terminates_promptly() {
    let server = spawn_server();
    let addr = server.addr();
    // A plan long enough that cancellation lands mid-execution.
    let id = submit(
        addr,
        "scenarios=uniform_1m:n=60000:radius=160&algs=grid&seeds=6&profile=stats",
    );
    // Let execution start, then cancel and demand a prompt stop.
    std::thread::sleep(Duration::from_millis(100));
    let (status, body) = post(addr, &format!("/plans/{id}/cancel"), "");
    assert!(status.contains("200"), "{status}: {body}");
    let cancelled_at = Instant::now();
    let final_status = wait_terminal(addr, id, Duration::from_secs(5));
    assert!(
        cancelled_at.elapsed() < Duration::from_secs(1),
        "cancel took {:?}",
        cancelled_at.elapsed()
    );
    assert!(
        final_status.contains("\"cancelled\"") || final_status.contains("\"done\""),
        "unexpected terminal state: {final_status}"
    );
}

#[test]
fn deadline_cancels_a_plan_that_runs_long() {
    let server = spawn_server();
    let addr = server.addr();
    let id = submit(
        addr,
        "scenarios=uniform_1m:n=60000:radius=160&algs=grid&seeds=6&profile=stats&deadline-s=0.05",
    );
    let body = wait_terminal(addr, id, Duration::from_secs(10));
    assert!(body.contains("\"cancelled\""), "{body}");
    let emitted = field_u64(&body, "emitted");
    assert!(emitted < 6, "deadline did not bite: {body}");
}

#[test]
fn bad_plans_and_unknown_routes_are_clean_errors() {
    let server = spawn_server();
    let addr = server.addr();
    let (status, body) = post(addr, "/plans", "algs=grid");
    assert!(status.contains("400"), "{status}");
    assert!(body.contains("scenarios"), "{body}");
    let (status, _) = post(addr, "/plans", "scenarios=disk&bogus=1");
    assert!(status.contains("400"), "{status}");
    let (status, _) = get(addr, "/plans/999");
    assert!(status.contains("404"), "{status}");
    let (status, _) = get(addr, "/nope");
    assert!(status.contains("404"), "{status}");
    let (status, _, body) = http(addr, "BROKEN\r\n\r\n");
    assert!(status.contains("400"), "{status}");
    assert!(!body.is_empty());
}

#[test]
fn query_string_submission_works_like_a_body() {
    let server = spawn_server();
    let addr = server.addr();
    let (status, body) = post(
        addr,
        "/plans?scenarios=disk%3An%3D10%3Aradius%3D4&algs=grid&seeds=1",
        "",
    );
    assert!(status.contains("202"), "{status}: {body}");
    assert!(body.contains("\"total\":1"), "{body}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The head parser must never panic, whatever bytes arrive on the
    /// socket — every malformed input is a clean `Err`.
    #[test]
    fn request_head_parser_never_panics(
        // The vendored proptest stand-in has no u8 range strategy; draw
        // u32 and narrow.
        codes in prop::collection::vec(0u32..256, 0..200),
    ) {
        let bytes: Vec<u8> = codes.iter().map(|&c| c as u8).collect();
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse_request_head(&text);
    }

    /// Well-formed heads round-trip: method, path, query and
    /// Content-Length all survive parsing, under either line-ending
    /// convention and any header-name case.
    #[test]
    fn request_head_parser_round_trips_valid_requests(
        method_idx in 0usize..3,
        path_codes in prop::collection::vec(97u32..123, 1..12),
        query_codes in prop::collection::vec(97u32..123, 0..8),
        content_length in 0usize..4096,
        crlf in 0usize..2,
        upper in 0usize..2,
    ) {
        let method = ["GET", "POST", "DELETE"][method_idx];
        let to_ascii = |codes: &[u32]| -> String {
            codes.iter().map(|&c| c as u8 as char).collect()
        };
        let path = format!("/{}", to_ascii(&path_codes));
        let query = to_ascii(&query_codes);
        let target = if query.is_empty() {
            path.clone()
        } else {
            format!("{path}?{query}")
        };
        let eol = if crlf == 1 { "\r\n" } else { "\n" };
        let header_name = if upper == 1 { "CONTENT-LENGTH" } else { "content-length" };
        let head = format!(
            "{method} {target} HTTP/1.1{eol}Host: t{eol}{header_name}: {content_length}{eol}"
        );
        let parsed = parse_request_head(&head).expect("valid head parses");
        prop_assert_eq!(parsed.method, method);
        prop_assert_eq!(parsed.path, path);
        prop_assert_eq!(parsed.query, query);
        prop_assert_eq!(parsed.content_length, content_length);
    }
}
