//! Systematic corruption matrix for the schedule validator: every class of
//! model violation must be caught. The validator is the trust anchor of
//! the whole reproduction (DESIGN.md §3), so it gets its own suite.

use freezetag::geometry::Point;
use freezetag::instances::Instance;
use freezetag::sim::{
    validate, ConcreteWorld, RobotId, Schedule, Sim, SimError, ValidationOptions, WakeEvent,
};

/// A legal two-wake run used as the base for corruption.
fn base_run() -> (Schedule, Instance) {
    let inst = Instance::new(vec![Point::new(1.0, 0.0), Point::new(1.0, 2.0)]);
    let mut sim = Sim::new(ConcreteWorld::new(&inst));
    sim.move_to(RobotId::SOURCE, Point::new(1.0, 0.0));
    let r0 = sim.wake(RobotId::SOURCE, RobotId::sleeper(0));
    sim.move_to(r0, Point::new(1.0, 2.0));
    sim.wake(r0, RobotId::sleeper(1));
    let (_, schedule, _) = sim.into_parts();
    (schedule, inst)
}

fn check(schedule: &Schedule, inst: &Instance) -> Result<(), SimError> {
    validate(
        schedule,
        inst.source(),
        inst.positions(),
        &ValidationOptions::default(),
    )
    .map(|_| ())
}

#[test]
fn base_run_is_valid() {
    let (schedule, inst) = base_run();
    check(&schedule, &inst).expect("base run must validate");
}

#[test]
fn missing_wake_event_is_caught() {
    // Build a schedule where a robot has a timeline but no wake event.
    let inst = Instance::new(vec![Point::new(1.0, 0.0)]);
    let mut schedule = Schedule::new(1);
    schedule.activate(RobotId::SOURCE, 0.0, Point::ORIGIN);
    schedule.activate(RobotId::sleeper(0), 1.0, Point::new(1.0, 0.0));
    let err = check(&schedule, &inst).unwrap_err();
    assert!(matches!(err, SimError::InvalidTimeline(_)), "{err}");
}

#[test]
fn wake_from_a_distance_is_caught() {
    let inst = Instance::new(vec![Point::new(5.0, 0.0)]);
    let mut schedule = Schedule::new(1);
    schedule.activate(RobotId::SOURCE, 0.0, Point::ORIGIN);
    // The source never moves, yet claims to wake a robot 5 away.
    schedule.record_wake(WakeEvent {
        waker: RobotId::SOURCE,
        target: RobotId::sleeper(0),
        time: 1.0,
        pos: Point::new(5.0, 0.0),
    });
    schedule.activate(RobotId::sleeper(0), 1.0, Point::new(5.0, 0.0));
    let err = check(&schedule, &inst).unwrap_err();
    assert!(matches!(err, SimError::NotColocated { .. }), "{err}");
}

#[test]
fn wake_before_waker_is_awake_is_caught() {
    let inst = Instance::new(vec![Point::new(1.0, 0.0), Point::new(1.0, 0.5)]);
    let mut schedule = Schedule::new(2);
    schedule.activate(RobotId::SOURCE, 0.0, Point::ORIGIN);
    schedule
        .timeline_mut(RobotId::SOURCE)
        .move_to(Point::new(1.0, 0.0));
    schedule.record_wake(WakeEvent {
        waker: RobotId::SOURCE,
        target: RobotId::sleeper(0),
        time: 1.0,
        pos: Point::new(1.0, 0.0),
    });
    schedule.activate(RobotId::sleeper(0), 1.0, Point::new(1.0, 0.0));
    // Robot 0 "wakes" robot 1 half a unit away at a time *before* robot 0
    // itself was awake.
    schedule.record_wake(WakeEvent {
        waker: RobotId::sleeper(0),
        target: RobotId::sleeper(1),
        time: 0.5,
        pos: Point::new(1.0, 0.5),
    });
    schedule.activate(RobotId::sleeper(1), 0.5, Point::new(1.0, 0.5));
    let err = check(&schedule, &inst).unwrap_err();
    assert!(matches!(err, SimError::Asleep(_)), "{err}");
}

#[test]
fn double_wake_is_caught() {
    let (mut schedule, inst) = base_run();
    let first = schedule.wakes()[0];
    schedule.record_wake(first);
    let err = check(&schedule, &inst).unwrap_err();
    assert!(matches!(err, SimError::AlreadyAwake(_)), "{err}");
}

#[test]
fn wrong_initial_position_is_caught() {
    let (schedule, _) = base_run();
    // Validate against *shifted* ground-truth positions.
    let wrong = Instance::new(vec![Point::new(1.5, 0.0), Point::new(1.0, 2.0)]);
    let err = check(&schedule, &wrong).unwrap_err();
    assert!(matches!(err, SimError::InvalidTimeline(_)), "{err}");
}

#[test]
fn superluminal_motion_is_caught() {
    let inst = Instance::new(vec![Point::new(100.0, 0.0)]);
    let mut schedule = Schedule::new(1);
    schedule.activate(RobotId::SOURCE, 0.0, Point::ORIGIN);
    // A timeline that covers 100 units in ~0 time would be needed; the
    // Timeline API cannot even express it, so we check the validator's
    // speed test through the test-only tamper hook exercised in the sim
    // crate. Here: a *teleporting* wake position (event at the robot's
    // position while the waker path ends elsewhere).
    schedule
        .timeline_mut(RobotId::SOURCE)
        .move_to(Point::new(1.0, 0.0));
    schedule.record_wake(WakeEvent {
        waker: RobotId::SOURCE,
        target: RobotId::sleeper(0),
        time: 1.0,
        pos: Point::new(100.0, 0.0),
    });
    schedule.activate(RobotId::sleeper(0), 1.0, Point::new(100.0, 0.0));
    let err = check(&schedule, &inst).unwrap_err();
    assert!(matches!(err, SimError::NotColocated { .. }), "{err}");
}

#[test]
fn incomplete_coverage_is_caught_and_waivable() {
    let inst = Instance::new(vec![Point::new(1.0, 0.0), Point::new(50.0, 0.0)]);
    let mut sim = Sim::new(ConcreteWorld::new(&inst));
    sim.move_to(RobotId::SOURCE, Point::new(1.0, 0.0));
    sim.wake(RobotId::SOURCE, RobotId::sleeper(0));
    let (_, schedule, _) = sim.into_parts();
    let err = check(&schedule, &inst).unwrap_err();
    assert_eq!(err, SimError::NotAllAwake { asleep: 1 });
    let lax = ValidationOptions {
        require_all_awake: false,
        ..Default::default()
    };
    validate(&schedule, inst.source(), inst.positions(), &lax).expect("waived");
}

#[test]
fn energy_budgets_are_binding_edges() {
    let (schedule, inst) = base_run();
    // Worst robot travels exactly 2 (source: 1, r0: 2).
    let exact = ValidationOptions {
        energy_budget: Some(2.0),
        ..Default::default()
    };
    validate(&schedule, inst.source(), inst.positions(), &exact).expect("budget met exactly");
    let tight = ValidationOptions {
        energy_budget: Some(1.99),
        ..Default::default()
    };
    let err = validate(&schedule, inst.source(), inst.positions(), &tight).unwrap_err();
    assert!(matches!(err, SimError::EnergyExceeded { .. }), "{err}");
}

#[test]
fn source_waking_itself_is_caught() {
    let (mut schedule, inst) = base_run();
    schedule.record_wake(WakeEvent {
        waker: RobotId::sleeper(0),
        target: RobotId::SOURCE,
        time: 2.0,
        pos: Point::ORIGIN,
    });
    let err = check(&schedule, &inst).unwrap_err();
    assert!(matches!(err, SimError::InvalidTimeline(_)), "{err}");
}
