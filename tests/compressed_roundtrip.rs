//! Property tests pinning the compressed codec itself: decoding a
//! `CompressedRecorder` run reproduces the `FullRecorder` timelines
//! segment for segment, bit for bit — start/end times, endpoints, wait
//! flags — for all three distributed algorithms on random registry
//! instances, and the block-seeking accessors (`position_at`,
//! `wake_events_from`) agree with their flat counterparts at arbitrary
//! query points.
//!
//! `recorder_parity.rs` checks the *aggregates*; this suite checks the
//! *reconstruction*, which is what the streaming validator and the replay
//! queries stand on.

use freezetag::core::{run_algorithm, Algorithm};
use freezetag::instances::registry;
use freezetag::sim::{
    CompressedRecorder, ConcreteWorld, FullRecorder, Recorder, RobotId, Schedule, Sim, WorldView,
};
use proptest::prelude::*;

/// A random registry scenario: generator, parameters, seed.
fn arb_scenario() -> impl Strategy<Value = (&'static str, Vec<(&'static str, f64)>, u64)> {
    let disk = (6usize..28, 3.0f64..9.0, 0u64..1_000_000_000)
        .prop_map(|(n, radius, seed)| ("disk", vec![("n", n as f64), ("radius", radius)], seed));
    let lattice = (2usize..6, 1.0f64..2.0).prop_map(|(side, spacing)| {
        (
            "lattice",
            vec![("side", side as f64), ("spacing", spacing)],
            0u64,
        )
    });
    let clusters = (2usize..4, 4usize..9, 0u64..1_000_000_000).prop_map(|(clusters, per, seed)| {
        (
            "clusters",
            vec![("clusters", clusters as f64), ("per", per as f64)],
            seed,
        )
    });
    prop_oneof![disk, lattice, clusters]
}

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    (0usize..3).prop_map(|i| [Algorithm::Separator, Algorithm::Grid, Algorithm::Wave][i])
}

/// Runs the same algorithm on the same instance under both recorders.
fn paired_run(
    generator: &str,
    params: Vec<(&str, f64)>,
    seed: u64,
    alg: Algorithm,
) -> (Schedule, CompressedRecorder, usize) {
    let params: registry::ParamMap = params
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    let inst = registry::build_instance(generator, &params, seed).expect("builds");
    let tuple = inst.admissible_tuple();
    let mut full: Sim<ConcreteWorld, FullRecorder> = Sim::new(ConcreteWorld::new(&inst));
    run_algorithm(&mut full, &tuple, alg);
    let (_, schedule, _) = full.into_parts();
    let mut comp: Sim<ConcreteWorld, CompressedRecorder> =
        Sim::with_compressed(ConcreteWorld::new(&inst));
    run_algorithm(&mut comp, &tuple, alg);
    assert!(comp.world().all_awake(), "paired run left robots asleep");
    let (_, rec, _) = comp.into_recorder_parts();
    (schedule, rec, inst.n())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn decoded_segments_match_the_flat_timelines_bitwise(
        (generator, params, seed) in arb_scenario(),
        alg in arb_algorithm(),
    ) {
        let (schedule, rec, n) = paired_run(generator, params, seed, alg);
        for i in 0..=n {
            let r = RobotId::from_index(i);
            let tl = schedule.timeline(r).expect("all robots woke");
            prop_assert_eq!(
                rec.start_pos(r).map(|p| (p.x.to_bits(), p.y.to_bits())),
                Some((tl.start_pos().x.to_bits(), tl.start_pos().y.to_bits()))
            );
            prop_assert_eq!(rec.segment_count(r), tl.segments().len());
            for (k, (dec, flat)) in rec.segments(r).zip(tl.segments()).enumerate() {
                prop_assert!(
                    dec.start_time.to_bits() == flat.start_time.to_bits(),
                    "robot {} segment {} start time", i, k
                );
                prop_assert!(
                    dec.end_time.to_bits() == flat.end_time.to_bits(),
                    "robot {} segment {} end time", i, k
                );
                prop_assert_eq!(dec.from.x.to_bits(), flat.from.x.to_bits());
                prop_assert_eq!(dec.from.y.to_bits(), flat.from.y.to_bits());
                prop_assert_eq!(dec.to.x.to_bits(), flat.to.x.to_bits());
                prop_assert_eq!(dec.to.y.to_bits(), flat.to.y.to_bits());
                prop_assert_eq!(dec.is_wait(), flat.is_wait());
            }
        }
        prop_assert_eq!(
            rec.total_segments(),
            (0..=n).map(|i| schedule
                .timeline(RobotId::from_index(i))
                .expect("awake")
                .segments()
                .len())
                .sum::<usize>()
        );
    }

    #[test]
    fn replay_position_queries_match_the_timelines(
        (generator, params, seed) in arb_scenario(),
        alg in arb_algorithm(),
        fractions in proptest::collection::vec(0.0f64..1.2, 1..12),
    ) {
        use freezetag::sim::ReplayRecorder;
        let (schedule, rec, n) = paired_run(generator, params, seed, alg);
        let horizon = schedule.completion_time();
        for i in 0..=n {
            let r = RobotId::from_index(i);
            let tl = schedule.timeline(r).expect("all robots woke");
            // Random interior/after-horizon times plus the exact segment
            // boundaries, where ties are where binary searches go wrong.
            let mut queries: Vec<f64> = fractions.iter().map(|f| f * horizon).collect();
            queries.push(tl.start_time());
            queries.push(tl.current_time());
            for s in tl.segments().iter().take(3) {
                queries.push(s.end_time);
            }
            for t in queries {
                let flat = tl.position_at(t);
                let dec = rec.position_at(r, t).expect("active robot");
                prop_assert!(
                    (flat.x.to_bits(), flat.y.to_bits()) == (dec.x.to_bits(), dec.y.to_bits()),
                    "robot {} at t={}", i, t
                );
            }
        }
    }

    #[test]
    fn wake_iterator_seeks_match_the_flat_log(
        (generator, params, seed) in arb_scenario(),
        alg in arb_algorithm(),
        cut in 0.0f64..1.0,
    ) {
        let (schedule, rec, _) = paired_run(generator, params, seed, alg);
        let wakes = schedule.wakes();
        prop_assert_eq!(rec.wake_count(), wakes.len());
        // A seek from an arbitrary interior index (snapshot blocks are
        // 256 events wide, so small runs exercise the in-block replay
        // path) and from both ends.
        let start = (cut * wakes.len() as f64) as usize;
        for from in [0, start, wakes.len()] {
            let seeked: Vec<_> = rec.wake_events_from(from).collect();
            prop_assert!(seeked.as_slice() == &wakes[from..], "seek from {}", from);
        }
    }
}

/// A deterministic footprint pin on a real algorithm run through the
/// engine's own execution paths (the synthetic ≤ 12 bytes/move pin on
/// axis-aligned sweeps lives with the codec's unit tests; the Criterion
/// harness measures the 10⁵ case).
#[test]
fn real_wave_run_compresses_well_below_the_flat_store() {
    use freezetag::exp::{AlgSpec, Engine, ScenarioSpec};
    let spec = ScenarioSpec::new("wave_100k")
        .with("n", 2000.0)
        .with("radius", 20.0);
    let alg = AlgSpec::from(Algorithm::Wave);
    let engine = Engine::default();
    let full = engine.single(&spec, alg, 7).expect("full run");
    let comp = engine
        .single_compressed(&spec, alg, 7)
        .expect("compressed run");
    assert!(comp.all_awake);
    assert_eq!(
        full.report.makespan.to_bits(),
        comp.makespan.to_bits(),
        "engine paths must agree bitwise"
    );
    assert!(
        comp.bytes_per_move <= 12.0,
        "AWave encodes mostly axis-aligned sweeps; got {:.2} B/move",
        comp.bytes_per_move
    );
    assert!(
        comp.peak_mem_bytes * 3 <= full.schedule.memory_bytes(),
        "compressed {} vs flat {} bytes",
        comp.peak_mem_bytes,
        full.schedule.memory_bytes()
    );
}
