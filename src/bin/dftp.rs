//! `dftp` — command-line driver for the freezetag workspace.
//!
//! ```console
//! $ dftp solve --alg separator --gen disk --n 100 --radius 20 --seed 1
//! $ dftp solve --alg wave --gen snake --legs 5 --leg 40 --spacing 1
//! $ dftp params --gen disk --n 200 --radius 30 --seed 7
//! $ dftp svg --alg separator --gen lattice --side 12 --spacing 2 --out run.svg
//! $ dftp compare --gen snake --legs 4 --leg 60 --spacing 2
//! ```
//!
//! Everything is deterministic given `--seed`.

use freezetag::core::{bounds, run_algorithm, solve, Algorithm};
use freezetag::instances::generators::{clustered, grid_lattice, ring, snake, uniform_disk};
use freezetag::instances::Instance;
use freezetag::sim::svg::{render_run, SvgOptions};
use freezetag::sim::{ConcreteWorld, Sim};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, opts)) = parse(&args) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match run(&cmd, &opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  dftp solve   --alg <separator|grid|wave> --gen <GEN> [GEN OPTIONS]
               [--strategy <quadtree|greedy|median|chain>]  (separator only)
  dftp compare --gen <GEN> [GEN OPTIONS]
  dftp params  --gen <GEN> [GEN OPTIONS]
  dftp svg     --alg <ALG> --gen <GEN> [GEN OPTIONS] --out <FILE>

generators (defaults in parentheses):
  disk     --n (60) --radius (12) --seed (1)
  lattice  --side (8) --spacing (1.5)
  snake    --legs (4) --leg (30) --riser (2) --spacing (1)
  ring     --n (36) --radius (10) --spacing (1) --seed (1)
  clusters --clusters (4) --per (15) --cradius (1.5) --spread (18) --seed (1)";

fn parse(args: &[String]) -> Option<(String, HashMap<String, String>)> {
    let cmd = args.first()?.clone();
    let mut opts = HashMap::new();
    let mut i = 1;
    while i < args.len() {
        let key = args[i].strip_prefix("--")?.to_string();
        let val = args.get(i + 1)?.clone();
        opts.insert(key, val);
        i += 2;
    }
    Some((cmd, opts))
}

fn get_f(opts: &HashMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key} expects a number")),
    }
}

fn get_u(opts: &HashMap<String, String>, key: &str, default: usize) -> Result<usize, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key} expects an integer")),
    }
}

fn build_instance(opts: &HashMap<String, String>) -> Result<Instance, String> {
    let gen = opts.get("gen").map(String::as_str).unwrap_or("disk");
    let seed = get_u(opts, "seed", 1)? as u64;
    Ok(match gen {
        "disk" => uniform_disk(get_u(opts, "n", 60)?, get_f(opts, "radius", 12.0)?, seed),
        "lattice" => {
            let side = get_u(opts, "side", 8)?;
            grid_lattice(side, side, get_f(opts, "spacing", 1.5)?)
        }
        "snake" => snake(
            get_u(opts, "legs", 4)?,
            get_f(opts, "leg", 30.0)?,
            get_f(opts, "riser", 2.0)?,
            get_f(opts, "spacing", 1.0)?,
        ),
        "ring" => ring(
            get_u(opts, "n", 36)?,
            get_f(opts, "radius", 10.0)?,
            get_f(opts, "spacing", 1.0)?,
            seed,
        ),
        "clusters" => clustered(
            get_u(opts, "clusters", 4)?,
            get_u(opts, "per", 15)?,
            get_f(opts, "cradius", 1.5)?,
            get_f(opts, "spread", 18.0)?,
            seed,
        ),
        other => return Err(format!("unknown generator '{other}'")),
    })
}

fn parse_alg(opts: &HashMap<String, String>) -> Result<Algorithm, String> {
    match opts.get("alg").map(String::as_str) {
        Some("separator") | None => Ok(Algorithm::Separator),
        Some("grid") => Ok(Algorithm::Grid),
        Some("wave") => Ok(Algorithm::Wave),
        Some(other) => Err(format!("unknown algorithm '{other}'")),
    }
}

fn parse_strategy(
    opts: &HashMap<String, String>,
) -> Result<freezetag::central::WakeStrategy, String> {
    use freezetag::central::WakeStrategy;
    match opts.get("strategy").map(String::as_str) {
        None | Some("quadtree") => Ok(WakeStrategy::Quadtree),
        Some("greedy") => Ok(WakeStrategy::Greedy),
        Some("median") => Ok(WakeStrategy::MedianSplit),
        Some("chain") => Ok(WakeStrategy::Chain),
        Some(other) => Err(format!("unknown strategy '{other}'")),
    }
}

fn print_report(inst: &Instance, alg: Algorithm) -> Result<(), String> {
    let tuple = inst.admissible_tuple();
    let rep = solve(inst, &tuple, alg).map_err(|e| e.to_string())?;
    let params = inst.params(Some(tuple.ell));
    let xi = params.xi_ell.unwrap_or(f64::NAN);
    let bound = match alg {
        Algorithm::Separator => bounds::separator_makespan_bound(tuple.rho, tuple.ell),
        Algorithm::Grid => bounds::grid_makespan_bound(xi, tuple.ell),
        Algorithm::Wave => bounds::wave_makespan_bound(xi, tuple.ell),
    };
    println!("{alg} on n={} (tuple {tuple}):", inst.n());
    println!(
        "  makespan    {:>12.2}  (bound {:.1}, ratio {:.2})",
        rep.makespan,
        bound,
        rep.makespan / bound
    );
    println!("  completion  {:>12.2}", rep.completion_time);
    println!("  max energy  {:>12.2}", rep.max_energy);
    println!("  total energy{:>12.2}", rep.total_energy);
    println!("  looks       {:>12}", rep.looks);
    println!("  all awake   {:>12}", rep.all_awake);
    Ok(())
}

fn run(cmd: &str, opts: &HashMap<String, String>) -> Result<(), String> {
    let inst = build_instance(opts)?;
    match cmd {
        "solve" => {
            let alg = parse_alg(opts)?;
            let strategy = parse_strategy(opts)?;
            if alg == Algorithm::Separator && strategy != freezetag::central::WakeStrategy::Quadtree
            {
                // Ablation path: run ASeparator with the chosen Lemma 2
                // substitute (only the unconstrained algorithm may deviate
                // from the O(R) quadtree; see core::separator docs).
                let tuple = inst.admissible_tuple();
                let mut sim = Sim::new(ConcreteWorld::new(&inst));
                freezetag::core::a_separator(
                    &mut sim,
                    &freezetag::core::ASeparatorConfig { tuple, strategy },
                );
                use freezetag::sim::WorldView;
                println!(
                    "ASeparator[{strategy}] on n={}: makespan {:.2}, all awake: {}",
                    inst.n(),
                    sim.schedule().makespan(),
                    sim.world().all_awake()
                );
                return Ok(());
            }
            print_report(&inst, alg)
        }
        "compare" => {
            for alg in [Algorithm::Separator, Algorithm::Grid, Algorithm::Wave] {
                print_report(&inst, alg)?;
            }
            Ok(())
        }
        "params" => {
            let p = inst.params(None);
            let tuple = inst.admissible_tuple();
            println!("n     = {}", inst.n());
            println!("ρ*    = {:.4}", p.rho_star);
            println!("ℓ*    = {:.4}", p.ell_star);
            println!("ξ_ℓ*  = {:?}", p.xi_ell);
            println!("tuple = {tuple}");
            Ok(())
        }
        "svg" => {
            let alg = parse_alg(opts)?;
            let out = opts
                .get("out")
                .cloned()
                .unwrap_or_else(|| "dftp_run.svg".to_string());
            let tuple = inst.admissible_tuple();
            let mut sim = Sim::new(ConcreteWorld::new(&inst));
            run_algorithm(&mut sim, &tuple, alg);
            let (_, schedule, _) = sim.into_parts();
            let svg = render_run(
                inst.source(),
                inst.positions(),
                Some(&schedule),
                &[],
                &SvgOptions::default(),
            );
            std::fs::write(&out, svg).map_err(|e| e.to_string())?;
            println!("wrote {out}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}
