//! `dftp` — command-line driver for the freezetag workspace.
//!
//! ```console
//! $ dftp solve --alg separator --gen disk --n 100 --radius 20 --seed 1
//! $ dftp params --gen disk --n 200 --radius 30 --seed 7
//! $ dftp svg --alg separator --gen lattice --side 12 --spacing 2 --out run.svg
//! $ dftp compare --gen snake --legs 4 --leg 60 --spacing 2
//! $ dftp generate --gen clusters --per 25 --seed 3 --out swarm.csv
//! $ dftp sweep --scenarios disk:n=80:radius=15,snake:legs=6 \
//!       --algs separator,grid,wave --seeds 5 --threads 4 --out results.json
//! ```
//!
//! Generators are resolved through the scenario registry
//! (`freezetag::instances::registry`); unknown `--options` are usage
//! errors, not silently ignored. Everything is deterministic given
//! `--seed` (or, for sweeps, `--plan-seed` — byte-identical output for
//! any `--threads` *and* any `--sim-threads`).

use freezetag::core::{bounds, run_algorithm, solve, Algorithm};
use freezetag::exp::{
    agg, emit, journal, serve, AlgSpec, Engine, EngineConfig, ExperimentPlan, Profile,
    ScenarioSpec, SubmitOptions,
};
use freezetag::instances::registry::{self, GeneratorInfo, ParamMap};
use freezetag::instances::Instance;
use freezetag::sim::svg::{render_run, SvgOptions};
use freezetag::sim::{ConcreteWorld, Sim};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, opts)) = parse(&args) else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    match run(&cmd, &opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    let mut out = String::from(
        "usage:
  dftp solve    --alg <separator|grid|wave> --gen <GEN> [GEN OPTIONS]
                [--strategy <quadtree|greedy|median|chain>]  (separator only)
                [--algorithm <central:STRATEGY|central-anytime|optimal>]
                [--time-budget <SECS>] [--workers <N>]  (central-anytime only)
  dftp compare  --gen <GEN> [GEN OPTIONS]
  dftp params   --gen <GEN> [GEN OPTIONS]
  dftp svg      --alg <ALG> --gen <GEN> [GEN OPTIONS] --out <FILE>
  dftp generate --gen <GEN> [GEN OPTIONS] [--out <FILE>]
  dftp sweep    --scenarios <SPEC[,SPEC...]> [--algs <A[,A...]>]
                [--algorithms <A[,A...]>] [--seeds <K>] [--plan-seed <S>]
                [--threads <N>] [--sim-threads <N>]
                [--profile <full|stats|compressed>]
                [--format <json|jsonl|csv>] [--flush-every <K>]
                [--out <FILE>] [--resume] [--bench-json <FILE>] [--name <NAME>]
  dftp serve    [--port <P>] [--threads <N>] [--cache-capacity <K>]
                [--queue-depth <D>]

sweep scenario spec:  GEN[:key=value...]          e.g. disk:n=40:radius=8
sweep algorithms:     separator[:STRATEGY] | grid | wave |
                      central:STRATEGY | central-anytime | optimal
                      (default: separator,grid,wave)
solve --algorithm:    run a centralized baseline on the generated instance;
                      central-anytime is the parallel anytime optimizer —
                      --workers sets execution threads only (output is
                      byte-identical for any count) and --time-budget caps
                      wall clock, returning the best tree found so far
sweep --algorithms:   keep only the named algorithms of the plan's axis —
                      re-run one algorithm's cells without editing the plan
                      (names are validated; an empty intersection errors)
sweep profiles:       full       = complete schedules + validation (default)
                      stats      = constant memory per robot, no validation —
                                   tractable for the large-n scenario families
                                   (uniform_1m, grid_1m, skewed_500k)
                      compressed = delta-encoded schedules + streaming
                                   validation: full-fidelity checking at
                                   stats-profile scale
sweep parallelism:    --threads     = total core budget (inter-job workers)
                      --sim-threads = deterministic cores *within* each job;
                              output is byte-identical for any combination
sweep streaming:      with --out, records stream to the file as jobs finish
                      (bounded memory); --flush-every <K> flushes the file
                      every K records (default 64)
sweep resume:         --out FILE keeps a FILE.journal sidecar while a
                      jsonl/csv sweep runs; after an interruption,
                      re-running with --resume verifies the plan matches,
                      drops any partial trailing record, and restarts at
                      the first missing job (same bytes as an unbroken run)
serve:                long-lived sweep service on 127.0.0.1 (HTTP/1.1):
                      POST /plans submits a sweep-grammar plan
                      (scenarios=...&algs=...&seeds=...&deadline-s=...),
                      GET /plans/<id>/stream streams JSONL results,
                      GET /plans/<id> and /health report status,
                      POST /plans/<id>/cancel stops a plan; repeated
                      submissions are served from a deterministic cache

generators (defaults in parentheses; unseeded generators ignore --seed):
",
    );
    for g in registry::GENERATORS {
        let mut name = g.name.to_string();
        for a in g.aliases {
            let _ = write!(name, " | {a}");
        }
        let params: Vec<String> = g
            .params
            .iter()
            .map(|p| format!("--{} ({})", p.key, p.default))
            .collect();
        let _ = writeln!(out, "  {name:<34} {}", params.join(" "));
    }
    out.push_str(
        "\nthe adversarial layouts (theorem2, theorem3) run via solve and sweep;\n\
         compare/params/svg/generate need a concrete instance and reject them.",
    );
    out
}

fn parse(args: &[String]) -> Option<(String, HashMap<String, String>)> {
    let cmd = args.first()?.clone();
    let mut opts = HashMap::new();
    let mut i = 1;
    while i < args.len() {
        let key = args[i].strip_prefix("--")?.to_string();
        // A flag followed by another flag (or nothing) is boolean-style:
        // `--resume` stores an empty value its command tests by presence.
        match args.get(i + 1) {
            Some(val) if !val.starts_with("--") => {
                opts.insert(key, val.clone());
                i += 2;
            }
            _ => {
                opts.insert(key, String::new());
                i += 1;
            }
        }
    }
    Some((cmd, opts))
}

/// Rejects any `--key` the command does not understand. `allowed` holds
/// the command's own keys; generator parameters are appended by the
/// caller, so `dftp solve --gen lattice --radius 5` is an error too.
fn check_keys(cmd: &str, opts: &HashMap<String, String>, allowed: &[&str]) -> Result<(), String> {
    for key in opts.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!(
                "unknown option '--{key}' for '{cmd}' (accepted: {})",
                allowed
                    .iter()
                    .map(|k| format!("--{k}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
        }
    }
    Ok(())
}

fn get_u(opts: &HashMap<String, String>, key: &str, default: usize) -> Result<usize, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key} expects an integer")),
    }
}

/// Resolves `--gen` against the registry and checks all provided keys
/// against `base` (command keys) plus the generator's own parameters.
fn resolve_generator(
    cmd: &str,
    opts: &HashMap<String, String>,
    base: &[&str],
) -> Result<(&'static GeneratorInfo, ParamMap), String> {
    let gen = opts.get("gen").map(String::as_str).unwrap_or("disk");
    let info = registry::lookup(gen).ok_or_else(|| {
        format!(
            "unknown generator '{gen}' (known: {})",
            registry::GENERATORS
                .iter()
                .map(|g| g.name)
                .collect::<Vec<_>>()
                .join(", ")
        )
    })?;
    let mut allowed: Vec<&str> = base.to_vec();
    allowed.extend(["gen", "seed"]);
    allowed.extend(info.params.iter().map(|p| p.key));
    check_keys(cmd, opts, &allowed)?;
    let mut params = ParamMap::new();
    for spec in info.params {
        if let Some(raw) = opts.get(spec.key) {
            let value: f64 = raw
                .parse()
                .map_err(|_| format!("--{} expects a number", spec.key))?;
            params.insert(spec.key.to_string(), value);
        }
    }
    Ok((info, params))
}

fn build_instance(
    cmd: &str,
    opts: &HashMap<String, String>,
    base: &[&str],
) -> Result<Instance, String> {
    let (info, params) = resolve_generator(cmd, opts, base)?;
    let seed = get_u(opts, "seed", 1)? as u64;
    registry::build_instance(info.name, &params, seed).map_err(|e| e.to_string())
}

fn parse_alg(opts: &HashMap<String, String>) -> Result<Algorithm, String> {
    match opts.get("alg").map(String::as_str) {
        Some("separator") | None => Ok(Algorithm::Separator),
        Some("grid") => Ok(Algorithm::Grid),
        Some("wave") => Ok(Algorithm::Wave),
        Some(other) => Err(format!("unknown algorithm '{other}'")),
    }
}

fn parse_strategy(
    opts: &HashMap<String, String>,
) -> Result<freezetag::central::WakeStrategy, String> {
    use freezetag::central::WakeStrategy;
    match opts.get("strategy").map(String::as_str) {
        None | Some("quadtree") => Ok(WakeStrategy::Quadtree),
        Some("greedy") => Ok(WakeStrategy::Greedy),
        Some("median") => Ok(WakeStrategy::MedianSplit),
        Some("chain") => Ok(WakeStrategy::Chain),
        Some(other) => Err(format!("unknown strategy '{other}'")),
    }
}

fn print_report(inst: &Instance, alg: Algorithm) -> Result<(), String> {
    let tuple = inst.admissible_tuple();
    let rep = solve(inst, &tuple, alg).map_err(|e| e.to_string())?;
    let params = inst.params(Some(tuple.ell));
    let xi = params.xi_ell.unwrap_or(f64::NAN);
    let bound = match alg {
        Algorithm::Separator => bounds::separator_makespan_bound(tuple.rho, tuple.ell),
        Algorithm::Grid => bounds::grid_makespan_bound(xi, tuple.ell),
        Algorithm::Wave => bounds::wave_makespan_bound(xi, tuple.ell),
    };
    println!("{alg} on n={} (tuple {tuple}):", inst.n());
    println!(
        "  makespan    {:>12.2}  (bound {:.1}, ratio {:.2})",
        rep.makespan,
        bound,
        rep.makespan / bound
    );
    println!("  completion  {:>12.2}", rep.completion_time);
    println!("  max energy  {:>12.2}", rep.max_energy);
    println!("  total energy{:>12.2}", rep.total_energy);
    println!("  looks       {:>12}", rep.looks);
    println!("  all awake   {:>12}", rep.all_awake);
    Ok(())
}

/// `dftp solve --algorithm ...`: the centralized baselines, which build a
/// wake tree directly on the generated instance instead of driving the
/// simulator. Prints the tree digest so runs are byte-comparable — the
/// CI determinism leg diffs this output across `--workers 1/2/4`.
fn cmd_solve_central(
    opts: &HashMap<String, String>,
    spec: AlgSpec,
    info: &'static GeneratorInfo,
    params: ParamMap,
    seed: u64,
) -> Result<(), String> {
    use freezetag::central::{anytime_wake_tree, optimal_makespan, AnytimeConfig};
    use freezetag::sim::{CancelToken, ParPool, RobotId};
    if info.adversarial {
        return Err(format!(
            "{} needs known positions; the adversarial generator '{}' has none",
            spec.label(),
            info.name
        ));
    }
    if spec != AlgSpec::CentralAnytime {
        for key in ["time-budget", "workers"] {
            if opts.contains_key(key) {
                return Err(format!(
                    "--{key} only applies to --algorithm central-anytime, not {}",
                    spec.label()
                ));
            }
        }
    }
    let inst = registry::build_instance(info.name, &params, seed).map_err(|e| e.to_string())?;
    let items: Vec<(RobotId, freezetag::geometry::Point)> = inst
        .positions()
        .iter()
        .enumerate()
        .map(|(i, &p)| (RobotId::sleeper(i), p))
        .collect();
    match spec {
        AlgSpec::Central(strategy) => {
            let tree = strategy.build(inst.source(), &items);
            println!(
                "{} on n={}: makespan {:.4}, total length {:.4}",
                spec.label(),
                inst.n(),
                tree.makespan(),
                tree.total_length()
            );
            println!("  tree digest {:#018x}", tree.digest());
        }
        AlgSpec::CentralAnytime => {
            let workers = get_u(opts, "workers", 1)?;
            if workers == 0 {
                return Err("--workers must be at least 1".to_string());
            }
            let time_budget = match opts.get("time-budget") {
                None => None,
                Some(raw) => {
                    let secs: f64 = raw
                        .parse()
                        .map_err(|_| "--time-budget expects seconds (a number)".to_string())?;
                    if secs <= 0.0 || !secs.is_finite() {
                        return Err(format!("--time-budget must be positive, got {raw}"));
                    }
                    Some(std::time::Duration::from_secs_f64(secs))
                }
            };
            let config = AnytimeConfig {
                time_budget,
                ..AnytimeConfig::default()
            };
            let report = anytime_wake_tree(
                inst.source(),
                &items,
                &config,
                seed,
                &ParPool::new(workers),
                &CancelToken::never(),
            );
            println!(
                "{} on n={}: makespan {:.4} (initial {:.4}), total length {:.4}",
                spec.label(),
                inst.n(),
                report.tree.makespan(),
                report.initial_makespan,
                report.tree.total_length()
            );
            // Time-budgeted runs stop at a wall-clock-dependent round, so
            // the counters below (and possibly the tree) are only
            // reproducible under the default fixed iteration budget.
            println!(
                "  rounds {}, moves {} tried / {} accepted",
                report.rounds_run, report.moves_tried, report.moves_accepted
            );
            println!("  tree digest {:#018x}", report.tree.digest());
        }
        AlgSpec::CentralOptimal => {
            if inst.n() > 10 {
                return Err(format!(
                    "--algorithm optimal is branch-and-bound; n={} > 10",
                    inst.n()
                ));
            }
            let m = optimal_makespan(inst.source(), inst.positions());
            println!("{} on n={}: makespan {:.4}", spec.label(), inst.n(), m);
        }
        AlgSpec::Distributed { .. } => unreachable!("routed through --alg"),
    }
    Ok(())
}

fn cmd_solve(opts: &HashMap<String, String>) -> Result<(), String> {
    let alg = parse_alg(opts)?;
    let strategy = parse_strategy(opts)?;
    if opts.contains_key("strategy") && alg != Algorithm::Separator {
        return Err(format!(
            "--strategy only applies to --alg separator, not {alg}"
        ));
    }
    let (info, params) = resolve_generator(
        "solve",
        opts,
        &["alg", "strategy", "algorithm", "time-budget", "workers"],
    )?;
    let seed = get_u(opts, "seed", 1)? as u64;
    // --algorithm takes the full sweep-grammar spec and routes the
    // centralized baselines (wake trees on known positions); the
    // simulator-driven distributed algorithms keep their --alg spelling.
    if let Some(text) = opts.get("algorithm") {
        if opts.contains_key("alg") || opts.contains_key("strategy") {
            return Err("--algorithm replaces --alg/--strategy; give only one".to_string());
        }
        let spec = AlgSpec::parse(text).map_err(|e| e.to_string())?;
        if let AlgSpec::Distributed { .. } = spec {
            return Err(format!(
                "'{text}' is a distributed algorithm — use --alg {text} (with --strategy \
                 for a separator override)"
            ));
        }
        return cmd_solve_central(opts, spec, info, params, seed);
    }
    for key in ["time-budget", "workers"] {
        if opts.contains_key(key) {
            return Err(format!(
                "--{key} only applies to --algorithm central-anytime"
            ));
        }
    }
    // Two cases route through Engine::single: a Lemma 2 strategy
    // override (only ASeparator may deviate from the O(R) quadtree; see
    // core::separator docs), and the adversarial layouts, which have no
    // concrete instance for print_report to analyse.
    if info.adversarial || strategy != freezetag::central::WakeStrategy::Quadtree {
        let spec = ScenarioSpec {
            name: info.name.to_string(),
            generator: info.name.to_string(),
            params,
        };
        let algspec = if strategy != freezetag::central::WakeStrategy::Quadtree {
            AlgSpec::separator_with(strategy)
        } else {
            AlgSpec::from(alg)
        };
        let run = Engine::default()
            .single(&spec, algspec, seed)
            .map_err(|e| e.to_string())?;
        println!(
            "{} on n={}: makespan {:.2}, all awake: {}",
            algspec.label(),
            run.n,
            run.report.makespan,
            run.report.all_awake
        );
        return Ok(());
    }
    let inst = registry::build_instance(info.name, &params, seed).map_err(|e| e.to_string())?;
    print_report(&inst, alg)
}

fn cmd_compare(opts: &HashMap<String, String>) -> Result<(), String> {
    let inst = build_instance("compare", opts, &[])?;
    for alg in [Algorithm::Separator, Algorithm::Grid, Algorithm::Wave] {
        print_report(&inst, alg)?;
    }
    Ok(())
}

fn cmd_params(opts: &HashMap<String, String>) -> Result<(), String> {
    let inst = build_instance("params", opts, &[])?;
    let p = inst.params(None);
    let tuple = inst.admissible_tuple();
    println!("n     = {}", inst.n());
    println!("ρ*    = {:.4}", p.rho_star);
    println!("ℓ*    = {:.4}", p.ell_star);
    println!("ξ_ℓ*  = {:?}", p.xi_ell);
    println!("tuple = {tuple}");
    Ok(())
}

fn cmd_svg(opts: &HashMap<String, String>) -> Result<(), String> {
    let inst = build_instance("svg", opts, &["alg", "out"])?;
    let alg = parse_alg(opts)?;
    let out = opts
        .get("out")
        .cloned()
        .unwrap_or_else(|| "dftp_run.svg".to_string());
    let tuple = inst.admissible_tuple();
    let mut sim = Sim::new(ConcreteWorld::new(&inst));
    run_algorithm(&mut sim, &tuple, alg);
    let (_, schedule, _) = sim.into_parts();
    let svg = render_run(
        inst.source(),
        inst.positions(),
        Some(&schedule),
        &[],
        &SvgOptions::default(),
    );
    std::fs::write(&out, svg).map_err(|e| e.to_string())?;
    println!("wrote {out}");
    Ok(())
}

fn cmd_generate(opts: &HashMap<String, String>) -> Result<(), String> {
    let inst = build_instance("generate", opts, &["out"])?;
    let csv = freezetag::instances::io::to_csv(&inst);
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, csv).map_err(|e| e.to_string())?;
            println!("wrote {path} ({} robots + source)", inst.n());
        }
        None => print!("{csv}"),
    }
    Ok(())
}

fn cmd_sweep(opts: &HashMap<String, String>) -> Result<(), String> {
    check_keys(
        "sweep",
        opts,
        &[
            "scenarios",
            "algs",
            "algorithms",
            "seeds",
            "plan-seed",
            "threads",
            "sim-threads",
            "profile",
            "format",
            "flush-every",
            "out",
            "bench-json",
            "name",
            "resume",
        ],
    )?;
    let scenarios_text = opts
        .get("scenarios")
        .ok_or("sweep requires --scenarios (e.g. --scenarios disk:n=40,ring)")?;
    let scenarios: Vec<ScenarioSpec> = scenarios_text
        .split(',')
        .map(ScenarioSpec::parse)
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let algs_text = opts
        .get("algs")
        .map(String::as_str)
        .unwrap_or("separator,grid,wave");
    let mut algorithms: Vec<AlgSpec> = algs_text
        .split(',')
        .map(AlgSpec::parse)
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    // --algorithms filters the plan's algorithm axis (perf work re-runs a
    // single algorithm's cells without editing the plan). Names are
    // validated through the same parser, so a typo fails loudly; a filter
    // that empties the axis is an error, not a silent no-op sweep.
    if let Some(filter_text) = opts.get("algorithms") {
        let keep: Vec<AlgSpec> = filter_text
            .split(',')
            .map(AlgSpec::parse)
            .collect::<Result<_, _>>()
            .map_err(|e| e.to_string())?;
        for k in &keep {
            if !algorithms.contains(k) {
                return Err(format!(
                    "--algorithms keeps '{}' but the plan's axis is [{}]",
                    k.label(),
                    algorithms
                        .iter()
                        .map(AlgSpec::label)
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        algorithms.retain(|a| keep.contains(a));
    }
    let profile = match opts.get("profile") {
        None => Profile::Full,
        Some(text) => Profile::parse(text).map_err(|e| e.to_string())?,
    };
    let sim_threads = get_u(opts, "sim-threads", 1)?;
    if sim_threads == 0 {
        return Err("--sim-threads must be at least 1 (use 1 for a sequential job)".to_string());
    }
    let mut plan = ExperimentPlan::new(opts.get("name").map(String::as_str).unwrap_or("sweep"))
        .seeds(get_u(opts, "seeds", 3)?)
        .plan_seed(get_u(opts, "plan-seed", 1)? as u64)
        .profile(profile)
        .sim_threads(sim_threads);
    plan.scenarios = scenarios;
    plan.algorithms = algorithms;
    let threads = get_u(opts, "threads", 1)?;
    // Reject a bad --format / --flush-every (and an invalid plan) before
    // the sweep runs — and before --out truncates an existing file — not
    // after hours of jobs whose output would then be discarded.
    let format = opts.get("format").map(String::as_str).unwrap_or("json");
    if !matches!(format, "json" | "jsonl" | "csv") {
        return Err(format!("unknown format '{format}' (json|jsonl|csv)"));
    }
    let flush_every = get_u(opts, "flush-every", 64)?;
    if flush_every == 0 {
        return Err("--flush-every must be at least 1".to_string());
    }
    let resume = opts.contains_key("resume");
    if resume && (opts.get("out").is_none() || !matches!(format, "jsonl" | "csv")) {
        return Err(
            "--resume needs --out with --format jsonl or csv (the record-per-line formats \
             whose completed prefix is resumable)"
                .to_string(),
        );
    }
    plan.validate().map_err(|e| e.to_string())?;
    let engine = Engine::with_threads(threads);

    let started = Instant::now();
    let aggregates = match opts.get("out") {
        // Streaming path: every record goes to the file the moment its
        // job (and every lower-indexed job) finishes, so a 10⁶-robot
        // sweep never holds more than a bounded window of results — and
        // a crash mid-sweep leaves all completed records on disk, with a
        // FILE.journal sidecar that lets --resume pick up where it
        // stopped. The bytes written are identical to the buffered
        // path's.
        Some(path) => {
            let out = std::path::Path::new(path);
            let fingerprint = journal::plan_fingerprint(&plan, format);
            let (file, first_job, header_present) = if resume {
                match journal::read_journal(out).map_err(|e| e.to_string())? {
                    None => {
                        return Err(format!(
                            "--resume found no journal at {path}.journal — either the sweep \
                             completed (nothing to resume) or it never started; rerun without \
                             --resume"
                        ))
                    }
                    Some(recorded) if recorded != fingerprint => {
                        return Err(format!(
                            "--resume plan mismatch: {path}.journal records a different \
                             plan/format than the one given — resuming would interleave \
                             records of two different sweeps"
                        ))
                    }
                    Some(_) => {}
                }
                let state = journal::resume_point(out, format == "csv")
                    .map_err(|e| format!("cannot prepare {path} for resume: {e}"))?;
                let file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(out)
                    .map(std::io::BufWriter::new)
                    .map_err(|e| format!("cannot open {path}: {e}"))?;
                eprintln!(
                    "resuming {path} at job {} of {}",
                    state.records,
                    plan.job_count()
                );
                (file, state.records, state.header_present)
            } else {
                if matches!(format, "jsonl" | "csv") {
                    journal::write_journal(out, &fingerprint)
                        .map_err(|e| format!("cannot write {path}.journal: {e}"))?;
                }
                let file = std::fs::File::create(path)
                    .map(std::io::BufWriter::new)
                    .map_err(|e| format!("cannot create {path}: {e}"))?;
                (file, 0, false)
            };
            let mut sink = match format {
                "jsonl" => Some(emit::JobStreamWriter::jsonl(file, flush_every)),
                "csv" if header_present => {
                    Some(emit::JobStreamWriter::csv_resumed(file, flush_every))
                }
                "csv" => Some(
                    emit::JobStreamWriter::csv(file, flush_every)
                        .map_err(|e| format!("cannot write {path}: {e}"))?,
                ),
                // The aggregate document is written once at the end; the
                // sweep still streams through the accumulator.
                _ => None,
            };
            let mut streaming_agg = agg::StreamingAgg::new();
            let stream = engine
                .submit_with(
                    &plan,
                    SubmitOptions {
                        deadline: None,
                        first_job,
                    },
                )
                .map_err(|e| e.to_string())?;
            for item in stream {
                let r = item.map_err(|e| e.to_string())?;
                streaming_agg.push(&r);
                if let Some(w) = sink.as_mut() {
                    w.write(&r)
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                }
            }
            let job_count = streaming_agg.job_count();
            let aggregates = streaming_agg.finish();
            match sink {
                Some(w) => {
                    w.finish()
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    // Every record landed: the journal's "incomplete
                    // prefix" claim no longer holds.
                    journal::clear_journal(out)
                        .map_err(|e| format!("cannot remove {path}.journal: {e}"))?;
                }
                None => {
                    let doc = emit::aggregates_to_json(&plan, &aggregates);
                    std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
                }
            }
            let total_wall = started.elapsed().as_secs_f64();
            print!("{}", emit::aggregates_to_markdown(&aggregates));
            let workers = freezetag::exp::inter_job_workers(threads, plan.sim_threads, job_count);
            println!(
                "\n{} jobs on {} worker(s) x {} sim thread(s) in {:.2}s — wrote {path}",
                job_count, workers, plan.sim_threads, total_wall
            );
            aggregates
        }
        None => {
            let results = engine.run(&plan).map_err(|e| e.to_string())?;
            let aggregates = agg::aggregate(&results);
            let payload = match format {
                "json" => emit::aggregates_to_json(&plan, &aggregates),
                "jsonl" => emit::jobs_to_jsonl(&results),
                "csv" => emit::jobs_to_csv(&results),
                other => unreachable!("format '{other}' validated above"),
            };
            print!("{payload}");
            aggregates
        }
    };
    if let Some(path) = opts.get("bench-json") {
        let total_wall = started.elapsed().as_secs_f64();
        let doc = emit::bench_results_json(&plan, &aggregates, threads, total_wall);
        std::fs::write(path, doc).map_err(|e| e.to_string())?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), String> {
    check_keys(
        "serve",
        opts,
        &["port", "threads", "cache-capacity", "queue-depth"],
    )?;
    let port = get_u(opts, "port", 7333)?;
    let port = u16::try_from(port).map_err(|_| format!("--port {port} out of range"))?;
    let threads = get_u(
        opts,
        "threads",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    )?;
    let cache_capacity = get_u(opts, "cache-capacity", 1024)?;
    let queue_depth = get_u(opts, "queue-depth", 16)?;
    if queue_depth == 0 {
        return Err("--queue-depth must be at least 1".to_string());
    }
    let config = serve::ServeConfig {
        addr: std::net::SocketAddr::from(([127, 0, 0, 1], port)),
        engine: EngineConfig {
            threads,
            cache_capacity,
            ..EngineConfig::default()
        },
        queue_depth,
    };
    let server = serve::Server::spawn(config).map_err(|e| format!("cannot bind: {e}"))?;
    println!("dftp serve listening on http://{}", server.addr());
    println!(
        "  {threads} worker thread(s), result cache {cache_capacity}, queue depth {queue_depth}"
    );
    // The accept and scheduler threads own all the work; this thread only
    // keeps the process (and the Server guard, whose Drop is the
    // shutdown path) alive.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn run(cmd: &str, opts: &HashMap<String, String>) -> Result<(), String> {
    match cmd {
        "solve" => cmd_solve(opts),
        "compare" => cmd_compare(opts),
        "params" => cmd_params(opts),
        "svg" => cmd_svg(opts),
        "generate" => cmd_generate(opts),
        "sweep" => cmd_sweep(opts),
        "serve" => cmd_serve(opts),
        other => Err(format!("unknown command '{other}'")),
    }
}
