//! # freezetag
//!
//! A faithful, laptop-scale reproduction of *Distributed Freeze Tag: a
//! Sustainable Solution to Discover and Wake-up a Robot Swarm* (Gavoille,
//! Hanusse, Le Bouder, Marcé — PODC 2025).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`geometry`] — planar primitives (points, squares, separators, sweeps);
//! * [`graph`] — δ-disk graphs and the instance parameters `ρ*`, `ℓ*`, `ξ_ℓ`;
//! * [`instances`] — generators and the paper's adversarial lower-bound
//!   constructions;
//! * [`sim`] — the continuous-time Look-Compute-Move simulation substrate;
//! * [`central`] — centralized Freeze Tag (wake-up trees on known positions);
//! * [`core`] — the distributed algorithms `ASeparator`, `AGrid`, `AWave`
//!   and their building blocks `Explore` and `DFSampling`;
//! * [`exp`] — the experiment engine: declarative scenario × algorithm ×
//!   seed plans, parallel execution, aggregation and machine-readable
//!   results.
//!
//! # Quickstart
//!
//! ```
//! use freezetag::prelude::*;
//!
//! // 60 sleeping robots uniform in a disk of radius 12 around the source.
//! let instance = uniform_disk(60, 12.0, 42);
//! let tuple = instance.admissible_tuple();
//! let report = solve(&instance, &tuple, Algorithm::Separator).unwrap();
//! assert!(report.all_awake);
//! assert!(report.makespan > 0.0);
//! ```

pub use freezetag_central as central;
pub use freezetag_core as core;
pub use freezetag_exp as exp;
pub use freezetag_geometry as geometry;
pub use freezetag_graph as graph;
pub use freezetag_instances as instances;
pub use freezetag_sim as sim;

/// Convenient glob-import surface for examples and downstream binaries.
pub mod prelude {
    pub use freezetag_central::{greedy_wake_tree, quadtree_wake_tree, WakeTree};
    pub use freezetag_core::{
        solve, AGridConfig, ASeparatorConfig, AWaveConfig, Algorithm, RunReport,
    };
    pub use freezetag_exp::{AlgSpec, Engine, EngineConfig, ExperimentPlan, ScenarioSpec};
    pub use freezetag_geometry::{Point, Rect, Square};
    pub use freezetag_graph::InstanceParams;
    pub use freezetag_instances::{
        generators::{clustered, grid_lattice, ring, snake, two_clusters_bridge, uniform_disk},
        AdmissibleTuple, Instance,
    };
    pub use freezetag_sim::{validate, ConcreteWorld, WorldView};
}
