#!/usr/bin/env bash
# Reusable CI wrapper for the dftp CLI: every workflow step that drives
# the binary goes through this helper instead of repeating the full
# `cargo run` invocation in YAML. Runs against the release profile so CI
# steps reuse the build job's artifacts.
set -euo pipefail
exec cargo run --release --quiet --bin dftp -- "$@"
