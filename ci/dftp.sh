#!/usr/bin/env bash
# Reusable CI wrapper for the dftp CLI: every workflow step that drives
# the binary goes through this helper instead of repeating the full
# `cargo run` invocation in YAML. Runs against the release profile so CI
# steps reuse the build job's artifacts. Extra cargo flags (e.g.
# `--features simd` for the kernel determinism legs) go through
# DFTP_CARGO_FLAGS.
set -euo pipefail
exec cargo run --release ${DFTP_CARGO_FLAGS:-} --quiet --bin dftp -- "$@"
