//! Regenerates the *data* behind Figures 1 and 2 of the paper: the phase
//! structure of one `ASeparator` run, plus an SVG rendering of the
//! trajectories and the recursive squares.
//!
//! Run with: `cargo run --release --example visualize_phases`
//! Output:   `target/aseparator_phases.svg`

use freezetag::geometry::{Point, Rect, Square};
use freezetag::prelude::*;
use freezetag::sim::svg::{render_run, SvgOptions};
use std::collections::BTreeMap;

fn main() {
    // A 16×16 lattice with spacing 2: ℓ* = 2 and ρ*/ℓ* ≈ 21, so the
    // round-0 sampling hits its 4ℓ target quickly and several partition
    // rounds (Explore-sep → Recruit → Reorganize) actually happen — the
    // regime Figures 1 and 2 depict.
    let instance = grid_lattice(16, 16, 2.0);
    let tuple = instance.admissible_tuple();
    let report = solve(&instance, &tuple, Algorithm::Separator).expect("valid run");
    assert!(report.all_awake);

    println!("=== ASeparator phase trace (Figures 1–2 data) ===");
    println!("instance: n={} tuple {tuple}", instance.n());
    println!();
    println!(
        "{:<20} {:>8} {:>12} {:>12}",
        "phase", "spans", "total-time", "share-%"
    );
    let mut agg: BTreeMap<String, (f64, usize)> = BTreeMap::new();
    for s in report.trace.spans() {
        let e = agg.entry(s.label.clone()).or_insert((0.0, 0));
        e.0 += s.end - s.start;
        e.1 += 1;
    }
    let total: f64 = agg.values().map(|v| v.0).sum();
    for (label, (dur, count)) in &agg {
        println!(
            "{:<20} {:>8} {:>12.1} {:>12.1}",
            label,
            count,
            dur,
            100.0 * dur / total
        );
    }
    println!();
    println!("first spans in order (recruit → explore-sep → recruit → …):");
    for s in report.trace.spans().iter().take(8) {
        println!(
            "  [{:>8.1} → {:>8.1}] {:<18} {}",
            s.start, s.end, s.label, s.detail
        );
    }

    // SVG: trajectories + the round-1 quadrant squares (Figure 1c/2c).
    let big = Square::new(instance.source(), 2.0 * tuple.rho);
    let mut rects: Vec<Rect> = vec![big.to_rect()];
    rects.extend(big.quadrants().iter().map(Square::to_rect));
    // Re-run capturing the schedule for rendering.
    let mut sim = freezetag::sim::Sim::new(ConcreteWorld::new(&instance));
    freezetag::core::run_algorithm(&mut sim, &tuple, Algorithm::Separator);
    let (_, schedule, _) = sim.into_parts();
    let svg = render_run(
        instance.source(),
        instance.positions(),
        Some(&schedule),
        &rects,
        &SvgOptions::default(),
    );
    let path = "target/aseparator_phases.svg";
    std::fs::create_dir_all("target").expect("create target dir");
    std::fs::write(path, svg).expect("write svg");
    println!();
    println!("wrote {path}");
    let _ = Point::ORIGIN; // keep the import used even if rendering changes
}
