//! Adversarial gauntlet: run `ASeparator` against the *adaptive* lower-
//! bound adversary of Theorem 2, and an energy-capped searcher against the
//! Theorem 3 construction.
//!
//! The adversary reveals each robot only when the algorithm has explored
//! its whole hiding disk — forcing the `Ω(ρ + ℓ² log(ρ/ℓ))` makespan no
//! matter how clever the algorithm is.
//!
//! Run with: `cargo run --release --example adversarial_gauntlet`

use freezetag::core::bounds;
use freezetag::core::{run_algorithm, Algorithm};
use freezetag::geometry::Point;
use freezetag::instances::adversarial::{theorem2_layout, theorem3_layout};
use freezetag::instances::AdmissibleTuple;
use freezetag::sim::{AdversarialWorld, Sim, WorldView};

fn main() {
    println!("=== Theorem 2: adaptive adversary vs ASeparator ===");
    let (ell, rho) = (4.0, 32.0);
    let layout = theorem2_layout(ell, rho, 200);
    let n = layout.n();
    let tuple = AdmissibleTuple::new(ell, rho, n);
    println!(
        "layout: {n} hidden robots in disks of radius {:.1}",
        layout.disk_radius
    );

    let mut sim = Sim::new(AdversarialWorld::new(layout));
    run_algorithm(&mut sim, &tuple, Algorithm::Separator);
    assert!(sim.world().all_awake(), "adversarial robots all woken");
    let makespan = sim.schedule().makespan();
    let lower = bounds::separator_makespan_bound(rho, ell);
    println!(
        "makespan {makespan:.1} vs Ω-bound shape {lower:.1} (ratio {:.2})",
        makespan / lower
    );
    println!("looks taken: {}", sim.world().look_count());

    println!();
    println!("=== Theorem 3: energy budget below π(ℓ²−1)/2 wakes nobody ===");
    let ell3 = 6.0;
    let threshold = bounds::infeasible_energy_threshold(ell3);
    let budget = threshold * 0.9;
    println!("ℓ={ell3}: threshold {threshold:.1}, searcher budget {budget:.1}");

    // A budget-capped spiral searcher: sweep the disk boustrophedon until
    // the energy runs out.
    let mut sim = Sim::new(AdversarialWorld::new(theorem3_layout(ell3, 1)));
    let rect = freezetag::geometry::Disk::new(Point::ORIGIN, ell3).bounding_rect();
    let mut spent = 0.0;
    let mut found = false;
    let mut pos = Point::ORIGIN;
    'sweep: for snap in freezetag::geometry::sweep::snapshot_positions(&rect) {
        let step = pos.dist(snap);
        if spent + step > budget {
            break 'sweep;
        }
        spent += step;
        pos = snap;
        sim.move_to(freezetag::sim::RobotId::SOURCE, snap);
        if !sim.look(freezetag::sim::RobotId::SOURCE).is_empty() {
            found = true;
            break 'sweep;
        }
    }
    println!(
        "searcher spent {spent:.1}/{budget:.1} energy; robot discovered: {}",
        if found {
            "YES (unexpected!)"
        } else {
            "no — as Theorem 3 predicts"
        }
    );
    assert!(
        !found,
        "Theorem 3 violated: under-budget searcher found the robot"
    );
}
