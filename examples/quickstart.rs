//! Quickstart: generate a swarm, wake it with all three algorithms, and
//! compare against the paper's bounds (Table 1).
//!
//! Run with: `cargo run --release --example quickstart`

use freezetag::core::bounds;
use freezetag::prelude::*;

fn main() {
    // 120 sleeping robots, uniform in a disk of radius 24 around the
    // source at the origin.
    let instance = uniform_disk(120, 24.0, 2024);
    let tuple = instance.admissible_tuple();
    let params = instance.params(Some(tuple.ell));
    let xi = params.xi_ell.expect("generated instances are connected");

    println!(
        "instance: n={} ρ*={:.2} ℓ*={:.2} ξ_ℓ={:.2}",
        instance.n(),
        params.rho_star,
        params.ell_star,
        xi
    );
    println!("input tuple: {tuple}");
    println!();
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "algorithm", "makespan", "bound", "ratio", "max-energy", "looks"
    );

    for alg in [Algorithm::Separator, Algorithm::Grid, Algorithm::Wave] {
        let report = solve(&instance, &tuple, alg).expect("valid run");
        assert!(report.all_awake);
        let bound = match alg {
            Algorithm::Separator => bounds::separator_makespan_bound(tuple.rho, tuple.ell),
            Algorithm::Grid => bounds::grid_makespan_bound(xi, tuple.ell),
            Algorithm::Wave => bounds::wave_makespan_bound(xi, tuple.ell),
        };
        println!(
            "{:<12} {:>10.1} {:>12.1} {:>12.2} {:>12.1} {:>8}",
            alg.to_string(),
            report.makespan,
            bound,
            report.makespan / bound,
            report.max_energy,
            report.looks
        );
    }

    println!();
    println!("All 120 robots woken by every algorithm — ratios are the");
    println!("measured-makespan / theoretical-bound constants of Table 1.");
}
