//! Warehouse scenario: clustered robot fleets parked in aisles.
//!
//! A facility powers down its robot fleet overnight in a few charging
//! bays (clusters); one duty robot must wake everyone at shift start.
//! Dense clusters mean `ξ_ℓ ≈ ρ*`, so the energy-frugal `AWave` is nearly
//! as fast as the unconstrained `ASeparator`, while `AGrid` pays the
//! `ξ_ℓ·ℓ` makespan for its minimal `Θ(ℓ²)` battery budget — the paper's
//! central sustainability trade-off, measured.
//!
//! Run with: `cargo run --release --example warehouse_swarm`

use freezetag::core::bounds;
use freezetag::prelude::*;

fn main() {
    // Five charging bays of 24 robots each, bays within radius ~35 of the
    // duty robot's dock at the origin.
    let instance = clustered(5, 24, 2.0, 35.0, 7);
    let tuple = instance.admissible_tuple();
    let params = instance.params(Some(tuple.ell));
    let xi = params.xi_ell.expect("bays are chained to the dock");

    println!("warehouse fleet: {} robots in 5 bays", instance.n());
    println!(
        "ρ*={:.1} ℓ*={:.1} ξ_ℓ={:.1} (ξ/ρ = {:.2} — dense, low eccentricity)",
        params.rho_star,
        params.ell_star,
        xi,
        xi / params.rho_star
    );
    println!();
    println!(
        "{:<12} {:>10} {:>14} {:>16} {:>14}",
        "algorithm", "makespan", "max-energy", "energy-budget", "within-budget"
    );

    let budgets = [
        (Algorithm::Separator, f64::INFINITY),
        (
            Algorithm::Grid,
            80.0 * bounds::grid_energy_shape(tuple.ell) + 100.0,
        ),
        (
            Algorithm::Wave,
            800.0 * bounds::wave_energy_shape(tuple.ell) + 500.0,
        ),
    ];
    for (alg, budget) in budgets {
        let report = solve(&instance, &tuple, alg).expect("valid run");
        assert!(report.all_awake);
        let ok = report.max_energy <= budget;
        println!(
            "{:<12} {:>10.1} {:>14.1} {:>16.1} {:>14}",
            alg.to_string(),
            report.makespan,
            report.max_energy,
            budget,
            if ok { "yes" } else { "NO" }
        );
        assert!(ok, "{alg} blew its energy budget");
    }

    println!();
    println!("Take-away: with ξ_ℓ ≈ ρ*, AWave matches ASeparator's makespan");
    println!("shape while every robot stays within its Θ(ℓ² log ℓ) battery.");
}
