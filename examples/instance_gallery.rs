//! Renders every instance family to SVG — a visual index of the workloads
//! used across the benches and tests.
//!
//! Run with: `cargo run --release --example instance_gallery`
//! Output:   `target/gallery/*.svg`

use freezetag::instances::adversarial::theorem2_layout;
use freezetag::instances::generators::{
    clustered, grid_lattice, ring, snake, two_clusters_bridge, uniform_disk,
};
use freezetag::instances::path_construction::{theorem6_instance, Theorem6Params};
use freezetag::instances::Instance;
use freezetag::sim::svg::{render_run, SvgOptions};

fn save(name: &str, inst: &Instance) {
    let svg = render_run(
        inst.source(),
        inst.positions(),
        None,
        &[],
        &SvgOptions::default(),
    );
    let path = format!("target/gallery/{name}.svg");
    std::fs::write(&path, svg).expect("write svg");
    let p = inst.params(None);
    println!(
        "{path:<42} n={:<5} ρ*={:<8.2} ℓ*={:<8.2} ξ={:.2}",
        inst.n(),
        p.rho_star,
        p.ell_star,
        p.xi_ell.unwrap_or(f64::NAN)
    );
}

fn main() {
    std::fs::create_dir_all("target/gallery").expect("create gallery dir");
    save("uniform_disk", &uniform_disk(150, 20.0, 1));
    save("lattice", &grid_lattice(12, 12, 2.0));
    save("snake", &snake(5, 50.0, 3.0, 1.5));
    save("ring", &ring(48, 15.0, 1.0, 2));
    save("clustered", &clustered(5, 25, 2.0, 25.0, 3));
    save("bridge", &two_clusters_bridge(30, 2.0, 40.0, 2.0, 4));
    save(
        "theorem6_path",
        &theorem6_instance(&Theorem6Params {
            ell: 1.0,
            rho: 30.0,
            budget: 4.0,
            xi: 70.0,
        }),
    );
    // The adversarial layout renders its disk centres (robot positions are
    // adaptive — see AdversarialWorld).
    let layout = theorem2_layout(4.0, 24.0, 100_000);
    let pseudo = Instance::new(layout.centers.clone());
    save("theorem2_centers", &pseudo);
    println!("\ngallery written to target/gallery/");
}
