//! Search-and-rescue scenario: a sensor swarm strung along a winding
//! canyon.
//!
//! Sensors sleep along a serpentine corridor (high `ξ_ℓ/ρ*`): the wake-up
//! wave must physically travel the corridor. This is the workload that
//! separates the two energy-constrained algorithms — `AGrid` pays
//! `Θ(ξ_ℓ·ℓ)` while `AWave` gets `Θ(ξ_ℓ + ℓ² log(ξ_ℓ/ℓ))`, an asymptotic
//! factor-ℓ gap (Table 1, rows 3–4).
//!
//! Run with: `cargo run --release --example search_and_rescue`

use freezetag::core::bounds;
use freezetag::prelude::*;

fn main() {
    // A canyon with 6 switchbacks, 80-unit legs, sensors every 1.5 units.
    let instance = snake(6, 80.0, 2.5, 1.5);
    let tuple = instance.admissible_tuple();
    let params = instance.params(Some(tuple.ell));
    let xi = params.xi_ell.expect("corridor is connected");

    println!("canyon swarm: {} sensors", instance.n());
    println!(
        "ρ*={:.1} ξ_ℓ={:.1} (ξ/ρ = {:.2} — the corridor forces travel)",
        params.rho_star,
        xi,
        xi / params.rho_star
    );
    println!();
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>12}",
        "algorithm", "makespan", "bound", "ratio", "max-energy"
    );

    let mut grid_makespan = 0.0;
    let mut wave_makespan = 0.0;
    for alg in [Algorithm::Grid, Algorithm::Wave] {
        let report = solve(&instance, &tuple, alg).expect("valid run");
        assert!(report.all_awake);
        let bound = match alg {
            Algorithm::Grid => bounds::grid_makespan_bound(xi, tuple.ell),
            _ => bounds::wave_makespan_bound(xi, tuple.ell),
        };
        match alg {
            Algorithm::Grid => grid_makespan = report.makespan,
            _ => wave_makespan = report.makespan,
        }
        println!(
            "{:<12} {:>10.1} {:>12.1} {:>10.2} {:>12.1}",
            alg.to_string(),
            report.makespan,
            bound,
            report.makespan / bound,
            report.max_energy
        );
    }

    println!();
    println!(
        "AGrid/AWave makespan ratio on this corridor: {:.2}",
        grid_makespan / wave_makespan
    );
    println!("(the gap grows with ℓ — see the table1 bench for the sweep)");
}
