//! The [`Engine`] facade: one entry point for every way this workspace
//! executes experiment jobs.
//!
//! Historically the runner grew a free function per (shape × profile ×
//! pool) combination — `run_single`, `run_single_stats_with`,
//! `run_plan_streaming`, … — and every harness picked its own. The engine
//! collapses that accreted surface into one object:
//!
//! * [`Engine::new`] holds the execution configuration (core budget,
//!   intra-run pool width, result-cache capacity) once, instead of
//!   threading `threads`/`ParPool` arguments through every call site;
//! * [`Engine::submit`] runs a whole [`ExperimentPlan`] on a pool of
//!   worker threads and returns a [`JobStream`] — a bounded, in-order,
//!   cancellable iterator of [`JobResult`]s; [`Engine::run`] and
//!   [`Engine::run_streaming`] are the collect/callback conveniences over
//!   it;
//! * [`Engine::single`] / [`Engine::single_stats`] /
//!   [`Engine::single_compressed`] run one scenario × algorithm × seed
//!   combination under the corresponding recorder profile, for harnesses
//!   that need the materialized run rather than plan records.
//!
//! Three production concerns live here and nowhere else:
//!
//! **Worker-resident state.** Each worker thread owns a
//! `JobContext` — the algorithms' knowledge store and the stats
//! recorder's buffers — reused across every job the worker executes
//! instead of reallocated per job. Reuse is unobservable in results
//! (pinned by the schedule-identity and thread-matrix suites).
//!
//! **Result cache.** With [`EngineConfig::cache_capacity`] `> 0`, every
//! completed job is remembered under a key derived from the canonical
//! generator name, its parameters (exact `f64` bits), the algorithm
//! label, the profile and the derived seed — everything a result is a
//! deterministic function of, and nothing it isn't (`sim_threads` and
//! worker counts are deliberately excluded; the determinism tests pin
//! that they cannot change a result). A repeated submission is answered
//! from the cache with only the identity fields (job index, scenario
//! display name, repetition) patched, observable through
//! [`Engine::cache_stats`] and the per-stream counters.
//!
//! **Cancellation.** Every stream carries a `CancelToken` shared with the
//! simulators' cooperative checkpoints: [`JobStream::cancel`] (or a
//! [`SubmitOptions::deadline`]) makes in-flight jobs unwind at their next
//! checkpoint and idle workers exit, and the stream ends with a single
//! [`ExpError::Cancelled`]. A worker panic is likewise caught at the job
//! boundary and surfaced as [`ExpError::Internal`], so one bad job cannot
//! take down a resident serving process.

use crate::plan::{AlgSpec, ExperimentPlan, JobSpec, ScenarioSpec};
use crate::runner::{
    execute_job_ctx, inter_job_workers, single_compressed, single_full, single_stats,
    CompressedRun, JobContext, JobResult, SingleRun, StatsRun,
};
use crate::ExpError;
use freezetag_instances::registry;
use freezetag_sim::{CancelToken, Cancelled, ParPool};
use std::any::Any;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Execution configuration of an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Total core budget for plan execution, split between inter-job
    /// workers and each job's `sim_threads`-wide intra-job pool by
    /// [`inter_job_workers`].
    pub threads: usize,
    /// Intra-run pool width for the [`Engine::single`] family (plan jobs
    /// use the plan's own [`ExperimentPlan::sim_threads`], which is part
    /// of the plan data). Results are bit-identical for any value.
    pub sim_threads: usize,
    /// Completed jobs remembered by the result cache; `0` (the default)
    /// disables caching. A resident server sets this; one-shot CLI runs
    /// don't need it.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 1,
            sim_threads: 1,
            cache_capacity: 0,
        }
    }
}

/// Options for [`Engine::submit_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// Wall-clock budget for the whole stream, armed when the submission
    /// starts executing. Past it, the stream cancels itself exactly like
    /// [`JobStream::cancel`].
    pub deadline: Option<Duration>,
    /// First job index to execute; jobs below it are skipped entirely
    /// (they are neither run nor emitted). This is the resume path: a
    /// restarted sweep counts the records already on disk and submits the
    /// rest.
    pub first_job: usize,
}

/// Lifetime cache counters of an [`Engine`]; see [`Engine::cache_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Jobs answered from the result cache.
    pub hits: u64,
    /// Jobs executed because the (enabled) cache had no entry.
    pub misses: u64,
    /// Results currently held.
    pub entries: usize,
}

/// FIFO-evicting memo of completed jobs, keyed by [`cache_key`].
struct ResultCache {
    map: HashMap<String, JobResult>,
    order: VecDeque<String>,
    capacity: usize,
}

impl ResultCache {
    fn new(capacity: usize) -> Self {
        ResultCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity,
        }
    }

    fn get(&self, key: &str) -> Option<JobResult> {
        self.map.get(key).cloned()
    }

    fn put(&mut self, key: String, result: JobResult) {
        if self.capacity == 0 || self.map.contains_key(&key) {
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
        self.order.push_back(key.clone());
        self.map.insert(key, result);
    }
}

/// The cache identity of one job: canonical generator name, exact
/// parameter bits, algorithm label, recorder profile, derived seed.
/// Everything else about a result — thread counts, pool widths, worker
/// scheduling — is excluded because the determinism suites pin that it
/// cannot change any field but `wall_time_s`.
fn cache_key(plan: &ExperimentPlan, spec: &ScenarioSpec, job: &JobSpec) -> String {
    let mut key = match registry::lookup(&spec.generator) {
        Some(g) => g.name.to_string(),
        None => spec.generator.clone(),
    };
    for (name, value) in &spec.params {
        let _ = write!(key, ":{name}={:x}", value.to_bits());
    }
    let _ = write!(
        key,
        "|{}|{}|{:x}",
        job.algorithm.label(),
        plan.profile,
        job.seed
    );
    key
}

/// A cached result re-addressed to the submitting plan's coordinates:
/// only the identity fields differ between a hit and a fresh run (the
/// cached `wall_time_s` — non-deterministic anyway — rides along).
fn patched(mut cached: JobResult, job: &JobSpec, scenario: &str) -> JobResult {
    cached.job = job.index;
    cached.scenario = scenario.to_string();
    cached.seed_index = job.seed_index;
    cached
}

/// Maps a caught worker unwind to the error the stream reports: a
/// cooperative [`Cancelled`] becomes [`ExpError::Cancelled`], anything
/// else [`ExpError::Internal`] with the panic message.
fn unwind_to_error(payload: Box<dyn Any + Send>) -> ExpError {
    if payload.downcast_ref::<Cancelled>().is_some() {
        return ExpError::Cancelled;
    }
    let message = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string());
    ExpError::Internal(message)
}

/// Reorder window of a [`JobStream`]: how many completed jobs may be
/// buffered ahead of the in-order emission point before workers stop
/// claiming new jobs. Generous enough that workers rarely stall on one
/// slow job, small enough that memory stays bounded by
/// `O(window + workers)` results instead of `O(jobs)`.
fn streaming_window(workers: usize) -> usize {
    (4 * workers).max(64)
}

struct EngineInner {
    config: EngineConfig,
    cache: Mutex<ResultCache>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EngineInner {
    fn cache_get(&self, key: &str) -> Option<JobResult> {
        self.cache.lock().expect("result cache poisoned").get(key)
    }

    fn cache_put(&self, key: String, result: JobResult) {
        self.cache
            .lock()
            .expect("result cache poisoned")
            .put(key, result);
    }
}

/// The execution facade; see the [module docs](self). Cheap to clone —
/// clones share the configuration, the result cache and its counters, so
/// a resident server hands one engine to every connection.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineConfig::default())
    }
}

impl Engine {
    /// An engine with the given configuration. No threads are spawned
    /// until a plan is submitted; an idle engine is just the cache.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            inner: Arc::new(EngineInner {
                config,
                cache: Mutex::new(ResultCache::new(config.cache_capacity)),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            }),
        }
    }

    /// Shorthand for the common CLI shape: a core budget of `threads`,
    /// sequential single-run pools, no cache.
    pub fn with_threads(threads: usize) -> Self {
        Engine::new(EngineConfig {
            threads,
            ..EngineConfig::default()
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> EngineConfig {
        self.inner.config
    }

    /// Lifetime cache counters across every stream this engine (and its
    /// clones) answered. All zero while the cache is disabled.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            entries: self
                .inner
                .cache
                .lock()
                .expect("result cache poisoned")
                .map
                .len(),
        }
    }

    /// Submits a plan for execution and returns the in-order result
    /// stream. Workers start immediately; consuming the iterator paces
    /// them through the bounded reorder window.
    ///
    /// # Errors
    ///
    /// Plan validation errors before anything runs.
    pub fn submit(&self, plan: &ExperimentPlan) -> Result<JobStream, ExpError> {
        self.submit_with(plan, SubmitOptions::default())
    }

    /// [`Engine::submit`] with a deadline and/or a resume offset.
    ///
    /// # Errors
    ///
    /// Plan validation errors before anything runs.
    pub fn submit_with(
        &self,
        plan: &ExperimentPlan,
        opts: SubmitOptions,
    ) -> Result<JobStream, ExpError> {
        plan.validate()?;
        let jobs = plan.jobs();
        let start = opts.first_job.min(jobs.len());
        let remaining = jobs.len() - start;
        let workers = inter_job_workers(self.inner.config.threads, plan.sim_threads, remaining);
        let cancel = match opts.deadline {
            Some(budget) => CancelToken::with_deadline(budget),
            None => CancelToken::new(),
        };
        let shared = Arc::new(StreamShared {
            state: Mutex::new(StreamState {
                next_claim: start,
                next_emit: start,
                buffer: BTreeMap::new(),
                failed: false,
                live: workers,
            }),
            progress: Condvar::new(),
            cancel,
            window: streaming_window(workers),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        });
        let plan = Arc::new(plan.clone());
        let jobs = Arc::new(jobs);
        let jobs_len = jobs.len();
        let handles = (0..workers)
            .map(|_| {
                let plan = Arc::clone(&plan);
                let jobs = Arc::clone(&jobs);
                let shared = Arc::clone(&shared);
                let engine = Arc::clone(&self.inner);
                std::thread::spawn(move || worker_loop(&plan, &jobs, &shared, &engine))
            })
            .collect();
        Ok(JobStream {
            shared,
            workers: handles,
            jobs_len,
            done: false,
        })
    }

    /// Executes the plan's full cross-product and returns the results in
    /// job order — [`Engine::submit`] collected into a vector.
    ///
    /// # Errors
    ///
    /// Plan validation errors before anything runs; otherwise the
    /// lowest-indexed job failure (workers stop claiming once one fails).
    pub fn run(&self, plan: &ExperimentPlan) -> Result<Vec<JobResult>, ExpError> {
        let stream = self.submit(plan)?;
        let mut results = Vec::with_capacity(stream.total_jobs());
        for item in stream {
            results.push(item?);
        }
        Ok(results)
    }

    /// [`Engine::run`] without the `O(jobs)` result vector: every result
    /// is handed to `on_result` in strict job order and then dropped, so
    /// peak memory is `O(workers)` results regardless of plan size — the
    /// execution path behind `dftp sweep --out FILE`.
    ///
    /// # Errors
    ///
    /// As [`Engine::run`]; results preceding the failure have already
    /// been emitted by then, so callers streaming to a file should treat
    /// an `Err` as truncating the output.
    pub fn run_streaming(
        &self,
        plan: &ExperimentPlan,
        mut on_result: impl FnMut(&JobResult),
    ) -> Result<(), ExpError> {
        for item in self.submit(plan)? {
            on_result(&item?);
        }
        Ok(())
    }

    /// Runs one scenario × algorithm × seed combination to completion
    /// under the full-schedule profile and returns the materialized run —
    /// schedule, phase trace, positions — for harnesses (figures, SVG
    /// rendering) that need more than aggregate numbers.
    ///
    /// # Errors
    ///
    /// Registry errors, validation failures, or
    /// [`ExpError::Unsupported`] (centralized baselines have no
    /// schedule, so only distributed algorithms are accepted).
    pub fn single(
        &self,
        spec: &ScenarioSpec,
        alg: AlgSpec,
        seed: u64,
    ) -> Result<SingleRun, ExpError> {
        single_full(spec, alg, seed, self.single_pool(), &mut self.single_ctx())
    }

    /// [`Engine::single`] under the constant-memory stats profile: no
    /// schedule, no validation, no ξ_ℓ — only aggregate numbers, which
    /// match a full-profile run bit-for-bit. The only tractable path at
    /// 10⁵–10⁶ robots.
    ///
    /// # Errors
    ///
    /// Registry errors, or [`ExpError::Unsupported`] for non-distributed
    /// algorithms and adversarial scenarios.
    pub fn single_stats(
        &self,
        spec: &ScenarioSpec,
        alg: AlgSpec,
        seed: u64,
    ) -> Result<StatsRun, ExpError> {
        single_stats(spec, alg, seed, self.single_pool(), &mut self.single_ctx())
    }

    /// [`Engine::single`] under the compressed profile: the full schedule
    /// kept in delta-encoded blocks and checked by the streaming
    /// validator — full-fidelity validation at stats-profile scale.
    ///
    /// # Errors
    ///
    /// Registry errors, validation failures, or
    /// [`ExpError::Unsupported`] for non-distributed algorithms and
    /// adversarial scenarios.
    pub fn single_compressed(
        &self,
        spec: &ScenarioSpec,
        alg: AlgSpec,
        seed: u64,
    ) -> Result<CompressedRun, ExpError> {
        single_compressed(spec, alg, seed, self.single_pool(), &mut self.single_ctx())
    }

    fn single_pool(&self) -> ParPool {
        ParPool::new(self.inner.config.sim_threads.max(1))
    }

    fn single_ctx(&self) -> JobContext {
        JobContext::new(CancelToken::never())
    }
}

struct StreamState {
    /// Next unclaimed job index (claims are strictly in index order).
    next_claim: usize,
    /// Next index to hand to the consumer.
    next_emit: usize,
    /// Completed jobs not yet emitted, keyed by job index.
    buffer: BTreeMap<usize, Result<JobResult, ExpError>>,
    /// Set on the first failure; stops workers claiming further jobs.
    failed: bool,
    /// Workers still running; the consumer stops waiting at zero.
    live: usize,
}

struct StreamShared {
    state: Mutex<StreamState>,
    progress: Condvar,
    cancel: CancelToken,
    window: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

fn worker_loop(
    plan: &ExperimentPlan,
    jobs: &[JobSpec],
    shared: &StreamShared,
    engine: &EngineInner,
) {
    let mut ctx = JobContext::new(shared.cancel.clone());
    loop {
        let i = {
            let mut g = shared.state.lock().expect("stream state poisoned");
            loop {
                if g.failed || g.next_claim >= jobs.len() || shared.cancel.should_stop(true) {
                    g.live -= 1;
                    shared.progress.notify_all();
                    return;
                }
                // Backpressure: don't run further ahead of the emission
                // point than the reorder window allows.
                if g.next_claim < g.next_emit + shared.window {
                    break;
                }
                g = shared.progress.wait(g).expect("stream state poisoned");
            }
            g.next_claim += 1;
            g.next_claim - 1
        };
        let job = &jobs[i];
        let spec = &plan.scenarios[job.scenario];
        let key = (engine.config.cache_capacity > 0).then(|| cache_key(plan, spec, job));
        let out = match key.as_deref().and_then(|k| engine.cache_get(k)) {
            Some(hit) => {
                engine.hits.fetch_add(1, Ordering::Relaxed);
                shared.hits.fetch_add(1, Ordering::Relaxed);
                Ok(patched(hit, job, &spec.name))
            }
            None => {
                if key.is_some() {
                    engine.misses.fetch_add(1, Ordering::Relaxed);
                    shared.misses.fetch_add(1, Ordering::Relaxed);
                }
                // The job boundary: cooperative cancels and panics both
                // stop here, never the worker thread or the process. The
                // context self-heals after an unwind (scratch resets on
                // next use, a lost recorder is rebuilt).
                let out = catch_unwind(AssertUnwindSafe(|| execute_job_ctx(plan, job, &mut ctx)))
                    .unwrap_or_else(|payload| Err(unwind_to_error(payload)));
                if let (Some(k), Ok(r)) = (key, &out) {
                    engine.cache_put(k, r.clone());
                }
                out
            }
        };
        let mut g = shared.state.lock().expect("stream state poisoned");
        if out.is_err() {
            g.failed = true;
        }
        g.buffer.insert(i, out);
        shared.progress.notify_all();
    }
}

/// The in-order result stream of one submitted plan.
///
/// Iterating yields every executed job's [`JobResult`] in job order; the
/// first failure is yielded once as an `Err` and ends the stream (results
/// before it are complete and valid). A cancelled stream — explicit
/// [`JobStream::cancel`] or an expired [`SubmitOptions::deadline`] — ends
/// with a single [`ExpError::Cancelled`], unless every job had already
/// been emitted. Dropping the stream cancels it and joins the workers.
pub struct JobStream {
    shared: Arc<StreamShared>,
    workers: Vec<JoinHandle<()>>,
    jobs_len: usize,
    done: bool,
}

impl JobStream {
    /// Total jobs in the submitted plan (including any skipped by
    /// [`SubmitOptions::first_job`]).
    pub fn total_jobs(&self) -> usize {
        self.jobs_len
    }

    /// Requests cooperative cancellation: in-flight jobs unwind at their
    /// next checkpoint, idle workers exit, and the stream ends with one
    /// [`ExpError::Cancelled`]. Idempotent.
    pub fn cancel(&self) {
        self.shared.cancel.cancel();
        self.wake_all();
    }

    /// A clone of the stream's cancellation token, for callers (the serve
    /// scheduler) that need to request cancellation while the stream
    /// itself is being consumed.
    pub(crate) fn cancel_token(&self) -> CancelToken {
        self.shared.cancel.clone()
    }

    /// Jobs this stream answered from the engine's result cache so far.
    pub fn cache_hits(&self) -> u64 {
        self.shared.hits.load(Ordering::Relaxed)
    }

    /// Jobs this stream executed because the (enabled) cache had no
    /// entry.
    pub fn cache_misses(&self) -> u64 {
        self.shared.misses.load(Ordering::Relaxed)
    }

    fn wake_all(&self) {
        let _g = self.shared.state.lock().expect("stream state poisoned");
        self.shared.progress.notify_all();
    }
}

impl Iterator for JobStream {
    type Item = Result<JobResult, ExpError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let item = {
            let mut g = self.shared.state.lock().expect("stream state poisoned");
            loop {
                let want = g.next_emit;
                if let Some(r) = g.buffer.remove(&want) {
                    g.next_emit += 1;
                    // Emission moved the window: wake stalled workers.
                    self.shared.progress.notify_all();
                    break Some(r);
                }
                // Every claimed index gets a buffer entry before its
                // worker exits, so an empty slot at next_emit with all
                // claims emitted means nothing below is in flight; stop
                // once no worker will claim again.
                if g.next_emit >= g.next_claim && (g.live == 0 || g.next_claim >= self.jobs_len) {
                    break None;
                }
                g = self.shared.progress.wait(g).expect("stream state poisoned");
            }
        };
        match item {
            Some(Ok(r)) => Some(Ok(r)),
            Some(Err(e)) => {
                self.done = true;
                Some(Err(e))
            }
            None => {
                self.done = true;
                let emitted_all = {
                    let g = self.shared.state.lock().expect("stream state poisoned");
                    g.next_emit >= self.jobs_len
                };
                if !emitted_all && self.shared.cancel.is_cancelled() {
                    Some(Err(ExpError::Cancelled))
                } else {
                    None
                }
            }
        }
    }
}

impl Drop for JobStream {
    fn drop(&mut self) {
        self.shared.cancel.cancel();
        self.wake_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Profile;
    use freezetag_core::Algorithm;

    fn tiny_plan() -> ExperimentPlan {
        ExperimentPlan::new("tiny")
            .scenario(
                ScenarioSpec::new("disk")
                    .with("n", 12.0)
                    .with("radius", 4.0),
            )
            .algorithm(Algorithm::Grid)
            .algorithm(Algorithm::Wave)
            .seeds(2)
            .plan_seed(7)
    }

    fn strip_wall(mut r: JobResult) -> JobResult {
        r.wall_time_s = 0.0;
        r
    }

    #[test]
    fn streaming_window_bounds_the_reorder_buffer() {
        assert_eq!(streaming_window(1), 64);
        assert_eq!(streaming_window(16), 64);
        assert_eq!(streaming_window(32), 128);
    }

    #[test]
    fn submit_streams_run_results_in_order() {
        let plan = tiny_plan();
        let buffered = Engine::with_threads(2).run(&plan).unwrap();
        assert_eq!(buffered.len(), 4);
        for threads in [1, 4] {
            let stream = Engine::with_threads(threads).submit(&plan).unwrap();
            assert_eq!(stream.total_jobs(), 4);
            let streamed: Vec<_> = stream.map(|r| strip_wall(r.unwrap())).collect();
            let want: Vec<_> = buffered.iter().cloned().map(strip_wall).collect();
            assert_eq!(streamed, want, "threads={threads}");
        }
    }

    #[test]
    fn repeat_submission_is_served_from_the_cache() {
        let engine = Engine::new(EngineConfig {
            threads: 2,
            sim_threads: 1,
            cache_capacity: 64,
        });
        let plan = tiny_plan();
        let first = engine.run(&plan).unwrap();
        let after_first = engine.cache_stats();
        assert_eq!(after_first.hits, 0);
        assert_eq!(after_first.misses, 4);
        assert_eq!(after_first.entries, 4);
        let second = engine.run(&plan).unwrap();
        let after_second = engine.cache_stats();
        assert_eq!(after_second.hits, 4);
        assert_eq!(after_second.misses, 4);
        // Cached results are the first run's, identity fields and all —
        // wall_time_s included, since a hit does not re-run anything.
        assert_eq!(first, second);
    }

    #[test]
    fn cache_hits_are_patched_to_the_submitting_plan() {
        // A second plan with the same generator, parameters and derived
        // seeds — but a renamed scenario and reordered algorithms — is
        // answered entirely from the first plan's cache entries, with the
        // identity fields (job index, display name) re-addressed.
        let engine = Engine::new(EngineConfig {
            threads: 1,
            sim_threads: 1,
            cache_capacity: 64,
        });
        let spec = |name: &str| {
            ScenarioSpec::new("disk")
                .named(name)
                .with("n", 10.0)
                .with("radius", 4.0)
        };
        let first = ExperimentPlan::new("twin-a")
            .scenario(spec("first"))
            .algorithm(Algorithm::Grid)
            .algorithm(Algorithm::Wave)
            .seeds(2);
        let second = ExperimentPlan::new("twin-b")
            .scenario(spec("second"))
            .algorithm(Algorithm::Wave)
            .algorithm(Algorithm::Grid)
            .seeds(2);
        let a = engine.run(&first).unwrap();
        assert_eq!(engine.cache_stats().hits, 0);
        let b = engine.run(&second).unwrap();
        assert_eq!(engine.cache_stats().hits, 4, "every job re-addressed");
        // b's Wave block is a's, moved from indices 2,3 to 0,1.
        for (bi, ai) in [(0, 2), (1, 3), (2, 0), (3, 1)] {
            assert_eq!(b[bi].scenario, "second");
            assert_eq!(b[bi].job, bi);
            let readdressed = JobResult {
                job: a[ai].job,
                scenario: a[ai].scenario.clone(),
                ..b[bi].clone()
            };
            assert_eq!(readdressed, a[ai], "b[{bi}] should be cached a[{ai}]");
        }
    }

    #[test]
    fn disabled_cache_counts_nothing() {
        let engine = Engine::with_threads(2);
        engine.run(&tiny_plan()).unwrap();
        engine.run(&tiny_plan()).unwrap();
        assert_eq!(engine.cache_stats(), CacheStats::default());
    }

    #[test]
    fn cache_evicts_in_fifo_order() {
        let mut cache = ResultCache::new(2);
        let r = |job| JobResult {
            job,
            scenario: String::new(),
            generator: String::new(),
            algorithm: String::new(),
            seed: 0,
            seed_index: 0,
            n: 0,
            ell: 1.0,
            rho: 1.0,
            xi_ell: None,
            makespan: 0.0,
            completion_time: 0.0,
            max_energy: 0.0,
            total_energy: 0.0,
            looks: 0,
            all_awake: true,
            peak_mem_bytes: 0.0,
            wall_time_s: 0.0,
        };
        cache.put("a".into(), r(0));
        cache.put("b".into(), r(1));
        cache.put("c".into(), r(2));
        assert!(cache.get("a").is_none(), "oldest entry evicted");
        assert!(cache.get("b").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn zero_deadline_cancels_before_any_job() {
        let stream = Engine::with_threads(2)
            .submit_with(
                &tiny_plan(),
                SubmitOptions {
                    deadline: Some(Duration::ZERO),
                    first_job: 0,
                },
            )
            .unwrap();
        let items: Vec<_> = stream.collect();
        assert_eq!(items.len(), 1);
        assert!(matches!(items[0], Err(ExpError::Cancelled)), "{items:?}");
    }

    #[test]
    fn explicit_cancel_ends_the_stream_with_cancelled() {
        // Jobs big enough that the worker cannot finish the whole plan
        // between submission and the cancel request.
        let plan = ExperimentPlan::new("cancel")
            .scenario(
                ScenarioSpec::new("disk")
                    .with("n", 2000.0)
                    .with("radius", 20.0),
            )
            .algorithm(Algorithm::Wave)
            .seeds(8)
            .profile(Profile::Stats);
        let stream = Engine::with_threads(1).submit(&plan).unwrap();
        stream.cancel();
        let items: Vec<_> = stream.collect();
        assert!(items.len() <= 8);
        let (last, emitted) = items.split_last().expect("stream yields something");
        assert!(matches!(last, Err(ExpError::Cancelled)), "{last:?}");
        assert!(emitted.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn first_job_resumes_mid_plan() {
        let plan = tiny_plan();
        let full = Engine::with_threads(2).run(&plan).unwrap();
        let stream = Engine::with_threads(2)
            .submit_with(
                &plan,
                SubmitOptions {
                    deadline: None,
                    first_job: 2,
                },
            )
            .unwrap();
        let tail: Vec<_> = stream.map(|r| strip_wall(r.unwrap())).collect();
        let want: Vec<_> = full[2..].iter().cloned().map(strip_wall).collect();
        assert_eq!(tail, want);
        // Skipping everything yields an empty, uncancelled stream.
        let none: Vec<_> = Engine::with_threads(2)
            .submit_with(
                &plan,
                SubmitOptions {
                    deadline: None,
                    first_job: 99,
                },
            )
            .unwrap()
            .collect();
        assert!(none.is_empty());
    }

    #[test]
    fn worker_panics_surface_as_internal_errors() {
        assert_eq!(
            unwind_to_error(Box::new("boom")),
            ExpError::Internal("boom".to_string())
        );
        assert_eq!(
            unwind_to_error(Box::new("boom".to_string())),
            ExpError::Internal("boom".to_string())
        );
        assert_eq!(unwind_to_error(Box::new(Cancelled)), ExpError::Cancelled);
        assert!(matches!(
            unwind_to_error(Box::new(17_u32)),
            ExpError::Internal(m) if m.contains("non-string")
        ));
    }

    #[test]
    fn cache_key_separates_jobs_and_ignores_names() {
        let plan = tiny_plan();
        let jobs = plan.jobs();
        let spec = &plan.scenarios[0];
        let keys: Vec<_> = jobs.iter().map(|j| cache_key(&plan, spec, j)).collect();
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "distinct jobs must key distinctly");
            }
        }
        // The display name is not part of the key; the canonical
        // generator name (not the alias used to spell it) is.
        let renamed = ScenarioSpec {
            name: "other".to_string(),
            ..spec.clone()
        };
        assert_eq!(cache_key(&plan, &renamed, &jobs[0]), keys[0]);
        assert!(keys[0].contains("|AGrid|full|"), "key {:?}", keys[0]);
    }

    #[test]
    fn single_family_matches_the_plan_path() {
        let engine = Engine::new(EngineConfig {
            threads: 1,
            sim_threads: 2,
            cache_capacity: 0,
        });
        let spec = ScenarioSpec::new("disk")
            .with("n", 30.0)
            .with("radius", 6.0);
        let full = engine.single(&spec, Algorithm::Wave.into(), 5).unwrap();
        let stats = engine
            .single_stats(&spec, Algorithm::Wave.into(), 5)
            .unwrap();
        let compressed = engine
            .single_compressed(&spec, Algorithm::Wave.into(), 5)
            .unwrap();
        assert!(full.report.all_awake);
        assert_eq!(full.report.makespan.to_bits(), stats.makespan.to_bits());
        assert_eq!(
            full.report.makespan.to_bits(),
            compressed.makespan.to_bits()
        );
        assert_eq!(
            full.report.total_energy.to_bits(),
            stats.total_energy.to_bits()
        );
    }
}
