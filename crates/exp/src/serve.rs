//! `dftp serve`: the [`Engine`] behind a persistent sweep service.
//!
//! A long-lived process accepts [`ExperimentPlan`]s over hand-rolled
//! HTTP/1.1 on `std::net` (this workspace is offline — no HTTP framework,
//! no JSON parser; plans arrive as the same `key=value` options the
//! `dftp sweep` flags use), runs them one at a time on the resident
//! engine's worker pool, and streams results back as JSONL — each line
//! byte-identical to the record `dftp sweep --format jsonl` would write
//! for the same plan (bar the non-deterministic `wall_time_s` field,
//! which differs run to run everywhere).
//!
//! # Endpoints
//!
//! | method & path            | body / reply                                         |
//! |--------------------------|------------------------------------------------------|
//! | `POST /plans`            | plan options → `202 {"id":N,"total":J}`, `400` on a bad plan, `429` when the queue is full |
//! | `GET /plans/<id>`        | status JSON: phase, emitted/total, cache counters     |
//! | `GET /plans/<id>/stream` | chunked JSONL — replays every emitted record, then follows until the plan ends |
//! | `POST /plans/<id>/cancel`| cooperative cancel → `200 {"id":N,"cancelling":true}` |
//! | `GET /health`            | liveness + queue depth + lifetime cache counters      |
//!
//! Plan options (`&`- or newline-separated, `%XX`/`+` decoding applied):
//! `scenarios` (required, the `dftp sweep --scenarios` grammar), `algs`,
//! `seeds`, `plan-seed`, `profile`, `sim-threads`, `name`, and
//! `deadline-s` — a wall-clock budget armed when execution starts; a plan
//! past it cancels itself.
//!
//! # Determinism and the cache
//!
//! Every record is a pure function of `(plan_seed, scenario, algorithm,
//! repetition, profile)`, so the serving engine runs with its result
//! cache enabled: resubmitting a plan is answered from memory (observable
//! in the status counters) with byte-identical records. One scheduler
//! thread drains a bounded queue — submissions beyond
//! [`ServeConfig::queue_depth`] are rejected with `429` instead of
//! accumulating unboundedly.

use crate::emit;
use crate::engine::{Engine, EngineConfig, SubmitOptions};
use crate::plan::{AlgSpec, ExperimentPlan, Profile, ScenarioSpec};
use crate::ExpError;
use freezetag_sim::CancelToken;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest accepted request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body.
const MAX_BODY_BYTES: usize = 64 * 1024;

/// Configuration of [`Server::spawn`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind; port `0` picks a free port (the in-process test
    /// path). Defaults to `127.0.0.1:0`.
    pub addr: SocketAddr,
    /// The resident engine's configuration. The default enables the
    /// result cache (1024 entries) — the point of a resident server.
    pub engine: EngineConfig,
    /// Accepted-but-unstarted plans allowed before `POST /plans` answers
    /// `429`.
    pub queue_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            engine: EngineConfig {
                cache_capacity: 1024,
                ..EngineConfig::default()
            },
            queue_depth: 16,
        }
    }
}

/// Lifecycle of one submitted plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Queued,
    Running,
    Done,
    Cancelled,
    Failed,
}

impl Phase {
    fn as_str(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Cancelled => "cancelled",
            Phase::Failed => "failed",
        }
    }

    fn is_terminal(self) -> bool {
        matches!(self, Phase::Done | Phase::Cancelled | Phase::Failed)
    }
}

/// Everything observable about one plan, under one lock so the stream
/// long-poll can wait on a single condvar.
struct PlanState {
    phase: Phase,
    /// JSONL lines emitted so far, kept for replayable streaming.
    lines: Vec<String>,
    cache_hits: u64,
    cache_misses: u64,
    error: Option<String>,
    /// The running stream's token, present only while executing.
    cancel: Option<CancelToken>,
    cancel_requested: bool,
}

struct PlanEntry {
    id: u64,
    total: usize,
    plan: ExperimentPlan,
    deadline: Option<Duration>,
    state: Mutex<PlanState>,
    progress: Condvar,
}

impl PlanEntry {
    fn new(id: u64, plan: ExperimentPlan, deadline: Option<Duration>) -> Self {
        PlanEntry {
            id,
            total: plan.job_count(),
            plan,
            deadline,
            state: Mutex::new(PlanState {
                phase: Phase::Queued,
                lines: Vec::new(),
                cache_hits: 0,
                cache_misses: 0,
                error: None,
                cancel: None,
                cancel_requested: false,
            }),
            progress: Condvar::new(),
        }
    }

    fn status_json(&self) -> String {
        let st = self.state.lock().expect("plan state poisoned");
        let error = match &st.error {
            Some(e) => format!("{:?}", e),
            None => "null".to_string(),
        };
        format!(
            "{{\"id\":{},\"phase\":\"{}\",\"emitted\":{},\"total\":{},\"cache_hits\":{},\"cache_misses\":{},\"error\":{}}}",
            self.id,
            st.phase.as_str(),
            st.lines.len(),
            self.total,
            st.cache_hits,
            st.cache_misses,
            error
        )
    }

    /// Marks the plan cancelled-on-request and pokes the running stream's
    /// token if there is one; terminal phases are left as they are.
    fn request_cancel(&self) {
        let mut st = self.state.lock().expect("plan state poisoned");
        st.cancel_requested = true;
        if let Some(token) = &st.cancel {
            token.cancel();
        }
        if st.phase == Phase::Queued {
            st.phase = Phase::Cancelled;
        }
        self.progress.notify_all();
    }
}

struct ServerState {
    engine: Engine,
    queue_depth: usize,
    plans: Mutex<HashMap<u64, Arc<PlanEntry>>>,
    queue: Mutex<VecDeque<Arc<PlanEntry>>>,
    queue_ready: Condvar,
    next_id: AtomicU64,
    shutdown: AtomicBool,
}

/// A running `dftp serve` instance. [`Server::spawn`] binds, starts the
/// accept loop and the scheduler, and returns immediately — the in-process
/// path the serve tests use. Dropping the server shuts it down (current
/// plan cancelled, queued plans marked cancelled, threads joined).
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr`, spawns the accept loop and the scheduler
    /// thread, and returns. Jobs run on the scheduler thread's engine
    /// stream (itself a worker pool of `config.engine.threads`).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            engine: Engine::new(config.engine),
            queue_depth: config.queue_depth.max(1),
            plans: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        });
        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || accept_loop(&listener, &accept_state));
        let sched_state = Arc::clone(&state);
        let scheduler = std::thread::spawn(move || scheduler_loop(&sched_state));
        Ok(Server {
            addr,
            state,
            accept: Some(accept),
            scheduler: Some(scheduler),
        })
    }

    /// The bound address (the chosen port when spawned with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, cancels the running plan, marks queued plans
    /// cancelled, and joins the service threads. Called by `Drop`;
    /// explicit calls are idempotent through the shutdown flag.
    pub fn shutdown(&mut self) {
        if self.state.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Cancel everything queued or running so streaming connections
        // and the scheduler wind down.
        let entries: Vec<Arc<PlanEntry>> = {
            let plans = self.state.plans.lock().expect("plan map poisoned");
            plans.values().cloned().collect()
        };
        for entry in entries {
            entry.request_cancel();
        }
        self.state.queue_ready.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_state = Arc::clone(state);
        std::thread::spawn(move || {
            let _ = handle_connection(stream, &conn_state);
        });
    }
}

fn scheduler_loop(state: &Arc<ServerState>) {
    loop {
        let entry = {
            let mut queue = state.queue.lock().expect("plan queue poisoned");
            loop {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(entry) = queue.pop_front() {
                    break entry;
                }
                queue = state.queue_ready.wait(queue).expect("plan queue poisoned");
            }
        };
        run_entry(state, &entry);
    }
}

/// Executes one queued plan on the resident engine, pushing each record's
/// JSONL line as it is emitted and settling the terminal phase.
fn run_entry(state: &ServerState, entry: &PlanEntry) {
    {
        let mut st = entry.state.lock().expect("plan state poisoned");
        if st.phase != Phase::Queued {
            return; // cancelled while waiting in the queue
        }
        st.phase = Phase::Running;
        entry.progress.notify_all();
    }
    let opts = SubmitOptions {
        deadline: entry.deadline,
        first_job: 0,
    };
    let mut stream = match state.engine.submit_with(&entry.plan, opts) {
        Ok(stream) => stream,
        Err(e) => {
            let mut st = entry.state.lock().expect("plan state poisoned");
            st.phase = Phase::Failed;
            st.error = Some(e.to_string());
            entry.progress.notify_all();
            return;
        }
    };
    {
        // Publish the token; honor a cancel that raced the queue.
        let mut st = entry.state.lock().expect("plan state poisoned");
        let token = stream.cancel_token();
        if st.cancel_requested {
            token.cancel();
        }
        st.cancel = Some(token);
    }
    let mut outcome = Ok(());
    while let Some(item) = stream.next() {
        match item {
            Ok(r) => {
                let line = emit::job_to_jsonl_line(&r);
                let mut st = entry.state.lock().expect("plan state poisoned");
                st.lines.push(line);
                st.cache_hits = stream.cache_hits();
                st.cache_misses = stream.cache_misses();
                entry.progress.notify_all();
            }
            Err(e) => {
                outcome = Err(e);
                break;
            }
        }
    }
    let mut st = entry.state.lock().expect("plan state poisoned");
    st.cache_hits = stream.cache_hits();
    st.cache_misses = stream.cache_misses();
    st.cancel = None;
    st.phase = match outcome {
        Ok(()) => Phase::Done,
        Err(ExpError::Cancelled) => Phase::Cancelled,
        Err(e) => {
            st.error = Some(e.to_string());
            Phase::Failed
        }
    };
    entry.progress.notify_all();
}

/// A parsed HTTP/1.1 request head: the request line plus the one header
/// this service needs. Public so the property tests can hammer the parser
/// directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestHead {
    /// Request method, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, before any `?`.
    pub path: String,
    /// Query component after `?`, empty when absent.
    pub query: String,
    /// Declared `Content-Length`, `0` when absent.
    pub content_length: usize,
}

/// Parses an HTTP/1.1 request head — the request line and headers, up to
/// (not including) the blank line. Tolerates `\r\n` or bare `\n` line
/// endings and any header case; rejects malformed request lines, non-HTTP
/// versions, bodies over `MAX_BODY_BYTES` and unparsable
/// `Content-Length` values. Never panics on any input (property-tested).
///
/// # Errors
///
/// A human-readable description of the first problem found.
pub fn parse_request_head(head: &str) -> Result<RequestHead, String> {
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let method = parts.next().ok_or("empty request line")?.to_string();
    let target = parts.next().ok_or("request line lacks a target")?;
    let version = parts.next().ok_or("request line lacks a version")?;
    if parts.next().is_some() {
        return Err(format!("malformed request line {request_line:?}"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(format!("unsupported version {version:?}"));
    }
    if !target.starts_with('/') {
        return Err(format!("target {target:?} is not origin-form"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("malformed header line {line:?}"));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| format!("unparsable Content-Length {:?}", value.trim()))?;
            if content_length > MAX_BODY_BYTES {
                return Err(format!(
                    "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
                ));
            }
        }
    }
    Ok(RequestHead {
        method,
        path,
        query,
        content_length,
    })
}

/// Decodes `%XX` escapes and `+`-for-space, as `curl --data-urlencode`
/// produces. Invalid escapes pass through verbatim rather than erroring —
/// the plan parser downstream rejects anything that doesn't parse.
fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                match (
                    bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16)),
                    bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16)),
                ) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a plan-options body (`&`- or newline-separated `key=value`
/// pairs) into decoded pairs. Empty segments are skipped.
fn parse_params(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    for segment in body.split(['&', '\n']) {
        let segment = segment.trim();
        if segment.is_empty() {
            continue;
        }
        let Some((key, value)) = segment.split_once('=') else {
            return Err(format!("option {segment:?} is not key=value"));
        };
        pairs.push((percent_decode(key.trim()), percent_decode(value)));
    }
    Ok(pairs)
}

/// Builds an [`ExperimentPlan`] (plus the optional execution deadline)
/// from submitted options — the same grammar as the `dftp sweep` flags.
fn plan_from_params(
    pairs: &[(String, String)],
) -> Result<(ExperimentPlan, Option<Duration>), String> {
    let mut opts: HashMap<String, String> = HashMap::new();
    for (key, value) in pairs {
        let key = key.replace('_', "-");
        if opts.insert(key.clone(), value.clone()).is_some() {
            return Err(format!("duplicate option '{key}'"));
        }
    }
    const KNOWN: &[&str] = &[
        "scenarios",
        "algs",
        "seeds",
        "plan-seed",
        "profile",
        "sim-threads",
        "name",
        "deadline-s",
    ];
    for key in opts.keys() {
        if !KNOWN.contains(&key.as_str()) {
            return Err(format!(
                "unknown option '{key}' (expected one of {})",
                KNOWN.join(", ")
            ));
        }
    }
    let scenarios_text = opts
        .get("scenarios")
        .ok_or("plan requires scenarios= (e.g. scenarios=disk:n=40,ring)")?;
    let scenarios: Vec<ScenarioSpec> = scenarios_text
        .split(',')
        .map(ScenarioSpec::parse)
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let algs_text = opts
        .get("algs")
        .map(String::as_str)
        .unwrap_or("separator,grid,wave");
    let algorithms: Vec<AlgSpec> = algs_text
        .split(',')
        .map(AlgSpec::parse)
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let profile = match opts.get("profile") {
        None => Profile::Full,
        Some(text) => Profile::parse(text).map_err(|e| e.to_string())?,
    };
    let parse_u = |key: &str, default: usize| -> Result<usize, String> {
        match opts.get(key) {
            None => Ok(default),
            Some(text) => text
                .trim()
                .parse::<usize>()
                .map_err(|_| format!("option '{key}' wants an unsigned integer, got {text:?}")),
        }
    };
    let sim_threads = parse_u("sim-threads", 1)?;
    if sim_threads == 0 {
        return Err("sim-threads must be at least 1".to_string());
    }
    let deadline = match opts.get("deadline-s") {
        None => None,
        Some(text) => {
            let seconds = text
                .trim()
                .parse::<f64>()
                .map_err(|_| format!("deadline-s wants seconds, got {text:?}"))?;
            if !seconds.is_finite() || seconds <= 0.0 {
                return Err(format!(
                    "deadline-s must be positive and finite, got {text:?}"
                ));
            }
            Some(Duration::from_secs_f64(seconds))
        }
    };
    let mut plan = ExperimentPlan::new(opts.get("name").map(String::as_str).unwrap_or("serve"))
        .seeds(parse_u("seeds", 3)?)
        .plan_seed(parse_u("plan-seed", 1)? as u64)
        .profile(profile)
        .sim_threads(sim_threads);
    plan.scenarios = scenarios;
    plan.algorithms = algorithms;
    plan.validate().map_err(|e| e.to_string())?;
    Ok((plan, deadline))
}

/// Reads a request (head + declared body) off one connection.
fn read_request(stream: &mut TcpStream) -> Result<(RequestHead, String), String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_blank_line(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err("request head exceeds 16 KiB".to_string());
        }
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-request".to_string());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head_text = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| "request head is not UTF-8".to_string())?;
    let head = parse_request_head(head_text)?;
    let mut body = buf[head_end..].to_vec();
    // find_blank_line's offset points at the start of the body already.
    while body.len() < head.content_length {
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-body".to_string());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(head.content_length);
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    Ok((head, body))
}

/// Byte offset just past the first blank line (`\r\n\r\n` or `\n\n`), or
/// `None` while the head is still incomplete.
fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

fn write_json(stream: &mut TcpStream, status: u16, reason: &str, body: &str) -> io::Result<()> {
    write_response(stream, status, reason, "application/json", body)
}

fn write_error(stream: &mut TcpStream, status: u16, reason: &str, message: &str) -> io::Result<()> {
    write_json(
        stream,
        status,
        reason,
        &format!("{{\"error\":{:?}}}", message),
    )
}

fn handle_connection(mut stream: TcpStream, state: &Arc<ServerState>) -> io::Result<()> {
    // A stalled client must not pin a connection thread forever; streaming
    // writes below clear the limit once the request is accepted.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let (head, body) = match read_request(&mut stream) {
        Ok(parsed) => parsed,
        Err(message) => return write_error(&mut stream, 400, "Bad Request", &message),
    };
    let segments: Vec<&str> = head.path.split('/').filter(|s| !s.is_empty()).collect();
    match (head.method.as_str(), segments.as_slice()) {
        ("GET", ["health"]) => {
            let cache = state.engine.cache_stats();
            let queued = state.queue.lock().expect("plan queue poisoned").len();
            write_json(
                &mut stream,
                200,
                "OK",
                &format!(
                    "{{\"status\":\"ok\",\"queued\":{queued},\"cache_hits\":{},\"cache_misses\":{},\"cache_entries\":{}}}",
                    cache.hits, cache.misses, cache.entries
                ),
            )
        }
        ("POST", ["plans"]) => {
            // Options may ride in the body or the query string.
            let text = if body.trim().is_empty() {
                &head.query
            } else {
                &body
            };
            let (plan, deadline) = match parse_params(text).and_then(|p| plan_from_params(&p)) {
                Ok(built) => built,
                Err(message) => return write_error(&mut stream, 400, "Bad Request", &message),
            };
            let entry = {
                let mut queue = state.queue.lock().expect("plan queue poisoned");
                if queue.len() >= state.queue_depth {
                    return write_error(
                        &mut stream,
                        429,
                        "Too Many Requests",
                        &format!("plan queue is full ({} pending)", queue.len()),
                    );
                }
                let id = state.next_id.fetch_add(1, Ordering::Relaxed);
                let entry = Arc::new(PlanEntry::new(id, plan, deadline));
                queue.push_back(Arc::clone(&entry));
                state
                    .plans
                    .lock()
                    .expect("plan map poisoned")
                    .insert(id, Arc::clone(&entry));
                state.queue_ready.notify_all();
                entry
            };
            write_json(
                &mut stream,
                202,
                "Accepted",
                &format!("{{\"id\":{},\"total\":{}}}", entry.id, entry.total),
            )
        }
        ("GET", ["plans", id]) => match lookup(state, id) {
            Some(entry) => write_json(&mut stream, 200, "OK", &entry.status_json()),
            None => write_error(&mut stream, 404, "Not Found", "no such plan"),
        },
        ("GET", ["plans", id, "stream"]) => match lookup(state, id) {
            Some(entry) => stream_plan(&mut stream, &entry),
            None => write_error(&mut stream, 404, "Not Found", "no such plan"),
        },
        ("POST", ["plans", id, "cancel"]) => match lookup(state, id) {
            Some(entry) => {
                entry.request_cancel();
                write_json(
                    &mut stream,
                    200,
                    "OK",
                    &format!("{{\"id\":{},\"cancelling\":true}}", entry.id),
                )
            }
            None => write_error(&mut stream, 404, "Not Found", "no such plan"),
        },
        _ => write_error(
            &mut stream,
            404,
            "Not Found",
            &format!("no route for {} {}", head.method, head.path),
        ),
    }
}

fn lookup(state: &ServerState, id_text: &str) -> Option<Arc<PlanEntry>> {
    let id: u64 = id_text.parse().ok()?;
    state
        .plans
        .lock()
        .expect("plan map poisoned")
        .get(&id)
        .cloned()
}

/// Streams a plan's JSONL records with chunked transfer encoding: every
/// line emitted so far is replayed, then the connection follows the plan
/// until it reaches a terminal phase. The bytes (concatenated chunks) are
/// exactly the file `dftp sweep --format jsonl --out` writes for the same
/// plan, modulo `wall_time_s`.
fn stream_plan(stream: &mut TcpStream, entry: &PlanEntry) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/jsonl\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )?;
    let mut sent = 0usize;
    loop {
        // Take a batch of new lines (and the terminal verdict) under the
        // lock, then write outside it.
        let (batch, finished) = {
            let mut st = entry.state.lock().expect("plan state poisoned");
            loop {
                if st.lines.len() > sent || st.phase.is_terminal() {
                    break;
                }
                st = entry.progress.wait(st).expect("plan state poisoned");
            }
            let batch: Vec<String> = st.lines[sent..].to_vec();
            (batch, st.phase.is_terminal())
        };
        for line in &batch {
            // One JSONL record (newline included) per chunk.
            write!(stream, "{:x}\r\n{line}\n\r\n", line.len() + 1)?;
        }
        sent += batch.len();
        if finished {
            write!(stream, "0\r\n\r\n")?;
            return stream.flush();
        }
        stream.flush()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_head_parses_the_routes_we_serve() {
        let head = parse_request_head("POST /plans HTTP/1.1\r\nHost: x\r\nContent-Length: 12\r\n")
            .unwrap();
        assert_eq!(head.method, "POST");
        assert_eq!(head.path, "/plans");
        assert_eq!(head.query, "");
        assert_eq!(head.content_length, 12);
        let head = parse_request_head("GET /plans/7/stream?x=1 HTTP/1.1").unwrap();
        assert_eq!(head.path, "/plans/7/stream");
        assert_eq!(head.query, "x=1");
        assert_eq!(head.content_length, 0);
    }

    #[test]
    fn request_head_rejects_malformed_lines() {
        for bad in [
            "",
            "GET",
            "GET /x",
            "GET /x HTTP/2",
            "GET x HTTP/1.1",
            "GET /x HTTP/1.1 extra",
            "GET /x HTTP/1.1\r\nbadheader\r\n",
            "GET /x HTTP/1.1\r\nContent-Length: nope\r\n",
            "GET /x HTTP/1.1\r\nContent-Length: 999999999\r\n",
        ] {
            assert!(parse_request_head(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn percent_decoding_handles_escapes_and_passthrough() {
        assert_eq!(percent_decode("a+b%3Dc%2Cd"), "a b=c,d");
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("bad%zz%"), "bad%zz%");
    }

    #[test]
    fn plan_params_mirror_the_sweep_grammar() {
        let pairs = parse_params(
            "scenarios=disk:n=12:radius=4&algs=grid,wave&seeds=2&plan-seed=7&profile=stats",
        )
        .unwrap();
        let (plan, deadline) = plan_from_params(&pairs).unwrap();
        assert_eq!(plan.scenarios.len(), 1);
        assert_eq!(plan.algorithms.len(), 2);
        assert_eq!(plan.seeds, 2);
        assert_eq!(plan.plan_seed, 7);
        assert_eq!(plan.profile, Profile::Stats);
        assert_eq!(deadline, None);
        // Underscored spellings are accepted; unknown keys are not.
        let (_, deadline) =
            plan_from_params(&parse_params("scenarios=disk&plan_seed=3&deadline_s=1.5").unwrap())
                .unwrap();
        assert_eq!(deadline, Some(Duration::from_secs_f64(1.5)));
        assert!(plan_from_params(&parse_params("scenarios=disk&bogus=1").unwrap()).is_err());
        assert!(plan_from_params(&parse_params("algs=grid").unwrap()).is_err());
    }

    #[test]
    fn blank_line_finder_handles_both_conventions() {
        assert_eq!(find_blank_line(b"a\r\n\r\nrest"), Some(5));
        assert_eq!(find_blank_line(b"a\n\nrest"), Some(3));
        assert_eq!(find_blank_line(b"partial\r\n"), None);
    }
}
