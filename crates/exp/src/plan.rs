//! Declarative experiment plans: scenarios × algorithms × seeds.

use crate::ExpError;
use freezetag_central::WakeStrategy;
use freezetag_core::Algorithm;
use freezetag_instances::registry::{self, ParamMap};
use std::fmt;

/// A named scenario: a registry generator plus a parameter map.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Display/grouping name (defaults to the spec text or generator).
    pub name: String,
    /// Registry key (canonical name or alias).
    pub generator: String,
    /// Named parameters; absent keys take registry defaults.
    pub params: ParamMap,
}

impl ScenarioSpec {
    /// A scenario of the given registry generator with default parameters,
    /// named after the generator.
    pub fn new(generator: &str) -> Self {
        ScenarioSpec {
            name: generator.to_string(),
            generator: generator.to_string(),
            params: ParamMap::new(),
        }
    }

    /// Sets one parameter (builder style).
    #[must_use]
    pub fn with(mut self, key: &str, value: f64) -> Self {
        self.params.insert(key.to_string(), value);
        self
    }

    /// Overrides the display name (builder style).
    #[must_use]
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Parses the CLI syntax `generator[:key=value]*`, e.g.
    /// `disk:n=40:radius=8`. The scenario name is the spec text itself, so
    /// two specs of the same generator with different parameters aggregate
    /// separately.
    ///
    /// # Errors
    ///
    /// [`ExpError::InvalidPlan`] on malformed syntax (generator existence
    /// is checked later, by [`ExperimentPlan::validate`]).
    pub fn parse(text: &str) -> Result<Self, ExpError> {
        let text = text.trim();
        let mut parts = text.split(':');
        let generator = parts
            .next()
            .filter(|g| !g.is_empty())
            .ok_or_else(|| ExpError::InvalidPlan(format!("empty scenario spec '{text}'")))?;
        let mut spec = ScenarioSpec::new(generator).named(text);
        for part in parts {
            let Some((key, value)) = part.split_once('=') else {
                return Err(ExpError::InvalidPlan(format!(
                    "scenario '{text}': expected key=value, got '{part}'"
                )));
            };
            let value: f64 = value.trim().parse().map_err(|_| {
                ExpError::InvalidPlan(format!(
                    "scenario '{text}': parameter '{key}' expects a number, got '{value}'"
                ))
            })?;
            spec.params.insert(key.trim().to_string(), value);
        }
        Ok(spec)
    }
}

/// What to run on each scenario: one of the paper's distributed
/// algorithms (optionally with a Lemma 2 wake-strategy override for
/// `ASeparator`), a centralized wake-tree baseline on known positions, or
/// the exact branch-and-bound optimum (tiny instances only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlgSpec {
    /// A distributed algorithm driven through the simulator.
    Distributed {
        /// Which of the three paper algorithms.
        algorithm: Algorithm,
        /// Lemma 2 substitute override (`ASeparator` only).
        strategy: Option<WakeStrategy>,
    },
    /// A centralized wake tree built directly on the instance positions.
    Central(WakeStrategy),
    /// The parallel anytime local-search optimizer
    /// ([`freezetag_central::anytime_wake_tree`]) at its default
    /// iteration budget — deterministic, and the strongest centralized
    /// baseline for the ratio tables.
    CentralAnytime,
    /// The exact optimal makespan (branch and bound; n ≲ 10).
    CentralOptimal,
}

impl From<Algorithm> for AlgSpec {
    fn from(algorithm: Algorithm) -> Self {
        AlgSpec::Distributed {
            algorithm,
            strategy: None,
        }
    }
}

impl AlgSpec {
    /// `ASeparator` with an explicit Lemma 2 substitute.
    pub fn separator_with(strategy: WakeStrategy) -> Self {
        AlgSpec::Distributed {
            algorithm: Algorithm::Separator,
            strategy: Some(strategy),
        }
    }

    /// Stable label used for grouping, tables and emitted records.
    pub fn label(&self) -> String {
        match self {
            AlgSpec::Distributed {
                algorithm,
                strategy: None,
            } => algorithm.to_string(),
            AlgSpec::Distributed {
                algorithm,
                strategy: Some(s),
            } => format!("{algorithm}[{s}]"),
            AlgSpec::Central(s) => format!("central[{s}]"),
            AlgSpec::CentralAnytime => "central[anytime]".to_string(),
            AlgSpec::CentralOptimal => "central[optimal]".to_string(),
        }
    }

    /// Parses the CLI syntax: `separator`, `grid`, `wave`,
    /// `separator:greedy` (strategy override), `central:quadtree` /
    /// `central:greedy` / `central:median` / `central:chain`,
    /// `central-anytime` (alias `central:anytime`), `optimal`.
    ///
    /// # Errors
    ///
    /// [`ExpError::InvalidPlan`] on unknown names.
    pub fn parse(text: &str) -> Result<Self, ExpError> {
        let text = text.trim();
        let (head, tail) = match text.split_once(':') {
            Some((h, t)) => (h, Some(t)),
            None => (text, None),
        };
        let strategy = |name: &str| -> Result<WakeStrategy, ExpError> {
            match name {
                "quadtree" => Ok(WakeStrategy::Quadtree),
                "greedy" => Ok(WakeStrategy::Greedy),
                "median" => Ok(WakeStrategy::MedianSplit),
                "chain" => Ok(WakeStrategy::Chain),
                other => Err(ExpError::InvalidPlan(format!(
                    "unknown wake strategy '{other}' (quadtree|greedy|median|chain)"
                ))),
            }
        };
        match (head, tail) {
            ("separator", None) => Ok(Algorithm::Separator.into()),
            ("separator", Some(t)) => Ok(AlgSpec::separator_with(strategy(t)?)),
            ("grid", None) => Ok(Algorithm::Grid.into()),
            ("wave", None) => Ok(Algorithm::Wave.into()),
            ("central-anytime", None) | ("central", Some("anytime")) => Ok(AlgSpec::CentralAnytime),
            ("central", Some(t)) => Ok(AlgSpec::Central(strategy(t)?)),
            ("optimal", None) => Ok(AlgSpec::CentralOptimal),
            _ => Err(ExpError::InvalidPlan(format!(
                "unknown algorithm spec '{text}' \
                 (separator[:STRATEGY]|grid|wave|central:STRATEGY|central-anytime|optimal)"
            ))),
        }
    }
}

impl fmt::Display for AlgSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Which recorder a plan's simulated jobs run with.
///
/// `Full` keeps complete per-robot segment timelines and validates every
/// schedule independently — the default, and required for SVG export and
/// the adversarial theorem checks. `Stats` records constant memory per
/// robot (wake time, travel, current state) and skips validation, which is
/// what makes 10⁵–10⁶-robot sweeps tractable; its aggregates are
/// bit-identical to the full recorder's. `Compressed` keeps the full
/// schedule in a delta-encoded block format (~an order of magnitude
/// smaller than `Full`) and still validates every run through the
/// streaming validator — full-fidelity checking at `Stats`-like scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Profile {
    /// Full schedules + independent validation (+ ξ_ℓ measurement).
    #[default]
    Full,
    /// Constant-memory aggregates, no validation, no ξ_ℓ.
    Stats,
    /// Compressed schedules + streaming validation, no ξ_ℓ.
    Compressed,
}

impl Profile {
    /// Parses the CLI syntax: `full`, `stats` or `compressed`.
    ///
    /// # Errors
    ///
    /// [`ExpError::InvalidPlan`] on unknown names.
    pub fn parse(text: &str) -> Result<Self, ExpError> {
        match text.trim() {
            "full" => Ok(Profile::Full),
            "stats" => Ok(Profile::Stats),
            "compressed" => Ok(Profile::Compressed),
            other => Err(ExpError::InvalidPlan(format!(
                "unknown profile '{other}' (full|stats|compressed)"
            ))),
        }
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Profile::Full => write!(f, "full"),
            Profile::Stats => write!(f, "stats"),
            Profile::Compressed => write!(f, "compressed"),
        }
    }
}

/// One fully resolved job of a plan's cross-product.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpec {
    /// Position in the cross-product; results are reported in this order.
    pub index: usize,
    /// Index into [`ExperimentPlan::scenarios`].
    pub scenario: usize,
    /// The algorithm to run.
    pub algorithm: AlgSpec,
    /// Repetition number within the cell (0-based).
    pub seed_index: usize,
    /// Generator seed, derived via [`derive_seed`] from the plan seed and
    /// the (scenario, repetition) pair — *not* from the algorithm — so
    /// every algorithm in a cell runs on the identical instance (paired
    /// comparisons).
    pub seed: u64,
}

/// A declarative experiment: the cross-product of scenarios, algorithms
/// and seeded repetitions, plus the plan seed all job seeds derive from.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentPlan {
    /// Plan name (carried into emitted records).
    pub name: String,
    /// Scenario axis.
    pub scenarios: Vec<ScenarioSpec>,
    /// Algorithm axis.
    pub algorithms: Vec<AlgSpec>,
    /// Seeded repetitions per (scenario, algorithm) cell.
    pub seeds: usize,
    /// Master seed; per-job seeds are [`derive_seed`]`(plan_seed, index)`.
    pub plan_seed: u64,
    /// Recorder profile for the simulated jobs.
    pub profile: Profile,
    /// Intra-job parallelism: every simulated job runs on a deterministic
    /// `ParPool` of this many threads (1 = sequential, the default). All
    /// job results are bit-identical for any value — the pool only fans
    /// out pure batches with order-preserving merges — so this trades
    /// inter-job for intra-job parallelism without touching output.
    pub sim_threads: usize,
}

impl ExperimentPlan {
    /// An empty plan with one repetition and plan seed 1.
    pub fn new(name: &str) -> Self {
        ExperimentPlan {
            name: name.to_string(),
            scenarios: Vec::new(),
            algorithms: Vec::new(),
            seeds: 1,
            plan_seed: 1,
            profile: Profile::Full,
            sim_threads: 1,
        }
    }

    /// Appends a scenario (builder style).
    #[must_use]
    pub fn scenario(mut self, spec: ScenarioSpec) -> Self {
        self.scenarios.push(spec);
        self
    }

    /// Appends an algorithm (builder style).
    #[must_use]
    pub fn algorithm(mut self, alg: impl Into<AlgSpec>) -> Self {
        self.algorithms.push(alg.into());
        self
    }

    /// Sets the repetitions per cell (builder style).
    #[must_use]
    pub fn seeds(mut self, seeds: usize) -> Self {
        self.seeds = seeds;
        self
    }

    /// Sets the plan seed (builder style).
    #[must_use]
    pub fn plan_seed(mut self, plan_seed: u64) -> Self {
        self.plan_seed = plan_seed;
        self
    }

    /// Sets the recorder profile (builder style).
    #[must_use]
    pub fn profile(mut self, profile: Profile) -> Self {
        self.profile = profile;
        self
    }

    /// Sets the per-job intra-job parallelism (builder style); must be at
    /// least 1 (checked by [`ExperimentPlan::validate`]).
    #[must_use]
    pub fn sim_threads(mut self, sim_threads: usize) -> Self {
        self.sim_threads = sim_threads;
        self
    }

    /// Total number of jobs in the cross-product.
    pub fn job_count(&self) -> usize {
        self.scenarios.len() * self.algorithms.len() * self.seeds
    }

    /// The full cross-product in deterministic order: scenarios outermost,
    /// then algorithms, then repetitions.
    pub fn jobs(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::with_capacity(self.job_count());
        for scenario in 0..self.scenarios.len() {
            for &algorithm in &self.algorithms {
                for seed_index in 0..self.seeds {
                    let pair = (scenario * self.seeds + seed_index) as u64;
                    jobs.push(JobSpec {
                        index: jobs.len(),
                        scenario,
                        algorithm,
                        seed_index,
                        seed: derive_seed(self.plan_seed, pair),
                    });
                }
            }
        }
        jobs
    }

    /// Checks the plan before any job runs: non-empty axes, at least one
    /// repetition, every scenario resolvable in the generator registry
    /// with accepted keys and in-domain values, and no centralized
    /// algorithm paired with an adversarial scenario — so a bad cell fails
    /// the sweep up front instead of discarding completed jobs mid-run.
    ///
    /// # Errors
    ///
    /// [`ExpError::InvalidPlan`] or a registry error, naming the offender.
    pub fn validate(&self) -> Result<(), ExpError> {
        if self.scenarios.is_empty() {
            return Err(ExpError::InvalidPlan("no scenarios".into()));
        }
        if self.algorithms.is_empty() {
            return Err(ExpError::InvalidPlan("no algorithms".into()));
        }
        if self.seeds == 0 {
            return Err(ExpError::InvalidPlan("seeds must be >= 1".into()));
        }
        if self.sim_threads == 0 {
            return Err(ExpError::InvalidPlan("sim_threads must be >= 1".into()));
        }
        for spec in &self.scenarios {
            let info = registry::validate(&spec.generator, &spec.params)
                .map_err(|e| ExpError::Registry(format!("scenario '{}': {e}", spec.name)))?;
            if info.adversarial {
                if let Some(alg) = self.algorithms.iter().find(|a| {
                    matches!(
                        a,
                        AlgSpec::Central(_) | AlgSpec::CentralAnytime | AlgSpec::CentralOptimal
                    )
                }) {
                    return Err(ExpError::InvalidPlan(format!(
                        "scenario '{}' is adversarial but {} needs known positions",
                        spec.name,
                        alg.label()
                    )));
                }
                if self.profile != Profile::Full {
                    // The adversarial theorem checks replay full schedules
                    // against the pinned positions; the stats and
                    // compressed recorders cannot hand over a `Schedule`.
                    return Err(ExpError::InvalidPlan(format!(
                        "scenario '{}' is adversarial and requires the full profile",
                        spec.name
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Deterministic per-job seed: a splitmix64 finalizer over
/// `(plan_seed, job_index)`, where the plan uses the job's
/// (scenario, repetition) pair index so algorithms within a cell share
/// instances. Stable across platforms, thread counts and runs — the
/// contract behind byte-identical sweep output.
pub fn derive_seed(plan_seed: u64, job_index: u64) -> u64 {
    let mut z = plan_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(job_index.wrapping_add(1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_product_order_and_seeds_are_deterministic() {
        let plan = ExperimentPlan::new("t")
            .scenario(ScenarioSpec::new("disk"))
            .scenario(ScenarioSpec::new("ring"))
            .algorithm(Algorithm::Grid)
            .algorithm(Algorithm::Wave)
            .seeds(3)
            .plan_seed(42);
        let jobs = plan.jobs();
        assert_eq!(jobs.len(), 12);
        assert_eq!(plan.job_count(), 12);
        // Scenario-major, algorithm next, repetition innermost.
        assert_eq!(jobs[0].scenario, 0);
        assert_eq!(jobs[3].algorithm, AlgSpec::from(Algorithm::Wave));
        assert_eq!(jobs[6].scenario, 1);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.index, i);
            let pair = (j.scenario * 3 + j.seed_index) as u64;
            assert_eq!(j.seed, derive_seed(42, pair));
        }
        // Paired design: every algorithm of a cell gets the same seed.
        assert_eq!(jobs[0].seed, jobs[3].seed, "AGrid/AWave must pair up");
        assert_ne!(jobs[0].seed, jobs[1].seed, "repetitions must differ");
        assert_ne!(jobs[0].seed, jobs[6].seed, "scenarios must differ");
        assert_eq!(plan.jobs(), jobs, "jobs() must be reproducible");
    }

    #[test]
    fn derived_seeds_differ_across_jobs_and_plan_seeds() {
        let a: Vec<u64> = (0..64).map(|i| derive_seed(1, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| derive_seed(2, i)).collect();
        assert_ne!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "collision in 64 derived seeds");
    }

    #[test]
    fn scenario_parse_round_trips_params() {
        let s = ScenarioSpec::parse("disk:n=40:radius=8.5").unwrap();
        assert_eq!(s.generator, "disk");
        assert_eq!(s.name, "disk:n=40:radius=8.5");
        assert_eq!(s.params.get("n"), Some(&40.0));
        assert_eq!(s.params.get("radius"), Some(&8.5));
        assert!(ScenarioSpec::parse("disk:n").is_err());
        assert!(ScenarioSpec::parse("disk:n=abc").is_err());
        assert!(ScenarioSpec::parse("").is_err());
    }

    #[test]
    fn alg_parse_covers_all_forms() {
        assert_eq!(
            AlgSpec::parse("separator").unwrap(),
            AlgSpec::from(Algorithm::Separator)
        );
        assert_eq!(
            AlgSpec::parse("separator:chain").unwrap(),
            AlgSpec::separator_with(WakeStrategy::Chain)
        );
        assert_eq!(
            AlgSpec::parse("central:median").unwrap(),
            AlgSpec::Central(WakeStrategy::MedianSplit)
        );
        assert_eq!(AlgSpec::parse("optimal").unwrap(), AlgSpec::CentralOptimal);
        assert_eq!(
            AlgSpec::parse("central-anytime").unwrap(),
            AlgSpec::CentralAnytime
        );
        assert_eq!(
            AlgSpec::parse("central:anytime").unwrap(),
            AlgSpec::CentralAnytime
        );
        assert_eq!(AlgSpec::CentralAnytime.label(), "central[anytime]");
        assert!(AlgSpec::parse("grid:greedy").is_err());
        assert!(AlgSpec::parse("teleport").is_err());
        assert_eq!(
            AlgSpec::parse("central:chain").unwrap().label(),
            "central[chain]"
        );
    }

    #[test]
    fn validate_catches_structural_and_registry_errors() {
        let empty = ExperimentPlan::new("t");
        assert!(empty.validate().is_err());
        let bad_gen = ExperimentPlan::new("t")
            .scenario(ScenarioSpec::new("warp"))
            .algorithm(Algorithm::Grid);
        assert!(bad_gen.validate().is_err());
        let bad_key = ExperimentPlan::new("t")
            .scenario(ScenarioSpec::new("disk").with("spacing", 1.0))
            .algorithm(Algorithm::Grid);
        let err = bad_key.validate().unwrap_err();
        assert!(err.to_string().contains("spacing"), "{err}");
        let zero_seeds = ExperimentPlan::new("t")
            .scenario(ScenarioSpec::new("disk"))
            .algorithm(Algorithm::Grid)
            .seeds(0);
        assert!(zero_seeds.validate().is_err());
    }

    #[test]
    fn sim_threads_defaults_to_one_and_rejects_zero() {
        let plan = ExperimentPlan::new("t")
            .scenario(ScenarioSpec::new("disk"))
            .algorithm(Algorithm::Grid);
        assert_eq!(plan.sim_threads, 1);
        assert!(plan.clone().sim_threads(4).validate().is_ok());
        let err = plan.sim_threads(0).validate().unwrap_err();
        assert!(err.to_string().contains("sim_threads"), "{err}");
    }

    #[test]
    fn profile_parse_round_trips_all_variants() {
        for p in [Profile::Full, Profile::Stats, Profile::Compressed] {
            assert_eq!(Profile::parse(&p.to_string()).unwrap(), p);
        }
        let err = Profile::parse("fast").unwrap_err();
        assert!(err.to_string().contains("compressed"), "{err}");
    }

    #[test]
    fn adversarial_scenarios_reject_every_non_full_profile() {
        let base = ExperimentPlan::new("t")
            .scenario(ScenarioSpec::new("theorem2"))
            .algorithm(Algorithm::Separator);
        assert!(base.clone().validate().is_ok());
        for profile in [Profile::Stats, Profile::Compressed] {
            let err = base.clone().profile(profile).validate().unwrap_err();
            assert!(err.to_string().contains("full profile"), "{err}");
        }
    }

    #[test]
    fn validate_fails_early_on_bad_values_and_incompatible_cells() {
        // A value outside the construction's domain is caught before any
        // job runs, not mid-sweep.
        let bad_value = ExperimentPlan::new("t")
            .scenario(ScenarioSpec::new("disk"))
            .scenario(ScenarioSpec::new("theorem6").with("xi", 5000.0))
            .algorithm(Algorithm::Grid);
        let err = bad_value.validate().unwrap_err();
        assert!(err.to_string().contains("xi"), "{err}");
        // Centralized baselines need known positions: pairing them with an
        // adversarial layout is a plan error.
        let incompatible = ExperimentPlan::new("t")
            .scenario(ScenarioSpec::new("theorem2"))
            .algorithm(AlgSpec::CentralOptimal);
        let err = incompatible.validate().unwrap_err();
        assert!(err.to_string().contains("adversarial"), "{err}");
        let incompatible = ExperimentPlan::new("t")
            .scenario(ScenarioSpec::new("theorem2"))
            .algorithm(AlgSpec::CentralAnytime);
        let err = incompatible.validate().unwrap_err();
        assert!(err.to_string().contains("adversarial"), "{err}");
    }
}
