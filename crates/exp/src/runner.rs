//! Per-job execution: building a world from a [`JobSpec`], dispatching the
//! algorithm under the plan's recorder profile, and measuring the result.
//!
//! This module owns the *single-job* layer: the result types
//! ([`JobResult`], [`SingleRun`], [`StatsRun`], [`CompressedRun`]), the
//! worker-resident `JobContext` and the core-budget split
//! ([`inter_job_workers`]). Multi-job orchestration — worker pools,
//! streaming windows, the result cache, cancellation — lives in the
//! [`Engine`](crate::Engine) facade; the free functions kept here
//! ([`run_single`] and friends, [`run_plan`], [`run_plan_streaming`]) are
//! deprecated shims over it.

use crate::plan::{AlgSpec, ExperimentPlan, JobSpec, Profile, ScenarioSpec};
use crate::ExpError;
use freezetag_central::{anytime_wake_tree, optimal_makespan, AnytimeConfig, WakeStrategy};
use freezetag_core::{
    a_grid, a_separator_in, a_wave_in, AGridConfig, ASeparatorConfig, AWaveConfig, AlgScratch,
    Algorithm, RunReport,
};
use freezetag_geometry::Point;
use freezetag_instances::registry::{self, Built};
use freezetag_instances::{AdmissibleTuple, Instance};
use freezetag_sim::{
    validate, validate_compressed, AdversarialWorld, CancelToken, ConcreteWorld, ParPool, Recorder,
    RobotId, Schedule, Sim, StatsRecorder, ValidationOptions, WorldView,
};
use std::time::Instant;

/// Worker-resident per-job state: everything a resident worker thread
/// reuses across jobs instead of reallocating — the algorithms'
/// [`AlgScratch`] (knowledge store + spatial index, epoch-cleared between
/// jobs) and the stats recorder's per-robot buffers (recycled in place).
/// The cancellation token is shared by every job the worker runs.
///
/// Reuse is unobservable in results (pinned by the determinism suites);
/// state left dirty by a cancelled job heals itself: the scratch resets on
/// next use and a recorder lost to an unwind is simply rebuilt.
pub(crate) struct JobContext {
    pub(crate) cancel: CancelToken,
    pub(crate) scratch: AlgScratch,
    pub(crate) stats_recorder: Option<StatsRecorder>,
}

impl JobContext {
    pub(crate) fn new(cancel: CancelToken) -> Self {
        JobContext {
            cancel,
            scratch: AlgScratch::new(),
            stats_recorder: None,
        }
    }
}

/// Everything measured on one job of a plan. Every field except
/// [`JobResult::wall_time_s`] is a deterministic function of
/// `(plan, job index)` — the wall time is the only thing a machine or
/// thread count may change.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Job index in the plan's cross-product.
    pub job: usize,
    /// Scenario display name.
    pub scenario: String,
    /// Canonical generator name.
    pub generator: String,
    /// Algorithm label ([`AlgSpec::label`]).
    pub algorithm: String,
    /// Derived generator seed.
    pub seed: u64,
    /// Repetition number within the cell.
    pub seed_index: usize,
    /// Number of sleeping robots.
    pub n: usize,
    /// Connectivity parameter ℓ handed to the algorithm.
    pub ell: f64,
    /// Radius bound ρ handed to the algorithm.
    pub rho: f64,
    /// Measured eccentricity ξ_ℓ (concrete instances only).
    pub xi_ell: Option<f64>,
    /// Time the last robot was woken.
    pub makespan: f64,
    /// Time the last robot stopped moving.
    pub completion_time: f64,
    /// Worst per-robot travel. `NaN` for the centralized baselines, which
    /// do not measure per-robot energy (emitted as JSON `null`/empty CSV
    /// and skipped by aggregation).
    pub max_energy: f64,
    /// Total travel of the swarm (`NaN` for `central[optimal]`).
    pub total_energy: f64,
    /// `look` snapshots taken (0 for centralized baselines).
    pub looks: usize,
    /// Whether every robot ended awake.
    pub all_awake: bool,
    /// Recorder high-water heap footprint in bytes — a deterministic
    /// estimate counting recorded lengths, not allocator capacity, so it is
    /// identical for any thread count. `NaN` for the centralized baselines
    /// (no simulation recorder; emitted as JSON `null`/empty CSV).
    pub peak_mem_bytes: f64,
    /// Wall-clock seconds this job took (non-deterministic).
    pub wall_time_s: f64,
}

/// One fully materialized run, for harnesses that need more than the
/// [`JobResult`] numbers: the schedule (wake times, timelines), the phase
/// trace (inside [`RunReport`]), and the robot positions for rendering.
#[derive(Debug, Clone)]
pub struct SingleRun {
    /// Source position.
    pub source: Point,
    /// Number of sleeping robots in the world (authoritative even when
    /// `positions` is empty because an adversary kept robots hidden).
    pub n: usize,
    /// Robot positions — initial for concrete scenarios, final (pinned)
    /// for adversarial ones (empty if not all were pinned).
    pub positions: Vec<Point>,
    /// Connectivity parameter ℓ of the run.
    pub ell: f64,
    /// Radius bound ρ of the run.
    pub rho: f64,
    /// Measured eccentricity ξ_ℓ (concrete instances only).
    pub xi_ell: Option<f64>,
    /// Validated measurements plus the phase trace.
    pub report: RunReport,
    /// The full schedule the run produced.
    pub schedule: Schedule,
}

/// The input tuple a simulated job hands to its algorithm: the scale
/// families declare `ℓ` (skipping the `O(n²)` exact-threshold pass, which
/// 10⁶-robot instances cannot afford) with `ρ` from an `O(n)` radius scan;
/// every other scenario computes its exact canonical tuple.
///
/// # Errors
///
/// [`ExpError::InvalidPlan`] when a declared `ℓ` rounds to an inadmissible
/// tuple for the built instance (e.g. a shrunken scale family whose radius
/// exceeds `nℓ`) — a clean sweep error instead of a worker panic.
fn tuple_for(
    spec: &ScenarioSpec,
    inst: &Instance,
    pool: &ParPool,
) -> Result<AdmissibleTuple, ExpError> {
    match registry::preset_ell(&spec.generator, &spec.params) {
        Some(ell) => {
            let src = inst.source();
            // O(n) radius scan, batched on the pool: f64::max is exactly
            // associative, so the reduction is bit-identical to the
            // sequential fold.
            let rho_star = pool.max_f64(
                inst.positions(),
                freezetag_sim::par::POINT_BATCH,
                0.0,
                |p| p.dist(src),
            );
            AdmissibleTuple::rounded(ell, rho_star, inst.n())
                .map_err(|e| ExpError::InvalidPlan(format!("scenario '{}': {e}", spec.name)))
        }
        None => Ok(inst.admissible_tuple()),
    }
}

fn dispatch<W: WorldView, R: Recorder>(
    sim: &mut Sim<W, R>,
    tuple: &AdmissibleTuple,
    algorithm: Algorithm,
    strategy: Option<WakeStrategy>,
    scratch: &mut AlgScratch,
) -> Result<(), ExpError> {
    match (algorithm, strategy) {
        (Algorithm::Separator, s) => a_separator_in(
            sim,
            &ASeparatorConfig {
                tuple: *tuple,
                strategy: s.unwrap_or_default(),
            },
            scratch,
        ),
        (_, Some(_)) => {
            return Err(ExpError::Unsupported(format!(
                "wake-strategy overrides only apply to ASeparator, not {algorithm}"
            )))
        }
        (Algorithm::Grid, None) => a_grid(sim, &AGridConfig { ell: tuple.ell }),
        (Algorithm::Wave, None) => a_wave_in(sim, &AWaveConfig { ell: tuple.ell }, scratch),
    }
    Ok(())
}

fn single_concrete(
    scenario: &str,
    spec: &ScenarioSpec,
    inst: Instance,
    algorithm: Algorithm,
    strategy: Option<WakeStrategy>,
    pool: ParPool,
    ctx: &mut JobContext,
) -> Result<SingleRun, ExpError> {
    let tuple = tuple_for(spec, &inst, &pool)?;
    let mut sim = Sim::new(ConcreteWorld::with_pool(&inst, &pool))
        .with_pool(pool)
        .with_cancel(ctx.cancel.clone());
    dispatch(&mut sim, &tuple, algorithm, strategy, &mut ctx.scratch)?;
    let looks = sim.world().look_count();
    let (_, schedule, trace) = sim.into_parts();
    let label = AlgSpec::Distributed {
        algorithm,
        strategy,
    }
    .label();
    let vr = validate(
        &schedule,
        inst.source(),
        inst.positions(),
        &ValidationOptions::default(),
    )
    .map_err(|e| ExpError::validation(scenario, &label, e))?;
    let report = RunReport {
        algorithm,
        makespan: vr.makespan,
        completion_time: vr.completion_time,
        max_energy: vr.max_energy,
        total_energy: vr.total_energy,
        wake_count: vr.wake_count,
        all_awake: vr.robots_awake == inst.n() + 1,
        looks,
        trace,
    };
    // ξ_ℓ is evaluated at the rounded ℓ of the tuple — whichever branch of
    // tuple_for produced it. For ordinary scenarios the radius/threshold
    // pass is already paid inside admissible_tuple(); for the preset-ℓ
    // scale families this Dijkstra is the first (and only) graph pass of
    // the run.
    let xi_ell = freezetag_graph::eccentricity(&inst.all_points(), 0, tuple.ell);
    Ok(SingleRun {
        source: inst.source(),
        n: inst.n(),
        positions: inst.positions().to_vec(),
        ell: tuple.ell,
        rho: tuple.rho,
        xi_ell,
        report,
        schedule,
    })
}

fn single_adversarial(
    scenario: &str,
    layout: freezetag_instances::adversarial::AdversarialLayout,
    algorithm: Algorithm,
    strategy: Option<WakeStrategy>,
    pool: ParPool,
    ctx: &mut JobContext,
) -> Result<SingleRun, ExpError> {
    let tuple = AdmissibleTuple::new(layout.ell, layout.rho, layout.n());
    // Adversarial sensing is impure (look history is state), so the pool
    // only accelerates world construction and frontier bucketing here —
    // which keeps the run identical at any `sim_threads`.
    let mut sim = Sim::new(AdversarialWorld::with_pool(layout, &pool))
        .with_pool(pool)
        .with_cancel(ctx.cancel.clone());
    dispatch(&mut sim, &tuple, algorithm, strategy, &mut ctx.scratch)?;
    let all_awake = sim.world().all_awake();
    let looks = sim.world().look_count();
    let finals = sim.world().final_positions();
    let (_, schedule, trace) = sim.into_parts();
    let label = AlgSpec::Distributed {
        algorithm,
        strategy,
    }
    .label();
    let report = match &finals {
        // All robots pinned: the revealed positions support the full
        // independent schedule validation, exactly like a concrete run.
        Some(positions) => {
            let opts = ValidationOptions {
                require_all_awake: false,
                ..Default::default()
            };
            let vr = validate(&schedule, Point::ORIGIN, positions, &opts)
                .map_err(|e| ExpError::validation(scenario, &label, e))?;
            RunReport {
                algorithm,
                makespan: vr.makespan,
                completion_time: vr.completion_time,
                max_energy: vr.max_energy,
                total_energy: vr.total_energy,
                wake_count: vr.wake_count,
                all_awake,
                looks,
                trace,
            }
        }
        // Adversary still hiding robots: report schedule-level statistics.
        None => RunReport {
            algorithm,
            makespan: schedule.makespan(),
            completion_time: schedule.completion_time(),
            max_energy: schedule.max_energy(),
            total_energy: schedule.total_energy(),
            wake_count: schedule.wakes().len(),
            all_awake,
            looks,
            trace,
        },
    };
    Ok(SingleRun {
        source: Point::ORIGIN,
        n: tuple.n,
        positions: finals.unwrap_or_default(),
        ell: tuple.ell,
        rho: tuple.rho,
        xi_ell: None,
        report,
        schedule,
    })
}

/// The full-profile single-run core shared by the [`Engine`](crate::Engine)
/// facade and the deprecated [`run_single`] shims.
pub(crate) fn single_full(
    spec: &ScenarioSpec,
    alg: AlgSpec,
    seed: u64,
    pool: ParPool,
    ctx: &mut JobContext,
) -> Result<SingleRun, ExpError> {
    let AlgSpec::Distributed {
        algorithm,
        strategy,
    } = alg
    else {
        return Err(ExpError::Unsupported(format!(
            "run_single needs a distributed algorithm, got {}",
            alg.label()
        )));
    };
    match registry::build(&spec.generator, &spec.params, seed)? {
        Built::Concrete(inst) => {
            single_concrete(&spec.name, spec, inst, algorithm, strategy, pool, ctx)
        }
        Built::Adversarial(layout) => {
            single_adversarial(&spec.name, layout, algorithm, strategy, pool, ctx)
        }
    }
}

/// Runs one scenario × algorithm × seed combination to completion and
/// returns the full run — schedule, phase trace, positions — for harnesses
/// (figures, SVG rendering) that need more than aggregate numbers.
///
/// # Errors
///
/// Registry errors, validation failures, or an [`ExpError::Unsupported`]
/// combination (centralized baselines have no schedule, so only
/// [`AlgSpec::Distributed`] is accepted here).
#[deprecated(note = "use Engine::new(EngineConfig::default()).single(...)")]
pub fn run_single(spec: &ScenarioSpec, alg: AlgSpec, seed: u64) -> Result<SingleRun, ExpError> {
    single_full(
        spec,
        alg,
        seed,
        ParPool::sequential(),
        &mut JobContext::new(CancelToken::never()),
    )
}

/// [`run_single`] with an explicit [`ParPool`] for deterministic intra-run
/// parallelism — the `--sim-threads` execution path. The returned run is
/// bit-identical for any pool width.
///
/// # Errors
///
/// As [`run_single`].
#[deprecated(note = "use Engine::single with EngineConfig::sim_threads")]
pub fn run_single_with(
    spec: &ScenarioSpec,
    alg: AlgSpec,
    seed: u64,
    pool: ParPool,
) -> Result<SingleRun, ExpError> {
    single_full(
        spec,
        alg,
        seed,
        pool,
        &mut JobContext::new(CancelToken::never()),
    )
}

/// The aggregate-only measurements of one constant-memory run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsRun {
    /// Number of sleeping robots.
    pub n: usize,
    /// Connectivity parameter ℓ handed to the algorithm.
    pub ell: f64,
    /// Radius bound ρ handed to the algorithm.
    pub rho: f64,
    /// Time the last robot was woken.
    pub makespan: f64,
    /// Time the last robot stopped moving.
    pub completion_time: f64,
    /// Worst per-robot travel.
    pub max_energy: f64,
    /// Total travel of the swarm.
    pub total_energy: f64,
    /// `look` snapshots taken.
    pub looks: usize,
    /// Whether every robot ended awake.
    pub all_awake: bool,
    /// Recorder heap footprint (deterministic estimate, bytes).
    pub peak_mem_bytes: usize,
}

/// Runs one scenario × algorithm × seed combination under the constant-
/// memory [`freezetag_sim::StatsRecorder`]: no schedule is kept, no
/// validation runs, no ξ_ℓ is measured — only the aggregate numbers, which
/// match a full-profile run bit-for-bit. This is the execution path behind
/// `--profile stats` and the only tractable one at 10⁵–10⁶ robots.
///
/// # Errors
///
/// Registry errors, or [`ExpError::Unsupported`] for non-distributed
/// algorithms and adversarial scenarios (those require full schedules).
#[deprecated(note = "use Engine::new(EngineConfig::default()).single_stats(...)")]
pub fn run_single_stats(
    spec: &ScenarioSpec,
    alg: AlgSpec,
    seed: u64,
) -> Result<StatsRun, ExpError> {
    single_stats(
        spec,
        alg,
        seed,
        ParPool::sequential(),
        &mut JobContext::new(CancelToken::never()),
    )
}

/// [`run_single_stats`] with an explicit [`ParPool`] for deterministic
/// intra-run parallelism — the `--profile stats --sim-threads` execution
/// path that turns one 10⁶-robot job from one-core-bound into
/// hardware-bound. Aggregates (including `peak_mem_bytes`) are
/// bit-identical for any pool width.
///
/// # Errors
///
/// As [`run_single_stats`].
#[deprecated(note = "use Engine::single_stats with EngineConfig::sim_threads")]
pub fn run_single_stats_with(
    spec: &ScenarioSpec,
    alg: AlgSpec,
    seed: u64,
    pool: ParPool,
) -> Result<StatsRun, ExpError> {
    single_stats(
        spec,
        alg,
        seed,
        pool,
        &mut JobContext::new(CancelToken::never()),
    )
}

/// The stats-profile single-run core: constant-memory recorder, recycled
/// from the worker-resident [`JobContext`] when one is banked there.
pub(crate) fn single_stats(
    spec: &ScenarioSpec,
    alg: AlgSpec,
    seed: u64,
    pool: ParPool,
    ctx: &mut JobContext,
) -> Result<StatsRun, ExpError> {
    let AlgSpec::Distributed {
        algorithm,
        strategy,
    } = alg
    else {
        return Err(ExpError::Unsupported(format!(
            "run_single_stats needs a distributed algorithm, got {}",
            alg.label()
        )));
    };
    let inst = registry::build_instance(&spec.generator, &spec.params, seed)
        .map_err(|e| ExpError::Registry(format!("scenario '{}': {e}", spec.name)))?;
    let tuple = tuple_for(spec, &inst, &pool)?;
    let world = ConcreteWorld::with_pool(&inst, &pool);
    let n = inst.n();
    drop(inst); // the world owns its own flat copy; free the Vec<Point>
    let recorder = match ctx.stats_recorder.take() {
        Some(mut r) => {
            r.recycle(n);
            r
        }
        None => StatsRecorder::with_capacity(n),
    };
    let mut sim = Sim::with_recorder(world, recorder)
        .with_pool(pool)
        .with_cancel(ctx.cancel.clone());
    dispatch(&mut sim, &tuple, algorithm, strategy, &mut ctx.scratch)?;
    let looks = sim.world().look_count();
    let all_awake = sim.world().all_awake();
    let (_, rec, _) = sim.into_recorder_parts();
    let out = StatsRun {
        n: tuple.n,
        ell: tuple.ell,
        rho: tuple.rho,
        makespan: rec.makespan(),
        completion_time: rec.completion_time(),
        max_energy: rec.max_energy(),
        total_energy: rec.total_energy(),
        looks,
        all_awake,
        peak_mem_bytes: rec.memory_bytes(),
    };
    // Bank the recorder for the worker's next stats job.
    ctx.stats_recorder = Some(rec);
    Ok(out)
}

/// The measurements of one compressed-recorder run: the aggregate numbers
/// of a [`StatsRun`] plus the codec's own footprint figures. Unlike the
/// stats path, every compressed run has passed the streaming validator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressedRun {
    /// Number of sleeping robots.
    pub n: usize,
    /// Connectivity parameter ℓ handed to the algorithm.
    pub ell: f64,
    /// Radius bound ρ handed to the algorithm.
    pub rho: f64,
    /// Time the last robot was woken.
    pub makespan: f64,
    /// Time the last robot stopped moving.
    pub completion_time: f64,
    /// Worst per-robot travel.
    pub max_energy: f64,
    /// Total travel of the swarm.
    pub total_energy: f64,
    /// `look` snapshots taken.
    pub looks: usize,
    /// Whether every robot ended awake.
    pub all_awake: bool,
    /// Recorder heap footprint (deterministic estimate, bytes).
    pub peak_mem_bytes: usize,
    /// Encoded schedule payload alone (segment + wake streams, bytes).
    pub compressed_bytes: usize,
    /// Encoded payload divided by the number of recorded move segments.
    pub bytes_per_move: f64,
}

/// Runs one scenario × algorithm × seed combination under the
/// [`freezetag_sim::CompressedRecorder`]: the full schedule is kept in
/// delta-encoded blocks (~an order of magnitude smaller than the flat
/// segment store) and the run is checked by the streaming validator,
/// block by block — full-fidelity validation at `--profile stats` scale.
/// No ξ_ℓ is measured. The aggregate numbers match a full-profile run
/// bit-for-bit. This is the execution path behind `--profile compressed`.
///
/// # Errors
///
/// Registry errors, validation failures, or [`ExpError::Unsupported`] for
/// non-distributed algorithms and adversarial scenarios (the theorem
/// checks need a materialized [`Schedule`]).
#[deprecated(note = "use Engine::new(EngineConfig::default()).single_compressed(...)")]
pub fn run_single_compressed(
    spec: &ScenarioSpec,
    alg: AlgSpec,
    seed: u64,
) -> Result<CompressedRun, ExpError> {
    single_compressed(
        spec,
        alg,
        seed,
        ParPool::sequential(),
        &mut JobContext::new(CancelToken::never()),
    )
}

/// [`run_single_compressed`] with an explicit [`ParPool`] for
/// deterministic intra-run parallelism — the
/// `--profile compressed --sim-threads` execution path. All returned
/// numbers (including `peak_mem_bytes`) are bit-identical for any pool
/// width.
///
/// # Errors
///
/// As [`run_single_compressed`].
#[deprecated(note = "use Engine::single_compressed with EngineConfig::sim_threads")]
pub fn run_single_compressed_with(
    spec: &ScenarioSpec,
    alg: AlgSpec,
    seed: u64,
    pool: ParPool,
) -> Result<CompressedRun, ExpError> {
    single_compressed(
        spec,
        alg,
        seed,
        pool,
        &mut JobContext::new(CancelToken::never()),
    )
}

/// The compressed-profile single-run core: delta-encoded schedule blocks
/// plus streaming validation.
pub(crate) fn single_compressed(
    spec: &ScenarioSpec,
    alg: AlgSpec,
    seed: u64,
    pool: ParPool,
    ctx: &mut JobContext,
) -> Result<CompressedRun, ExpError> {
    let AlgSpec::Distributed {
        algorithm,
        strategy,
    } = alg
    else {
        return Err(ExpError::Unsupported(format!(
            "run_single_compressed needs a distributed algorithm, got {}",
            alg.label()
        )));
    };
    let inst = registry::build_instance(&spec.generator, &spec.params, seed)
        .map_err(|e| ExpError::Registry(format!("scenario '{}': {e}", spec.name)))?;
    let tuple = tuple_for(spec, &inst, &pool)?;
    // The instance stays alive (unlike the stats path): the streaming
    // validator needs the initial positions to check wake sites.
    let world = ConcreteWorld::with_pool(&inst, &pool);
    let mut sim = Sim::with_compressed(world)
        .with_pool(pool)
        .with_cancel(ctx.cancel.clone());
    dispatch(&mut sim, &tuple, algorithm, strategy, &mut ctx.scratch)?;
    let looks = sim.world().look_count();
    let all_awake = sim.world().all_awake();
    let (_, rec, _) = sim.into_recorder_parts();
    let label = AlgSpec::Distributed {
        algorithm,
        strategy,
    }
    .label();
    let vr = validate_compressed(
        &rec,
        inst.source(),
        inst.positions(),
        &ValidationOptions::default(),
    )
    .map_err(|e| ExpError::validation(&spec.name, &label, e))?;
    Ok(CompressedRun {
        n: tuple.n,
        ell: tuple.ell,
        rho: tuple.rho,
        makespan: vr.makespan,
        completion_time: vr.completion_time,
        max_energy: vr.max_energy,
        total_energy: vr.total_energy,
        looks,
        all_awake,
        peak_mem_bytes: rec.memory_bytes(),
        compressed_bytes: rec.compressed_bytes(),
        bytes_per_move: rec.bytes_per_move(),
    })
}

fn central_job(
    spec: &ScenarioSpec,
    alg: AlgSpec,
    seed: u64,
    pool: &ParPool,
    cancel: &CancelToken,
) -> Result<(usize, f64, f64, f64, f64), ExpError> {
    let inst = registry::build_instance(&spec.generator, &spec.params, seed)?;
    let items: Vec<(RobotId, Point)> = inst
        .positions()
        .iter()
        .enumerate()
        .map(|(i, &p)| (RobotId::sleeper(i), p))
        .collect();
    let (makespan, total) = match alg {
        AlgSpec::Central(strategy) => {
            let tree = strategy.build(inst.source(), &items);
            (tree.makespan(), tree.total_length())
        }
        AlgSpec::CentralAnytime => {
            // Default (fixed-iteration) budget: the result is a pure
            // function of (instance, seed) at any pool width — required
            // by the Engine's thread-count-free cache key. The job seed
            // drives the search streams, so repetitions explore
            // independently while staying paired on the instance.
            let report = anytime_wake_tree(
                inst.source(),
                &items,
                &AnytimeConfig::default(),
                seed,
                pool,
                cancel,
            );
            (report.tree.makespan(), report.tree.total_length())
        }
        AlgSpec::CentralOptimal => {
            if inst.n() > 10 {
                return Err(ExpError::Unsupported(format!(
                    "central[optimal] is branch-and-bound; n={} > 10 on scenario '{}'",
                    inst.n(),
                    spec.name
                )));
            }
            let m = optimal_makespan(inst.source(), inst.positions());
            (m, f64::NAN)
        }
        AlgSpec::Distributed { .. } => unreachable!("routed to run_single"),
    };
    let tuple = inst.admissible_tuple();
    Ok((inst.n(), tuple.ell, tuple.rho, makespan, total))
}

/// Executes one job of a plan inside a worker-resident [`JobContext`] —
/// the single execution path behind the [`Engine`](crate::Engine) workers
/// and (through a throwaway context) the deprecated shims.
pub(crate) fn execute_job_ctx(
    plan: &ExperimentPlan,
    job: &JobSpec,
    ctx: &mut JobContext,
) -> Result<JobResult, ExpError> {
    let spec = &plan.scenarios[job.scenario];
    let pool = ParPool::new(plan.sim_threads.max(1));
    let generator = registry::lookup(&spec.generator)
        .map(|g| g.name.to_string())
        .unwrap_or_else(|| spec.generator.clone());
    let started = Instant::now();
    let result = match job.algorithm {
        AlgSpec::Distributed { .. } if plan.profile == Profile::Compressed => {
            let run = single_compressed(spec, job.algorithm, job.seed, pool, ctx)?;
            JobResult {
                job: job.index,
                scenario: spec.name.clone(),
                generator,
                algorithm: job.algorithm.label(),
                seed: job.seed,
                seed_index: job.seed_index,
                n: run.n,
                ell: run.ell,
                rho: run.rho,
                xi_ell: None,
                makespan: run.makespan,
                completion_time: run.completion_time,
                max_energy: run.max_energy,
                total_energy: run.total_energy,
                looks: run.looks,
                all_awake: run.all_awake,
                peak_mem_bytes: run.peak_mem_bytes as f64,
                wall_time_s: 0.0,
            }
        }
        AlgSpec::Distributed { .. } if plan.profile == Profile::Stats => {
            let run = single_stats(spec, job.algorithm, job.seed, pool, ctx)?;
            JobResult {
                job: job.index,
                scenario: spec.name.clone(),
                generator,
                algorithm: job.algorithm.label(),
                seed: job.seed,
                seed_index: job.seed_index,
                n: run.n,
                ell: run.ell,
                rho: run.rho,
                xi_ell: None,
                makespan: run.makespan,
                completion_time: run.completion_time,
                max_energy: run.max_energy,
                total_energy: run.total_energy,
                looks: run.looks,
                all_awake: run.all_awake,
                peak_mem_bytes: run.peak_mem_bytes as f64,
                wall_time_s: 0.0,
            }
        }
        AlgSpec::Distributed { .. } => {
            let run = single_full(spec, job.algorithm, job.seed, pool, ctx)?;
            JobResult {
                job: job.index,
                scenario: spec.name.clone(),
                generator,
                algorithm: job.algorithm.label(),
                seed: job.seed,
                seed_index: job.seed_index,
                n: run.n,
                ell: run.ell,
                rho: run.rho,
                xi_ell: run.xi_ell,
                makespan: run.report.makespan,
                completion_time: run.report.completion_time,
                max_energy: run.report.max_energy,
                total_energy: run.report.total_energy,
                looks: run.report.looks,
                all_awake: run.report.all_awake,
                peak_mem_bytes: run.schedule.memory_bytes() as f64,
                wall_time_s: 0.0,
            }
        }
        AlgSpec::Central(_) | AlgSpec::CentralAnytime | AlgSpec::CentralOptimal => {
            let (n, ell, rho, makespan, total_energy) =
                central_job(spec, job.algorithm, job.seed, &pool, &ctx.cancel)?;
            JobResult {
                job: job.index,
                scenario: spec.name.clone(),
                generator,
                algorithm: job.algorithm.label(),
                seed: job.seed,
                seed_index: job.seed_index,
                n,
                ell,
                rho,
                xi_ell: None,
                makespan,
                completion_time: makespan,
                // A wake tree's makespan is a multi-robot critical path,
                // not any single robot's travel — per-robot energy is
                // simply not measured by the centralized baselines.
                max_energy: f64::NAN,
                total_energy,
                looks: 0,
                all_awake: true,
                peak_mem_bytes: f64::NAN,
                wall_time_s: 0.0,
            }
        }
    };
    Ok(JobResult {
        wall_time_s: started.elapsed().as_secs_f64(),
        ..result
    })
}

/// How many inter-job workers a plan gets from a total core budget of
/// `threads`, given its per-job `sim_threads`: the scheduler treats
/// `threads` as the overall budget and divides it (rounding *down*, so
/// the budget is never exceeded by adding workers) between the two axes —
/// `--threads 8 --sim-threads 4` runs 2 jobs at a time on 4 cores each
/// instead of oversubscribing 32 threads onto 8 cores, and
/// `--threads 7 --sim-threads 2` runs 3 workers (6 threads), not 4 (8).
/// Always at least 1 worker and never more than `jobs` — so the one case
/// that exceeds the budget is an explicit `sim_threads > threads`, where
/// the single job still gets its full requested width.
pub fn inter_job_workers(threads: usize, sim_threads: usize, jobs: usize) -> usize {
    let budget = threads.max(1);
    (budget / sim_threads.max(1)).clamp(1, jobs.max(1))
}

/// Executes the plan's full cross-product on a worker pool and returns
/// the results in job order. `threads` is the total core budget, split
/// between inter-job workers and each job's `sim_threads`-wide intra-job
/// pool by [`inter_job_workers`]. All result fields except `wall_time_s`
/// are independent of both thread axes.
///
/// # Errors
///
/// Plan validation errors before anything runs. A failing job makes
/// workers stop picking up further jobs (in-flight jobs finish), and the
/// lowest-indexed recorded failure is returned.
#[deprecated(note = "use Engine::with_threads(threads).run(plan)")]
pub fn run_plan(plan: &ExperimentPlan, threads: usize) -> Result<Vec<JobResult>, ExpError> {
    crate::engine::Engine::with_threads(threads).run(plan)
}

/// [`run_plan`] without the `O(jobs)` result vector: every [`JobResult`]
/// is handed to `on_result` in strict job order as soon as it (and every
/// lower-indexed job) has finished, then dropped. Workers run ahead of
/// the in-order emission point by at most a bounded reorder window, so
/// peak memory is `O(workers)` results regardless of plan size — the
/// execution path behind `dftp sweep --out FILE`, where each record goes
/// straight to disk.
///
/// Everything `on_result` observes is byte-identical (bar `wall_time_s`)
/// to the corresponding entry of [`run_plan`]'s result vector, for any
/// thread count.
///
/// # Errors
///
/// Plan validation errors before anything runs. A failing job makes
/// workers stop picking up further jobs (in-flight jobs finish), and the
/// lowest-indexed failure is returned; results preceding it have already
/// been emitted by then — callers streaming to a file should treat an
/// `Err` as truncating the output.
#[deprecated(note = "use Engine::with_threads(threads).run_streaming(plan, on_result)")]
pub fn run_plan_streaming(
    plan: &ExperimentPlan,
    threads: usize,
    on_result: impl FnMut(&JobResult),
) -> Result<(), ExpError> {
    crate::engine::Engine::with_threads(threads).run_streaming(plan, on_result)
}

// The shims above are this module's public contract with pre-Engine
// callers, so the tests exercise the deprecated surface on purpose —
// pinning that every shim still produces the Engine's exact output.
#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::plan::ScenarioSpec;

    fn tiny_plan() -> ExperimentPlan {
        ExperimentPlan::new("tiny")
            .scenario(
                ScenarioSpec::new("disk")
                    .with("n", 12.0)
                    .with("radius", 4.0),
            )
            .algorithm(Algorithm::Grid)
            .algorithm(Algorithm::Wave)
            .seeds(2)
            .plan_seed(7)
    }

    #[test]
    fn run_plan_reports_in_job_order_and_wakes_everyone() {
        let results = run_plan(&tiny_plan(), 2).expect("plan runs");
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.job, i);
            assert!(r.all_awake, "job {i} left robots asleep");
            assert_eq!(r.n, 12);
            assert!(r.makespan > 0.0);
            assert!(r.xi_ell.is_some());
        }
        assert_eq!(results[0].algorithm, "AGrid");
        assert_eq!(results[2].algorithm, "AWave");
    }

    #[test]
    fn results_are_identical_for_any_thread_count() {
        let plan = tiny_plan();
        let a = run_plan(&plan, 1).unwrap();
        let b = run_plan(&plan, 4).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            let mut y = y.clone();
            y.wall_time_s = x.wall_time_s;
            assert_eq!(*x, y, "job {} differs across thread counts", x.job);
        }
    }

    #[test]
    fn results_are_identical_for_any_sim_thread_count() {
        let base = tiny_plan();
        let a = run_plan(&base, 1).unwrap();
        for sim_threads in [2, 4] {
            let b = run_plan(&base.clone().sim_threads(sim_threads), 2).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                let mut y = y.clone();
                y.wall_time_s = x.wall_time_s;
                assert_eq!(*x, y, "job {} differs at sim_threads={sim_threads}", x.job);
            }
        }
    }

    #[test]
    fn compressed_profile_matches_full_profile_bitwise() {
        let full = run_plan(&tiny_plan(), 2).unwrap();
        let compressed = run_plan(&tiny_plan().profile(Profile::Compressed), 2).unwrap();
        assert_eq!(full.len(), compressed.len());
        for (f, c) in full.iter().zip(&compressed) {
            assert_eq!(f.makespan.to_bits(), c.makespan.to_bits(), "job {}", f.job);
            assert_eq!(f.completion_time.to_bits(), c.completion_time.to_bits());
            assert_eq!(f.max_energy.to_bits(), c.max_energy.to_bits());
            assert_eq!(f.total_energy.to_bits(), c.total_energy.to_bits());
            assert_eq!(f.looks, c.looks);
            assert!(c.all_awake);
            assert_eq!(c.xi_ell, None, "compressed profile skips ξ_ℓ");
            assert!(
                c.peak_mem_bytes < f.peak_mem_bytes,
                "compressed recorder ({}) must undercut the flat store ({})",
                c.peak_mem_bytes,
                f.peak_mem_bytes
            );
        }
    }

    #[test]
    fn compressed_single_run_reports_codec_figures() {
        let spec = ScenarioSpec::new("disk")
            .with("n", 30.0)
            .with("radius", 6.0);
        let run = run_single_compressed(&spec, Algorithm::Wave.into(), 5).unwrap();
        assert!(run.all_awake);
        assert!(run.compressed_bytes > 0);
        assert!(run.compressed_bytes < run.peak_mem_bytes);
        assert!(
            run.bytes_per_move.is_finite() && run.bytes_per_move > 0.0,
            "bytes/move {}",
            run.bytes_per_move
        );
        let err = run_single_compressed(&spec, AlgSpec::CentralOptimal, 5).unwrap_err();
        assert!(matches!(err, ExpError::Unsupported(_)), "{err}");
    }

    #[test]
    fn streaming_runner_emits_run_plan_results_in_order() {
        let plan = tiny_plan().profile(Profile::Compressed);
        let buffered = run_plan(&plan, 2).unwrap();
        for threads in [1, 4] {
            let mut streamed = Vec::new();
            run_plan_streaming(&plan, threads, |r| streamed.push(r.clone())).unwrap();
            assert_eq!(streamed.len(), buffered.len());
            for (s, b) in streamed.iter().zip(&buffered) {
                let mut s = s.clone();
                s.wall_time_s = b.wall_time_s;
                assert_eq!(s, *b, "job {} differs at threads={threads}", b.job);
            }
        }
    }

    #[test]
    fn streaming_runner_surfaces_the_lowest_indexed_failure() {
        // Same failing plan as the buffered abort test: central[optimal]
        // refuses n > 10. Everything before the first failing job index
        // must still have been emitted, in order.
        let plan = ExperimentPlan::new("abort-stream")
            .scenario(
                ScenarioSpec::new("disk")
                    .with("n", 50.0)
                    .with("radius", 8.0),
            )
            .algorithm(Algorithm::Grid)
            .algorithm(AlgSpec::CentralOptimal)
            .seeds(2);
        let mut streamed = Vec::new();
        let err = run_plan_streaming(&plan, 2, |r| streamed.push(r.job)).unwrap_err();
        assert!(matches!(err, ExpError::Unsupported(_)), "{err}");
        assert_eq!(streamed, vec![0, 1], "AGrid jobs precede the failure");
    }

    #[test]
    fn scheduler_splits_the_core_budget_between_axes() {
        assert_eq!(inter_job_workers(8, 4, 100), 2);
        assert_eq!(inter_job_workers(8, 1, 100), 8);
        assert_eq!(inter_job_workers(4, 8, 100), 1, "intra-job takes it all");
        assert_eq!(inter_job_workers(7, 2, 100), 3, "rounds down: 6 <= 7");
        assert_eq!(inter_job_workers(16, 1, 3), 3, "never exceeds job count");
        assert_eq!(inter_job_workers(0, 0, 0), 1, "degenerate inputs clamp");
    }

    #[test]
    fn strategy_override_runs_and_mismatches_error() {
        let spec = ScenarioSpec::new("disk")
            .with("n", 15.0)
            .with("radius", 5.0);
        let run = run_single(&spec, AlgSpec::separator_with(WakeStrategy::Chain), 3).unwrap();
        assert!(run.report.all_awake);
        let err = run_single(
            &spec,
            AlgSpec::Distributed {
                algorithm: Algorithm::Grid,
                strategy: Some(WakeStrategy::Chain),
            },
            3,
        )
        .unwrap_err();
        assert!(matches!(err, ExpError::Unsupported(_)));
    }

    #[test]
    fn central_baselines_and_optimal_run_through_the_engine() {
        let plan = ExperimentPlan::new("central")
            .scenario(ScenarioSpec::new("disk").with("n", 6.0).with("radius", 4.0))
            .algorithm(AlgSpec::Central(WakeStrategy::Quadtree))
            .algorithm(AlgSpec::Central(WakeStrategy::Greedy))
            .algorithm(AlgSpec::CentralOptimal);
        let results = run_plan(&plan, 2).unwrap();
        assert_eq!(results.len(), 3);
        let opt = results[2].makespan;
        assert!(opt > 0.0);
        assert!(results[0].makespan >= opt - 1e-9, "quadtree beats optimal?");
        assert!(results[1].makespan >= opt - 1e-9, "greedy beats optimal?");
    }

    #[test]
    fn central_results_aggregate_and_emit_without_panicking() {
        // Regression: central jobs leave per-robot energy (and, for the
        // exact optimum, total energy) unmeasured as NaN — aggregation
        // must skip them and the JSON emitters must render null.
        let plan = ExperimentPlan::new("central-agg")
            .scenario(ScenarioSpec::new("disk").with("n", 6.0).with("radius", 4.0))
            .algorithm(AlgSpec::CentralOptimal)
            .algorithm(AlgSpec::Central(WakeStrategy::Quadtree))
            .seeds(2);
        let results = run_plan(&plan, 2).expect("plan runs");
        let aggregates = crate::agg::aggregate(&results);
        assert_eq!(aggregates.len(), 2);
        assert!(aggregates[0].max_energy.mean.is_nan());
        let json = crate::emit::aggregates_to_json(&plan, &aggregates);
        assert!(
            json.contains("\"max_energy\":{\"mean\":null"),
            "unmeasured energy must emit null: {json}"
        );
        let csv = crate::emit::jobs_to_csv(&results);
        assert!(!csv.contains("NaN"), "NaN leaked into CSV: {csv}");
    }

    #[test]
    fn failing_job_aborts_the_plan_with_its_error() {
        // central[optimal] refuses n > 10; the error must surface instead
        // of the runner running (or hanging on) the remaining jobs.
        let plan = ExperimentPlan::new("abort")
            .scenario(
                ScenarioSpec::new("disk")
                    .with("n", 50.0)
                    .with("radius", 8.0),
            )
            .algorithm(AlgSpec::CentralOptimal)
            .algorithm(Algorithm::Grid)
            .seeds(4);
        let err = run_plan(&plan, 2).unwrap_err();
        assert!(matches!(err, ExpError::Unsupported(_)), "{err}");
    }

    #[test]
    fn adversarial_scenario_runs_separator_through_the_engine() {
        let plan = ExperimentPlan::new("adv")
            .scenario(
                ScenarioSpec::new("theorem2")
                    .with("ell", 2.0)
                    .with("rho", 8.0)
                    .with("n", 40.0),
            )
            .algorithm(Algorithm::Separator);
        let results = run_plan(&plan, 1).unwrap();
        assert_eq!(results.len(), 1);
        assert!(results[0].all_awake, "adversarial robots must all wake");
        assert!(results[0].looks > 0);
        assert_eq!(results[0].xi_ell, None);
    }
}
