//! Aggregation of job results into per-(scenario, algorithm) statistics.

use crate::runner::JobResult;

/// Summary statistics of one measured quantity across a group of jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
}

impl Stats {
    /// Computes the statistics of a non-empty sample. Percentiles use the
    /// nearest-rank definition: `p50` of `[1, 2, 3, 4]` is `2`. Non-finite
    /// observations (quantities a job does not measure, e.g. the energy of
    /// a `central[optimal]` run) are excluded; an all-non-finite sample
    /// yields all-NaN statistics, which the emitters render as JSON
    /// `null`.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    pub fn compute(values: &[f64]) -> Stats {
        assert!(!values.is_empty(), "no observations to aggregate");
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return Stats {
                mean: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
                p50: f64::NAN,
                p95: f64::NAN,
            };
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite after filter"));
        let rank = |p: f64| -> f64 {
            let k = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[k - 1]
        };
        Stats {
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: rank(50.0),
            p95: rank(95.0),
        }
    }
}

/// Aggregated results of one (scenario, algorithm) cell across its seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Scenario display name.
    pub scenario: String,
    /// Canonical generator name.
    pub generator: String,
    /// Algorithm label.
    pub algorithm: String,
    /// Robots per run (from the first job of the cell).
    pub n: usize,
    /// Number of seeded repetitions aggregated.
    pub seeds: usize,
    /// Makespan statistics.
    pub makespan: Stats,
    /// Worst per-robot energy statistics.
    pub max_energy: Stats,
    /// Total swarm energy statistics.
    pub total_energy: Stats,
    /// Look-count statistics.
    pub looks: Stats,
    /// Recorder peak-memory statistics (bytes; deterministic estimates).
    pub peak_mem_bytes: Stats,
    /// Whether every aggregated run ended with all robots awake.
    pub all_awake: bool,
    /// Summed wall-clock seconds of the cell's jobs (non-deterministic;
    /// excluded from the deterministic aggregate JSON).
    pub wall_time_s: f64,
}

/// Groups job results by (scenario, algorithm) in first-appearance order —
/// which, for results straight out of `run_plan`, is the plan's own order —
/// and computes the per-cell statistics.
pub fn aggregate(results: &[JobResult]) -> Vec<Aggregate> {
    let mut groups: Vec<(String, String, Vec<&JobResult>)> = Vec::new();
    for r in results {
        match groups
            .iter_mut()
            .find(|(s, a, _)| *s == r.scenario && *a == r.algorithm)
        {
            Some((_, _, members)) => members.push(r),
            None => groups.push((r.scenario.clone(), r.algorithm.clone(), vec![r])),
        }
    }
    groups
        .into_iter()
        .map(|(scenario, algorithm, members)| {
            let field = |f: fn(&JobResult) -> f64| -> Stats {
                Stats::compute(&members.iter().map(|r| f(r)).collect::<Vec<_>>())
            };
            Aggregate {
                scenario,
                generator: members[0].generator.clone(),
                algorithm,
                n: members[0].n,
                seeds: members.len(),
                makespan: field(|r| r.makespan),
                max_energy: field(|r| r.max_energy),
                total_energy: field(|r| r.total_energy),
                looks: field(|r| r.looks as f64),
                peak_mem_bytes: field(|r| r.peak_mem_bytes),
                all_awake: members.iter().all(|r| r.all_awake),
                wall_time_s: members.iter().map(|r| r.wall_time_s).sum(),
            }
        })
        .collect()
}

/// One (scenario, algorithm) cell being accumulated by [`StreamingAgg`]:
/// the per-quantity observation vectors, in arrival order.
struct GroupAcc {
    scenario: String,
    generator: String,
    algorithm: String,
    n: usize,
    makespan: Vec<f64>,
    max_energy: Vec<f64>,
    total_energy: Vec<f64>,
    looks: Vec<f64>,
    peak_mem_bytes: Vec<f64>,
    all_awake: bool,
    wall_time_s: f64,
}

/// Incremental counterpart of [`aggregate`] for streaming sweeps: feed it
/// each [`JobResult`] as it is emitted (dropping the result afterwards)
/// and [`StreamingAgg::finish`] produces aggregates bit-identical to
/// `aggregate(&all_results)` — same first-appearance grouping, same
/// nearest-rank percentiles over the same observation order. Memory is
/// `O(groups × seeds)` observations instead of `O(jobs)` full results
/// (a `JobResult` carries strings; an observation is one `f64`).
#[derive(Default)]
pub struct StreamingAgg {
    groups: Vec<GroupAcc>,
}

impl StreamingAgg {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamingAgg { groups: Vec::new() }
    }

    /// Folds one job result into its (scenario, algorithm) cell. Feed
    /// results in job order to reproduce [`aggregate`]'s output exactly.
    pub fn push(&mut self, r: &JobResult) {
        let group = match self
            .groups
            .iter_mut()
            .find(|g| g.scenario == r.scenario && g.algorithm == r.algorithm)
        {
            Some(g) => g,
            None => {
                self.groups.push(GroupAcc {
                    scenario: r.scenario.clone(),
                    generator: r.generator.clone(),
                    algorithm: r.algorithm.clone(),
                    n: r.n,
                    makespan: Vec::new(),
                    max_energy: Vec::new(),
                    total_energy: Vec::new(),
                    looks: Vec::new(),
                    peak_mem_bytes: Vec::new(),
                    all_awake: true,
                    wall_time_s: 0.0,
                });
                self.groups.last_mut().expect("just pushed")
            }
        };
        group.makespan.push(r.makespan);
        group.max_energy.push(r.max_energy);
        group.total_energy.push(r.total_energy);
        group.looks.push(r.looks as f64);
        group.peak_mem_bytes.push(r.peak_mem_bytes);
        group.all_awake &= r.all_awake;
        group.wall_time_s += r.wall_time_s;
    }

    /// Number of job results pushed so far.
    pub fn job_count(&self) -> usize {
        self.groups.iter().map(|g| g.makespan.len()).sum()
    }

    /// Computes the per-cell statistics, in first-appearance order.
    pub fn finish(self) -> Vec<Aggregate> {
        self.groups
            .into_iter()
            .map(|g| Aggregate {
                seeds: g.makespan.len(),
                makespan: Stats::compute(&g.makespan),
                max_energy: Stats::compute(&g.max_energy),
                total_energy: Stats::compute(&g.total_energy),
                looks: Stats::compute(&g.looks),
                peak_mem_bytes: Stats::compute(&g.peak_mem_bytes),
                scenario: g.scenario,
                generator: g.generator,
                algorithm: g.algorithm,
                n: g.n,
                all_awake: g.all_awake,
                wall_time_s: g.wall_time_s,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(scenario: &str, algorithm: &str, makespan: f64) -> JobResult {
        JobResult {
            job: 0,
            scenario: scenario.to_string(),
            generator: "g".to_string(),
            algorithm: algorithm.to_string(),
            seed: 0,
            seed_index: 0,
            n: 5,
            ell: 1.0,
            rho: 2.0,
            xi_ell: None,
            makespan,
            completion_time: makespan,
            max_energy: makespan / 2.0,
            total_energy: makespan * 2.0,
            looks: 10,
            all_awake: true,
            peak_mem_bytes: 1024.0,
            wall_time_s: 0.5,
        }
    }

    #[test]
    fn stats_nearest_rank() {
        let s = Stats::compute(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.p95, 4.0);
        let one = Stats::compute(&[7.0]);
        assert_eq!(one.p50, 7.0);
        assert_eq!(one.p95, 7.0);
    }

    #[test]
    fn stats_skip_unmeasured_observations() {
        let s = Stats::compute(&[f64::NAN, 2.0, 4.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 4.0);
        let unmeasured = Stats::compute(&[f64::NAN, f64::NAN]);
        assert!(unmeasured.mean.is_nan());
        assert!(unmeasured.p95.is_nan());
    }

    #[test]
    fn streaming_agg_matches_batch_aggregate_exactly() {
        let mut results = vec![
            job("a", "AGrid", 10.0),
            job("a", "AGrid", 20.0),
            job("a", "AWave", 5.0),
            job("b", "AGrid", 1.0),
            job("b", "AGrid", 3.0),
            job("a", "AGrid", 30.0),
        ];
        // Unmeasured quantities (NaN observations) must be filtered the
        // same way; the cell keeps a finite observation so the resulting
        // statistics stay comparable with `==`.
        results[3].max_energy = f64::NAN;
        results[3].all_awake = false;
        let mut streaming = StreamingAgg::new();
        for r in &results {
            streaming.push(r);
        }
        assert_eq!(streaming.job_count(), results.len());
        assert_eq!(streaming.finish(), aggregate(&results));
    }

    #[test]
    fn aggregate_groups_in_first_appearance_order() {
        let results = vec![
            job("a", "AGrid", 10.0),
            job("a", "AGrid", 20.0),
            job("a", "AWave", 5.0),
            job("b", "AGrid", 1.0),
        ];
        let aggs = aggregate(&results);
        assert_eq!(aggs.len(), 3);
        assert_eq!(aggs[0].scenario, "a");
        assert_eq!(aggs[0].algorithm, "AGrid");
        assert_eq!(aggs[0].seeds, 2);
        assert_eq!(aggs[0].makespan.mean, 15.0);
        assert_eq!(aggs[0].wall_time_s, 1.0);
        assert_eq!(aggs[1].algorithm, "AWave");
        assert_eq!(aggs[2].scenario, "b");
        assert!(aggs.iter().all(|a| a.all_awake));
    }
}
