//! Machine-readable result emission: JSON-lines and CSV per-job records,
//! deterministic aggregated JSON, and the `BENCH_results.json`
//! perf-trajectory format.
//!
//! All JSON is hand-rolled (the workspace is offline — no serde). Numbers
//! use Rust's shortest round-trip formatting, so output is byte-stable
//! across runs, platforms and thread counts; non-finite values emit as
//! `null`.

use crate::agg::{Aggregate, Stats};
use crate::plan::ExperimentPlan;
use crate::runner::JobResult;
use std::fmt::Write as _;
use std::io;

/// Formats a float as a JSON number (`null` when non-finite).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string for inclusion in JSON.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn stats_json(s: &Stats) -> String {
    format!(
        "{{\"mean\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{}}}",
        num(s.mean),
        num(s.min),
        num(s.max),
        num(s.p50),
        num(s.p95)
    )
}

fn job_json(r: &JobResult, include_wall_time: bool) -> String {
    let mut out = format!(
        "{{\"job\":{},\"scenario\":\"{}\",\"generator\":\"{}\",\"algorithm\":\"{}\",\
         \"seed\":{},\"seed_index\":{},\"n\":{},\"ell\":{},\"rho\":{},\"xi_ell\":{},\
         \"makespan\":{},\"completion_time\":{},\"max_energy\":{},\"total_energy\":{},\
         \"looks\":{},\"all_awake\":{},\"peak_mem_bytes\":{}",
        r.job,
        escape(&r.scenario),
        escape(&r.generator),
        escape(&r.algorithm),
        r.seed,
        r.seed_index,
        r.n,
        num(r.ell),
        num(r.rho),
        r.xi_ell.map_or("null".to_string(), num),
        num(r.makespan),
        num(r.completion_time),
        num(r.max_energy),
        num(r.total_energy),
        r.looks,
        r.all_awake,
        num(r.peak_mem_bytes)
    );
    if include_wall_time {
        let _ = write!(out, ",\"wall_time_s\":{}", num(r.wall_time_s));
    }
    out.push('}');
    out
}

/// One job as a single JSON-lines record (no trailing newline, wall time
/// included). [`jobs_to_jsonl`] is exactly these lines joined by `\n` —
/// the contract that makes the streaming `--out` path byte-identical to
/// the buffered one.
pub fn job_to_jsonl_line(r: &JobResult) -> String {
    job_json(r, true)
}

/// One JSON object per line, one line per job (includes wall time, so not
/// byte-stable across machines — use [`aggregates_to_json`] for that).
pub fn jobs_to_jsonl(results: &[JobResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&job_to_jsonl_line(r));
        out.push('\n');
    }
    out
}

/// The CSV header row emitted by [`jobs_to_csv`] (no trailing newline).
pub const CSV_HEADER: &str = "job,scenario,generator,algorithm,seed,seed_index,n,ell,rho,xi_ell,\
     makespan,completion_time,max_energy,total_energy,looks,all_awake,\
     peak_mem_bytes,wall_time_s";

/// One job as a single CSV row (no trailing newline). [`jobs_to_csv`] is
/// [`CSV_HEADER`] plus exactly these rows.
pub fn job_to_csv_row(r: &JobResult) -> String {
    let csv_field = |s: &str| -> String {
        if s.contains(',') || s.contains('"') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    // Unmeasured quantities (NaN) become empty cells, like an absent ξ_ℓ.
    let csv_num = |x: f64| -> String {
        if x.is_finite() {
            x.to_string()
        } else {
            String::new()
        }
    };
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        r.job,
        csv_field(&r.scenario),
        csv_field(&r.generator),
        csv_field(&r.algorithm),
        r.seed,
        r.seed_index,
        r.n,
        r.ell,
        r.rho,
        r.xi_ell.map_or(String::new(), csv_num),
        csv_num(r.makespan),
        csv_num(r.completion_time),
        csv_num(r.max_energy),
        csv_num(r.total_energy),
        r.looks,
        r.all_awake,
        csv_num(r.peak_mem_bytes),
        r.wall_time_s,
    )
}

/// CSV with a header row, one row per job.
pub fn jobs_to_csv(results: &[JobResult]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for r in results {
        let _ = writeln!(out, "{}", job_to_csv_row(r));
    }
    out
}

/// Incremental per-job record writer for streaming sweeps: each
/// [`JobResult`] is rendered (JSON-lines record or CSV row, chosen at
/// construction) and written the moment it arrives, with an explicit
/// flush every `flush_every` records so a long sweep's partial output is
/// durable at a known cadence. The byte stream is identical to the
/// buffered [`jobs_to_jsonl`] / [`jobs_to_csv`] output for the same
/// results.
pub struct JobStreamWriter<W: io::Write> {
    inner: W,
    csv: bool,
    flush_every: usize,
    unflushed: usize,
    written: usize,
}

impl<W: io::Write> JobStreamWriter<W> {
    /// A JSON-lines streamer. `flush_every` is clamped to at least 1.
    pub fn jsonl(inner: W, flush_every: usize) -> Self {
        JobStreamWriter {
            inner,
            csv: false,
            flush_every: flush_every.max(1),
            unflushed: 0,
            written: 0,
        }
    }

    /// A CSV streamer; writes the header row immediately.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write error.
    pub fn csv(mut inner: W, flush_every: usize) -> io::Result<Self> {
        writeln!(inner, "{CSV_HEADER}")?;
        Ok(JobStreamWriter {
            inner,
            csv: true,
            flush_every: flush_every.max(1),
            unflushed: 0,
            written: 0,
        })
    }

    /// A CSV streamer that does *not* write a header row — the resume
    /// path, where the interrupted file's own header already stands.
    pub fn csv_resumed(inner: W, flush_every: usize) -> Self {
        JobStreamWriter {
            inner,
            csv: true,
            flush_every: flush_every.max(1),
            unflushed: 0,
            written: 0,
        }
    }

    /// Writes one record, flushing when the cadence comes due.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write or flush error.
    pub fn write(&mut self, r: &JobResult) -> io::Result<()> {
        let line = if self.csv {
            job_to_csv_row(r)
        } else {
            job_to_jsonl_line(r)
        };
        writeln!(self.inner, "{line}")?;
        self.written += 1;
        self.unflushed += 1;
        if self.unflushed >= self.flush_every {
            self.inner.flush()?;
            self.unflushed = 0;
        }
        Ok(())
    }

    /// Records written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Flushes any tail shorter than the cadence and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates the underlying flush error.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

fn aggregate_json(a: &Aggregate, include_wall_time: bool) -> String {
    let mut out = format!(
        "    {{\"scenario\":\"{}\",\"generator\":\"{}\",\"algorithm\":\"{}\",\
         \"n\":{},\"seeds\":{},\"all_awake\":{},\"makespan\":{},\"max_energy\":{},\
         \"total_energy\":{},\"looks\":{},\"peak_mem_bytes\":{}",
        escape(&a.scenario),
        escape(&a.generator),
        escape(&a.algorithm),
        a.n,
        a.seeds,
        a.all_awake,
        stats_json(&a.makespan),
        stats_json(&a.max_energy),
        stats_json(&a.total_energy),
        stats_json(&a.looks),
        stats_json(&a.peak_mem_bytes)
    );
    if include_wall_time {
        let _ = write!(out, ",\"wall_time_s\":{}", num(a.wall_time_s));
    }
    out.push('}');
    out
}

fn groups_json(aggregates: &[Aggregate], include_wall_time: bool) -> String {
    let rows: Vec<String> = aggregates
        .iter()
        .map(|a| aggregate_json(a, include_wall_time))
        .collect();
    rows.join(",\n")
}

/// Renders aggregates as a human-readable markdown table — the one
/// summary-table layout shared by `dftp sweep` and the bench binaries
/// (via `freezetag_bench::render_aggregates`). Unmeasured statistics
/// (NaN) render as `-`.
pub fn aggregates_to_markdown(aggregates: &[Aggregate]) -> String {
    let cell = |x: f64, decimals: usize| -> String {
        if x.is_finite() {
            format!("{x:.decimals$}")
        } else {
            "-".to_string()
        }
    };
    let mut out = String::from(
        "| scenario | algorithm | n | seeds | makespan μ | makespan p95 | max-energy μ | looks μ |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for a in aggregates {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            a.scenario,
            a.algorithm,
            a.n,
            a.seeds,
            cell(a.makespan.mean, 1),
            cell(a.makespan.p95, 1),
            cell(a.max_energy.mean, 1),
            cell(a.looks.mean, 0),
        );
    }
    out
}

/// The deterministic aggregated document: for a fixed plan this is
/// byte-identical for any thread count (wall times are excluded).
pub fn aggregates_to_json(plan: &ExperimentPlan, aggregates: &[Aggregate]) -> String {
    format!(
        "{{\n  \"plan\": \"{}\",\n  \"plan_seed\": {},\n  \"seeds_per_cell\": {},\n  \
         \"profile\": \"{}\",\n  \"jobs\": {},\n  \"groups\": [\n{}\n  ]\n}}\n",
        escape(&plan.name),
        plan.plan_seed,
        plan.seeds,
        plan.profile,
        plan.job_count(),
        groups_json(aggregates, false)
    )
}

/// The `BENCH_results.json` perf-trajectory document: the deterministic
/// aggregates plus wall-clock timing (per group and total), throughput
/// (jobs per second) and the execution context, so successive commits can
/// be compared.
pub fn bench_results_json(
    plan: &ExperimentPlan,
    aggregates: &[Aggregate],
    threads: usize,
    total_wall_time_s: f64,
) -> String {
    let jobs = plan.job_count();
    let jobs_per_s = if total_wall_time_s > 0.0 {
        jobs as f64 / total_wall_time_s
    } else {
        f64::NAN
    };
    format!(
        "{{\n  \"schema\": \"freezetag-bench-results/v2\",\n  \"plan\": \"{}\",\n  \
         \"plan_seed\": {},\n  \"seeds_per_cell\": {},\n  \"profile\": \"{}\",\n  \
         \"jobs\": {},\n  \"threads\": {},\n  \"sim_threads\": {},\n  \
         \"total_wall_time_s\": {},\n  \
         \"jobs_per_s\": {},\n  \"groups\": [\n{}\n  ]\n}}\n",
        escape(&plan.name),
        plan.plan_seed,
        plan.seeds,
        plan.profile,
        jobs,
        threads,
        plan.sim_threads,
        num(total_wall_time_s),
        num(jobs_per_s),
        groups_json(aggregates, true)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ScenarioSpec;
    use freezetag_core::Algorithm;

    fn sample() -> (ExperimentPlan, Vec<JobResult>) {
        let plan = ExperimentPlan::new("sample \"quoted\"")
            .scenario(ScenarioSpec::new("disk"))
            .algorithm(Algorithm::Grid)
            .seeds(2);
        let job = |i: usize, makespan: f64| JobResult {
            job: i,
            scenario: "disk".to_string(),
            generator: "uniform_disk".to_string(),
            algorithm: "AGrid".to_string(),
            seed: 9,
            seed_index: i,
            n: 4,
            ell: 1.0,
            rho: 3.0,
            xi_ell: Some(4.5),
            makespan,
            completion_time: makespan,
            max_energy: 2.0,
            total_energy: 8.0,
            looks: 12,
            all_awake: true,
            peak_mem_bytes: 4096.0,
            wall_time_s: 0.25,
        };
        (plan, vec![job(0, 10.0), job(1, 20.0)])
    }

    #[test]
    fn jsonl_has_one_object_per_job_with_wall_time() {
        let (_, results) = sample();
        let text = jobs_to_jsonl(&results);
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"wall_time_s\":0.25"));
            assert!(line.contains("\"xi_ell\":4.5"));
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let (_, results) = sample();
        let text = jobs_to_csv(&results);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("job,scenario"));
        assert!(lines[1].contains(",AGrid,"));
    }

    #[test]
    fn aggregate_json_is_wall_time_free_and_escaped() {
        let (plan, results) = sample();
        let aggs = crate::agg::aggregate(&results);
        let text = aggregates_to_json(&plan, &aggs);
        assert!(
            !text.contains("wall_time"),
            "deterministic doc leaked timing"
        );
        assert!(
            text.contains("\\\"quoted\\\""),
            "plan name not escaped: {text}"
        );
        assert!(text.contains("\"mean\":15"), "{text}");
        assert!(text.contains("\"jobs\": 2"));
    }

    #[test]
    fn bench_results_json_carries_timing_schema_and_throughput() {
        let (plan, results) = sample();
        let aggs = crate::agg::aggregate(&results);
        let text = bench_results_json(&plan, &aggs, 4, 0.5);
        assert!(text.contains("freezetag-bench-results/v2"));
        assert!(text.contains("\"threads\": 4"));
        assert!(text.contains("\"sim_threads\": 1"));
        assert!(text.contains("\"wall_time_s\":0.5"));
        assert!(text.contains("\"jobs_per_s\": 4"), "{text}");
        assert!(text.contains("\"profile\": \"full\""), "{text}");
    }

    #[test]
    fn peak_memory_flows_into_every_emitter() {
        let (plan, results) = sample();
        let aggs = crate::agg::aggregate(&results);
        assert!(jobs_to_jsonl(&results).contains("\"peak_mem_bytes\":4096"));
        assert!(jobs_to_csv(&results)
            .lines()
            .next()
            .unwrap()
            .contains("peak_mem_bytes"));
        let json = aggregates_to_json(&plan, &aggs);
        assert!(json.contains("\"peak_mem_bytes\":{\"mean\":4096"), "{json}");
    }

    #[test]
    fn markdown_table_renders_rows_and_dashes() {
        let (_, results) = sample();
        let mut aggs = crate::agg::aggregate(&results);
        aggs[0].max_energy.mean = f64::NAN;
        let text = aggregates_to_markdown(&aggs);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("| scenario |"));
        assert!(lines[2].contains("| 15.0 |"), "{text}");
        assert!(
            lines[2].contains("| - |"),
            "NaN must render as dash: {text}"
        );
    }

    #[test]
    fn stream_writers_reproduce_the_buffered_output_byte_for_byte() {
        let (_, results) = sample();
        let mut jsonl = JobStreamWriter::jsonl(Vec::new(), 1);
        let mut csv = JobStreamWriter::csv(Vec::new(), 3).unwrap();
        for r in &results {
            jsonl.write(r).unwrap();
            csv.write(r).unwrap();
        }
        assert_eq!(jsonl.written(), 2);
        let jsonl = String::from_utf8(jsonl.finish().unwrap()).unwrap();
        let csv = String::from_utf8(csv.finish().unwrap()).unwrap();
        assert_eq!(jsonl, jobs_to_jsonl(&results));
        assert_eq!(csv, jobs_to_csv(&results));
    }

    #[test]
    fn stream_writer_flushes_at_the_requested_cadence() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        struct CountingSink(Arc<AtomicUsize>);
        impl io::Write for CountingSink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                self.0.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
        }

        let (_, results) = sample();
        let flushes = Arc::new(AtomicUsize::new(0));
        let mut w = JobStreamWriter::jsonl(CountingSink(flushes.clone()), 2);
        w.write(&results[0]).unwrap();
        assert_eq!(flushes.load(Ordering::Relaxed), 0, "cadence not due yet");
        w.write(&results[1]).unwrap();
        assert_eq!(flushes.load(Ordering::Relaxed), 1, "flush every 2 records");
        w.write(&results[0]).unwrap();
        w.finish().unwrap();
        assert_eq!(
            flushes.load(Ordering::Relaxed),
            2,
            "finish flushes the tail"
        );
    }

    #[test]
    fn non_finite_numbers_emit_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(2.5), "2.5");
        assert_eq!(num(3.0), "3");
    }
}
