use freezetag_instances::registry::RegistryError;
use freezetag_sim::SimError;
use std::error::Error;
use std::fmt;

/// Error building, validating or running an experiment plan.
#[derive(Debug, Clone, PartialEq)]
pub enum ExpError {
    /// The plan is structurally invalid (empty axis, bad spec syntax, …).
    InvalidPlan(String),
    /// A scenario failed registry lookup or parameter validation.
    Registry(String),
    /// A job's run failed schedule validation.
    Validation {
        /// Scenario name of the failing job.
        scenario: String,
        /// Algorithm label of the failing job.
        algorithm: String,
        /// The underlying simulator error, stringified.
        message: String,
    },
    /// The scenario/algorithm combination is not executable (e.g. a
    /// centralized baseline on an adversarial layout).
    Unsupported(String),
    /// The plan was cancelled cooperatively — an explicit cancel request
    /// or an expired deadline — before every job finished. Results emitted
    /// before the cancellation are valid and complete.
    Cancelled,
    /// A worker thread panicked while executing a job. The resident engine
    /// catches the unwind at the job boundary so one bad job cannot take
    /// down the serving process; the payload is the panic message.
    Internal(String),
}

impl fmt::Display for ExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            ExpError::Registry(msg) => write!(f, "{msg}"),
            ExpError::Validation {
                scenario,
                algorithm,
                message,
            } => write!(
                f,
                "run of {algorithm} on scenario '{scenario}' failed validation: {message}"
            ),
            ExpError::Unsupported(msg) => write!(f, "unsupported combination: {msg}"),
            ExpError::Cancelled => {
                write!(f, "plan cancelled (explicit cancel or deadline exceeded)")
            }
            ExpError::Internal(msg) => write!(f, "internal error: worker panicked: {msg}"),
        }
    }
}

impl Error for ExpError {}

impl From<RegistryError> for ExpError {
    fn from(e: RegistryError) -> Self {
        ExpError::Registry(e.to_string())
    }
}

impl ExpError {
    pub(crate) fn validation(scenario: &str, algorithm: &str, e: SimError) -> Self {
        ExpError::Validation {
            scenario: scenario.to_string(),
            algorithm: algorithm.to_string(),
            message: e.to_string(),
        }
    }
}
