//! Sidecar journals for resumable sweeps.
//!
//! A streaming sweep (`dftp sweep --out FILE`) writes records in strict
//! job order, so an interrupted run leaves a *prefix* of the final file on
//! disk. The journal — a `FILE.journal` sidecar holding a canonical
//! fingerprint of the plan and output format — is what makes that prefix
//! safely resumable: a restarted sweep with `--resume` verifies the
//! fingerprint (same jobs, same bytes-per-record), truncates any partial
//! trailing line the interruption left, counts the complete records, and
//! re-submits the plan with
//! [`SubmitOptions::first_job`](crate::SubmitOptions::first_job) set past
//! them. Results are deterministic, so the resumed tail is byte-identical
//! to what an uninterrupted run would have written (bar `wall_time_s`).
//! The same primitives serve as crash recovery for the `dftp serve`
//! result spool.
//!
//! The journal is removed on successful completion; its presence means
//! "this output file is an incomplete prefix".

use crate::plan::ExperimentPlan;
use freezetag_instances::registry;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Canonical one-line identity of a streaming sweep: output format,
/// profile, plan seed, repetitions, every scenario (display name,
/// canonical generator, exact parameter bits) and every algorithm label —
/// everything that determines the output bytes, and nothing that doesn't
/// (thread counts are excluded; the determinism suites pin that they
/// cannot change a record).
pub fn plan_fingerprint(plan: &ExperimentPlan, format: &str) -> String {
    let mut f = format!(
        "dftp-sweep-journal v1|format={format}|profile={}|plan_seed={}|seeds={}",
        plan.profile, plan.plan_seed, plan.seeds
    );
    for spec in &plan.scenarios {
        let canonical = match registry::lookup(&spec.generator) {
            Some(g) => g.name.to_string(),
            None => spec.generator.clone(),
        };
        let _ = write!(f, "|scenario={}={canonical}", spec.name);
        for (key, value) in &spec.params {
            let _ = write!(f, ":{key}={:x}", value.to_bits());
        }
    }
    for alg in &plan.algorithms {
        let _ = write!(f, "|alg={}", alg.label());
    }
    f
}

/// The sidecar path for an output file: `results.jsonl` →
/// `results.jsonl.journal`.
pub fn journal_path(out: &Path) -> PathBuf {
    let mut os = out.as_os_str().to_os_string();
    os.push(".journal");
    PathBuf::from(os)
}

/// Writes (or overwrites) the journal for `out`.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_journal(out: &Path, fingerprint: &str) -> io::Result<()> {
    fs::write(journal_path(out), format!("{fingerprint}\n"))
}

/// Reads the journal's fingerprint, `None` when no journal exists.
///
/// # Errors
///
/// Propagates read errors other than the file being absent.
pub fn read_journal(out: &Path) -> io::Result<Option<String>> {
    match fs::read_to_string(journal_path(out)) {
        Ok(text) => Ok(Some(text.trim_end_matches('\n').to_string())),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Removes the journal; absent is fine (completion is idempotent).
///
/// # Errors
///
/// Propagates removal errors other than the file being absent.
pub fn clear_journal(out: &Path) -> io::Result<()> {
    match fs::remove_file(journal_path(out)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

/// What [`resume_point`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumeState {
    /// Complete records already present (the `first_job` to resume from).
    pub records: usize,
    /// Whether a complete header line stands (always `false` for
    /// headerless formats).
    pub header_present: bool,
}

/// Prepares an interrupted output file for appending: truncates any
/// partial trailing line (a record is only durable once its newline is)
/// and counts the complete lines that remain. `has_header` says the
/// format spends its first line on a header (CSV) rather than a record.
/// A missing file resumes from zero.
///
/// # Errors
///
/// Propagates read/truncate errors.
pub fn resume_point(out: &Path, has_header: bool) -> io::Result<ResumeState> {
    let data = match fs::read(out) {
        Ok(data) => data,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(ResumeState {
                records: 0,
                header_present: false,
            })
        }
        Err(e) => Err(e)?,
    };
    // Everything after the last newline is an interrupted partial record.
    let keep = data
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|p| p + 1)
        .unwrap_or(0);
    if keep < data.len() {
        let file = fs::OpenOptions::new().write(true).open(out)?;
        file.set_len(keep as u64)?;
    }
    let lines = data[..keep].iter().filter(|&&b| b == b'\n').count();
    let header_present = has_header && lines > 0;
    Ok(ResumeState {
        records: lines.saturating_sub(has_header as usize),
        header_present,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ScenarioSpec;
    use freezetag_core::Algorithm;

    fn plan() -> ExperimentPlan {
        ExperimentPlan::new("j")
            .scenario(
                ScenarioSpec::new("disk")
                    .with("n", 12.0)
                    .with("radius", 4.0),
            )
            .algorithm(Algorithm::Grid)
            .seeds(2)
    }

    #[test]
    fn fingerprint_tracks_everything_that_shapes_the_bytes() {
        let base = plan_fingerprint(&plan(), "jsonl");
        assert!(base.contains("format=jsonl"));
        assert!(base.contains("uniform_disk"), "canonical name: {base}");
        assert_ne!(base, plan_fingerprint(&plan(), "csv"));
        assert_ne!(base, plan_fingerprint(&plan().plan_seed(9), "jsonl"));
        assert_ne!(base, plan_fingerprint(&plan().seeds(3), "jsonl"));
        assert_ne!(
            base,
            plan_fingerprint(&plan().profile(crate::Profile::Stats), "jsonl")
        );
        // Thread counts don't change output bytes, so they don't change
        // the fingerprint either.
        assert_eq!(base, plan_fingerprint(&plan().sim_threads(8), "jsonl"));
    }

    #[test]
    fn journal_roundtrip_and_clear() {
        let dir = std::env::temp_dir().join(format!("ftj-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let out = dir.join("results.jsonl");
        assert_eq!(read_journal(&out).unwrap(), None);
        write_journal(&out, "fp").unwrap();
        assert_eq!(read_journal(&out).unwrap(), Some("fp".to_string()));
        clear_journal(&out).unwrap();
        clear_journal(&out).unwrap();
        assert_eq!(read_journal(&out).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_point_truncates_partial_tails_and_counts_records() {
        let dir = std::env::temp_dir().join(format!("ftr-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let out = dir.join("partial.jsonl");
        assert_eq!(
            resume_point(&out, false).unwrap(),
            ResumeState {
                records: 0,
                header_present: false
            }
        );
        fs::write(&out, "{\"a\":1}\n{\"b\":2}\n{\"trunc").unwrap();
        let state = resume_point(&out, false).unwrap();
        assert_eq!(state.records, 2);
        assert_eq!(fs::read_to_string(&out).unwrap(), "{\"a\":1}\n{\"b\":2}\n");
        // CSV: the header line is not a record; a header alone resumes
        // from job 0 but must not be rewritten.
        let csv = dir.join("partial.csv");
        fs::write(&csv, "h1,h2\nrow\npart").unwrap();
        assert_eq!(
            resume_point(&csv, true).unwrap(),
            ResumeState {
                records: 1,
                header_present: true
            }
        );
        fs::write(&csv, "h1,h2\n").unwrap();
        assert_eq!(
            resume_point(&csv, true).unwrap(),
            ResumeState {
                records: 0,
                header_present: true
            }
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
