//! Experiment engine for the freezetag workspace: every number this
//! repository reports is produced by running an [`ExperimentPlan`] through
//! this crate.
//!
//! A plan is *data*: a list of named scenarios (a registry generator plus
//! a parameter map, see `freezetag_instances::registry`), a list of
//! algorithm specifications ([`AlgSpec`]: the three distributed
//! algorithms, optionally with a Lemma 2 wake-strategy override, the
//! centralized wake-tree baselines, or the exact small-`n` optimum), and a
//! number of seeded repetitions per cell. The [`Engine`] executes the full
//! cross-product `scenarios × algorithms × seeds` on a `std::thread`
//! worker pool, splitting the core budget between inter-job workers and
//! each job's deterministic `sim_threads`-wide intra-job pool (see
//! [`inter_job_workers`] and `freezetag_sim::ParPool`); every job draws
//! its seed deterministically via
//! [`derive_seed`] from `(plan_seed, scenario, repetition)` — deliberately
//! *not* from the algorithm, so all algorithms of a cell run on the
//! identical instance (paired comparisons) — and the results, like the
//! aggregated JSON emitted by [`emit`], are byte-identical for any thread
//! count.
//!
//! The layers:
//!
//! * [`plan`] — [`ScenarioSpec`], [`AlgSpec`], [`ExperimentPlan`], job
//!   cross-product and validation;
//! * [`engine`] — the [`Engine`] facade: plan submission onto a resident
//!   worker pool, the in-order cancellable [`JobStream`], the
//!   deterministic result cache, and the single-run entry points;
//! * [`runner`] — per-job execution (concrete and adversarial worlds),
//!   [`JobResult`] and the single-run result types, plus deprecated
//!   pre-Engine free functions kept as thin shims;
//! * [`serve`] — `dftp serve`: the engine behind a hand-rolled HTTP/1.1
//!   service with streaming JSONL results;
//! * [`agg`] — grouping job results into [`Aggregate`]s with
//!   mean/min/max/p50/p95 statistics;
//! * [`emit`] — JSON-lines, CSV, aggregated JSON, and the
//!   `BENCH_results.json` perf-trajectory format.
//!
//! # Example
//!
//! ```
//! use freezetag_exp::{agg, emit, AlgSpec, Engine, ExperimentPlan, ScenarioSpec};
//! use freezetag_core::Algorithm;
//!
//! let plan = ExperimentPlan::new("doc")
//!     .scenario(ScenarioSpec::new("disk").with("n", 15.0).with("radius", 5.0))
//!     .algorithm(AlgSpec::from(Algorithm::Grid))
//!     .seeds(2);
//! let results = Engine::with_threads(2).run(&plan).unwrap();
//! assert_eq!(results.len(), 2);
//! let aggregates = agg::aggregate(&results);
//! let json = emit::aggregates_to_json(&plan, &aggregates);
//! assert!(json.contains("\"makespan\""));
//! ```

#![warn(missing_docs)]

pub mod agg;
pub mod emit;
pub mod engine;
mod error;
pub mod journal;
pub mod plan;
pub mod runner;
pub mod serve;

pub use agg::{aggregate, Aggregate, Stats, StreamingAgg};
pub use emit::JobStreamWriter;
pub use engine::{CacheStats, Engine, EngineConfig, JobStream, SubmitOptions};
pub use error::ExpError;
pub use plan::{derive_seed, AlgSpec, ExperimentPlan, JobSpec, Profile, ScenarioSpec};
pub use runner::{inter_job_workers, CompressedRun, JobResult, SingleRun, StatsRun};
#[allow(deprecated)]
pub use runner::{
    run_plan, run_plan_streaming, run_single, run_single_compressed, run_single_compressed_with,
    run_single_stats, run_single_stats_with, run_single_with,
};
