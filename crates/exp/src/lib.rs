//! Experiment engine for the freezetag workspace: every number this
//! repository reports is produced by running an [`ExperimentPlan`] through
//! this crate.
//!
//! A plan is *data*: a list of named scenarios (a registry generator plus
//! a parameter map, see `freezetag_instances::registry`), a list of
//! algorithm specifications ([`AlgSpec`]: the three distributed
//! algorithms, optionally with a Lemma 2 wake-strategy override, the
//! centralized wake-tree baselines, or the exact small-`n` optimum), and a
//! number of seeded repetitions per cell. [`run_plan`] executes the full
//! cross-product `scenarios × algorithms × seeds` on a `std::thread`
//! worker pool, splitting the core budget between inter-job workers and
//! each job's deterministic `sim_threads`-wide intra-job pool (see
//! [`inter_job_workers`] and `freezetag_sim::ParPool`); every job draws
//! its seed deterministically via
//! [`derive_seed`] from `(plan_seed, scenario, repetition)` — deliberately
//! *not* from the algorithm, so all algorithms of a cell run on the
//! identical instance (paired comparisons) — and the results, like the
//! aggregated JSON emitted by [`emit`], are byte-identical for any thread
//! count.
//!
//! The layers:
//!
//! * [`plan`] — [`ScenarioSpec`], [`AlgSpec`], [`ExperimentPlan`], job
//!   cross-product and validation;
//! * [`runner`] — the worker pool, per-job execution (concrete and
//!   adversarial worlds), [`JobResult`], [`run_single`] for harnesses
//!   that need the schedule/trace of one run, and [`run_plan_streaming`]
//!   for sweeps whose results go straight to disk instead of a vector;
//! * [`agg`] — grouping job results into [`Aggregate`]s with
//!   mean/min/max/p50/p95 statistics;
//! * [`emit`] — JSON-lines, CSV, aggregated JSON, and the
//!   `BENCH_results.json` perf-trajectory format.
//!
//! # Example
//!
//! ```
//! use freezetag_exp::{agg, emit, run_plan, AlgSpec, ExperimentPlan, ScenarioSpec};
//! use freezetag_core::Algorithm;
//!
//! let plan = ExperimentPlan::new("doc")
//!     .scenario(ScenarioSpec::new("disk").with("n", 15.0).with("radius", 5.0))
//!     .algorithm(AlgSpec::from(Algorithm::Grid))
//!     .seeds(2);
//! let results = run_plan(&plan, 2).unwrap();
//! assert_eq!(results.len(), 2);
//! let aggregates = agg::aggregate(&results);
//! let json = emit::aggregates_to_json(&plan, &aggregates);
//! assert!(json.contains("\"makespan\""));
//! ```

pub mod agg;
pub mod emit;
mod error;
pub mod plan;
pub mod runner;

pub use agg::{aggregate, Aggregate, Stats, StreamingAgg};
pub use emit::JobStreamWriter;
pub use error::ExpError;
pub use plan::{derive_seed, AlgSpec, ExperimentPlan, JobSpec, Profile, ScenarioSpec};
pub use runner::{
    inter_job_workers, run_plan, run_plan_streaming, run_single, run_single_compressed,
    run_single_compressed_with, run_single_stats, run_single_stats_with, run_single_with,
    CompressedRun, JobResult, SingleRun, StatsRun,
};
