//! Shared helpers for the benchmark harness: the binaries in `src/bin/`
//! regenerate every table and figure of the paper (see DESIGN.md §4 for
//! the experiment index), and the Criterion benches in `benches/` track
//! the implementation's wall-clock performance.

use freezetag_instances::generators::{grid_lattice, snake};
use freezetag_instances::Instance;

/// A lattice instance with connectivity threshold exactly `ell` and radius
/// ≈ `rho` — the standard workload for the `ASeparator` sweeps (ratio
/// `ρ/ℓ` is the swept quantity in Theorems 1–2).
pub fn lattice_with(ell: f64, rho: f64) -> Instance {
    let side = ((rho / ell) * std::f64::consts::SQRT_2 / 2.0).ceil() as usize;
    grid_lattice(side.max(2), side.max(2), ell)
}

/// A serpentine instance with threshold ≈ `ell` and eccentricity ≈ `xi` —
/// the workload separating `AGrid` from `AWave` (Theorems 4–5).
pub fn snake_with(ell: f64, xi: f64) -> Instance {
    let legs = 4;
    let leg = (xi / legs as f64).max(4.0 * ell);
    snake(legs, leg, 2.0 * ell, ell)
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style table header with separator line.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_with_has_requested_parameters() {
        let inst = lattice_with(2.0, 24.0);
        let p = inst.params(None);
        assert!((p.ell_star - 2.0).abs() < 1e-9);
        assert!(
            p.rho_star >= 20.0 && p.rho_star <= 40.0,
            "rho {}",
            p.rho_star
        );
    }

    #[test]
    fn snake_with_hits_eccentricity_scale() {
        let inst = snake_with(1.0, 120.0);
        let p = inst.params(Some(1.0));
        let xi = p.xi_ell.expect("connected");
        assert!((80.0..=240.0).contains(&xi), "xi {xi}");
    }
}
