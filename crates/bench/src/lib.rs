//! Shared helpers for the benchmark harness: the binaries in `src/bin/`
//! regenerate every table and figure of the paper (see DESIGN.md §4 for
//! the experiment index), and the Criterion benches in `benches/` track
//! the implementation's wall-clock performance.
//!
//! Every full-algorithm measurement in the binaries is an
//! [`freezetag_exp::ExperimentPlan`] executed by the experiment engine;
//! this crate supplies the standard paper workloads as scenario specs
//! ([`lattice_scenario`], [`snake_scenario`]) and renders engine
//! aggregates as markdown tables ([`render_aggregates`]).

use freezetag_exp::{Aggregate, Engine, Profile, ScenarioSpec};
use freezetag_instances::generators::{grid_lattice, snake};
use freezetag_instances::Instance;

/// A lattice instance with connectivity threshold exactly `ell` and radius
/// ≈ `rho` — the standard workload for the `ASeparator` sweeps (ratio
/// `ρ/ℓ` is the swept quantity in Theorems 1–2).
pub fn lattice_with(ell: f64, rho: f64) -> Instance {
    let side = ((rho / ell) * std::f64::consts::SQRT_2 / 2.0).ceil() as usize;
    grid_lattice(side.max(2), side.max(2), ell)
}

/// A serpentine instance with threshold ≈ `ell` and eccentricity ≈ `xi` —
/// the workload separating `AGrid` from `AWave` (Theorems 4–5).
pub fn snake_with(ell: f64, xi: f64) -> Instance {
    let legs = 4;
    let leg = (xi / legs as f64).max(4.0 * ell);
    snake(legs, leg, 2.0 * ell, ell)
}

/// The [`lattice_with`] workload as a registry scenario — the exact same
/// instance, expressed as plan data for the experiment engine.
pub fn lattice_scenario(ell: f64, rho: f64) -> ScenarioSpec {
    let side = ((rho / ell) * std::f64::consts::SQRT_2 / 2.0)
        .ceil()
        .max(2.0);
    ScenarioSpec::new("grid_lattice")
        .with("side", side)
        .with("spacing", ell)
        .named(&format!("lattice ℓ={ell} ρ={rho}"))
}

/// The [`snake_with`] workload as a registry scenario.
pub fn snake_scenario(ell: f64, xi: f64) -> ScenarioSpec {
    let legs = 4.0;
    let leg = (xi / legs).max(4.0 * ell);
    ScenarioSpec::new("snake")
        .with("legs", legs)
        .with("leg", leg)
        .with("riser", 2.0 * ell)
        .with("spacing", ell)
        .named(&format!("snake ℓ={ell} ξ≈{xi}"))
}

/// The Theorem 2 adversarial grid-of-disks layout as a registry scenario
/// (`n` caps the disk count; the construction may produce fewer).
pub fn theorem2_scenario(ell: f64, rho: f64, n: usize) -> ScenarioSpec {
    ScenarioSpec::new("theorem2")
        .with("ell", ell)
        .with("rho", rho)
        .with("n", n as f64)
        .named(&format!("thm2 ℓ={ell} ρ={rho}"))
}

/// Worker threads for the reproduction binaries: all available cores,
/// capped at 8. Results are independent of this number.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// The standard experiment engine for the reproduction binaries:
/// [`default_threads`] workers, no result cache (every binary runs each
/// job exactly once).
pub fn engine() -> Engine {
    Engine::with_threads(default_threads())
}

/// Reads an optional `--profile full|stats|compressed` from the process
/// arguments, falling back to `default` when absent. Sections whose
/// measurements *require* full schedules (adversarial scenarios,
/// validation tables) ignore this and hard-pick their profile; the
/// scale-style sections honor it, so e.g. `table1 --profile compressed`
/// re-runs the large-`n` block with delta-encoded schedules and
/// streaming validation.
///
/// # Panics
///
/// Exits the process with an error message when `--profile` is given an
/// unknown value or no value.
pub fn profile_arg(default: Profile) -> Profile {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--profile" {
            match args.next().as_deref().map(Profile::parse) {
                Some(Ok(p)) => return p,
                Some(Err(e)) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
                None => {
                    eprintln!("error: --profile expects full|stats|compressed");
                    std::process::exit(2);
                }
            }
        }
    }
    default
}

/// Renders engine aggregates as a markdown table (the standard summary
/// block closing each reproduction binary; same layout `dftp sweep`
/// prints, via [`freezetag_exp::emit::aggregates_to_markdown`]).
pub fn render_aggregates(aggregates: &[Aggregate]) {
    print!(
        "{}",
        freezetag_exp::emit::aggregates_to_markdown(aggregates)
    );
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style table header with separator line.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_with_has_requested_parameters() {
        let inst = lattice_with(2.0, 24.0);
        let p = inst.params(None);
        assert!((p.ell_star - 2.0).abs() < 1e-9);
        assert!(
            p.rho_star >= 20.0 && p.rho_star <= 40.0,
            "rho {}",
            p.rho_star
        );
    }

    #[test]
    fn scenario_specs_match_their_direct_constructors() {
        use freezetag_instances::registry;
        let s = lattice_scenario(2.0, 24.0);
        let inst = registry::build_instance(&s.generator, &s.params, 0).expect("builds");
        assert_eq!(inst, lattice_with(2.0, 24.0));
        let s = snake_scenario(1.0, 120.0);
        let inst = registry::build_instance(&s.generator, &s.params, 0).expect("builds");
        assert_eq!(inst, snake_with(1.0, 120.0));
    }

    #[test]
    fn snake_with_hits_eccentricity_scale() {
        let inst = snake_with(1.0, 120.0);
        let p = inst.params(Some(1.0));
        let xi = p.xi_ell.expect("connected");
        assert!((80.0..=240.0).contains(&xi), "xi {xi}");
    }
}
