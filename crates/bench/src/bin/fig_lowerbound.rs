//! Regenerates **Figure 5** of the paper: the lower-bound constructions.
//!
//! * Theorem 2 (Fig. 5a): the grid-of-disks adversarial layout — rendered
//!   to SVG, and the `ℓ² log m` growth measured by running `ASeparator`
//!   against the adaptive adversary while sweeping the disk count `m`.
//! * Theorem 6: the rectilinear-path construction with prescribed
//!   eccentricity ξ — `AGrid`/`AWave` makespans against the
//!   `Ω(ξ + ℓ² log(ξ/ℓ))` shape while ξ sweeps its admissible range.
//!
//! Run with: `cargo run --release -p freezetag-bench --bin fig_lowerbound`
//! Output:   `target/fig_lowerbound.svg`

use freezetag_bench::{f1, f2, header, row};
use freezetag_core::{bounds, run_algorithm, solve, Algorithm};
use freezetag_instances::adversarial::theorem2_layout;
use freezetag_instances::path_construction::{theorem6_instance, Theorem6Params};
use freezetag_instances::AdmissibleTuple;
use freezetag_sim::svg::{render_run, SvgOptions};
use freezetag_sim::{AdversarialWorld, Sim, WorldView};

fn main() {
    theorem2_series();
    theorem6_series();
}

fn theorem2_series() {
    println!("\n## Figure 5a / Theorem 2 — adversarial grid of disks\n");
    header(&[
        "ℓ",
        "ρ",
        "m",
        "makespan",
        "ρ + ℓ²·log m",
        "ratio",
        "pinned late?",
    ]);
    let ell = 4.0;
    for &rho in &[16.0, 32.0, 64.0] {
        let layout = theorem2_layout(ell, rho, 100_000);
        let m = layout.n();
        let tuple = AdmissibleTuple::new(ell, rho, m);
        let mut sim = Sim::new(AdversarialWorld::new(layout));
        run_algorithm(&mut sim, &tuple, Algorithm::Separator);
        assert!(sim.world().all_awake());
        let makespan = sim.schedule().makespan();
        let shape = rho + ell * ell * (m as f64).log2();
        row(&[
            f1(ell),
            f1(rho),
            m.to_string(),
            f1(makespan),
            f1(shape),
            f2(makespan / shape),
            "yes (adaptive)".into(),
        ]);
    }
    println!("\nshape check: ratio bounded while m grows ~4× per row — the");
    println!("measured makespan carries the Ω(ℓ² log m) adversarial term.");

    // Render the construction itself (Figure 5a).
    let layout = theorem2_layout(4.0, 32.0, 100_000);
    let tuple = AdmissibleTuple::new(4.0, 32.0, layout.n());
    let mut sim = Sim::new(AdversarialWorld::new(layout));
    run_algorithm(&mut sim, &tuple, Algorithm::Separator);
    let world = sim.world();
    let positions = world
        .final_positions()
        .expect("all robots pinned by the end");
    let (_, schedule, _) = {
        let (w, s, t) = sim.into_parts();
        let _ = w;
        ((), s, t)
    };
    let svg = render_run(
        freezetag_geometry::Point::ORIGIN,
        &positions,
        Some(&schedule),
        &[],
        &SvgOptions::default(),
    );
    std::fs::create_dir_all("target").expect("create target dir");
    std::fs::write("target/fig_lowerbound.svg", svg).expect("write svg");
    println!("wrote target/fig_lowerbound.svg");
}

fn theorem6_series() {
    println!("\n## Theorem 6 — prescribed-eccentricity path, Ω(ξ + ℓ² log(ξ/ℓ))\n");
    header(&[
        "ξ (target)",
        "ξ_ℓ (measured)",
        "alg",
        "makespan",
        "Ω-shape",
        "ratio",
    ]);
    let p0 = Theorem6Params {
        ell: 1.0,
        rho: 40.0,
        budget: 3.0,
        xi: 40.0,
    };
    for &xi in &[40.0, 80.0, 160.0] {
        let params = Theorem6Params { xi, ..p0 };
        let cap = params.rho * params.rho / (2.0 * (params.budget + 1.0)) + 1.0;
        if xi > cap {
            println!("(ξ={xi} beyond the geometric cap {cap:.0} — skipped, Eq. 15)");
            continue;
        }
        let inst = theorem6_instance(&params);
        let tuple = inst.admissible_tuple();
        let xi_m = inst.params(Some(tuple.ell)).xi_ell.expect("path connected");
        for alg in [Algorithm::Grid, Algorithm::Wave] {
            let rep = solve(&inst, &tuple, alg).expect("valid run");
            assert!(rep.all_awake);
            let shape = bounds::wave_makespan_bound(xi_m, tuple.ell);
            row(&[
                f1(xi),
                f1(xi_m),
                alg.to_string(),
                f1(rep.makespan),
                f1(shape),
                f2(rep.makespan / shape),
            ]);
        }
    }
    println!("\nshape check: every algorithm's makespan dominates the Ω(ξ)");
    println!("term — the corridors force physical travel of length ξ.");
}
