//! Regenerates **Figure 5** of the paper: the lower-bound constructions.
//!
//! * Theorem 2 (Fig. 5a): the grid-of-disks adversarial layout — the
//!   `ℓ² log m` growth measured by an experiment plan running `ASeparator`
//!   against the adaptive adversary while sweeping the disk count `m`,
//!   then one engine single run rendered to SVG.
//! * Theorem 6: the rectilinear-path construction with prescribed
//!   eccentricity ξ — `AGrid`/`AWave` makespans against the
//!   `Ω(ξ + ℓ² log(ξ/ℓ))` shape while ξ sweeps its admissible range.
//!
//! Run with: `cargo run --release -p freezetag-bench --bin fig_lowerbound`
//! Output:   `target/fig_lowerbound.svg`

use freezetag_bench::{engine, f1, f2, header, row, theorem2_scenario};
use freezetag_core::{bounds, Algorithm};
use freezetag_exp::{AlgSpec, ExperimentPlan, ScenarioSpec};
use freezetag_instances::path_construction::Theorem6Params;
use freezetag_sim::svg::{render_run, SvgOptions};

fn main() {
    theorem2_series();
    theorem6_series();
}

fn theorem2_series() {
    println!("\n## Figure 5a / Theorem 2 — adversarial grid of disks\n");
    let ell = 4.0;
    let mut plan = ExperimentPlan::new("fig5a-theorem2").algorithm(Algorithm::Separator);
    for &rho in &[16.0, 32.0, 64.0] {
        plan = plan.scenario(theorem2_scenario(ell, rho, 100_000));
    }
    let results = engine().run(&plan).expect("valid runs");
    header(&[
        "ℓ",
        "ρ",
        "m",
        "makespan",
        "ρ + ℓ²·log m",
        "ratio",
        "schedule KiB",
    ]);
    for r in &results {
        assert!(r.all_awake, "adversarial robots must all wake");
        let shape = r.rho + r.ell * r.ell * (r.n as f64).log2();
        row(&[
            f1(r.ell),
            f1(r.rho),
            r.n.to_string(),
            f1(r.makespan),
            f1(shape),
            f2(r.makespan / shape),
            f1(r.peak_mem_bytes / 1024.0),
        ]);
    }
    println!("\nshape check: ratio bounded while m grows ~4× per row — the");
    println!("measured makespan carries the Ω(ℓ² log m) adversarial term.");

    // Render the construction itself (Figure 5a): one engine run with the
    // full schedule and the adversary's revealed positions.
    let run = engine()
        .single(
            &theorem2_scenario(4.0, 32.0, 100_000),
            AlgSpec::from(Algorithm::Separator),
            1,
        )
        .expect("valid run");
    assert!(
        !run.positions.is_empty(),
        "all robots pinned by the end of the run"
    );
    let svg = render_run(
        run.source,
        &run.positions,
        Some(&run.schedule),
        &[],
        &SvgOptions::default(),
    );
    std::fs::create_dir_all("target").expect("create target dir");
    std::fs::write("target/fig_lowerbound.svg", svg).expect("write svg");
    println!("wrote target/fig_lowerbound.svg");
}

fn theorem6_series() {
    println!("\n## Theorem 6 — prescribed-eccentricity path, Ω(ξ + ℓ² log(ξ/ℓ))\n");
    let p0 = Theorem6Params {
        ell: 1.0,
        rho: 40.0,
        budget: 3.0,
        xi: 40.0,
    };
    let mut targets = Vec::new();
    let mut plan = ExperimentPlan::new("fig5-theorem6")
        .algorithm(Algorithm::Grid)
        .algorithm(Algorithm::Wave);
    for &xi in &[40.0, 80.0, 160.0] {
        let cap = p0.rho * p0.rho / (2.0 * (p0.budget + 1.0)) + 1.0;
        if xi > cap {
            println!("(ξ={xi} beyond the geometric cap {cap:.0} — skipped, Eq. 15)");
            continue;
        }
        targets.push(xi);
        plan = plan.scenario(
            ScenarioSpec::new("theorem6")
                .with("ell", p0.ell)
                .with("rho", p0.rho)
                .with("budget", p0.budget)
                .with("xi", xi)
                .named(&format!("thm6 ξ={xi}")),
        );
    }
    if targets.is_empty() {
        println!("(every ξ exceeded the geometric cap — nothing to run)");
        return;
    }
    let results = engine().run(&plan).expect("valid runs");
    header(&[
        "ξ (target)",
        "ξ_ℓ (measured)",
        "alg",
        "makespan",
        "Ω-shape",
        "ratio",
    ]);
    for (cell, &xi) in results.chunks(plan.algorithms.len()).zip(&targets) {
        for r in cell {
            assert!(r.all_awake);
            let xi_m = r.xi_ell.expect("path connected");
            let shape = bounds::wave_makespan_bound(xi_m, r.ell);
            row(&[
                f1(xi),
                f1(xi_m),
                r.algorithm.clone(),
                f1(r.makespan),
                f1(shape),
                f2(r.makespan / shape),
            ]);
        }
    }
    println!("\nshape check: every algorithm's makespan dominates the Ω(ξ)");
    println!("term — the corridors force physical travel of length ξ.");
}
