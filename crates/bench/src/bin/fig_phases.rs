//! Regenerates **Figures 1 and 2** of the paper: the six phases of
//! `ASeparator` (Initialization, DFSampling recruitment, separator
//! exploration, recruitment, merge/reorganization, next round), as
//! per-depth phase timings plus SVG snapshots.
//!
//! The run itself goes through the experiment engine (`Engine::single`,
//! which also validates the schedule); this binary only analyses the
//! returned trace/schedule and renders the SVG.
//!
//! Run with: `cargo run --release -p freezetag-bench --bin fig_phases`
//! Output:   `target/fig_phases.svg`

use freezetag_bench::{engine, f1, header, row};
use freezetag_core::Algorithm;
use freezetag_exp::{AlgSpec, ScenarioSpec};
use freezetag_geometry::{Rect, Square};
use freezetag_sim::svg::{render_run, SvgOptions};
use std::collections::BTreeMap;

fn main() {
    // The Figure 1/2 regime: ρ/ℓ large enough for several partition
    // rounds.
    let scenario = ScenarioSpec::new("grid_lattice")
        .with("side", 20.0)
        .with("spacing", 2.0)
        .named("lattice 20×20");
    let run = engine()
        .single(&scenario, AlgSpec::from(Algorithm::Separator), 1)
        .expect("valid run");
    assert!(run.report.all_awake);
    println!(
        "instance: 20×20 lattice, spacing 2 — tuple (ℓ={}, ρ={}, n={})",
        run.ell, run.rho, run.n
    );
    let trace = &run.report.trace;
    let schedule = &run.schedule;

    println!("\n## Figures 1–2 — phase spans per recursion depth\n");
    header(&[
        "phase",
        "spans",
        "total time",
        "mean time",
        "detail (first span)",
    ]);
    let mut agg: BTreeMap<String, (f64, usize, String)> = BTreeMap::new();
    for s in trace.spans() {
        let e = agg
            .entry(s.label.clone())
            .or_insert((0.0, 0, s.detail.clone()));
        e.0 += s.end - s.start;
        e.1 += 1;
    }
    for (label, (total, count, detail)) in &agg {
        row(&[
            label.clone(),
            count.to_string(),
            f1(*total),
            f1(*total / *count as f64),
            detail.clone(),
        ]);
    }

    println!("\n## chronological phase log (first 14 spans — the Figure 1 → 2 storyline)\n");
    header(&["start", "end", "phase", "detail"]);
    for s in trace.spans().iter().take(14) {
        row(&[f1(s.start), f1(s.end), s.label.clone(), s.detail.clone()]);
    }

    println!("\n## wake-progress curve (robots awake over time)\n");
    header(&["% of swarm", "time", "time/makespan"]);
    let mut wake_times: Vec<f64> = schedule.wakes().iter().map(|w| w.time).collect();
    wake_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let makespan = schedule.makespan();
    for pct in [10usize, 25, 50, 75, 90, 100] {
        let idx = (pct * wake_times.len()).div_ceil(100).saturating_sub(1);
        let t = wake_times[idx.min(wake_times.len() - 1)];
        row(&[format!("{pct}%"), f1(t), format!("{:.2}", t / makespan)]);
    }

    println!(
        "\nmakespan {:.1}, completion {:.1}, full-recorder footprint {:.1} KiB",
        schedule.makespan(),
        schedule.completion_time(),
        schedule.memory_bytes() as f64 / 1024.0
    );

    // SVG with the recursive square structure (Figure 1c / 2c visuals).
    let big = Square::new(run.source, 2.0 * run.rho);
    let mut rects: Vec<Rect> = vec![big.to_rect()];
    for q in big.quadrants() {
        rects.push(q.to_rect());
        for qq in q.quadrants() {
            rects.push(qq.to_rect());
        }
    }
    let svg = render_run(
        run.source,
        &run.positions,
        Some(schedule),
        &rects,
        &SvgOptions::default(),
    );
    std::fs::create_dir_all("target").expect("create target dir");
    std::fs::write("target/fig_phases.svg", svg).expect("write svg");
    println!("wrote target/fig_phases.svg");
}
