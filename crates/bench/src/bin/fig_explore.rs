//! Regenerates **Figure 4** of the paper: the single-robot and
//! collaborative exploration schemes (Lemma 1), plus the Lemma 2
//! centralized wake-up constant.
//!
//! Series printed:
//! * exploration time vs rectangle dimensions for one robot — the
//!   `O(wh + w + h)` single-sweep line (Fig. 4a);
//! * exploration time vs team size `k` on a fixed rectangle — the
//!   `O(wh/k + w + h)` collaborative speed-up (Fig. 4b);
//! * centralized wake makespan / region size — the Lemma 2 `c·R`
//!   constant (our quadtree substitute for the paper's 5R algorithm),
//!   measured by an experiment plan over the engine's centralized
//!   executor.
//!
//! The Figure 4a/4b sweeps drive the simulator by hand — they measure the
//! exploration *primitive* (Lemma 1), which sits below the engine's
//! algorithm granularity.
//!
//! Run with: `cargo run --release -p freezetag-bench --bin fig_explore`

use freezetag_bench::{engine, f1, f2, header, row};
use freezetag_central::WakeStrategy;
use freezetag_exp::{AlgSpec, ExperimentPlan, ScenarioSpec};
use freezetag_geometry::{Point, Rect, SQRT_2};
use freezetag_instances::Instance;
use freezetag_sim::{ConcreteWorld, RobotId, Sim};

fn main() {
    single_sweep();
    collaborative();
    lemma2_constant();
}

/// Times one robot sweeping a w×h rectangle (no sleepers: pure sweep).
/// Pure timing, so it runs on the constant-memory stats driver with a
/// reused sighting buffer — the sweep itself is allocation-free.
fn sweep_time(w: f64, h: f64) -> f64 {
    let inst = Instance::new(vec![Point::new(-100.0, -100.0)]);
    let mut sim = Sim::with_stats(ConcreteWorld::new(&inst));
    let rect = Rect::with_size(Point::ORIGIN, w, h);
    let mut sightings = Vec::new();
    for snap in freezetag_geometry::sweep::snapshot_positions(&rect) {
        sim.move_to(RobotId::SOURCE, snap);
        sim.look_into(RobotId::SOURCE, &mut sightings);
    }
    sim.time(RobotId::SOURCE)
}

fn single_sweep() {
    println!("\n## Figure 4a — single-robot exploration, time vs w×h\n");
    header(&["w", "h", "time", "wh/√2 + w + h", "ratio"]);
    for &(w, h) in &[
        (8.0, 8.0),
        (16.0, 16.0),
        (32.0, 32.0),
        (64.0, 64.0),
        (64.0, 8.0),
        (8.0, 64.0),
    ] {
        let t = sweep_time(w, h);
        let model = w * h / SQRT_2 + w + h;
        row(&[f1(w), f1(h), f1(t), f1(model), f2(t / model)]);
    }
    println!("\nshape check: ratio ≈ constant → sweep time is Θ(wh + w + h).");
}

fn collaborative() {
    println!("\n## Figure 4b — collaborative exploration, time vs team size k\n");
    header(&["k", "time", "speedup vs k=1", "ideal k"]);
    // Build k co-located robots by hand, then sweep a 48×48 rectangle.
    let side = 48.0;
    let mut t1 = 0.0;
    for &k in &[1usize, 2, 4, 8, 16] {
        // k-1 sleepers right next to the source so the team forms cheaply.
        let mut pts: Vec<Point> = (0..k - 1)
            .map(|i| Point::new(0.001 * (i + 1) as f64, 0.0))
            .collect();
        pts.push(Point::new(-200.0, -200.0)); // far robot keeps n >= 1
        let inst = Instance::new(pts);
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        let mut members = vec![RobotId::SOURCE];
        for i in 0..k - 1 {
            sim.move_to(*members.last().unwrap(), inst.positions()[i]);
            members.push(sim.wake(*members.last().unwrap(), RobotId::sleeper(i)));
        }
        for &m in &members {
            sim.move_to(m, Point::ORIGIN);
        }
        sim.barrier(&members);
        let t0 = sim.time(RobotId::SOURCE);
        // Each member sweeps one horizontal strip (the Lemma 1 scheme).
        let rect = Rect::with_size(Point::new(2.0, 2.0), side, side);
        let mut sightings = Vec::new();
        for (i, &m) in members.iter().enumerate() {
            let strip = rect.horizontal_strips(k)[i];
            for snap in freezetag_geometry::sweep::snapshot_positions(&strip) {
                sim.move_to(m, snap);
                sim.look_into(m, &mut sightings);
            }
            sim.move_to(m, rect.min());
        }
        sim.barrier(&members);
        let dt = sim.time(RobotId::SOURCE) - t0;
        if k == 1 {
            t1 = dt;
        }
        row(&[k.to_string(), f1(dt), f2(t1 / dt), k.to_string()]);
    }
    println!("\nshape check: speed-up tracks k until the w+h term dominates —");
    println!("exactly Lemma 1's O(wh/k + w + h).");
}

fn lemma2_constant() {
    println!("\n## Lemma 2 — centralized wake of a radius-R/2 disk in c·R\n");
    let radii = [8.0, 16.0, 32.0, 64.0, 128.0];
    let mut plan =
        ExperimentPlan::new("fig4-lemma2").algorithm(AlgSpec::Central(WakeStrategy::Quadtree));
    for &r in &radii {
        plan = plan.scenario(
            ScenarioSpec::new("uniform_disk")
                .with("n", 150.0)
                .with("radius", r / 2.0)
                .named(&format!("R={r}")),
        );
    }
    let results = engine().run(&plan).expect("plans run");
    header(&["R", "n", "tree makespan", "makespan/R"]);
    for (r, &radius) in results.iter().zip(&radii) {
        row(&[
            f1(radius),
            r.n.to_string(),
            f1(r.makespan),
            f2(r.makespan / radius),
        ]);
    }
    println!("\nshape check: makespan/R constant (paper's Lemma 2 constant is 5;");
    println!("our quadtree substitute measures the column above — see DESIGN.md).");

    // Smoke: greedy baseline comparison on one instance, same engine path.
    let baseline = ExperimentPlan::new("fig4-lemma2-baseline")
        .scenario(
            ScenarioSpec::new("uniform_disk")
                .with("n", 100.0)
                .with("radius", 20.0),
        )
        .algorithm(AlgSpec::Central(WakeStrategy::Quadtree))
        .algorithm(AlgSpec::Central(WakeStrategy::Greedy));
    let results = engine().run(&baseline).expect("plans run");
    println!(
        "\nbaseline: quadtree {:.1} vs greedy {:.1} on a uniform disk (n=100, ρ=20)",
        results[0].makespan, results[1].makespan
    );
}
