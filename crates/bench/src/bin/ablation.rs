//! Ablation studies for the design choices documented in DESIGN.md:
//!
//! 1. centralized wake-up strategy (chain / greedy / median-split /
//!    midline quadtree / exact optimum on tiny inputs) — why Lemma 2's
//!    substitute is the midline quadtree;
//! 2. sweep row spacing — why `√2` (Lemma 1's coverage) and what breaks
//!    beyond it;
//! 3. discovery primitives — spiral vs k-team doubling search, the
//!    `Θ(D + D²/k)` from the paper's introduction.
//!
//! Ablations 1, 1b and 1c are experiment plans over `freezetag-exp`
//! (the engine runs the centralized baselines and the strategy-overridden
//! `ASeparator` directly); ablations 2–3 drive the simulator by hand —
//! they measure sweep/search primitives, not algorithms.
//!
//! Run with: `cargo run --release -p freezetag-bench --bin ablation`

use freezetag_bench::{engine, f1, f2, header, profile_arg, row};
use freezetag_central::WakeStrategy;
use freezetag_core::{spiral_search, team_search};
use freezetag_exp::{AlgSpec, ExperimentPlan, Profile, ScenarioSpec};
use freezetag_geometry::{Point, Rect};
use freezetag_instances::generators::uniform_disk;
use freezetag_instances::Instance;
use freezetag_sim::{ConcreteWorld, RobotId, Sim};

fn main() {
    central_strategies();
    end_to_end_strategy();
    sweep_spacing();
    discovery_primitives();
}

const STRATEGIES: [WakeStrategy; 4] = [
    WakeStrategy::Chain,
    WakeStrategy::Greedy,
    WakeStrategy::MedianSplit,
    WakeStrategy::Quadtree,
];

fn central_strategies() {
    println!("\n## Ablation 1 — centralized wake-up strategies (makespan)\n");
    let mut plan = ExperimentPlan::new("ablation-central");
    for strategy in STRATEGIES {
        plan = plan.algorithm(AlgSpec::Central(strategy));
    }
    // The anytime optimizer rides the same plan: it starts from the
    // greedy/median/quadtree trees and improves them by local search, so
    // its column lower-bounds what any constructive strategy can reach.
    let plan = plan
        .algorithm(AlgSpec::CentralAnytime)
        .scenario(
            ScenarioSpec::new("uniform_disk")
                .with("n", 150.0)
                .with("radius", 25.0)
                .named("uniform"),
        )
        .scenario(
            ScenarioSpec::new("clustered")
                .with("clusters", 4.0)
                .with("per", 35.0)
                .with("cradius", 1.5)
                .with("spread", 25.0)
                .named("clustered"),
        )
        .scenario(
            ScenarioSpec::new("skewed")
                .with("n", 100.0)
                .with("radius", 3.0)
                .with("far", 80.0)
                .named("skewed"),
        );
    let results = engine().run(&plan).expect("plans run");
    header(&[
        "workload",
        "n",
        "chain",
        "greedy",
        "median",
        "quadtree(ours)",
        "anytime",
    ]);
    for cell in results.chunks(STRATEGIES.len() + 1) {
        let mut cells = vec![cell[0].scenario.clone(), cell[0].n.to_string()];
        cells.extend(cell.iter().map(|r| f1(r.makespan)));
        let anytime = cell.last().expect("anytime column").makespan;
        let best_constructive = cell[..STRATEGIES.len()]
            .iter()
            .map(|r| r.makespan)
            .fold(f64::INFINITY, f64::min);
        assert!(
            anytime <= best_constructive + 1e-9,
            "{}: anytime {anytime} worse than best constructive {best_constructive}",
            cell[0].scenario
        );
        row(&cells);
    }

    println!("\ntiny inputs vs the exact optimum (branch & bound):");
    let mut tiny = ExperimentPlan::new("ablation-central-optimal")
        .algorithm(AlgSpec::CentralOptimal)
        .algorithm(AlgSpec::Central(WakeStrategy::Quadtree))
        .algorithm(AlgSpec::Central(WakeStrategy::Greedy));
    for n in [4usize, 6, 8] {
        tiny = tiny.scenario(
            ScenarioSpec::new("uniform_disk")
                .with("n", n as f64)
                .with("radius", 5.0)
                .named(&format!("disk n={n}")),
        );
    }
    let results = engine().run(&tiny).expect("plans run");
    header(&["n", "optimal", "quadtree", "greedy", "quadtree/opt"]);
    for cell in results.chunks(3) {
        let (opt, quad, greedy) = (cell[0].makespan, cell[1].makespan, cell[2].makespan);
        row(&[
            cell[0].n.to_string(),
            f2(opt),
            f2(quad),
            f2(greedy),
            f2(quad / opt),
        ]);
    }
    println!("\nconclusion: the midline quadtree is the only variant that is");
    println!("simultaneously O(R) on skewed inputs and close to optimal on");
    println!("small ones — hence our Lemma 2 substitute (DESIGN.md §5). The");
    println!("anytime optimizer tightens every workload's best constructive");
    println!("tree further — it is the ratio-table baseline, not a Lemma 2");
    println!("candidate (robots cannot run a centralized search mid-wake).");
}

/// The same ablation *inside* the full distributed algorithm: `ASeparator`
/// with each Lemma 2 substitute plugged into its terminating rounds.
fn end_to_end_strategy() {
    println!("\n## Ablation 1b — ASeparator end-to-end, per wake strategy\n");
    // Only makespans are compared here, so the constant-memory stats
    // profile suffices by default — the full-schedule validation of these
    // exact runs is covered by the engine's own test suite. `--profile`
    // overrides (e.g. `compressed` re-adds streaming validation).
    let mut plan = ExperimentPlan::new("ablation-end-to-end").profile(profile_arg(Profile::Stats));
    for strategy in WakeStrategy::ALL {
        plan = plan.algorithm(AlgSpec::separator_with(strategy));
    }
    let plan = plan
        .scenario(
            ScenarioSpec::new("uniform_disk")
                .with("n", 120.0)
                .with("radius", 20.0)
                .named("disk n=120"),
        )
        .scenario(
            ScenarioSpec::new("clustered")
                .with("clusters", 4.0)
                .with("per", 30.0)
                .with("cradius", 1.5)
                .with("spread", 20.0)
                .named("clusters"),
        );
    let results = engine().run(&plan).expect("plans run");
    header(&["workload", "quadtree", "greedy", "median", "chain"]);
    for cell in results.chunks(WakeStrategy::ALL.len()) {
        let mut cells = vec![cell[0].scenario.clone()];
        for r in cell {
            assert!(r.all_awake, "{} left robots asleep", r.algorithm);
            cells.push(f1(r.makespan));
        }
        row(&cells);
    }
    println!("\nconclusion: the distributed layers dominate the runtime, but the");
    println!("chain substitute still loses measurably — Lemma 2's O(R) matters.");
}

fn sweep_spacing() {
    println!("\n## Ablation 2 — sweep row spacing (Lemma 1 coverage)\n");
    header(&["row spacing", "robots found / 60", "sweep length"]);
    let inst = uniform_disk(60, 9.0, 17);
    let rect = Rect::with_size(Point::new(-10.0, -10.0), 20.0, 20.0);
    for &spacing in &[1.0, std::f64::consts::SQRT_2, 2.0, 3.0] {
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        let cols = (rect.width() / spacing).ceil().max(1.0) as usize;
        let rows_n = (rect.height() / spacing).ceil().max(1.0) as usize;
        let mut found = std::collections::BTreeSet::new();
        for r in 0..rows_n {
            let y = rect.min().y + (r as f64 + 0.5) * rect.height() / rows_n as f64;
            for c in 0..cols {
                let cc = if r % 2 == 0 { c } else { cols - 1 - c };
                let x = rect.min().x + (cc as f64 + 0.5) * rect.width() / cols as f64;
                sim.move_to(RobotId::SOURCE, Point::new(x, y));
                for s in sim.look(RobotId::SOURCE) {
                    found.insert(s.id);
                }
            }
        }
        row(&[
            f2(spacing),
            format!("{}", found.len()),
            f1(sim.time(RobotId::SOURCE)),
        ]);
    }
    println!("\nconclusion: spacing ≤ √2 finds everything (unit vision certifies");
    println!("a √2-square); wider spacings trade misses for speed — Lemma 1's");
    println!("constant is tight.");
}

fn discovery_primitives() {
    println!("\n## Ablation 3 — discovery: spiral vs k-team doubling (intro)\n");
    header(&["D", "spiral (k=1)", "team k=2", "team k=4", "team k=8"]);
    for &d in &[6.0, 12.0, 24.0] {
        let target = Point::new(d, d / 2.0);
        let spiral = {
            let inst = Instance::new(vec![target]);
            let mut sim = Sim::new(ConcreteWorld::new(&inst));
            spiral_search(&mut sim, RobotId::SOURCE, 256.0).duration
        };
        let mut cells = vec![f1(d), f1(spiral)];
        for &k in &[2usize, 4, 8] {
            let mut pts: Vec<Point> = (0..k - 1)
                .map(|i| Point::new(0.01 * (i + 1) as f64, 0.0))
                .collect();
            pts.push(target);
            let inst = Instance::new(pts);
            let mut sim = Sim::new(ConcreteWorld::new(&inst));
            let mut members = vec![RobotId::SOURCE];
            for i in 0..k - 1 {
                sim.move_to(*members.last().unwrap(), inst.positions()[i]);
                members.push(sim.wake(*members.last().unwrap(), RobotId::sleeper(i)));
            }
            for &m in &members {
                sim.move_to(m, Point::ORIGIN);
            }
            sim.barrier(&members);
            let out = team_search(&mut sim, &members, 256.0);
            assert!(!out.found.is_empty());
            cells.push(f1(out.duration));
        }
        row(&cells);
    }
    println!("\nconclusion: per-robot discovery time falls ~1/k until the Θ(D)");
    println!("term dominates — the Θ(D + D²/k) of the paper's introduction.");
}
