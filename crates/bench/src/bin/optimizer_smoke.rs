//! CI smoke check for the anytime wake-tree optimizer (release only —
//! the greedy baseline is `O(n²)` per woken robot and the instances here
//! are the table-1 workloads at n ≥ 1000).
//!
//! Two acceptance criteria, both asserted so CI fails loudly:
//!
//! * under the default fixed iteration budget, `central-anytime` is no
//!   worse than the best constructive baseline (chain / greedy / median /
//!   quadtree) on every workload, and strictly better on at least half;
//! * the best tree is byte-identical at pool widths 1, 2 and 4
//!   (`--workers` is execution-only; the logical stream count is fixed).
//!
//! Run with: `cargo run --release -p freezetag_bench --bin optimizer_smoke`

use freezetag_bench::{header, lattice_with, row, snake_with};
use freezetag_central::{
    anytime_wake_tree, chain_wake_tree, greedy_wake_tree, median_wake_tree, quadtree_wake_tree,
    AnytimeConfig, AnytimeReport,
};
use freezetag_geometry::Point;
use freezetag_instances::generators::uniform_disk;
use freezetag_instances::Instance;
use freezetag_sim::{CancelToken, ParPool, RobotId};

fn items_of(inst: &Instance) -> Vec<(RobotId, Point)> {
    inst.positions()
        .iter()
        .enumerate()
        .map(|(i, &p)| (RobotId::sleeper(i), p))
        .collect()
}

fn run(root: Point, items: &[(RobotId, Point)], threads: usize) -> AnytimeReport {
    // A larger-than-default but still fixed iteration budget: at n >= 1000
    // a uniform random move only rarely touches the critical path, so the
    // CI check needs enough proposals per stream to find the improving ones.
    let config = AnytimeConfig {
        rounds: 48,
        moves_per_round: 8_000,
        strike_limit: 48,
        ..AnytimeConfig::default()
    };
    anytime_wake_tree(
        root,
        items,
        &config,
        9,
        &ParPool::new(threads),
        &CancelToken::never(),
    )
}

fn main() {
    let workloads: Vec<(&str, Instance)> = vec![
        ("lattice ℓ=1 ρ=48", lattice_with(1.0, 48.0)),
        ("snake ℓ=2 ξ≈2200", snake_with(2.0, 2200.0)),
        ("disk n=1200", uniform_disk(1200, 130.0, 21)),
    ];
    println!("\n## Optimizer smoke — anytime vs constructive baselines (n >= 1000)\n");
    header(&[
        "workload",
        "n",
        "best constructive",
        "anytime",
        "accepted moves",
    ]);
    let mut strict = 0;
    for (name, inst) in &workloads {
        let items = items_of(inst);
        assert!(items.len() >= 1000, "{name}: n={} too small", items.len());
        let root = inst.source();
        let best_constructive = [
            chain_wake_tree(root, &items),
            greedy_wake_tree(root, &items),
            median_wake_tree(root, &items),
            quadtree_wake_tree(root, &items),
        ]
        .iter()
        .map(|t| t.makespan())
        .fold(f64::INFINITY, f64::min);

        let report = run(root, &items, 4);
        assert!(
            report.makespan <= best_constructive + 1e-9,
            "{name}: anytime {} worse than best constructive {best_constructive}",
            report.makespan
        );
        if report.makespan < best_constructive - 1e-9 {
            strict += 1;
        }

        // The --workers byte-compare: identical best tree at widths 1/2/4
        // (`report` above already ran at width 4).
        let base = run(root, &items, 1);
        let two = run(root, &items, 2);
        for (threads, other) in [(2usize, &two), (4, &report)] {
            assert_eq!(
                base.tree.digest(),
                other.tree.digest(),
                "{name}: tree digest differs between 1 and {threads} workers"
            );
            assert_eq!(
                base.makespan.to_bits(),
                other.makespan.to_bits(),
                "{name}: makespan bits differ between 1 and {threads} workers"
            );
            assert_eq!(base.moves_tried, other.moves_tried);
            assert_eq!(base.moves_accepted, other.moves_accepted);
        }

        row(&[
            name.to_string(),
            items.len().to_string(),
            format!("{best_constructive:.4}"),
            format!("{:.4}", report.makespan),
            report.moves_accepted.to_string(),
        ]);
    }
    assert!(
        strict * 2 >= workloads.len(),
        "anytime must strictly improve on at least half the workloads, got {strict}/{}",
        workloads.len()
    );
    println!(
        "\nok: anytime <= best constructive everywhere, strictly better on {strict}/{} workloads,",
        workloads.len()
    );
    println!("and byte-identical across 1/2/4 workers.");
}
