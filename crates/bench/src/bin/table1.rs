//! Regenerates **Table 1** of the paper: makespan and energy of the three
//! algorithms against their theoretical bounds, plus the two lower-bound
//! rows (energy infeasibility and the Ω shapes).
//!
//! Every algorithm measurement is an `ExperimentPlan` executed by the
//! `freezetag-exp` engine; this binary only declares the scenarios and
//! renders the rows (bounds are recomputed from the per-job `(ℓ, ρ, ξ_ℓ)`
//! reported by the engine). The Theorem 3 budget probe and the Section 5
//! radius estimation drive the simulator directly — they measure
//! primitives below the engine's algorithm granularity.
//!
//! Absolute constants differ from the authors' (different exploration and
//! wake-tree constants); the *shape* — bounded measured/bound ratios across
//! the sweeps, who wins where, the energy hierarchy — is the reproduction
//! target. EXPERIMENTS.md records a snapshot of this output.
//!
//! Run with: `cargo run --release -p freezetag-bench --bin table1`

use freezetag_bench::{
    engine, f1, f2, header, lattice_scenario, profile_arg, render_aggregates, row, snake_scenario,
    theorem2_scenario,
};
use freezetag_core::{bounds, Algorithm};
use freezetag_exp::{aggregate, ExperimentPlan, JobResult, Profile, ScenarioSpec};
use freezetag_geometry::Point;
use freezetag_instances::adversarial::theorem3_layout;
use freezetag_sim::{AdversarialWorld, RobotId, Sim};

fn main() {
    section_aseparator();
    section_energy_constrained();
    section_energy_feasibility();
    section_infeasibility();
    section_lower_bounds();
    section_radius_approx();
    section_scale();
}

/// Table 1, row 1: `ASeparator` makespan `O(ρ + ℓ² log(ρ/ℓ))`.
///
/// Honors `--profile full|stats|compressed` (default full): the bounds
/// here need only the per-job `(ℓ, ρ)` and the worst-robot energy, all of
/// which every recorder profile reports.
fn section_aseparator() {
    println!("\n## Table 1, row 1 — ASeparator, makespan O(ρ + ℓ² log(ρ/ℓ))\n");
    let mut plan = ExperimentPlan::new("table1-aseparator")
        .algorithm(Algorithm::Separator)
        .profile(profile_arg(Profile::Full));
    for &ell in &[1.0, 2.0, 4.0] {
        for &ratio in &[8.0, 16.0, 32.0] {
            plan = plan.scenario(lattice_scenario(ell, ell * ratio));
        }
    }
    let results = engine().run(&plan).expect("valid runs");
    header(&["ℓ", "ρ", "n", "makespan", "bound", "ratio", "max-energy"]);
    for r in &results {
        assert!(r.all_awake);
        let bound = bounds::separator_makespan_bound(r.rho, r.ell);
        row(&[
            f1(r.ell),
            f1(r.rho),
            r.n.to_string(),
            f1(r.makespan),
            f1(bound),
            f2(r.makespan / bound),
            f1(r.max_energy),
        ]);
    }
    println!("\nshape check: the ratio column stays bounded as ρ/ℓ doubles →");
    println!("the measured makespan follows ρ + ℓ² log(ρ/ℓ), Theorem 1.");
}

/// Table 1, rows 3–4: `AGrid` (energy Θ(ℓ²), makespan O(ξℓ)) vs `AWave`
/// (energy Θ(ℓ² log ℓ), makespan O(ξ + ℓ² log(ξ/ℓ))).
fn section_energy_constrained() {
    println!("\n## Table 1, rows 3–4 — AGrid vs AWave on serpentine corridors\n");
    // Pinned to the full profile regardless of --profile: the bound
    // columns divide by the measured ξ_ℓ, which only the full recorder
    // reports (stats and compressed return xi_ell = None).
    let mut plan = ExperimentPlan::new("table1-energy-constrained")
        .algorithm(Algorithm::Grid)
        .algorithm(Algorithm::Wave);
    for &ell in &[1.0, 2.0] {
        for &xi_target in &[60.0, 120.0, 240.0] {
            plan = plan.scenario(snake_scenario(ell, xi_target * ell.max(1.0)));
        }
    }
    let results = engine().run(&plan).expect("valid runs");
    header(&[
        "ℓ",
        "ξ_ℓ",
        "alg",
        "makespan",
        "bound",
        "ratio",
        "max-energy",
        "energy-shape",
    ]);
    for r in &results {
        assert!(r.all_awake);
        let xi = r.xi_ell.expect("snake connected");
        let (bound, eshape) = if r.algorithm == Algorithm::Grid.to_string() {
            (
                bounds::grid_makespan_bound(xi, r.ell),
                bounds::grid_energy_shape(r.ell),
            )
        } else {
            (
                bounds::wave_makespan_bound(xi, r.ell),
                bounds::wave_energy_shape(r.ell),
            )
        };
        row(&[
            f1(r.ell),
            f1(xi),
            r.algorithm.clone(),
            f1(r.makespan),
            f1(bound),
            f2(r.makespan / bound),
            f1(r.max_energy),
            f1(eshape),
        ]);
    }
    println!("\nshape check: AGrid's ratio is w.r.t. ξ·ℓ, AWave's w.r.t.");
    println!("ξ + ℓ² log(ξ/ℓ); both stay bounded while AGrid's max-energy");
    println!("stays Θ(ℓ²) and AWave's Θ(ℓ² log ℓ).");
}

/// Table 1's *energy column* as a feasibility matrix: each algorithm's
/// worst-robot energy against per-robot budgets of the two shapes the
/// paper assigns (`Θ(ℓ²)` and `Θ(ℓ² log ℓ)`, with our measured constants),
/// across corridors of growing length. `ASeparator`'s energy grows with
/// the instance (it has no budget in terms of ℓ alone), the wave
/// algorithms' stay flat — the paper's energy hierarchy.
///
/// Honors `--profile full|stats|compressed` (default full): the matrix
/// compares worst-robot energies against closed-form budgets, so no
/// full-schedule field is needed.
fn section_energy_feasibility() {
    println!("\n## Table 1, energy column — per-robot budget feasibility\n");
    let ell = 2.0;
    let grid_budget = 80.0 * bounds::grid_energy_shape(ell) + 60.0 * ell + 40.0;
    let wave_budget = 1000.0 * bounds::wave_energy_shape(ell) + 500.0;
    println!("budgets for ℓ={ell}: Θ(ℓ²) = {grid_budget:.0}, Θ(ℓ² log ℓ) = {wave_budget:.0}\n");
    let corridors = [600.0, 1500.0, 3000.0];
    let mut plan = ExperimentPlan::new("table1-energy-feasibility")
        .algorithm(Algorithm::Grid)
        .algorithm(Algorithm::Wave)
        .algorithm(Algorithm::Separator)
        .profile(profile_arg(Profile::Full));
    for &xi in &corridors {
        plan = plan.scenario(snake_scenario(ell, xi));
    }
    let results = engine().run(&plan).expect("valid runs");
    header(&[
        "ξ (corridor)",
        "alg",
        "max-energy",
        "fits Θ(ℓ²)?",
        "fits Θ(ℓ² log ℓ)?",
    ]);
    let fits = |energy: f64, budget: f64| if energy <= budget { "yes" } else { "no" };
    for (cell, &xi) in results.chunks(plan.algorithms.len()).zip(&corridors) {
        for r in cell {
            row(&[
                f1(xi),
                r.algorithm.clone(),
                f1(r.max_energy),
                fits(r.max_energy, grid_budget).into(),
                fits(r.max_energy, wave_budget).into(),
            ]);
        }
    }
    println!("\nshape check: AGrid always fits Θ(ℓ²); AWave needs exactly the");
    println!("log factor and stays flat as ξ grows; ASeparator's per-robot");
    println!("energy grows with the corridor and eventually fits neither —");
    println!("Table 1's energy column, row by row.");
}

/// Table 1, row 2 (Theorem 3): below `π(ℓ²−1)/2` energy, nothing wakes.
/// Drives the adversarial world directly: the measured quantity is the
/// budgeted *search* primitive, not one of the engine's algorithms.
fn section_infeasibility() {
    println!("\n## Table 1, row 2 — infeasibility below B = π(ℓ²−1)/2 (Thm 3)\n");
    header(&[
        "ℓ",
        "threshold",
        "budget (90%)",
        "energy spent",
        "robots woken",
    ]);
    for &ell in &[4.0, 8.0, 16.0] {
        let threshold = bounds::infeasible_energy_threshold(ell);
        let budget = 0.9 * threshold;
        let mut sim = Sim::new(AdversarialWorld::new(theorem3_layout(ell, 1)));
        let rect = freezetag_geometry::Disk::new(Point::ORIGIN, ell).bounding_rect();
        let mut spent = 0.0;
        let mut woken = 0usize;
        let mut pos = Point::ORIGIN;
        for snap in freezetag_geometry::sweep::snapshot_positions(&rect) {
            let step = pos.dist(snap);
            if spent + step > budget {
                break;
            }
            spent += step;
            pos = snap;
            sim.move_to(RobotId::SOURCE, snap);
            let seen = sim.look(RobotId::SOURCE);
            if let Some(s) = seen.first() {
                sim.move_to(RobotId::SOURCE, s.pos);
                sim.wake(RobotId::SOURCE, s.id);
                woken += 1;
                break;
            }
        }
        assert_eq!(woken, 0, "Theorem 3 violated at ell={ell}");
        row(&[
            f1(ell),
            f1(threshold),
            f1(budget),
            f1(spent),
            woken.to_string(),
        ]);
    }
    println!("\nshape check: the adaptive adversary hides the robot from any");
    println!("searcher whose budget is below the Theorem 3 threshold.");
}

/// Table 1, lower-bound column (Theorem 2): the adversarial construction
/// forces Ω(ρ + ℓ² log(ρ/ℓ)) on ASeparator itself — run through the
/// engine's adversarial-world executor.
fn section_lower_bounds() {
    println!("\n## Table 1, lower bounds — adaptive adversary (Thm 2)\n");
    let mut plan = ExperimentPlan::new("table1-lower-bounds").algorithm(Algorithm::Separator);
    for &(ell, rho) in &[(2.0, 16.0), (2.0, 32.0), (4.0, 32.0), (4.0, 64.0)] {
        plan = plan.scenario(theorem2_scenario(ell, rho, 4000));
    }
    let results: Vec<JobResult> = engine().run(&plan).expect("valid runs");
    header(&[
        "ℓ",
        "ρ",
        "m (disks)",
        "makespan",
        "Ω-shape",
        "ratio",
        "looks",
    ]);
    for r in &results {
        assert!(r.all_awake, "adversarial robots must all wake");
        let shape = bounds::separator_makespan_bound(r.rho, r.ell);
        row(&[
            f1(r.ell),
            f1(r.rho),
            r.n.to_string(),
            f1(r.makespan),
            f1(shape),
            f2(r.makespan / shape),
            r.looks.to_string(),
        ]);
    }
    println!("\nshape check: the measured/Ω ratio stays bounded from *below*");
    println!("too — upper and lower bounds match (Theorems 1 + 2).");

    println!("\n## machine-readable aggregation (engine summary)\n");
    render_aggregates(&aggregate(&results));
}

/// Section 5: 3-approximation of ρ* knowing only ℓ. Drives the simulator
/// directly: the measured quantity is the estimation primitive.
fn section_radius_approx() {
    println!("\n## Section 5 — ρ* approximation knowing only ℓ\n");
    header(&["ℓ", "ρ*", "ρ̂", "ρ̂/ρ*", "overhead (time)"]);
    for &(ell, rho) in &[(1.0, 16.0), (2.0, 32.0), (4.0, 64.0)] {
        let inst = freezetag_bench::lattice_with(ell, rho);
        let p = inst.params(None);
        let mut sim = Sim::new(freezetag_sim::ConcreteWorld::new(&inst));
        let est = freezetag_core::estimate_radius(&mut sim, p.ell_star.max(1.0));
        row(&[
            f1(ell),
            f1(p.rho_star),
            f1(est.rho_hat),
            f2(est.rho_hat / p.rho_star),
            f1(est.duration),
        ]);
    }
    println!("\nshape check: ρ̂/ρ* stays within a constant window (the paper's");
    println!("3-approximation, up to the doubling granularity).");
}

/// Beyond the paper: the linear-work claim at scale. `AGrid` on 10⁵-robot
/// members of the `uniform_1m` family under the constant-memory stats
/// profile — wall-clock and recorder footprint both grow linearly in `n`,
/// which is what makes the 10⁶-robot default of the family tractable.
/// `--profile compressed` re-runs the block with delta-encoded schedules
/// and streaming validation instead.
fn section_scale() {
    let profile = profile_arg(Profile::Stats);
    println!(
        "\n## Scale — AGrid under the {profile} profile (linear work, constant memory/robot)\n"
    );
    let mut plan = ExperimentPlan::new("table1-scale")
        .algorithm(Algorithm::Grid)
        .profile(profile);
    for &(n, radius) in &[(25_000.0, 100.0), (50_000.0, 141.0), (100_000.0, 200.0)] {
        plan = plan.scenario(
            ScenarioSpec::new("uniform_1m")
                .with("n", n)
                .with("radius", radius)
                .with("ell", 4.0)
                .named(&format!("uniform n={n}")),
        );
    }
    let started = std::time::Instant::now();
    let results = engine().run(&plan).expect("valid runs");
    let wall = started.elapsed().as_secs_f64();
    header(&["n", "makespan", "looks", "recorder MiB", "B/robot"]);
    for r in &results {
        assert!(r.all_awake, "scale run left robots asleep");
        row(&[
            r.n.to_string(),
            f1(r.makespan),
            r.looks.to_string(),
            f2(r.peak_mem_bytes / (1024.0 * 1024.0)),
            f1(r.peak_mem_bytes / r.n as f64),
        ]);
    }
    println!(
        "\n{} robots woken in {:.2}s total ({:.0} robots/s) — bytes/robot is",
        results.iter().map(|r| r.n).sum::<usize>(),
        wall,
        results.iter().map(|r| r.n).sum::<usize>() as f64 / wall
    );
    println!("constant: the stats recorder is what unlocks the 10⁶ families.");
}
