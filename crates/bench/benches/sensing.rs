//! Criterion benchmark of the sensing kernels: scalar vs wide membership
//! scans, at three levels of the stack.
//!
//! * `kernel/*` — the raw `freezetag_graph::kernel` disk/rect scans over
//!   realistic cell-window slices (both variants are always compiled, so
//!   this comparison runs in every build configuration);
//! * `grid/*` — `GridIndex::within_into` at `AWave`'s unit sensing radius
//!   over a `wave_100k`-density swarm (whichever kernel the build
//!   dispatches to — rerun with `--features simd` to flip it);
//! * `world/*` — end-to-end `ConcreteWorld` sensing through
//!   `look_batch_into`, the exact call the wave drivers make per slot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freezetag_geometry::Point;
use freezetag_graph::{kernel, GridIndex};
use freezetag_instances::generators::uniform_disk;
use freezetag_sim::{ConcreteWorld, ParPool, WorldView};
use std::hint::black_box;

/// `wave_100k` is 10⁵ robots in a 200-radius disk (~0.8 robots per unit
/// cell); the benches keep that density at a tamer point count.
const N: usize = 20_000;

fn radius_for(n: usize) -> f64 {
    200.0 * (n as f64 / 100_000.0).sqrt()
}

/// Query centres spread across the swarm.
fn centres(radius: f64, count: usize) -> Vec<Point> {
    (0..count)
        .map(|i| {
            let a = i as f64 * 0.7;
            let r = radius * ((i % 16) as f64 / 16.0);
            Point::new(r * a.cos(), r * a.sin())
        })
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel");
    g.sample_size(20);
    // A flat SoA window like one GridIndex cell row: coordinates in a
    // band so a realistic fraction (not all, not none) pass the tests.
    for &len in &[8usize, 64, 1024] {
        let xs: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin() * 2.0).collect();
        let ys: Vec<f64> = (0..len).map(|i| (i as f64 * 0.73).cos() * 2.0).collect();
        let accept_sq = 1.0f64;
        g.bench_with_input(BenchmarkId::new("disk_scalar", len), &len, |b, _| {
            b.iter(|| {
                let mut acc = 0usize;
                kernel::disk_scan_scalar(&xs, &ys, 0.25, -0.5, accept_sq, |k| acc += k);
                black_box(acc)
            });
        });
        g.bench_with_input(BenchmarkId::new("disk_wide", len), &len, |b, _| {
            b.iter(|| {
                let mut acc = 0usize;
                kernel::disk_scan_wide(&xs, &ys, 0.25, -0.5, accept_sq, |k| acc += k);
                black_box(acc)
            });
        });
        g.bench_with_input(BenchmarkId::new("rect_scalar", len), &len, |b, _| {
            b.iter(|| {
                let mut acc = 0usize;
                kernel::rect_scan_scalar(&xs, &ys, -1.0, -1.0, 1.0, 1.0, |k| acc += k);
                black_box(acc)
            });
        });
        g.bench_with_input(BenchmarkId::new("rect_wide", len), &len, |b, _| {
            b.iter(|| {
                let mut acc = 0usize;
                kernel::rect_scan_wide(&xs, &ys, -1.0, -1.0, 1.0, 1.0, |k| acc += k);
                black_box(acc)
            });
        });
    }
    g.finish();
}

fn bench_grid_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("grid");
    g.sample_size(10);
    let radius = radius_for(N);
    let inst = uniform_disk(N, radius, 11);
    let idx = GridIndex::build(inst.positions(), 1.0);
    let qs = centres(radius, 4096);
    let kernel_name = if cfg!(feature = "simd") {
        "within_into/wide"
    } else {
        "within_into/scalar"
    };
    g.bench_with_input(BenchmarkId::new(kernel_name, N), &qs, |b, qs| {
        let mut out = Vec::new();
        b.iter(|| {
            let mut acc = 0usize;
            for &q in qs {
                idx.within_into(q, 1.0, &mut out);
                acc += out.len();
            }
            black_box(acc)
        });
    });
    g.finish();
}

fn bench_world_sensing(c: &mut Criterion) {
    let mut g = c.benchmark_group("world");
    g.sample_size(10);
    let radius = radius_for(N);
    let inst = uniform_disk(N, radius, 11);
    let mut world = ConcreteWorld::new(&inst);
    let pool = ParPool::new(1);
    let qs: Vec<(Point, f64)> = centres(radius, 4096)
        .into_iter()
        .map(|p| (p, 0.0))
        .collect();
    let kernel_name = if cfg!(feature = "simd") {
        "look_batch/wide"
    } else {
        "look_batch/scalar"
    };
    g.bench_with_input(BenchmarkId::new(kernel_name, N), &qs, |b, qs| {
        let mut flat = Vec::new();
        let mut counts = Vec::new();
        b.iter(|| {
            world.look_batch_into(qs, &pool, &mut flat, &mut counts);
            black_box(flat.len())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_kernels,
    bench_grid_index,
    bench_world_sensing
);
criterion_main!(benches);
