//! Criterion benchmarks of the anytime wake-tree optimizer.
//!
//! Two questions, both on uniform-disk instances:
//!
//! * **Move-evaluation throughput** — delta evaluation (`O(depth)`
//!   bubble-up of cached subtree heights) against a full `O(n)`
//!   recompute after every move, at n = 1k and n = 10k. The whole point
//!   of the cache is this gap; a startup assert pins it at ≥ 10× for
//!   n = 10k, so a regression fails the bench run rather than silently
//!   reshaping the curves.
//! * **Best-makespan-vs-iterations** — full `anytime_wake_tree` runs at
//!   n = 1k and n = 10k under growing round budgets, to see where the
//!   anytime curve flattens.

use criterion::{criterion_group, criterion_main, Criterion};
use freezetag_central::{anytime_wake_tree, quadtree_wake_tree, AnytimeConfig, OptTree};
use freezetag_geometry::Point;
use freezetag_instances::generators::uniform_disk;
use freezetag_sim::{CancelToken, ParPool, RobotId};
use std::hint::black_box;
use std::time::Instant;

fn items_of(n: usize, radius: f64, seed: u64) -> Vec<(RobotId, Point)> {
    let inst = uniform_disk(n, radius, seed);
    inst.positions()
        .iter()
        .enumerate()
        .map(|(i, &p)| (RobotId::sleeper(i), p))
        .collect()
}

/// One apply+revert of a deterministic reassign/swap mix; `full` pays an
/// `O(n)` oracle recompute after each apply (what every move would cost
/// without the cache).
fn run_moves(tree: &mut OptTree, moves: usize, full: bool) -> f64 {
    let len = tree.len();
    let mut acc = 0.0;
    for i in 0..moves {
        // Deterministic pseudo-moves: cheap LCG-style index mixing, the
        // same sequence for the delta and full variants.
        let a = 1 + (i.wrapping_mul(2654435761) >> 7) % (len - 1);
        let b = 1 + (i.wrapping_mul(40503) >> 3) % (len - 1);
        if i % 2 == 0 {
            let parent = tree.parent(a).expect("non-root");
            if tree.reassign(a, b % len) {
                acc += if full {
                    tree.oracle_makespan()
                } else {
                    tree.makespan()
                };
                assert!(tree.reassign(a, parent), "revert must apply");
            }
        } else if tree.swap(a, b) {
            acc += if full {
                tree.oracle_makespan()
            } else {
                tree.makespan()
            };
            assert!(tree.swap(a, b), "revert must apply");
        }
    }
    acc
}

/// Wall-clock moves/s of one variant, outside criterion: used only for
/// the ≥ 10× self-check so the acceptance criterion is enforced on every
/// bench run, not eyeballed from two reports.
fn throughput(tree: &OptTree, moves: usize, full: bool) -> f64 {
    let mut t = tree.clone();
    let start = Instant::now();
    black_box(run_moves(&mut t, moves, full));
    moves as f64 / start.elapsed().as_secs_f64()
}

fn bench_move_evaluation(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimizer_move_eval");
    g.sample_size(10);
    for (n, moves) in [(1_000, 4_000), (10_000, 2_000)] {
        let tree = OptTree::from_wake_tree(&quadtree_wake_tree(
            Point::ORIGIN,
            &items_of(n, (n as f64).sqrt() * 4.0, 7),
        ));
        g.bench_function(format!("delta_n{n}"), |b| {
            let mut t = tree.clone();
            b.iter(|| black_box(run_moves(&mut t, moves, false)));
        });
        g.bench_function(format!("full_n{n}"), |b| {
            let mut t = tree.clone();
            b.iter(|| black_box(run_moves(&mut t, moves, true)));
        });
        if n == 10_000 {
            let delta = throughput(&tree, moves, false);
            let full = throughput(&tree, moves, true);
            let ratio = delta / full;
            assert!(
                ratio >= 10.0,
                "delta evaluation must be >= 10x full recompute at n=10k, got {ratio:.1}x \
                 ({delta:.0} vs {full:.0} moves/s)"
            );
            println!(
                "move-eval throughput n=10k: delta {delta:.0}/s, full {full:.0}/s ({ratio:.1}x)"
            );
        }
    }
    g.finish();
}

fn bench_anytime_curve(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimizer_anytime");
    g.sample_size(10);
    let mut curves = Vec::new();
    for n in [1_000usize, 10_000] {
        let items = items_of(n, (n as f64).sqrt() * 4.0, 3);
        let pool = ParPool::new(4);
        for rounds in [1usize, 4, 16] {
            let config = AnytimeConfig {
                rounds,
                strike_limit: rounds, // let every budget run its full length
                // Skip the O(n³) greedy seed: this group times the search
                // itself, and at n = 1000 greedy construction would be
                // ~95% of every iteration.
                greedy_init_max_n: 0,
                ..AnytimeConfig::default()
            };
            let run = || {
                anytime_wake_tree(
                    Point::ORIGIN,
                    &items,
                    &config,
                    11,
                    &pool,
                    &CancelToken::never(),
                )
            };
            g.bench_function(format!("n{n}_rounds{rounds}"), |b| {
                b.iter(|| black_box(run().makespan));
            });
            let report = run();
            curves.push((n, rounds, report.initial_makespan, report.makespan));
        }
    }
    g.finish();
    println!("anytime curve (best makespan vs round budget):");
    for (n, rounds, initial, best) in curves {
        println!("  n={n:<6} rounds={rounds:<3} initial {initial:.4} -> best {best:.4}");
    }
}

criterion_group!(benches, bench_move_evaluation, bench_anytime_curve);
criterion_main!(benches);
