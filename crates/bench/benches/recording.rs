//! Criterion benchmark of the full recording stack at production scale:
//! the same `AGrid` run on the same 10⁵-robot instance recorded by the
//! flat `FullRecorder`, the constant-memory `StatsRecorder`, and the
//! delta-encoded `CompressedRecorder` — plus the two validation paths
//! (flat and streaming) on prebuilt runs. Before any timing, the harness
//! prints the footprint comparison (total bytes and bytes per recorded
//! move) that backs the `--profile compressed` claim: full fidelity at a
//! fraction of the flat store's memory, ≤ 12 bytes per move.

use criterion::{criterion_group, criterion_main, Criterion};
use freezetag_core::{a_grid, AGridConfig};
use freezetag_instances::registry::{self, ParamMap};
use freezetag_instances::Instance;
use freezetag_sim::{
    validate, validate_compressed, CompressedRecorder, ConcreteWorld, Recorder, Schedule, Sim,
    ValidationOptions, WorldView,
};
use std::hint::black_box;

const ELL: f64 = 4.0;

fn instance_100k() -> Instance {
    let mut params = ParamMap::new();
    params.insert("n".to_string(), 100_000.0);
    params.insert("radius".to_string(), 200.0);
    params.insert("ell".to_string(), ELL);
    registry::build_instance("uniform_1m", &params, 7).expect("scale family builds")
}

fn full_run(inst: &Instance) -> Schedule {
    let mut sim = Sim::new(ConcreteWorld::new(inst));
    a_grid(&mut sim, &AGridConfig { ell: ELL });
    assert!(sim.world().all_awake());
    let (_, schedule, _) = sim.into_parts();
    schedule
}

fn compressed_run(inst: &Instance) -> CompressedRecorder {
    let mut sim = Sim::with_compressed(ConcreteWorld::new(inst));
    a_grid(&mut sim, &AGridConfig { ell: ELL });
    assert!(sim.world().all_awake());
    let (_, rec, _) = sim.into_recorder_parts();
    rec
}

fn bench_recording(c: &mut Criterion) {
    let inst = instance_100k();

    // Footprint report (deterministic, so once is enough): the numbers
    // CI budgets against and the ≤ 12 B/move acceptance pin.
    let schedule = full_run(&inst);
    let rec = compressed_run(&inst);
    assert_eq!(
        schedule.makespan().to_bits(),
        rec.makespan().to_bits(),
        "recorders must agree bitwise before their speed is compared"
    );
    eprintln!(
        "recording footprint @ n=100k: full {} B, compressed {} B ({:.1}x), \
         {:.2} B/move over {} moves",
        schedule.memory_bytes(),
        rec.memory_bytes(),
        schedule.memory_bytes() as f64 / rec.memory_bytes() as f64,
        rec.bytes_per_move(),
        rec.total_segments(),
    );
    assert!(
        rec.bytes_per_move() <= 12.0,
        "compressed encoding regressed past 12 B/move: {:.2}",
        rec.bytes_per_move()
    );

    let mut g = c.benchmark_group("recording");
    g.sample_size(10);
    g.bench_function("agrid_100k_record_full", |b| {
        b.iter(|| black_box(full_run(&inst).memory_bytes()));
    });
    g.bench_function("agrid_100k_record_stats", |b| {
        b.iter(|| {
            let mut sim = Sim::with_stats(ConcreteWorld::new(&inst));
            a_grid(&mut sim, &AGridConfig { ell: ELL });
            assert!(sim.world().all_awake());
            let (_, rec, _) = sim.into_recorder_parts();
            black_box((rec.makespan(), rec.memory_bytes()))
        });
    });
    g.bench_function("agrid_100k_record_compressed", |b| {
        b.iter(|| black_box(compressed_run(&inst).memory_bytes()));
    });
    g.bench_function("agrid_100k_validate_full", |b| {
        b.iter(|| {
            black_box(
                validate(
                    &schedule,
                    inst.source(),
                    inst.positions(),
                    &ValidationOptions::default(),
                )
                .expect("schedule validates"),
            )
        });
    });
    g.bench_function("agrid_100k_validate_streaming", |b| {
        b.iter(|| {
            black_box(
                validate_compressed(
                    &rec,
                    inst.source(),
                    inst.positions(),
                    &ValidationOptions::default(),
                )
                .expect("compressed run validates"),
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench_recording);
criterion_main!(benches);
