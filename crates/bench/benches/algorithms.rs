//! Criterion benchmarks of the full distributed algorithms (simulation
//! wall-clock). One bench per Table 1 row plus the adversarial lower-bound
//! machinery, on fixed mid-size instances.

use criterion::{criterion_group, criterion_main, Criterion};
use freezetag_core::{estimate_radius, run_algorithm, solve, Algorithm};
use freezetag_instances::adversarial::theorem2_layout;
use freezetag_instances::generators::{snake, uniform_disk};
use freezetag_instances::AdmissibleTuple;
use freezetag_sim::{AdversarialWorld, ConcreteWorld, Sim, WorldView};
use std::hint::black_box;

fn bench_solvers(c: &mut Criterion) {
    let disk = uniform_disk(60, 12.0, 21);
    let disk_tuple = disk.admissible_tuple();
    let corridor = snake(4, 40.0, 2.0, 1.0);
    let corridor_tuple = corridor.admissible_tuple();

    let mut g = c.benchmark_group("algorithms");
    g.sample_size(10);
    g.bench_function("aseparator_disk_n60", |b| {
        b.iter(|| {
            black_box(
                solve(&disk, &disk_tuple, Algorithm::Separator)
                    .unwrap()
                    .makespan,
            )
        });
    });
    g.bench_function("agrid_disk_n60", |b| {
        b.iter(|| black_box(solve(&disk, &disk_tuple, Algorithm::Grid).unwrap().makespan));
    });
    g.bench_function("awave_disk_n60", |b| {
        b.iter(|| black_box(solve(&disk, &disk_tuple, Algorithm::Wave).unwrap().makespan));
    });
    g.bench_function("agrid_snake", |b| {
        b.iter(|| {
            black_box(
                solve(&corridor, &corridor_tuple, Algorithm::Grid)
                    .unwrap()
                    .makespan,
            )
        });
    });
    g.finish();
}

fn bench_adversary(c: &mut Criterion) {
    let mut g = c.benchmark_group("adversary");
    g.sample_size(10);
    g.bench_function("aseparator_vs_theorem2", |b| {
        b.iter(|| {
            let layout = theorem2_layout(2.0, 16.0, 10_000);
            let tuple = AdmissibleTuple::new(2.0, 16.0, layout.n());
            let mut sim = Sim::new(AdversarialWorld::new(layout));
            run_algorithm(&mut sim, &tuple, Algorithm::Separator);
            assert!(sim.world().all_awake());
            black_box(sim.schedule().makespan())
        });
    });
    g.finish();
}

fn bench_radius_estimate(c: &mut Criterion) {
    let inst = uniform_disk(60, 15.0, 5);
    let tuple = inst.admissible_tuple();
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    g.bench_function("estimate_radius", |b| {
        b.iter(|| {
            let mut sim = Sim::new(ConcreteWorld::new(&inst));
            black_box(estimate_radius(&mut sim, tuple.ell).rho_hat)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_solvers,
    bench_adversary,
    bench_radius_estimate
);
criterion_main!(benches);
