//! Criterion benchmark of the recorder profiles: the same `AGrid` run on
//! the same 10⁵-robot instance, recorded by the constant-memory
//! `StatsRecorder` versus the full segment-timeline `FullRecorder`. The
//! stats profile must be strictly faster (no segment pushes, no timeline
//! reallocation) and strictly smaller — the claim behind
//! `dftp sweep --profile stats` at production scale.

use criterion::{criterion_group, criterion_main, Criterion};
use freezetag_core::{a_grid, AGridConfig};
use freezetag_instances::registry::{self, ParamMap};
use freezetag_instances::Instance;
use freezetag_sim::{ConcreteWorld, Recorder, Sim, WorldView};
use std::hint::black_box;

const ELL: f64 = 4.0;

fn instance_100k() -> Instance {
    let mut params = ParamMap::new();
    params.insert("n".to_string(), 100_000.0);
    params.insert("radius".to_string(), 200.0);
    params.insert("ell".to_string(), ELL);
    registry::build_instance("uniform_1m", &params, 7).expect("scale family builds")
}

fn bench_recorders(c: &mut Criterion) {
    let inst = instance_100k();
    let mut g = c.benchmark_group("recorders");
    g.sample_size(10);
    g.bench_function("agrid_100k_stats", |b| {
        b.iter(|| {
            let mut sim = Sim::with_stats(ConcreteWorld::new(&inst));
            a_grid(&mut sim, &AGridConfig { ell: ELL });
            assert!(sim.world().all_awake());
            let (_, rec, _) = sim.into_recorder_parts();
            black_box((rec.makespan(), rec.memory_bytes()))
        });
    });
    g.bench_function("agrid_100k_full", |b| {
        b.iter(|| {
            let mut sim = Sim::new(ConcreteWorld::new(&inst));
            a_grid(&mut sim, &AGridConfig { ell: ELL });
            assert!(sim.world().all_awake());
            let (_, schedule, _) = sim.into_parts();
            black_box((schedule.makespan(), schedule.memory_bytes()))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_recorders);
criterion_main!(benches);
