//! Criterion benchmark of the knowledge-store query shapes: the
//! grid-indexed SoA `Knowledge` against the `BTreeMap` full-scan layout it
//! replaced, on the two queries that dominate `DFSampling`'s inner loop —
//! the `2ℓ`-radius next-move selection and the co-location probe — plus
//! the rectangle scan behind `ASeparator`'s terminating rounds. The grid
//! store must stay flat as the swarm grows; the map scan grows linearly
//! (the quadratic term that kept `AWave`/`ASeparator` from 10⁵-robot
//! runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freezetag_core::knowledge::Knowledge;
use freezetag_geometry::{Point, Rect};
use freezetag_instances::generators::uniform_disk;
use freezetag_sim::RobotId;
use std::collections::BTreeMap;
use std::hint::black_box;

const ELL: f64 = 4.0;

/// The pre-refactor layout, reproduced as the baseline.
fn map_store(points: &[Point]) -> BTreeMap<RobotId, (Point, bool)> {
    points
        .iter()
        .enumerate()
        .map(|(i, &p)| (RobotId::sleeper(i), (p, i % 7 == 0)))
        .collect()
}

fn grid_store(points: &[Point]) -> Knowledge {
    let mut k = Knowledge::with_cell_width(ELL);
    for (i, &p) in points.iter().enumerate() {
        k.note_sighting(RobotId::sleeper(i), p);
        if i % 7 == 0 {
            k.note_awake(RobotId::sleeper(i), p);
        }
    }
    k
}

/// Query centres spread across the swarm.
fn centres(radius: f64) -> Vec<Point> {
    (0..64)
        .map(|i| {
            let a = i as f64 * 0.7;
            let r = radius * ((i % 8) as f64 / 8.0);
            Point::new(r * a.cos(), r * a.sin())
        })
        .collect()
}

fn bench_knowledge(c: &mut Criterion) {
    let mut g = c.benchmark_group("knowledge");
    g.sample_size(10);
    for &n in &[1_000usize, 10_000, 100_000] {
        let radius = 200.0 * (n as f64 / 100_000.0).sqrt();
        let inst = uniform_disk(n, radius, 7);
        let points = inst.positions();
        let qs = centres(radius);

        // Next-move shape: nearest in-region candidate within 2ℓ.
        let map = map_store(points);
        g.bench_with_input(BenchmarkId::new("nextmove_map_scan", n), &qs, |b, qs| {
            b.iter(|| {
                let mut acc = 0usize;
                for &q in qs {
                    let best = map
                        .iter()
                        .filter(|(_, &(p, _))| p.dist(q) <= 2.0 * ELL + freezetag_geometry::EPS)
                        .min_by(|(_, &(a, _)), (_, &(b, _))| {
                            a.dist_sq(q).partial_cmp(&b.dist_sq(q)).expect("finite")
                        });
                    acc += best.map_or(0, |(id, _)| id.index());
                }
                black_box(acc)
            });
        });
        let grid = grid_store(points);
        g.bench_with_input(BenchmarkId::new("nextmove_grid", n), &qs, |b, qs| {
            b.iter(|| {
                let mut acc = 0usize;
                for &q in qs {
                    let mut best: Option<(f64, usize)> = None;
                    grid.for_each_known_within(q, 2.0 * ELL, |id, origin, _| {
                        let d2 = origin.dist_sq(q);
                        let idx = id.index();
                        let better = match best {
                            None => true,
                            Some((bd2, bidx)) => d2 < bd2 || (d2 == bd2 && idx < bidx),
                        };
                        if better {
                            best = Some((d2, idx));
                        }
                    });
                    acc += best.map_or(0, |(_, idx)| idx);
                }
                black_box(acc)
            });
        });

        // Terminating-round shape: all sleepers inside a square region.
        let rect = Rect::with_size(
            Point::new(-radius / 4.0, -radius / 4.0),
            ELL * 8.0,
            ELL * 8.0,
        );
        g.bench_with_input(BenchmarkId::new("region_map_scan", n), &rect, |b, rect| {
            b.iter(|| {
                let items: Vec<RobotId> = map
                    .iter()
                    .filter(|(_, &(p, awake))| !awake && rect.contains(p))
                    .map(|(&id, _)| id)
                    .collect();
                black_box(items.len())
            });
        });
        g.bench_with_input(BenchmarkId::new("region_grid", n), &rect, |b, rect| {
            b.iter(|| {
                let mut items: Vec<RobotId> = Vec::new();
                grid.for_each_known_in_rect(rect, |id, origin, awake| {
                    if !awake && rect.contains(origin) {
                        items.push(id);
                    }
                });
                items.sort_unstable();
                black_box(items.len())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_knowledge);
criterion_main!(benches);
