//! Criterion micro-benchmarks of the substrate components: spatial index,
//! disk graphs, instance parameters, centralized wake-up trees and the
//! exploration sweep. These track implementation wall-clock, not simulated
//! makespan (the table/figure binaries measure those).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freezetag_central::{greedy_wake_tree, optimal_makespan, quadtree_wake_tree};
use freezetag_geometry::{sweep, Point, Rect};
use freezetag_graph::{connectivity_threshold, dijkstra, DiskGraph, GridIndex};
use freezetag_instances::adversarial::theorem2_layout;
use freezetag_instances::generators::uniform_disk;
use freezetag_sim::RobotId;
use std::hint::black_box;

fn points(n: usize, radius: f64) -> Vec<Point> {
    let inst = uniform_disk(n, radius, 42);
    inst.all_points()
}

fn bench_geometry(c: &mut Criterion) {
    let mut g = c.benchmark_group("geometry");
    for &side in &[16.0, 64.0, 256.0] {
        g.bench_with_input(
            BenchmarkId::new("snapshot_positions", side as u64),
            &side,
            |b, &side| {
                let rect = Rect::with_size(Point::ORIGIN, side, side);
                b.iter(|| black_box(sweep::snapshot_positions(&rect).len()));
            },
        );
    }
    g.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph");
    for &n in &[200usize, 1000] {
        let pts = points(n, (n as f64).sqrt());
        g.bench_with_input(BenchmarkId::new("grid_index_build", n), &pts, |b, pts| {
            b.iter(|| black_box(GridIndex::build(pts, 1.0).len()));
        });
        g.bench_with_input(
            BenchmarkId::new("connectivity_threshold", n),
            &pts,
            |b, pts| {
                b.iter(|| black_box(connectivity_threshold(pts)));
            },
        );
        let ell = connectivity_threshold(&pts).max(0.5);
        let graph = DiskGraph::new(pts.clone(), ell);
        g.bench_with_input(BenchmarkId::new("dijkstra", n), &graph, |b, graph| {
            b.iter(|| black_box(dijkstra(graph, 0).eccentricity()));
        });
    }
    g.finish();
}

fn bench_central(c: &mut Criterion) {
    let mut g = c.benchmark_group("central");
    for &n in &[100usize, 500] {
        let items: Vec<(RobotId, Point)> = points(n, 30.0)
            .into_iter()
            .skip(1)
            .enumerate()
            .map(|(i, p)| (RobotId::sleeper(i), p))
            .collect();
        g.bench_with_input(BenchmarkId::new("quadtree_tree", n), &items, |b, items| {
            b.iter(|| black_box(quadtree_wake_tree(Point::ORIGIN, items).makespan()));
        });
        g.bench_with_input(BenchmarkId::new("greedy_tree", n), &items, |b, items| {
            b.iter(|| black_box(greedy_wake_tree(Point::ORIGIN, items).makespan()));
        });
        g.bench_with_input(BenchmarkId::new("median_tree", n), &items, |b, items| {
            b.iter(|| {
                black_box(freezetag_central::median_wake_tree(Point::ORIGIN, items).makespan())
            });
        });
        g.bench_with_input(BenchmarkId::new("chain_tree", n), &items, |b, items| {
            b.iter(|| {
                black_box(freezetag_central::chain_wake_tree(Point::ORIGIN, items).makespan())
            });
        });
    }
    let tiny: Vec<Point> = points(7, 5.0).into_iter().skip(1).collect();
    g.bench_function("optimal_makespan_n6", |b| {
        b.iter(|| black_box(optimal_makespan(Point::ORIGIN, &tiny)));
    });
    g.finish();
}

fn bench_instances(c: &mut Criterion) {
    let mut g = c.benchmark_group("instances");
    g.bench_function("uniform_disk_500", |b| {
        b.iter(|| black_box(uniform_disk(500, 25.0, 7).n()));
    });
    g.bench_function("theorem2_layout", |b| {
        b.iter(|| black_box(theorem2_layout(4.0, 32.0, 1000).n()));
    });
    let inst = uniform_disk(300, 20.0, 3);
    g.bench_function("csv_round_trip_300", |b| {
        b.iter(|| {
            let text = freezetag_instances::io::to_csv(&inst);
            black_box(freezetag_instances::io::from_csv(&text).unwrap().n())
        });
    });
    g.finish();
}

fn bench_discovery(c: &mut Criterion) {
    use freezetag_core::{spiral_search, team_search};
    use freezetag_instances::Instance;
    use freezetag_sim::{ConcreteWorld, Sim};
    let mut g = c.benchmark_group("discovery");
    g.sample_size(20);
    g.bench_function("spiral_search_d12", |b| {
        b.iter(|| {
            let inst = Instance::new(vec![Point::new(12.0, 5.0)]);
            let mut sim = Sim::new(ConcreteWorld::new(&inst));
            black_box(spiral_search(&mut sim, RobotId::SOURCE, 64.0).duration)
        });
    });
    g.bench_function("team_search_d12_k1", |b| {
        b.iter(|| {
            let inst = Instance::new(vec![Point::new(12.0, 5.0)]);
            let mut sim = Sim::new(ConcreteWorld::new(&inst));
            black_box(team_search(&mut sim, &[RobotId::SOURCE], 64.0).duration)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_geometry,
    bench_graph,
    bench_central,
    bench_instances,
    bench_discovery
);
criterion_main!(benches);
