use crate::{Point, Rect, Square};

/// A closed disk `B_p(r)` of center `p` and radius `r` (notation of
/// Section 6 of the paper).
///
/// # Example
///
/// ```
/// use freezetag_geometry::{Disk, Point};
/// let d = Disk::new(Point::ORIGIN, 2.0);
/// assert!(d.contains(Point::new(1.0, 1.0)));
/// assert!(!d.contains(Point::new(2.0, 2.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Disk {
    center: Point,
    radius: f64,
}

impl Disk {
    /// Creates a disk from its center and radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius < 0` or not finite.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(radius >= 0.0 && radius.is_finite(), "invalid disk radius");
        Disk { center, radius }
    }

    /// Center of the disk.
    pub fn center(&self) -> Point {
        self.center
    }

    /// Radius of the disk.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Area `πr²`.
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Closed containment test with `EPS` slack.
    pub fn contains(&self, p: Point) -> bool {
        self.center.dist(p) <= self.radius + crate::EPS
    }

    /// The smallest axis-parallel square containing the disk.
    pub fn bounding_square(&self) -> Square {
        Square::new(self.center, 2.0 * self.radius)
    }

    /// The bounding rectangle of the disk.
    pub fn bounding_rect(&self) -> Rect {
        self.bounding_square().to_rect()
    }

    /// The largest axis-parallel square inscribed in the disk (width
    /// `r·√2`). A unit-vision snapshot at the disk center certifies exactly
    /// this square, which is why sweep rows are spaced `√2` apart
    /// (proof of Lemma 1).
    pub fn inscribed_square(&self) -> Square {
        Square::new(self.center, self.radius * std::f64::consts::SQRT_2)
    }

    /// Whether two disks intersect (closed sets).
    pub fn intersects(&self, other: &Disk) -> bool {
        self.center.dist(other.center) <= self.radius + other.radius + crate::EPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_on_boundary() {
        let d = Disk::new(Point::new(1.0, 0.0), 2.0);
        assert!(d.contains(Point::new(3.0, 0.0)));
        assert!(d.contains(Point::new(1.0, -2.0)));
        assert!(!d.contains(Point::new(3.1, 0.0)));
    }

    #[test]
    fn area_of_unit_disk() {
        let d = Disk::new(Point::ORIGIN, 1.0);
        assert!((d.area() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn bounding_and_inscribed_squares_nest() {
        let d = Disk::new(Point::new(5.0, 5.0), 3.0);
        let outer = d.bounding_square();
        let inner = d.inscribed_square();
        assert_eq!(outer.width(), 6.0);
        assert!((inner.width() - 3.0 * std::f64::consts::SQRT_2).abs() < 1e-12);
        // Inner square's corners lie on the disk boundary.
        let corner = inner.min_corner();
        assert!((corner.dist(d.center()) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn disk_intersection() {
        let a = Disk::new(Point::ORIGIN, 1.0);
        let b = Disk::new(Point::new(2.0, 0.0), 1.0);
        let c = Disk::new(Point::new(2.0 + 1e-3, 0.0), 1e-4);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }
}
