use crate::{Point, Square};

/// Integer coordinates of a cell in a [`SquareTiling`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CellCoord {
    /// Horizontal cell index.
    pub i: i64,
    /// Vertical cell index.
    pub j: i64,
}

impl CellCoord {
    /// Creates a coordinate pair.
    pub const fn new(i: i64, j: i64) -> Self {
        CellCoord { i, j }
    }
}

impl std::fmt::Display for CellCoord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.i, self.j)
    }
}

/// A tiling of the plane by axis-parallel squares of a fixed width,
/// centered at integer multiples of the width: cell `(k, k')` is the square
/// centered at `(k·w, k'·w)`.
///
/// `AGrid` uses this with `w = 2ℓ` (squares centered at `(2kℓ, 2k'ℓ)`,
/// Section 4) and `AWave` with `w = 8ℓ² log₂ ℓ` (Section 8.2).
///
/// # Example
///
/// ```
/// use freezetag_geometry::{Point, SquareTiling};
/// let t = SquareTiling::new(2.0);
/// let c = t.cell_of(Point::new(2.9, -0.9));
/// assert_eq!((c.i, c.j), (1, 0));
/// assert_eq!(t.square_of(c).center(), Point::new(2.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquareTiling {
    width: f64,
}

impl SquareTiling {
    /// Creates a tiling with the given cell width.
    ///
    /// # Panics
    ///
    /// Panics if `width <= 0` or not finite.
    pub fn new(width: f64) -> Self {
        assert!(width > 0.0 && width.is_finite(), "invalid tiling width");
        SquareTiling { width }
    }

    /// Cell width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// The cell containing `p` (round-to-nearest; border points resolve to
    /// the cell whose center is nearest, ties towards even).
    pub fn cell_of(&self, p: Point) -> CellCoord {
        CellCoord::new(
            (p.x / self.width).round() as i64,
            (p.y / self.width).round() as i64,
        )
    }

    /// The square of a given cell.
    pub fn square_of(&self, c: CellCoord) -> Square {
        Square::new(
            Point::new(c.i as f64 * self.width, c.j as f64 * self.width),
            self.width,
        )
    }

    /// The 8 neighbouring cells in counter-clockwise order starting East,
    /// the order in which `AGrid` robots visit adjacent squares.
    ///
    /// For a fixed slot `i`, the map `c ↦ neighbors8(c)[i]` is a translation
    /// of the grid, hence injective: at any given time slot a square is
    /// targeted from a unique source square — the paper's implicit
    /// conflict-freedom argument for the wave schedule.
    pub fn neighbors8(&self, c: CellCoord) -> [CellCoord; 8] {
        const DIRS: [(i64, i64); 8] = [
            (1, 0),
            (1, 1),
            (0, 1),
            (-1, 1),
            (-1, 0),
            (-1, -1),
            (0, -1),
            (1, -1),
        ];
        DIRS.map(|(di, dj)| CellCoord::new(c.i + di, c.j + dj))
    }

    /// Chebyshev adjacency between cells (shared edge or corner).
    pub fn adjacent(&self, a: CellCoord, b: CellCoord) -> bool {
        a != b && (a.i - b.i).abs() <= 1 && (a.j - b.j).abs() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_of_center_and_offsets() {
        let t = SquareTiling::new(4.0);
        assert_eq!(t.cell_of(Point::ORIGIN), CellCoord::new(0, 0));
        assert_eq!(t.cell_of(Point::new(4.0, 4.0)), CellCoord::new(1, 1));
        assert_eq!(t.cell_of(Point::new(-3.0, 1.9)), CellCoord::new(-1, 0));
    }

    #[test]
    fn square_of_round_trips_cell_of() {
        let t = SquareTiling::new(3.0);
        for (i, j) in [(0, 0), (5, -7), (-2, 11)] {
            let c = CellCoord::new(i, j);
            let s = t.square_of(c);
            assert_eq!(t.cell_of(s.center()), c);
            // Interior points map back to the same cell.
            let p = s.center() + Point::new(1.4, -1.4);
            assert_eq!(t.cell_of(p), c);
        }
    }

    #[test]
    fn neighbors_are_adjacent_translations() {
        let t = SquareTiling::new(2.0);
        let c = CellCoord::new(3, -1);
        let ns = t.neighbors8(c);
        assert_eq!(ns.len(), 8);
        for n in ns {
            assert!(t.adjacent(c, n));
        }
        // Injectivity per slot: two distinct sources target distinct cells.
        let d = CellCoord::new(0, 0);
        for slot in 0..8 {
            assert_ne!(t.neighbors8(c)[slot], t.neighbors8(d)[slot]);
        }
    }

    #[test]
    fn counter_clockwise_order_starts_east() {
        let t = SquareTiling::new(1.0);
        let ns = t.neighbors8(CellCoord::new(0, 0));
        assert_eq!(ns[0], CellCoord::new(1, 0));
        assert_eq!(ns[2], CellCoord::new(0, 1));
        assert_eq!(ns[4], CellCoord::new(-1, 0));
        assert_eq!(ns[6], CellCoord::new(0, -1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", CellCoord::new(2, -3)), "[2, -3]");
    }
}
