use crate::Point;

/// An axis-parallel rectangle, stored as its min and max corners.
///
/// Rectangles are the exploration unit of the paper: `Explore` (Lemma 1)
/// sweeps a `w × h` rectangle, and separators decompose into four
/// rectangles that teams explore in parallel.
///
/// # Example
///
/// ```
/// use freezetag_geometry::{Point, Rect};
/// let r = Rect::from_corners(Point::new(0.0, 0.0), Point::new(4.0, 2.0));
/// assert_eq!(r.width(), 4.0);
/// assert_eq!(r.height(), 2.0);
/// assert!(r.contains(Point::new(1.0, 1.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Builds the bounding rectangle of two arbitrary corners.
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Builds a rectangle from its min corner and non-negative dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `w < 0` or `h < 0`.
    pub fn with_size(min: Point, w: f64, h: f64) -> Self {
        assert!(w >= 0.0 && h >= 0.0, "rectangle dimensions must be >= 0");
        Rect {
            min,
            max: Point::new(min.x + w, min.y + h),
        }
    }

    /// Min (lower-left) corner.
    pub fn min(&self) -> Point {
        self.min
    }

    /// Max (upper-right) corner.
    pub fn max(&self) -> Point {
        self.max
    }

    /// Horizontal extent.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Vertical extent.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area `w · h`.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// The four corners in counter-clockwise order starting at the min
    /// corner.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }

    /// Closed containment test (borders included), with [`crate::EPS`]
    /// slack so points produced by arithmetic on the border still count.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x - crate::EPS
            && p.x <= self.max.x + crate::EPS
            && p.y >= self.min.y - crate::EPS
            && p.y <= self.max.y + crate::EPS
    }

    /// Strict interior test (distance > `EPS` from every border).
    pub fn contains_interior(&self, p: Point) -> bool {
        p.x > self.min.x + crate::EPS
            && p.x < self.max.x - crate::EPS
            && p.y > self.min.y + crate::EPS
            && p.y < self.max.y - crate::EPS
    }

    /// The point of the rectangle closest to `p` (equals `p` when inside).
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Euclidean distance from `p` to the rectangle (0 when inside).
    pub fn dist(&self, p: Point) -> f64 {
        p.dist(self.clamp(p))
    }

    /// Whether `self` and `other` overlap (closed sets).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x + crate::EPS
            && other.min.x <= self.max.x + crate::EPS
            && self.min.y <= other.max.y + crate::EPS
            && other.min.y <= self.max.y + crate::EPS
    }

    /// Intersection rectangle, or `None` when disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let min = Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y));
        let max = Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y));
        if min.x <= max.x && min.y <= max.y {
            Some(Rect { min, max })
        } else {
            None
        }
    }

    /// Grows the rectangle by `margin` on every side.
    ///
    /// # Panics
    ///
    /// Panics if shrinking (`margin < 0`) would invert the rectangle.
    pub fn inflate(&self, margin: f64) -> Rect {
        let r = Rect {
            min: self.min - Point::new(margin, margin),
            max: self.max + Point::new(margin, margin),
        };
        assert!(
            r.min.x <= r.max.x && r.min.y <= r.max.y,
            "inflate by {margin} inverted the rectangle"
        );
        r
    }

    /// Splits the rectangle into `k` horizontal strips of equal height,
    /// bottom to top. Used by the collaborative exploration of Lemma 1 where
    /// each team member sweeps one strip.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn horizontal_strips(&self, k: usize) -> Vec<Rect> {
        assert!(k > 0, "cannot split into 0 strips");
        let h = self.height() / k as f64;
        (0..k)
            .map(|i| {
                Rect::from_corners(
                    Point::new(self.min.x, self.min.y + h * i as f64),
                    Point::new(self.max.x, self.min.y + h * (i + 1) as f64),
                )
            })
            .collect()
    }

    /// The bounding rectangle of a non-empty point collection.
    ///
    /// Returns `None` for an empty iterator.
    pub fn bounding<I: IntoIterator<Item = Point>>(points: I) -> Option<Rect> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut r = Rect {
            min: first,
            max: first,
        };
        for p in it {
            r.min.x = r.min.x.min(p.x);
            r.min.y = r.min.y.min(p.y);
            r.max.x = r.max.x.max(p.x);
            r.max.y = r.max.y.max(p.y);
        }
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_and_dims() {
        let r = Rect::with_size(Point::new(1.0, 2.0), 3.0, 4.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.center(), Point::new(2.5, 4.0));
        let c = r.corners();
        assert_eq!(c[0], Point::new(1.0, 2.0));
        assert_eq!(c[2], Point::new(4.0, 6.0));
    }

    #[test]
    fn from_corners_normalizes() {
        let r = Rect::from_corners(Point::new(4.0, 6.0), Point::new(1.0, 2.0));
        assert_eq!(r.min(), Point::new(1.0, 2.0));
        assert_eq!(r.max(), Point::new(4.0, 6.0));
    }

    #[test]
    fn containment_including_border() {
        let r = Rect::with_size(Point::ORIGIN, 2.0, 2.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(2.0, 2.0)));
        assert!(r.contains(Point::new(1.0, 1.0)));
        assert!(!r.contains(Point::new(2.1, 1.0)));
        assert!(r.contains_interior(Point::new(1.0, 1.0)));
        assert!(!r.contains_interior(Point::new(0.0, 1.0)));
    }

    #[test]
    fn clamp_and_dist() {
        let r = Rect::with_size(Point::ORIGIN, 2.0, 2.0);
        assert_eq!(r.clamp(Point::new(5.0, 1.0)), Point::new(2.0, 1.0));
        assert_eq!(r.dist(Point::new(5.0, 1.0)), 3.0);
        assert_eq!(r.dist(Point::new(1.0, 1.0)), 0.0);
    }

    #[test]
    fn intersection_of_overlapping() {
        let a = Rect::with_size(Point::ORIGIN, 4.0, 4.0);
        let b = Rect::with_size(Point::new(2.0, 2.0), 4.0, 4.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.min(), Point::new(2.0, 2.0));
        assert_eq!(i.max(), Point::new(4.0, 4.0));
        let c = Rect::with_size(Point::new(10.0, 10.0), 1.0, 1.0);
        assert!(a.intersection(&c).is_none());
        assert!(!a.intersects(&c));
        assert!(a.intersects(&b));
    }

    #[test]
    fn strips_partition_area() {
        let r = Rect::with_size(Point::ORIGIN, 3.0, 6.0);
        let strips = r.horizontal_strips(4);
        assert_eq!(strips.len(), 4);
        let total: f64 = strips.iter().map(Rect::area).sum();
        assert!((total - r.area()).abs() < 1e-9);
        assert_eq!(strips[0].min(), r.min());
        assert_eq!(strips[3].max(), r.max());
    }

    #[test]
    fn bounding_box_of_points() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.0),
            Point::new(3.0, 2.0),
        ];
        let r = Rect::bounding(pts).unwrap();
        assert_eq!(r.min(), Point::new(-2.0, 0.0));
        assert_eq!(r.max(), Point::new(3.0, 5.0));
        assert!(Rect::bounding(std::iter::empty()).is_none());
    }

    #[test]
    #[should_panic]
    fn negative_size_panics() {
        let _ = Rect::with_size(Point::ORIGIN, -1.0, 1.0);
    }
}
