//! Boustrophedon sweep generation for the `Explore` procedure (Lemma 1).
//!
//! A robot with unit-vision snapshots certifies a `√2 × √2` square around
//! each snapshot point (the square inscribed in the unit disk). A rectangle
//! is therefore fully observed by snapshots placed on a grid of spacing at
//! most `√2`, visited in serpentine (boustrophedon) order: rows separated by
//! `√2`, one snapshot every `√2` of movement, exactly as in the proof of
//! Lemma 1.

use crate::{Point, Rect, SQRT_2};

/// Number of columns and rows of the snapshot grid covering `rect` so that
/// every point of `rect` is within distance 1 of a snapshot point.
pub fn grid_dims(rect: &Rect) -> (usize, usize) {
    let cols = (rect.width() / SQRT_2).ceil().max(1.0) as usize;
    let rows = (rect.height() / SQRT_2).ceil().max(1.0) as usize;
    (cols, rows)
}

/// The snapshot positions covering `rect`, in serpentine order starting at
/// the bottom-left: row 0 runs left→right, row 1 right→left, and so on.
///
/// Guarantees: consecutive positions are at distance `≤ √2 + √2` (a row
/// step plus a column step at turns, `≤ √2` within a row), and every point
/// of `rect` is within Euclidean distance 1 of some returned position.
///
/// # Example
///
/// ```
/// use freezetag_geometry::{Point, Rect};
/// use freezetag_geometry::sweep::snapshot_positions;
/// let rect = Rect::with_size(Point::ORIGIN, 4.0, 4.0);
/// let snaps = snapshot_positions(&rect);
/// // Every corner is observed by some snapshot.
/// for corner in rect.corners() {
///     assert!(snaps.iter().any(|s| s.dist(corner) <= 1.0));
/// }
/// ```
pub fn snapshot_positions(rect: &Rect) -> Vec<Point> {
    let (cols, rows) = grid_dims(rect);
    let dx = rect.width() / cols as f64;
    let dy = rect.height() / rows as f64;
    let mut out = Vec::with_capacity(cols * rows);
    for r in 0..rows {
        let y = rect.min().y + (r as f64 + 0.5) * dy;
        if r % 2 == 0 {
            for c in 0..cols {
                out.push(Point::new(rect.min().x + (c as f64 + 0.5) * dx, y));
            }
        } else {
            for c in (0..cols).rev() {
                out.push(Point::new(rect.min().x + (c as f64 + 0.5) * dx, y));
            }
        }
    }
    out
}

/// Length of the serpentine sweep path through [`snapshot_positions`]
/// (not counting entry/exit legs).
pub fn sweep_length(rect: &Rect) -> f64 {
    let snaps = snapshot_positions(rect);
    snaps.windows(2).map(|w| w[0].dist(w[1])).sum()
}

/// Upper bound `wh/√2 + w + 2h` on the sweep length used for
/// synchronization: a team member can compute when every other member is
/// guaranteed to have finished its strip (Lemma 1's rendezvous at `p'`).
pub fn sweep_length_bound(rect: &Rect) -> f64 {
    let (w, h) = (rect.width(), rect.height());
    w * h / SQRT_2 + w + 2.0 * h + 2.0 * SQRT_2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_dims_cover_spacing() {
        let r = Rect::with_size(Point::ORIGIN, 10.0, 3.0);
        let (cols, rows) = grid_dims(&r);
        assert!(10.0 / cols as f64 <= SQRT_2 + 1e-12);
        assert!(3.0 / rows as f64 <= SQRT_2 + 1e-12);
    }

    #[test]
    fn snapshots_cover_rectangle() {
        let r = Rect::with_size(Point::new(-3.0, 2.0), 7.3, 4.9);
        let snaps = snapshot_positions(&r);
        // Dense sample of the rectangle: all points within distance 1 of
        // some snapshot.
        let steps = 23;
        for i in 0..=steps {
            for j in 0..=steps {
                let p = Point::new(
                    r.min().x + r.width() * i as f64 / steps as f64,
                    r.min().y + r.height() * j as f64 / steps as f64,
                );
                let d = snaps
                    .iter()
                    .map(|s| s.dist(p))
                    .fold(f64::INFINITY, f64::min);
                assert!(d <= 1.0 + 1e-9, "point {p} at distance {d}");
            }
        }
    }

    #[test]
    fn serpentine_consecutive_steps_are_short() {
        let r = Rect::with_size(Point::ORIGIN, 9.0, 6.0);
        let snaps = snapshot_positions(&r);
        for w in snaps.windows(2) {
            assert!(w[0].dist(w[1]) <= 2.0 * SQRT_2 + 1e-9);
        }
    }

    #[test]
    fn sweep_length_within_bound() {
        for (w, h) in [(1.0, 1.0), (8.0, 2.0), (2.0, 16.0), (31.0, 17.0)] {
            let r = Rect::with_size(Point::ORIGIN, w, h);
            assert!(
                sweep_length(&r) <= sweep_length_bound(&r),
                "sweep of {w}x{h} exceeds bound"
            );
        }
    }

    #[test]
    fn degenerate_rectangles_have_snapshots() {
        let line = Rect::with_size(Point::ORIGIN, 5.0, 0.0);
        assert!(!snapshot_positions(&line).is_empty());
        let point = Rect::with_size(Point::ORIGIN, 0.0, 0.0);
        assert_eq!(snapshot_positions(&point).len(), 1);
    }
}
