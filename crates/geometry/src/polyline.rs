use crate::Point;

/// A polygonal chain of waypoints; robot trajectories and sweep paths are
/// polylines.
///
/// # Example
///
/// ```
/// use freezetag_geometry::{Point, Polyline};
/// let mut pl = Polyline::new(Point::ORIGIN);
/// pl.push(Point::new(3.0, 0.0));
/// pl.push(Point::new(3.0, 4.0));
/// assert_eq!(pl.length(), 7.0);
/// assert_eq!(pl.point_at(5.0), Point::new(3.0, 2.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polyline {
    points: Vec<Point>,
}

impl Polyline {
    /// A polyline consisting of the single starting waypoint.
    pub fn new(start: Point) -> Self {
        Polyline {
            points: vec![start],
        }
    }

    /// Builds a polyline from a waypoint list.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn from_points(points: Vec<Point>) -> Self {
        assert!(!points.is_empty(), "a polyline needs at least one point");
        Polyline { points }
    }

    /// Appends a waypoint.
    pub fn push(&mut self, p: Point) {
        self.points.push(p);
    }

    /// Waypoints in order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// First waypoint.
    pub fn start(&self) -> Point {
        self.points[0]
    }

    /// Last waypoint.
    pub fn end(&self) -> Point {
        *self.points.last().expect("non-empty by construction")
    }

    /// Total Euclidean length.
    pub fn length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].dist(w[1])).sum()
    }

    /// The point at arc-length `d` from the start, clamped to the ends.
    pub fn point_at(&self, d: f64) -> Point {
        if d <= 0.0 {
            return self.start();
        }
        let mut remaining = d;
        for w in self.points.windows(2) {
            let seg = w[0].dist(w[1]);
            if remaining <= seg {
                if seg <= crate::EPS {
                    return w[1];
                }
                return w[0].lerp(w[1], remaining / seg);
            }
            remaining -= seg;
        }
        self.end()
    }

    /// Number of waypoints.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the polyline is a single point.
    pub fn is_empty(&self) -> bool {
        self.points.len() <= 1
    }
}

impl Extend<Point> for Polyline {
    fn extend<T: IntoIterator<Item = Point>>(&mut self, iter: T) {
        self.points.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_of_l_shape() {
        let pl = Polyline::from_points(vec![
            Point::ORIGIN,
            Point::new(3.0, 0.0),
            Point::new(3.0, 4.0),
        ]);
        assert_eq!(pl.length(), 7.0);
    }

    #[test]
    fn point_at_interpolates_and_clamps() {
        let pl = Polyline::from_points(vec![Point::ORIGIN, Point::new(10.0, 0.0)]);
        assert_eq!(pl.point_at(-1.0), Point::ORIGIN);
        assert_eq!(pl.point_at(4.0), Point::new(4.0, 0.0));
        assert_eq!(pl.point_at(100.0), Point::new(10.0, 0.0));
    }

    #[test]
    fn degenerate_segments_are_skipped() {
        let pl = Polyline::from_points(vec![Point::ORIGIN, Point::ORIGIN, Point::new(2.0, 0.0)]);
        assert_eq!(pl.length(), 2.0);
        assert_eq!(pl.point_at(1.0), Point::new(1.0, 0.0));
    }

    #[test]
    fn extend_appends() {
        let mut pl = Polyline::new(Point::ORIGIN);
        pl.extend([Point::new(1.0, 0.0), Point::new(1.0, 1.0)]);
        assert_eq!(pl.len(), 3);
        assert_eq!(pl.end(), Point::new(1.0, 1.0));
        assert!(!pl.is_empty());
        assert!(Polyline::new(Point::ORIGIN).is_empty());
    }

    #[test]
    #[should_panic]
    fn empty_waypoints_panic() {
        let _ = Polyline::from_points(vec![]);
    }
}
