use crate::{Point, Rect, Square};

/// The separator `sep(S)` of a square `S` of width `R`: the ring bounded by
/// `S` and the concentric square of width `R − 2ℓ` (Section 2.3 of the
/// paper).
///
/// Lemma 3: any path of hops `≤ ℓ` in the ℓ-disk graph linking a robot
/// strictly inside `S` to a robot outside `S` contains a robot located in
/// `sep(S)`. `ASeparator` teams explore exactly these rings to collect
/// recruitment seeds.
///
/// # Example
///
/// ```
/// use freezetag_geometry::{Point, Separator, Square};
/// let sep = Separator::new(Square::new(Point::ORIGIN, 10.0), 1.0);
/// assert!(sep.contains(Point::new(4.2, 0.0)));    // in the ring
/// assert!(!sep.contains(Point::new(0.0, 0.0)));   // in the hole
/// assert!(!sep.contains(Point::new(5.5, 0.0)));   // outside the square
/// assert_eq!(sep.rectangles().len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Separator {
    outer: Square,
    ell: f64,
}

impl Separator {
    /// Builds the separator of `outer` for connectivity parameter `ell`.
    ///
    /// When `outer.width() ≤ 2·ell` the ring degenerates to the full square
    /// ([`Separator::is_degenerate`] returns `true`).
    ///
    /// # Panics
    ///
    /// Panics if `ell <= 0` or not finite.
    pub fn new(outer: Square, ell: f64) -> Self {
        assert!(ell > 0.0 && ell.is_finite(), "separator width must be > 0");
        Separator { outer, ell }
    }

    /// The bounding square `S`.
    pub fn outer(&self) -> Square {
        self.outer
    }

    /// The ring thickness `ℓ`.
    pub fn ell(&self) -> f64 {
        self.ell
    }

    /// The inner hole (square of width `R − 2ℓ`), or `None` when the ring
    /// degenerates to the whole square.
    pub fn hole(&self) -> Option<Square> {
        let w = self.outer.width() - 2.0 * self.ell;
        if w > crate::EPS {
            Some(Square::new(self.outer.center(), w))
        } else {
            None
        }
    }

    /// `true` when the ring covers the whole square (no hole).
    pub fn is_degenerate(&self) -> bool {
        self.hole().is_none()
    }

    /// Ring membership: inside `S` but not strictly inside the hole.
    pub fn contains(&self, p: Point) -> bool {
        if !self.outer.contains(p) {
            return false;
        }
        match self.hole() {
            Some(hole) => !hole.to_rect().contains_interior(p),
            None => true,
        }
    }

    /// Decomposes the ring into four rectangles of dimensions
    /// `ℓ × (R − ℓ)` arranged in a pinwheel: bottom, right, top, left.
    /// Each `ASeparator` team explores these four rectangles with the
    /// `Explore` routine (Lemma 10 uses this exact decomposition).
    ///
    /// For a degenerate separator the decomposition is a single rectangle —
    /// the whole square.
    pub fn rectangles(&self) -> Vec<Rect> {
        let r = self.outer.to_rect();
        if self.is_degenerate() {
            return vec![r];
        }
        let l = self.ell;
        let (min, max) = (r.min(), r.max());
        vec![
            // bottom strip: full width minus the left column, height ℓ
            Rect::from_corners(Point::new(min.x + l, min.y), Point::new(max.x, min.y + l)),
            // right strip
            Rect::from_corners(Point::new(max.x - l, min.y + l), Point::new(max.x, max.y)),
            // top strip
            Rect::from_corners(Point::new(min.x, max.y - l), Point::new(max.x - l, max.y)),
            // left strip
            Rect::from_corners(Point::new(min.x, min.y), Point::new(min.x + l, max.y - l)),
        ]
    }

    /// Area of the ring.
    pub fn area(&self) -> f64 {
        let outer = self.outer.to_rect().area();
        match self.hole() {
            Some(h) => outer - h.to_rect().area(),
            None => outer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sep(width: f64, ell: f64) -> Separator {
        Separator::new(Square::new(Point::ORIGIN, width), ell)
    }

    #[test]
    fn ring_membership() {
        let s = sep(10.0, 1.0);
        assert!(s.contains(Point::new(4.5, 0.0)));
        assert!(s.contains(Point::new(5.0, 5.0))); // outer corner
        assert!(s.contains(Point::new(4.0, 4.0))); // hole corner counts (closed ring)
        assert!(!s.contains(Point::new(3.9, 0.0)));
        assert!(!s.contains(Point::new(5.1, 0.0)));
    }

    #[test]
    fn degenerate_when_narrow() {
        let s = sep(2.0, 1.0);
        assert!(s.is_degenerate());
        assert!(s.contains(Point::ORIGIN));
        assert_eq!(s.rectangles().len(), 1);
    }

    #[test]
    fn rectangles_cover_ring_and_have_ring_area() {
        let s = sep(10.0, 1.0);
        let rects = s.rectangles();
        assert_eq!(rects.len(), 4);
        let total: f64 = rects.iter().map(Rect::area).sum();
        assert!((total - s.area()).abs() < 1e-9, "total {total}");
        // Pinwheel rectangles are pairwise disjoint in the interior.
        for i in 0..4 {
            for j in (i + 1)..4 {
                if let Some(ix) = rects[i].intersection(&rects[j]) {
                    assert!(ix.area() < 1e-9, "rects {i},{j} overlap");
                }
            }
        }
        // Sample ring points are covered by some rectangle.
        for p in [
            Point::new(4.5, 0.0),
            Point::new(-4.5, 0.0),
            Point::new(0.0, 4.5),
            Point::new(0.0, -4.5),
            Point::new(4.9, 4.9),
        ] {
            assert!(rects.iter().any(|r| r.contains(p)), "uncovered {p}");
        }
    }

    #[test]
    fn area_formula() {
        let s = sep(10.0, 1.0);
        assert!((s.area() - (100.0 - 64.0)).abs() < 1e-9);
    }

    #[test]
    fn rect_dims_are_ell_by_r_minus_ell() {
        let s = sep(10.0, 1.0);
        for r in s.rectangles() {
            let (a, b) = (r.width().min(r.height()), r.width().max(r.height()));
            assert!((a - 1.0).abs() < 1e-9);
            assert!((b - 9.0).abs() < 1e-9);
        }
    }
}
