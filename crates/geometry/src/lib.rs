//! Planar geometry substrate for the `freezetag` workspace.
//!
//! The distributed Freeze Tag algorithms of Gavoille, Hanusse, Le Bouder and
//! Marcé (PODC 2025) are stated over the Euclidean plane: robots live at
//! [`Point`]s, explore axis-parallel [`Rect`]angles, recurse over
//! [`Square`]s and their [`Separator`] rings, and tile the plane with a
//! [`SquareTiling`]. This crate provides those primitives together with the
//! boustrophedon [`sweep`] used by the `Explore` procedure (Lemma 1 of the
//! paper) and clockwise border projections used to order `DFSampling` seeds
//! (`Sort(X)` in Section 6.5).
//!
//! # Example
//!
//! ```
//! use freezetag_geometry::{Point, Square};
//!
//! let s = Square::new(Point::ORIGIN, 8.0);
//! let quads = s.quadrants();
//! assert_eq!(quads.len(), 4);
//! // The separator of a square of width R > 2ℓ is the ring of width ℓ
//! // just inside its border (Section 2.3 of the paper).
//! let sep = s.separator(1.0);
//! assert!(sep.contains(Point::new(3.5, 0.0)));
//! assert!(!sep.contains(Point::ORIGIN));
//! ```

mod disk;
mod point;
mod polyline;
mod rect;
mod separator;
mod square;
pub mod sweep;
mod tiling;

pub use disk::Disk;
pub use point::Point;
pub use polyline::Polyline;
pub use rect::Rect;
pub use separator::Separator;
pub use square::Square;
pub use tiling::{CellCoord, SquareTiling};

/// Tolerance used for co-location and containment tests throughout the
/// workspace. Distances below `EPS` are treated as zero.
pub const EPS: f64 = 1e-9;

/// `sqrt(2)`, the row spacing of the exploration sweep (Lemma 1).
pub const SQRT_2: f64 = std::f64::consts::SQRT_2;
