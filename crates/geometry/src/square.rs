use crate::{Point, Rect, Separator};

/// An axis-parallel square given by its center and width.
///
/// Squares are the recursion unit of `ASeparator` (a square of width `2ρ` is
/// split into four quadrant sub-squares each round) and the tiling unit of
/// `AGrid`/`AWave`.
///
/// # Example
///
/// ```
/// use freezetag_geometry::{Point, Square};
/// let s = Square::new(Point::ORIGIN, 8.0);
/// let q = s.quadrants();
/// assert_eq!(q[0].center(), Point::new(-2.0, -2.0));
/// assert_eq!(q[0].width(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Square {
    center: Point,
    width: f64,
}

impl Square {
    /// Creates a square from its center and width.
    ///
    /// # Panics
    ///
    /// Panics if `width < 0` or not finite.
    pub fn new(center: Point, width: f64) -> Self {
        assert!(width >= 0.0 && width.is_finite(), "invalid square width");
        Square { center, width }
    }

    /// The square of a given min (lower-left) corner and width.
    pub fn from_min_corner(min: Point, width: f64) -> Self {
        Square::new(min + Point::new(width / 2.0, width / 2.0), width)
    }

    /// Center of the square.
    pub fn center(&self) -> Point {
        self.center
    }

    /// Side length.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Half the side length.
    pub fn half_width(&self) -> f64 {
        self.width / 2.0
    }

    /// Lower-left corner; `AGrid` robots meet there before exploring
    /// (Section 8.1).
    pub fn min_corner(&self) -> Point {
        self.center - Point::new(self.half_width(), self.half_width())
    }

    /// Upper-right corner.
    pub fn max_corner(&self) -> Point {
        self.center + Point::new(self.half_width(), self.half_width())
    }

    /// View as a [`Rect`].
    pub fn to_rect(&self) -> Rect {
        Rect::from_corners(self.min_corner(), self.max_corner())
    }

    /// Closed containment test with `EPS` slack.
    pub fn contains(&self, p: Point) -> bool {
        p.dist_linf(self.center) <= self.half_width() + crate::EPS
    }

    /// Radius of the smallest disk containing the square: `w/√2`.
    ///
    /// Lemma 2 wakes a square of width `R` through the disk of radius
    /// `R/√2` around its center.
    pub fn circumradius(&self) -> f64 {
        self.half_width() * std::f64::consts::SQRT_2
    }

    /// The four quadrant sub-squares of half width, in the order
    /// lower-left, lower-right, upper-right, upper-left (counter-clockwise,
    /// matching the partition phase of `ASeparator`).
    pub fn quadrants(&self) -> [Square; 4] {
        let q = self.width / 4.0;
        [
            Square::new(self.center + Point::new(-q, -q), self.width / 2.0),
            Square::new(self.center + Point::new(q, -q), self.width / 2.0),
            Square::new(self.center + Point::new(q, q), self.width / 2.0),
            Square::new(self.center + Point::new(-q, q), self.width / 2.0),
        ]
    }

    /// The separator of the square: the ring between the border of `self`
    /// and the concentric square of width `w − 2ℓ` (Section 2.3).
    ///
    /// When `w ≤ 2ℓ` the "ring" degenerates to the whole square; the
    /// returned separator then has an empty interior hole, which matches the
    /// paper's convention that any crossing path is caught.
    pub fn separator(&self, ell: f64) -> Separator {
        Separator::new(*self, ell)
    }

    /// Perimeter parameter of the projection of `p` onto the square's
    /// border, measured clockwise (when the y-axis points up) starting from
    /// the top-left corner. Ties towards the first clockwise projection.
    ///
    /// This is the key of `Sort(X)` (Section 6.5): `DFSampling` seeds are
    /// visited in clockwise order of their border projections, which bounds
    /// the total tour by the square's perimeter plus `2ℓ` per seed.
    pub fn border_parameter(&self, p: Point) -> f64 {
        // Nearest border point: clamp to the rect, then push the clamped
        // point to the nearest side if p was interior.
        let r = self.to_rect();
        let c = r.clamp(p);
        let (min, max) = (r.min(), r.max());
        // Distances from the clamped point to each side.
        let d_left = c.x - min.x;
        let d_right = max.x - c.x;
        let d_bottom = c.y - min.y;
        let d_top = max.y - c.y;
        let m = d_left.min(d_right).min(d_bottom).min(d_top);
        let b = if m == d_top {
            Point::new(c.x, max.y)
        } else if m == d_right {
            Point::new(max.x, c.y)
        } else if m == d_bottom {
            Point::new(c.x, min.y)
        } else {
            Point::new(min.x, c.y)
        };
        // Clockwise walk starting at the top-left corner:
        // top edge (left→right), right edge (top→bottom),
        // bottom edge (right→left), left edge (bottom→top).
        let w = self.width.max(crate::EPS);
        if (b.y - max.y).abs() <= crate::EPS {
            b.x - min.x
        } else if (b.x - max.x).abs() <= crate::EPS {
            w + (max.y - b.y)
        } else if (b.y - min.y).abs() <= crate::EPS {
            2.0 * w + (max.x - b.x)
        } else {
            3.0 * w + (b.y - min.y)
        }
    }

    /// Nearest point on the border of the square to `p`.
    pub fn project_to_border(&self, p: Point) -> Point {
        let r = self.to_rect();
        let c = r.clamp(p);
        if !r.contains_interior(c) {
            return c;
        }
        let (min, max) = (r.min(), r.max());
        let d_left = c.x - min.x;
        let d_right = max.x - c.x;
        let d_bottom = c.y - min.y;
        let d_top = max.y - c.y;
        let m = d_left.min(d_right).min(d_bottom).min(d_top);
        if m == d_top {
            Point::new(c.x, max.y)
        } else if m == d_right {
            Point::new(max.x, c.y)
        } else if m == d_bottom {
            Point::new(c.x, min.y)
        } else {
            Point::new(min.x, c.y)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_and_rect_round_trip() {
        let s = Square::new(Point::new(1.0, 1.0), 4.0);
        assert_eq!(s.min_corner(), Point::new(-1.0, -1.0));
        assert_eq!(s.max_corner(), Point::new(3.0, 3.0));
        let r = s.to_rect();
        assert_eq!(r.center(), s.center());
        assert_eq!(r.width(), s.width());
        let s2 = Square::from_min_corner(Point::new(-1.0, -1.0), 4.0);
        assert_eq!(s2, s);
    }

    #[test]
    fn quadrants_tile_the_square() {
        let s = Square::new(Point::ORIGIN, 8.0);
        let qs = s.quadrants();
        let total: f64 = qs.iter().map(|q| q.to_rect().area()).sum();
        assert!((total - 64.0).abs() < 1e-9);
        for q in &qs {
            assert!(s.contains(q.min_corner()));
            assert!(s.contains(q.max_corner()));
        }
        // Counter-clockwise order starting lower-left.
        assert!(qs[0].center().x < 0.0 && qs[0].center().y < 0.0);
        assert!(qs[1].center().x > 0.0 && qs[1].center().y < 0.0);
        assert!(qs[2].center().x > 0.0 && qs[2].center().y > 0.0);
        assert!(qs[3].center().x < 0.0 && qs[3].center().y > 0.0);
    }

    #[test]
    fn circumradius_contains_corners() {
        let s = Square::new(Point::new(2.0, -3.0), 6.0);
        let r = s.circumradius();
        assert!((s.center().dist(s.min_corner()) - r).abs() < 1e-12);
    }

    #[test]
    fn border_parameter_orders_clockwise() {
        let s = Square::new(Point::ORIGIN, 2.0);
        // Walk clockwise: top-left start.
        let top = s.border_parameter(Point::new(0.0, 2.0));
        let right = s.border_parameter(Point::new(2.0, 0.0));
        let bottom = s.border_parameter(Point::new(0.0, -2.0));
        let left = s.border_parameter(Point::new(-2.0, 0.0));
        assert!(top < right && right < bottom && bottom < left);
        assert!(left < 8.0); // perimeter of width-2 square
    }

    #[test]
    fn border_projection_is_on_border() {
        let s = Square::new(Point::ORIGIN, 4.0);
        for p in [
            Point::new(0.5, 0.1),
            Point::new(10.0, 10.0),
            Point::new(-1.9, 0.0),
            Point::new(0.0, 1.99),
        ] {
            let b = s.project_to_border(p);
            let on_border = (b.dist_linf(s.center()) - 2.0).abs() < 1e-9;
            assert!(on_border, "projection {b} of {p} not on border");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The border parameter is a bijection-ish walk: values lie in
            /// [0, perimeter) and projections land on the border.
            #[test]
            fn border_parameter_in_range(
                cx in -10.0f64..10.0, cy in -10.0f64..10.0,
                w in 0.5f64..20.0,
                px in -40.0f64..40.0, py in -40.0f64..40.0,
            ) {
                let s = Square::new(Point::new(cx, cy), w);
                let p = Point::new(px, py);
                let t = s.border_parameter(p);
                prop_assert!(t >= 0.0);
                prop_assert!(t <= 4.0 * w + 1e-9);
                let b = s.project_to_border(p);
                prop_assert!((b.dist_linf(s.center()) - w / 2.0).abs() < 1e-6,
                    "projection {b} off the border");
            }

            /// Quadrants tile the square: every interior point belongs to
            /// at least one quadrant, and the quadrant areas sum exactly.
            #[test]
            fn quadrants_tile(
                cx in -5.0f64..5.0, cy in -5.0f64..5.0, w in 1.0f64..16.0,
                fx in 0.01f64..0.99, fy in 0.01f64..0.99,
            ) {
                let s = Square::new(Point::new(cx, cy), w);
                let p = Point::new(
                    s.min_corner().x + w * fx,
                    s.min_corner().y + w * fy,
                );
                let qs = s.quadrants();
                prop_assert!(qs.iter().any(|q| q.contains(p)));
                let area: f64 = qs.iter().map(|q| q.to_rect().area()).sum();
                prop_assert!((area - w * w).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn separator_of_wide_square_has_hole() {
        let s = Square::new(Point::ORIGIN, 10.0);
        let sep = s.separator(1.0);
        assert!(sep.contains(Point::new(4.5, 0.0)));
        assert!(!sep.contains(Point::ORIGIN));
    }
}
