use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or vector) in the Euclidean plane.
///
/// `Point` doubles as a 2-vector: addition, subtraction and scalar
/// multiplication are defined componentwise, which keeps trajectory code
/// (`p + (q - p) * t`) readable.
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// let p = Point::new(3.0, 4.0);
/// assert_eq!(p.dist(Point::ORIGIN), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`, where the source robot starts.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean norm of `self` viewed as a vector.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm; cheaper than [`Point::norm`] when only
    /// comparisons are needed.
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Euclidean distance to `other`.
    pub fn dist(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other`.
    pub fn dist_sq(self, other: Point) -> f64 {
        (self - other).norm_sq()
    }

    /// L1 (Manhattan) distance to `other`; used when bounding seed tours
    /// along square borders (Lemma 5).
    pub fn dist_l1(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Chebyshev (L∞) distance to `other`; `p.dist_linf(c) <= w/2` is the
    /// containment test for the square of center `c` and width `w`.
    pub fn dist_linf(self, other: Point) -> f64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Midpoint of the segment `self → other`.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation: returns `self` at `t = 0` and `other` at `t = 1`.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }

    /// Dot product of `self` and `other` viewed as vectors.
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Returns the unit vector pointing from `self` towards `target`, or
    /// `None` when the two points are (numerically) identical.
    pub fn direction_to(self, target: Point) -> Option<Point> {
        let d = target - self;
        let n = d.norm();
        if n <= crate::EPS {
            None
        } else {
            Some(d / n)
        }
    }

    /// Whether `self` and `other` are within the workspace co-location
    /// tolerance [`crate::EPS`] of each other.
    pub fn approx_eq(self, other: Point) -> bool {
        self.dist(other) <= crate::EPS
    }

    /// Whether both coordinates are finite (not NaN/∞).
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_agree_on_345_triangle() {
        let p = Point::new(3.0, 4.0);
        assert_eq!(p.dist(Point::ORIGIN), 5.0);
        assert_eq!(p.dist_sq(Point::ORIGIN), 25.0);
        assert_eq!(p.dist_l1(Point::ORIGIN), 7.0);
        assert_eq!(p.dist_linf(Point::ORIGIN), 4.0);
    }

    #[test]
    fn vector_arithmetic_is_componentwise() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 0.5);
        assert_eq!(a + b, Point::new(-2.0, 2.5));
        assert_eq!(a - b, Point::new(4.0, 1.5));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(a / 2.0, Point::new(0.5, 1.0));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), a.midpoint(b));
    }

    #[test]
    fn direction_to_is_unit_or_none() {
        let a = Point::new(1.0, 1.0);
        let d = a.direction_to(Point::new(4.0, 5.0)).unwrap();
        assert!((d.norm() - 1.0).abs() < 1e-12);
        assert!(a.direction_to(a).is_none());
    }

    #[test]
    fn conversion_round_trips() {
        let p: Point = (1.5, -2.5).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.5, -2.5));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Point::ORIGIN).is_empty());
    }
}
