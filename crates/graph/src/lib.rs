//! Disk graphs and instance parameters for the distributed Freeze Tag
//! Problem.
//!
//! The paper's complexity bounds are phrased in terms of three quantities of
//! a point set `P` with source `s` (Section 1.2):
//!
//! * the **radius** `ρ*` — the largest distance from `s` to any point of `P`;
//! * the **connectivity threshold** `ℓ*` — the least `δ` such that the
//!   δ-disk graph of `P ∪ {s}` is connected;
//! * the **ℓ-eccentricity** `ξ_ℓ` — the minimum weighted depth of a spanning
//!   tree of the ℓ-disk graph rooted at `s`, which equals the largest
//!   shortest-path distance from `s` in that graph.
//!
//! This crate computes all three exactly, provides the δ-disk graph itself
//! (adjacency through a uniform-grid spatial index, [`GridIndex`]), plus the
//! traversals the algorithms and the test-suite need: Dijkstra shortest
//! paths, BFS hop counts and a union-find.
//!
//! # Example
//!
//! ```
//! use freezetag_geometry::Point;
//! use freezetag_graph::{connectivity_threshold, DiskGraph};
//!
//! // Three robots on a line, source at the origin.
//! let pts = vec![
//!     Point::ORIGIN,
//!     Point::new(1.0, 0.0),
//!     Point::new(2.5, 0.0),
//! ];
//! let ell_star = connectivity_threshold(&pts);
//! assert!((ell_star - 1.5).abs() < 1e-9);
//! let g = DiskGraph::new(pts, 1.5);
//! assert!(g.is_connected());
//! ```
//!
//! # Features
//!
//! * `simd` — dispatch the range-query membership tests to the wide
//!   (4-lane) kernels in [`kernel`] instead of the scalar ones. Pure
//!   speed: results are byte-identical either way (both kernels are
//!   always compiled and pinned against each other by parity proptests).

#![warn(missing_docs)]

mod cellgrid;
mod cellmap;
mod diskgraph;
mod index;
pub mod kernel;
mod params;
mod traversal;
mod unionfind;

pub use cellgrid::CellGrid;
pub use diskgraph::DiskGraph;
pub use index::GridIndex;
pub use params::{connectivity_threshold, eccentricity, radius, InstanceParams};
pub use traversal::{bfs_hops, dijkstra, ShortestPaths};
pub use unionfind::UnionFind;
