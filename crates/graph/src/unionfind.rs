/// Disjoint-set forest with path halving and union by size.
///
/// Used by the bottleneck-MST computation of the connectivity threshold
/// `ℓ*` and by connectivity checks on δ-disk graphs.
///
/// # Example
///
/// ```
/// use freezetag_graph::UnionFind;
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.components(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of the set containing `x` (path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` when they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_merges() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(1, 2));
        assert_eq!(uf.components(), 3);
        assert_eq!(uf.set_size(2), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 4));
    }

    #[test]
    fn chain_union_collapses_to_one() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.components(), 1);
        assert_eq!(uf.set_size(0), 100);
        assert!(uf.connected(0, 99));
    }

    #[test]
    fn len_and_empty() {
        assert!(UnionFind::new(0).is_empty());
        assert_eq!(UnionFind::new(3).len(), 3);
    }
}
