//! Wide (SIMD-style) membership kernels for the sensing hot path.
//!
//! Every range query in this crate bottoms out in the same inner loop:
//! given a cell's candidate coordinates in struct-of-arrays layout, test
//! each candidate against a disk or an axis-aligned rectangle and emit the
//! offsets that pass. At 10⁵–10⁶-robot scale that loop runs ~5·10⁸ times
//! per `AWave` sweep, so this module provides it in two interchangeable
//! shapes:
//!
//! * the **scalar** kernels ([`disk_scan_scalar`], [`rect_scan_scalar`]) —
//!   one candidate per iteration;
//! * the **wide** kernels ([`disk_scan_wide`], [`rect_scan_wide`]) — a
//!   hand-unrolled block of [`LANES`] candidates per iteration plus a
//!   scalar tail. The block is straight-line lane arithmetic with no
//!   early exits, exactly the shape LLVM's auto-vectorizer turns into
//!   `f64x4` SIMD on any target (the workspace pins stable Rust, so
//!   `core::simd` is out of reach and no intrinsics are used).
//!
//! The dispatched entry points ([`disk_scan`], [`rect_scan`],
//! [`disk_any`]) select the wide kernels when the crate is built with the
//! `simd` cargo feature and the scalar kernels otherwise. **Both variants
//! are always compiled**, so the scalar-vs-wide parity proptests below and
//! the `sensing` criterion bench compare them in every configuration.
//!
//! # Determinism
//!
//! The workspace's byte-identical-output contract survives because the
//! two variants are *provably* the same function, not merely close:
//!
//! * both evaluate the identical per-candidate predicate — for disks
//!   `dx·dx + dy·dy <= accept²` and for rectangles four closed compares —
//!   using the same IEEE-754 double operations in the same order per
//!   candidate, with no fused-multiply-add, reassociation, or reduced
//!   precision anywhere;
//! * both emit accepted offsets in strictly ascending order: the wide
//!   kernel computes a block's lane mask first, then walks the mask bits
//!   lane 0 to lane [`LANES`]` - 1`.
//!
//! Only the *grouping* of iterations differs, and grouping is observable
//! neither in the emitted sequence nor in any float result. The
//! schedule-identity pins (`tests/schedule_identity.rs`) and the CI
//! determinism matrix hold with either kernel selected.

/// Candidates per wide-kernel block. Four doubles fill one AVX2 register;
/// on wider units LLVM unrolls further on its own.
pub const LANES: usize = 4;

/// Scalar disk-membership scan: calls `emit(k)` for every `k` with
/// `(xs[k] - qx)² + (ys[k] - qy)² <= accept_sq`, in ascending `k`.
///
/// `accept_sq` is the squared acceptance radius — callers square their
/// `r + EPS` once per query. Slices must have equal length (the shorter
/// is used in release builds; debug builds assert).
///
/// # Example
///
/// ```
/// use freezetag_graph::kernel::disk_scan_scalar;
///
/// let xs = [0.0, 1.0, 3.0];
/// let ys = [0.0, 0.0, 0.0];
/// let mut hits = Vec::new();
/// disk_scan_scalar(&xs, &ys, 0.0, 0.0, 1.0, |k| hits.push(k));
/// assert_eq!(hits, vec![0, 1]);
/// ```
#[inline]
pub fn disk_scan_scalar(
    xs: &[f64],
    ys: &[f64],
    qx: f64,
    qy: f64,
    accept_sq: f64,
    mut emit: impl FnMut(usize),
) {
    debug_assert_eq!(xs.len(), ys.len());
    let n = xs.len().min(ys.len());
    for k in 0..n {
        let dx = xs[k] - qx;
        let dy = ys[k] - qy;
        if dx * dx + dy * dy <= accept_sq {
            emit(k);
        }
    }
}

/// Wide disk-membership scan: same emitted sequence as
/// [`disk_scan_scalar`] (see the [module docs](self) for the argument),
/// processing [`LANES`] candidates per straight-line block.
#[inline]
pub fn disk_scan_wide(
    xs: &[f64],
    ys: &[f64],
    qx: f64,
    qy: f64,
    accept_sq: f64,
    mut emit: impl FnMut(usize),
) {
    debug_assert_eq!(xs.len(), ys.len());
    let n = xs.len().min(ys.len());
    let mut base = 0;
    while base + LANES <= n {
        let d0x = xs[base] - qx;
        let d0y = ys[base] - qy;
        let d1x = xs[base + 1] - qx;
        let d1y = ys[base + 1] - qy;
        let d2x = xs[base + 2] - qx;
        let d2y = ys[base + 2] - qy;
        let d3x = xs[base + 3] - qx;
        let d3y = ys[base + 3] - qy;
        let mask = (d0x * d0x + d0y * d0y <= accept_sq) as u32
            | (((d1x * d1x + d1y * d1y <= accept_sq) as u32) << 1)
            | (((d2x * d2x + d2y * d2y <= accept_sq) as u32) << 2)
            | (((d3x * d3x + d3y * d3y <= accept_sq) as u32) << 3);
        if mask != 0 {
            for k in 0..LANES {
                if mask & (1 << k) != 0 {
                    emit(base + k);
                }
            }
        }
        base += LANES;
    }
    for k in base..n {
        let dx = xs[k] - qx;
        let dy = ys[k] - qy;
        if dx * dx + dy * dy <= accept_sq {
            emit(k);
        }
    }
}

/// Disk-membership scan with build-time kernel dispatch: the wide kernel
/// under the `simd` cargo feature, the scalar kernel otherwise. The two
/// emit byte-identical sequences (module docs), so the feature only moves
/// time, never results.
#[inline]
pub fn disk_scan(
    xs: &[f64],
    ys: &[f64],
    qx: f64,
    qy: f64,
    accept_sq: f64,
    emit: impl FnMut(usize),
) {
    if cfg!(feature = "simd") {
        disk_scan_wide(xs, ys, qx, qy, accept_sq, emit);
    } else {
        disk_scan_scalar(xs, ys, qx, qy, accept_sq, emit);
    }
}

/// Existence variant of [`disk_scan`]: whether any candidate lies in the
/// disk. Early-exits at block granularity; existence is order-free, so
/// both kernels trivially agree.
#[inline]
pub fn disk_any(xs: &[f64], ys: &[f64], qx: f64, qy: f64, accept_sq: f64) -> bool {
    if cfg!(feature = "simd") {
        debug_assert_eq!(xs.len(), ys.len());
        let n = xs.len().min(ys.len());
        let mut base = 0;
        while base + LANES <= n {
            let d0x = xs[base] - qx;
            let d0y = ys[base] - qy;
            let d1x = xs[base + 1] - qx;
            let d1y = ys[base + 1] - qy;
            let d2x = xs[base + 2] - qx;
            let d2y = ys[base + 2] - qy;
            let d3x = xs[base + 3] - qx;
            let d3y = ys[base + 3] - qy;
            if (d0x * d0x + d0y * d0y <= accept_sq)
                | (d1x * d1x + d1y * d1y <= accept_sq)
                | (d2x * d2x + d2y * d2y <= accept_sq)
                | (d3x * d3x + d3y * d3y <= accept_sq)
            {
                return true;
            }
            base += LANES;
        }
        for k in base..n {
            let dx = xs[k] - qx;
            let dy = ys[k] - qy;
            if dx * dx + dy * dy <= accept_sq {
                return true;
            }
        }
        false
    } else {
        let mut hit = false;
        disk_scan_scalar(xs, ys, qx, qy, accept_sq, |_| hit = true);
        hit
    }
}

/// Scalar rectangle-membership scan: calls `emit(k)` for every `k` with
/// `x0 <= xs[k] <= x1 && y0 <= ys[k] <= y1`, in ascending `k`.
///
/// Bounds are closed and taken as given — callers fold their `EPS` slack
/// in once (`x0 = min.x - EPS`, …), which reproduces `Rect::contains`
/// bit-for-bit.
///
/// # Example
///
/// ```
/// use freezetag_graph::kernel::rect_scan_scalar;
///
/// let xs = [0.5, 2.0, 1.0];
/// let ys = [0.5, 0.5, 3.0];
/// let mut hits = Vec::new();
/// rect_scan_scalar(&xs, &ys, 0.0, 0.0, 1.5, 1.5, |k| hits.push(k));
/// assert_eq!(hits, vec![0]);
/// ```
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn rect_scan_scalar(
    xs: &[f64],
    ys: &[f64],
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
    mut emit: impl FnMut(usize),
) {
    debug_assert_eq!(xs.len(), ys.len());
    let n = xs.len().min(ys.len());
    for k in 0..n {
        if xs[k] >= x0 && xs[k] <= x1 && ys[k] >= y0 && ys[k] <= y1 {
            emit(k);
        }
    }
}

/// Wide rectangle-membership scan: same emitted sequence as
/// [`rect_scan_scalar`], [`LANES`] candidates per block.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn rect_scan_wide(
    xs: &[f64],
    ys: &[f64],
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
    mut emit: impl FnMut(usize),
) {
    debug_assert_eq!(xs.len(), ys.len());
    let n = xs.len().min(ys.len());
    let mut base = 0;
    while base + LANES <= n {
        let mask = ((xs[base] >= x0 && xs[base] <= x1 && ys[base] >= y0 && ys[base] <= y1) as u32)
            | (((xs[base + 1] >= x0
                && xs[base + 1] <= x1
                && ys[base + 1] >= y0
                && ys[base + 1] <= y1) as u32)
                << 1)
            | (((xs[base + 2] >= x0
                && xs[base + 2] <= x1
                && ys[base + 2] >= y0
                && ys[base + 2] <= y1) as u32)
                << 2)
            | (((xs[base + 3] >= x0
                && xs[base + 3] <= x1
                && ys[base + 3] >= y0
                && ys[base + 3] <= y1) as u32)
                << 3);
        if mask != 0 {
            for k in 0..LANES {
                if mask & (1 << k) != 0 {
                    emit(base + k);
                }
            }
        }
        base += LANES;
    }
    for k in base..n {
        if xs[k] >= x0 && xs[k] <= x1 && ys[k] >= y0 && ys[k] <= y1 {
            emit(k);
        }
    }
}

/// Rectangle-membership scan with build-time kernel dispatch (`simd`
/// feature → wide, default → scalar; identical emissions either way).
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn rect_scan(
    xs: &[f64],
    ys: &[f64],
    x0: f64,
    y0: f64,
    x1: f64,
    y1: f64,
    emit: impl FnMut(usize),
) {
    if cfg!(feature = "simd") {
        rect_scan_wide(xs, ys, x0, y0, x1, y1, emit);
    } else {
        rect_scan_scalar(xs, ys, x0, y0, x1, y1, emit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_disk(
        wide: bool,
        xs: &[f64],
        ys: &[f64],
        q: (f64, f64),
        accept_sq: f64,
    ) -> Vec<usize> {
        let mut out = Vec::new();
        if wide {
            disk_scan_wide(xs, ys, q.0, q.1, accept_sq, |k| out.push(k));
        } else {
            disk_scan_scalar(xs, ys, q.0, q.1, accept_sq, |k| out.push(k));
        }
        out
    }

    fn collect_rect(wide: bool, xs: &[f64], ys: &[f64], b: [f64; 4]) -> Vec<usize> {
        let mut out = Vec::new();
        if wide {
            rect_scan_wide(xs, ys, b[0], b[1], b[2], b[3], |k| out.push(k));
        } else {
            rect_scan_scalar(xs, ys, b[0], b[1], b[2], b[3], |k| out.push(k));
        }
        out
    }

    #[test]
    fn empty_slices_emit_nothing() {
        assert!(collect_disk(false, &[], &[], (0.0, 0.0), 1.0).is_empty());
        assert!(collect_disk(true, &[], &[], (0.0, 0.0), 1.0).is_empty());
        assert!(collect_rect(false, &[], &[], [0.0, 0.0, 1.0, 1.0]).is_empty());
        assert!(collect_rect(true, &[], &[], [0.0, 0.0, 1.0, 1.0]).is_empty());
        assert!(!disk_any(&[], &[], 0.0, 0.0, 1.0));
    }

    #[test]
    fn tail_lengths_one_through_seven_match() {
        // 1..=7 covers "no full block", "one block + every tail length".
        for n in 1..=7usize {
            let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
            let ys: Vec<f64> = (0..n).map(|i| (i % 3) as f64 * 0.5).collect();
            let s = collect_disk(false, &xs, &ys, (1.0, 0.5), 1.0);
            let w = collect_disk(true, &xs, &ys, (1.0, 0.5), 1.0);
            assert_eq!(s, w, "disk n={n}");
            let sr = collect_rect(false, &xs, &ys, [0.25, 0.0, 2.0, 0.75]);
            let wr = collect_rect(true, &xs, &ys, [0.25, 0.0, 2.0, 0.75]);
            assert_eq!(sr, wr, "rect n={n}");
        }
    }

    #[test]
    fn boundary_points_accepted_identically() {
        // Candidates exactly on the disk boundary and rect borders: both
        // kernels run the identical closed compare, so exact-boundary
        // acceptance must agree (and be `true` — closed regions).
        let xs = [1.0, -1.0, 0.0, 0.0, 1.0 + f64::EPSILON];
        let ys = [0.0, 0.0, 1.0, -1.0, 0.0];
        let s = collect_disk(false, &xs, &ys, (0.0, 0.0), 1.0);
        let w = collect_disk(true, &xs, &ys, (0.0, 0.0), 1.0);
        assert_eq!(s, vec![0, 1, 2, 3]);
        assert_eq!(s, w);
        let b = [0.0, 0.0, 1.0, 1.0];
        let xs = [0.0, 1.0, 1.0 + f64::EPSILON, 0.5];
        let ys = [0.0, 1.0, 0.5, -f64::EPSILON];
        let s = collect_rect(false, &xs, &ys, b);
        let w = collect_rect(true, &xs, &ys, b);
        assert_eq!(s, vec![0, 1]);
        assert_eq!(s, w);
    }

    #[test]
    fn disk_any_agrees_with_scan() {
        let xs: Vec<f64> = (0..13).map(|i| i as f64).collect();
        let ys = vec![0.0; 13];
        for q in [-2.0, 0.0, 6.5, 12.0, 40.0] {
            let want = !collect_disk(false, &xs, &ys, (q, 0.0), 0.25).is_empty();
            assert_eq!(disk_any(&xs, &ys, q, 0.0, 0.25), want, "q={q}");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Random SoA cell windows: coordinates, including values snapped
        /// onto exact half-integer lattices so boundary hits are common.
        fn arb_coords() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
            prop::collection::vec(((-8.0f64..8.0), (-8.0f64..8.0), 0u32..4), 0..40).prop_map(
                |raw| {
                    raw.into_iter()
                        .map(|(x, y, snap)| match snap {
                            0 => ((x * 2.0).round() / 2.0, (y * 2.0).round() / 2.0),
                            1 => (x, (y * 2.0).round() / 2.0),
                            _ => (x, y),
                        })
                        .unzip()
                },
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Scalar and wide disk kernels emit byte-identical sequences
            /// on arbitrary windows, centres and radii (including r = 0
            /// and radii snapping candidates onto the exact boundary).
            #[test]
            fn disk_kernels_identical(
                (xs, ys) in arb_coords(),
                qx in -9.0f64..9.0,
                qy in -9.0f64..9.0,
                r in 0.0f64..12.0,
                snap_q in 0u32..2,
            ) {
                let (qx, qy) = if snap_q == 1 {
                    ((qx * 2.0).round() / 2.0, (qy * 2.0).round() / 2.0)
                } else {
                    (qx, qy)
                };
                let accept_sq = r * r;
                let s = collect_disk(false, &xs, &ys, (qx, qy), accept_sq);
                let w = collect_disk(true, &xs, &ys, (qx, qy), accept_sq);
                prop_assert_eq!(&s, &w);
                prop_assert_eq!(disk_any(&xs, &ys, qx, qy, accept_sq), !s.is_empty());
            }

            /// Scalar and wide rect kernels emit byte-identical sequences
            /// on arbitrary windows and rectangles (degenerate zero-area
            /// rectangles included).
            #[test]
            fn rect_kernels_identical(
                (xs, ys) in arb_coords(),
                ax in -9.0f64..9.0,
                ay in -9.0f64..9.0,
                w in 0.0f64..10.0,
                h in 0.0f64..10.0,
            ) {
                let b = [ax, ay, ax + w, ay + h];
                let s = collect_rect(false, &xs, &ys, b);
                let wv = collect_rect(true, &xs, &ys, b);
                prop_assert_eq!(s, wv);
            }
        }
    }
}
