use crate::{GridIndex, UnionFind};
use freezetag_geometry::Point;

/// The δ-disk graph of a point set: vertices are the points, and two points
/// are adjacent iff their Euclidean distance is at most `δ`; edge weights
/// are the distances (Section 1.2 of the paper).
///
/// Adjacency is answered through a [`GridIndex`] with cell width `δ`, so
/// building the graph is `O(n)` and neighbourhood queries touch only the
/// nine surrounding cells.
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_graph::DiskGraph;
///
/// let g = DiskGraph::new(
///     vec![Point::ORIGIN, Point::new(1.0, 0.0), Point::new(3.0, 0.0)],
///     1.5,
/// );
/// assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![(1, 1.0)]);
/// assert!(!g.is_connected());
/// ```
#[derive(Debug, Clone)]
pub struct DiskGraph {
    index: GridIndex,
    delta: f64,
}

impl DiskGraph {
    /// Builds the δ-disk graph of `points`.
    ///
    /// # Panics
    ///
    /// Panics if `delta <= 0` or not finite.
    pub fn new(points: Vec<Point>, delta: f64) -> Self {
        assert!(delta > 0.0 && delta.is_finite(), "invalid disk-graph delta");
        DiskGraph {
            index: GridIndex::build(&points, delta),
            delta,
        }
    }

    /// Position of vertex `v`.
    pub fn point(&self, v: usize) -> Point {
        self.index.point(v)
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The connectivity parameter δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Neighbours of vertex `v` with their edge weights, ascending by
    /// vertex index. `v` itself is excluded. The iterator borrows the
    /// underlying [`GridIndex`] — no per-query adjacency `Vec` is built,
    /// which keeps Dijkstra/BFS passes over 10⁶-vertex graphs allocation-
    /// light.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let p = self.point(v);
        self.index
            .within(p, self.delta)
            .filter(move |&u| u != v)
            .map(move |u| (u, self.point(u).dist(p)))
    }

    /// Neighbour indices of `v` written into a reusable buffer (cleared
    /// first), ascending; `v` itself excluded. The allocation-free variant
    /// of [`DiskGraph::neighbors`] for hot loops that scan many vertices.
    pub fn neighbors_into(&self, v: usize, out: &mut Vec<usize>) {
        self.index.within_into(self.point(v), self.delta, out);
        out.retain(|&u| u != v);
    }

    /// Whether the whole graph is connected (vacuously true when empty or a
    /// single vertex).
    pub fn is_connected(&self) -> bool {
        self.component_count() <= 1
    }

    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        let n = self.len();
        let mut uf = UnionFind::new(n);
        let mut adj: Vec<usize> = Vec::new();
        for v in 0..n {
            self.neighbors_into(v, &mut adj);
            for &u in &adj {
                uf.union(u, v);
            }
        }
        uf.components()
    }

    /// Underlying spatial index (for callers that need raw range queries).
    pub fn index(&self) -> &GridIndex {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nbrs(g: &DiskGraph, v: usize) -> Vec<(usize, f64)> {
        g.neighbors(v).collect()
    }

    #[test]
    fn neighbors_respect_delta() {
        let g = DiskGraph::new(
            vec![
                Point::ORIGIN,
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(0.0, 3.0),
            ],
            1.0,
        );
        assert_eq!(nbrs(&g, 0), vec![(1, 1.0)]);
        assert_eq!(nbrs(&g, 1).len(), 2);
        assert!(nbrs(&g, 3).is_empty());
    }

    #[test]
    fn neighbors_into_matches_iterator() {
        let g = DiskGraph::new(
            vec![
                Point::ORIGIN,
                Point::new(0.5, 0.0),
                Point::new(1.0, 0.0),
                Point::new(5.0, 5.0),
            ],
            1.0,
        );
        let mut buf = vec![7usize; 3];
        for v in 0..g.len() {
            g.neighbors_into(v, &mut buf);
            let via_iter: Vec<usize> = g.neighbors(v).map(|(u, _)| u).collect();
            assert_eq!(buf, via_iter, "vertex {v}");
        }
    }

    #[test]
    fn connectivity_and_components() {
        let mut pts = vec![Point::ORIGIN];
        for i in 1..10 {
            pts.push(Point::new(i as f64, 0.0));
        }
        let g = DiskGraph::new(pts.clone(), 1.0);
        assert!(g.is_connected());
        let g2 = DiskGraph::new(pts, 0.9);
        assert_eq!(g2.component_count(), 10);
        assert!(!g2.is_connected());
    }

    #[test]
    fn empty_and_singleton_are_connected() {
        assert!(DiskGraph::new(vec![], 1.0).is_connected());
        assert!(DiskGraph::new(vec![Point::ORIGIN], 1.0).is_connected());
        assert!(DiskGraph::new(vec![], 1.0).is_empty());
        assert_eq!(DiskGraph::new(vec![Point::ORIGIN], 2.0).len(), 1);
    }

    #[test]
    fn delta_is_inclusive() {
        let g = DiskGraph::new(vec![Point::ORIGIN, Point::new(2.0, 0.0)], 2.0);
        assert_eq!(nbrs(&g, 0).len(), 1);
    }
}
