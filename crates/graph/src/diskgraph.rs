use crate::{GridIndex, UnionFind};
use freezetag_geometry::Point;

/// The δ-disk graph of a point set: vertices are the points, and two points
/// are adjacent iff their Euclidean distance is at most `δ`; edge weights
/// are the distances (Section 1.2 of the paper).
///
/// Adjacency is answered through a [`GridIndex`] with cell width `δ`, so
/// building the graph is `O(n)` and neighbourhood queries touch only the
/// nine surrounding cells.
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_graph::DiskGraph;
///
/// let g = DiskGraph::new(
///     vec![Point::ORIGIN, Point::new(1.0, 0.0), Point::new(3.0, 0.0)],
///     1.5,
/// );
/// assert_eq!(g.neighbors(0), vec![(1, 1.0)]);
/// assert!(!g.is_connected());
/// ```
#[derive(Debug, Clone)]
pub struct DiskGraph {
    index: GridIndex,
    delta: f64,
}

impl DiskGraph {
    /// Builds the δ-disk graph of `points`.
    ///
    /// # Panics
    ///
    /// Panics if `delta <= 0` or not finite.
    pub fn new(points: Vec<Point>, delta: f64) -> Self {
        assert!(delta > 0.0 && delta.is_finite(), "invalid disk-graph delta");
        DiskGraph {
            index: GridIndex::build(&points, delta),
            delta,
        }
    }

    /// The vertex positions.
    pub fn points(&self) -> &[Point] {
        self.index.points()
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The connectivity parameter δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Neighbours of vertex `v` with their edge weights, ascending by
    /// vertex index. `v` itself is excluded.
    pub fn neighbors(&self, v: usize) -> Vec<(usize, f64)> {
        let p = self.points()[v];
        self.index
            .within(p, self.delta)
            .filter(|&u| u != v)
            .map(|u| (u, self.points()[u].dist(p)))
            .collect()
    }

    /// Whether the whole graph is connected (vacuously true when empty or a
    /// single vertex).
    pub fn is_connected(&self) -> bool {
        self.component_count() <= 1
    }

    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        let n = self.len();
        let mut uf = UnionFind::new(n);
        for v in 0..n {
            for (u, _) in self.neighbors(v) {
                uf.union(u, v);
            }
        }
        uf.components()
    }

    /// Underlying spatial index (for callers that need raw range queries).
    pub fn index(&self) -> &GridIndex {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbors_respect_delta() {
        let g = DiskGraph::new(
            vec![
                Point::ORIGIN,
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(0.0, 3.0),
            ],
            1.0,
        );
        assert_eq!(g.neighbors(0), vec![(1, 1.0)]);
        assert_eq!(g.neighbors(1).len(), 2);
        assert!(g.neighbors(3).is_empty());
    }

    #[test]
    fn connectivity_and_components() {
        let mut pts = vec![Point::ORIGIN];
        for i in 1..10 {
            pts.push(Point::new(i as f64, 0.0));
        }
        let g = DiskGraph::new(pts.clone(), 1.0);
        assert!(g.is_connected());
        let g2 = DiskGraph::new(pts, 0.9);
        assert_eq!(g2.component_count(), 10);
        assert!(!g2.is_connected());
    }

    #[test]
    fn empty_and_singleton_are_connected() {
        assert!(DiskGraph::new(vec![], 1.0).is_connected());
        assert!(DiskGraph::new(vec![Point::ORIGIN], 1.0).is_connected());
        assert!(DiskGraph::new(vec![], 1.0).is_empty());
        assert_eq!(DiskGraph::new(vec![Point::ORIGIN], 2.0).len(), 1);
    }

    #[test]
    fn delta_is_inclusive() {
        let g = DiskGraph::new(vec![Point::ORIGIN, Point::new(2.0, 0.0)], 2.0);
        assert_eq!(g.neighbors(0).len(), 1);
    }
}
