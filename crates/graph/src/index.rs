use freezetag_geometry::Point;

/// Sentinel for an unoccupied [`CellMap`] slot.
const EMPTY: u32 = u32::MAX;

/// Open-addressing directory from cell key to dense cell id.
///
/// This sits in the innermost loop of every range query (one probe per
/// scanned cell, ~9 per unit-vision `look`), where `std`'s SipHash-backed
/// `HashMap` was measured at ~20 % of a 10⁶-robot sweep. The probe here is
/// a splitmix64-style mix (a handful of multiplies) plus a masked linear
/// scan — deterministic, with no per-process hasher state.
#[derive(Debug, Clone, PartialEq)]
struct CellMap {
    /// Power-of-two table; parallel key/value slots, `EMPTY` value = free.
    keys: Vec<(i64, i64)>,
    vals: Vec<u32>,
    len: usize,
}

impl CellMap {
    fn new() -> Self {
        CellMap {
            keys: vec![(0, 0); 16],
            vals: vec![EMPTY; 16],
            len: 0,
        }
    }

    #[inline]
    fn hash(key: (i64, i64)) -> u64 {
        let mut z = (key.0 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((key.1 as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    }

    /// Number of occupied entries.
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn get(&self, key: (i64, i64)) -> Option<u32> {
        let mask = self.keys.len() - 1;
        let mut slot = (Self::hash(key) as usize) & mask;
        loop {
            let v = self.vals[slot];
            if v == EMPTY {
                return None;
            }
            if self.keys[slot] == key {
                return Some(v);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Returns the id stored for `key`, inserting `val` first if absent
    /// (`HashMap::entry(key).or_insert(val)` semantics). Grows at 1/2 load
    /// so probe chains stay short.
    fn get_or_insert(&mut self, key: (i64, i64), val: u32) -> u32 {
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut slot = (Self::hash(key) as usize) & mask;
        loop {
            let v = self.vals[slot];
            if v == EMPTY {
                self.keys[slot] = key;
                self.vals[slot] = val;
                self.len += 1;
                return val;
            }
            if self.keys[slot] == key {
                return v;
            }
            slot = (slot + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let cap = self.keys.len() * 2;
        let (old_keys, old_vals) = (
            std::mem::replace(&mut self.keys, vec![(0, 0); cap]),
            std::mem::replace(&mut self.vals, vec![EMPTY; cap]),
        );
        let mask = cap - 1;
        for (key, v) in old_keys.into_iter().zip(old_vals) {
            if v == EMPTY {
                continue;
            }
            let mut slot = (Self::hash(key) as usize) & mask;
            while self.vals[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            self.keys[slot] = key;
            self.vals[slot] = v;
        }
    }
}

/// Uniform-grid spatial index over a fixed point set.
///
/// Buckets points into square cells of a chosen width; range queries then
/// touch only the `O(1)` cells overlapping the query disk (for query radii
/// on the order of the cell width). This keeps δ-disk-graph adjacency
/// queries near-linear instead of quadratic, which matters for the
/// instance-parameter computations on large swarms.
///
/// Storage is flat (struct-of-arrays): coordinates live in two `Vec<f64>`
/// and the buckets are a CSR layout (`starts` offsets into one `order`
/// array), so building the index for 10⁶ points performs a handful of
/// large allocations instead of one small `Vec` per occupied cell.
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_graph::GridIndex;
///
/// let pts = vec![Point::ORIGIN, Point::new(1.0, 0.0), Point::new(5.0, 5.0)];
/// let idx = GridIndex::build(&pts, 1.0);
/// let near: Vec<usize> = idx.within(Point::ORIGIN, 1.5).collect();
/// assert_eq!(near, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    xs: Vec<f64>,
    ys: Vec<f64>,
    cell: f64,
    /// Cell key → dense cell id (index into `starts`).
    cells: CellMap,
    /// CSR offsets: cell id `c` owns `order[starts[c]..starts[c + 1]]`.
    starts: Vec<u32>,
    /// Point indices grouped by cell, ascending within each cell.
    order: Vec<u32>,
}

impl GridIndex {
    /// Builds an index over `points` with the given cell width.
    ///
    /// # Panics
    ///
    /// Panics if `cell_width <= 0` or not finite.
    pub fn build(points: &[Point], cell_width: f64) -> Self {
        // Keys stream lazily out of the coordinate pass, so the sequential
        // build stays a fused single pass with no transient key buffer.
        Self::assemble(
            points,
            cell_width,
            points.iter().map(|&p| Self::key(p, cell_width)),
        )
    }

    /// Builds an index from precomputed cell keys — `keys[i]` must equal
    /// [`GridIndex::cell_key`]`(points[i], cell_width)`. This is the hook
    /// for parallel construction: the key pass is the only per-point float
    /// work of the build, so callers fan it out over batches (order
    /// preserved) and hand the flat key array to this single-threaded CSR
    /// assembly, yielding an index bit-identical to [`GridIndex::build`].
    ///
    /// # Panics
    ///
    /// Panics if `cell_width` is invalid or the lengths disagree.
    pub fn build_from_keys(points: &[Point], cell_width: f64, keys: &[(i64, i64)]) -> Self {
        assert_eq!(points.len(), keys.len(), "one key per point");
        Self::assemble(points, cell_width, keys.iter().copied())
    }

    /// Shared CSR assembly over a key stream (lazy for [`GridIndex::build`],
    /// a precomputed slice for [`GridIndex::build_from_keys`]).
    fn assemble(points: &[Point], cell_width: f64, keys: impl Iterator<Item = (i64, i64)>) -> Self {
        assert!(
            cell_width > 0.0 && cell_width.is_finite(),
            "invalid cell width"
        );
        let n = points.len();
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for p in points {
            xs.push(p.x);
            ys.push(p.y);
        }
        // Pass 1: count points per distinct cell. Cell ids are assigned in
        // first-occurrence order, so they are a function of the key array
        // alone — independent of how the keys were computed.
        let mut cells = CellMap::new();
        let mut counts: Vec<u32> = Vec::new();
        let mut ids: Vec<u32> = Vec::with_capacity(n);
        for key in keys {
            let next = counts.len() as u32;
            let id = cells.get_or_insert(key, next);
            if id == next {
                counts.push(0);
            }
            counts[id as usize] += 1;
            ids.push(id);
        }
        // Pass 2: prefix sums, then scatter point indices. Scattering in
        // input order keeps each cell's slice ascending by point index.
        let mut starts = Vec::with_capacity(counts.len() + 1);
        let mut acc = 0u32;
        starts.push(0);
        for &c in &counts {
            acc += c;
            starts.push(acc);
        }
        let mut cursor: Vec<u32> = starts[..counts.len()].to_vec();
        let mut order = vec![0u32; n];
        for (i, &cid) in ids.iter().enumerate() {
            order[cursor[cid as usize] as usize] = i as u32;
            cursor[cid as usize] += 1;
        }
        GridIndex {
            xs,
            ys,
            cell: cell_width,
            cells,
            starts,
            order,
        }
    }

    fn key(p: Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// The bucket key of point `p` for the given cell width — the exact
    /// function [`GridIndex::build`] applies per point, exposed so callers
    /// of [`GridIndex::build_from_keys`] can precompute keys (possibly in
    /// parallel batches) without drifting from the built-in bucketing.
    pub fn cell_key(p: Point, cell_width: f64) -> (i64, i64) {
        Self::key(p, cell_width)
    }

    /// Coordinates of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn point(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i])
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Approximate heap footprint of the index in bytes (flat arrays plus
    /// the cell directory), for the experiment engine's memory accounting.
    pub fn memory_bytes(&self) -> usize {
        self.xs.len() * 16
            + self.order.len() * 4
            + self.starts.len() * 4
            + self.cells.len() * (16 + 4)
    }

    /// Indices of all points within Euclidean distance `r` of `q`
    /// (inclusive, with `EPS` slack), appended to `out` in ascending index
    /// order. `out` is cleared first; reusing one buffer across queries
    /// makes the hot `look` path allocation-free after warm-up.
    pub fn within_into(&self, q: Point, r: f64, out: &mut Vec<usize>) {
        out.clear();
        let r = r.max(0.0);
        // Inflate the scanned cell range by the acceptance slack: a point
        // at distance r + 1e-15 must still be found (the distance test
        // below accepts it), even when it falls a hair across a cell
        // boundary.
        let rr = r + 2.0 * freezetag_geometry::EPS;
        let lo = Self::key(q - Point::new(rr, rr), self.cell);
        let hi = Self::key(q + Point::new(rr, rr), self.cell);
        let accept = r + freezetag_geometry::EPS;
        for i in lo.0..=hi.0 {
            for j in lo.1..=hi.1 {
                let Some(cid) = self.cells.get((i, j)) else {
                    continue;
                };
                let (a, b) = (
                    self.starts[cid as usize] as usize,
                    self.starts[cid as usize + 1] as usize,
                );
                for &idx in &self.order[a..b] {
                    let idx = idx as usize;
                    if self.point(idx).dist(q) <= accept {
                        out.push(idx);
                    }
                }
            }
        }
        out.sort_unstable();
    }

    /// Indices of all points within Euclidean distance `r` of `q`, in
    /// ascending index order. Allocates a fresh buffer per call; hot loops
    /// should prefer [`GridIndex::within_into`].
    pub fn within(&self, q: Point, r: f64) -> impl Iterator<Item = usize> + '_ {
        let mut out = Vec::new();
        self.within_into(q, r, &mut out);
        out.into_iter()
    }

    /// Index of the closest point to `q`, or `None` when the index is
    /// empty. Falls back to a full scan; the index accelerates only
    /// bounded-radius queries.
    pub fn nearest(&self, q: Point) -> Option<usize> {
        (0..self.len()).min_by(|&a, &b| {
            self.point(a)
                .dist_sq(q)
                .partial_cmp(&self.point(b).dist_sq(q))
                .expect("finite coordinates")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<Point> {
        vec![
            Point::ORIGIN,
            Point::new(0.9, 0.0),
            Point::new(2.0, 0.0),
            Point::new(-3.0, 4.0),
            Point::new(0.0, 0.95),
        ]
    }

    #[test]
    fn within_matches_brute_force() {
        let points = pts();
        let idx = GridIndex::build(&points, 1.0);
        for &(q, r) in &[
            (Point::ORIGIN, 1.0),
            (Point::new(1.0, 1.0), 2.0),
            (Point::new(-3.0, 4.0), 0.5),
            (Point::ORIGIN, 10.0),
            (Point::ORIGIN, 0.0),
        ] {
            let got: Vec<usize> = idx.within(q, r).collect();
            let want: Vec<usize> = (0..points.len())
                .filter(|&i| points[i].dist(q) <= r + freezetag_geometry::EPS)
                .collect();
            assert_eq!(got, want, "query {q} r={r}");
        }
    }

    #[test]
    fn within_into_reuses_the_buffer() {
        let idx = GridIndex::build(&pts(), 1.0);
        let mut buf = vec![99usize; 8];
        idx.within_into(Point::ORIGIN, 1.0, &mut buf);
        assert_eq!(buf, vec![0, 1, 4]);
        idx.within_into(Point::new(-3.0, 4.0), 0.5, &mut buf);
        assert_eq!(buf, vec![3], "buffer must be cleared between queries");
    }

    #[test]
    fn nearest_point() {
        let points = pts();
        let idx = GridIndex::build(&points, 1.0);
        assert_eq!(idx.nearest(Point::new(0.8, 0.1)), Some(1));
        assert_eq!(idx.nearest(Point::new(-2.0, 3.0)), Some(3));
        assert!(GridIndex::build(&[], 1.0).nearest(Point::ORIGIN).is_none());
    }

    #[test]
    fn len_empty_and_point_access() {
        assert!(GridIndex::build(&[], 2.0).is_empty());
        let idx = GridIndex::build(&pts(), 2.0);
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.point(3), Point::new(-3.0, 4.0));
        assert!(idx.memory_bytes() > 0);
    }

    #[test]
    fn build_from_keys_matches_build_exactly() {
        let points: Vec<Point> = (0..500)
            .map(|i| {
                let a = (i * 2654435761u64 as usize % 1000) as f64 / 37.0 - 13.0;
                let b = (i * 40503 % 997) as f64 / 29.0 - 17.0;
                Point::new(a, b)
            })
            .collect();
        for cell in [0.7, 1.0, 3.5] {
            let keys: Vec<(i64, i64)> = points
                .iter()
                .map(|&p| GridIndex::cell_key(p, cell))
                .collect();
            let a = GridIndex::build(&points, cell);
            let b = GridIndex::build_from_keys(&points, cell, &keys);
            assert_eq!(a.xs, b.xs);
            assert_eq!(a.ys, b.ys);
            assert_eq!(a.starts, b.starts);
            assert_eq!(a.order, b.order);
            assert_eq!(a.cells, b.cells);
        }
    }

    #[test]
    #[should_panic(expected = "one key per point")]
    fn build_from_keys_rejects_length_mismatch() {
        GridIndex::build_from_keys(&pts(), 1.0, &[(0, 0)]);
    }

    #[test]
    fn negative_coordinates_bucket_correctly() {
        let points = vec![Point::new(-0.5, -0.5), Point::new(-1.5, -1.5)];
        let idx = GridIndex::build(&points, 1.0);
        let got: Vec<usize> = idx.within(Point::new(-1.0, -1.0), 0.8).collect();
        assert_eq!(got, vec![0, 1]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// The grid index agrees with brute force for arbitrary points,
            /// cell widths, query centres and radii — including radii much
            /// larger and much smaller than the cell width, and points
            /// sitting exactly on cell boundaries.
            #[test]
            fn within_matches_brute_force_always(
                raw in prop::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 0..40),
                cell in 0.1f64..5.0,
                qx in -25.0f64..25.0,
                qy in -25.0f64..25.0,
                r in 0.0f64..30.0,
            ) {
                let pts: Vec<Point> = raw.into_iter().map(|(x, y)| Point::new(x, y)).collect();
                let idx = GridIndex::build(&pts, cell);
                let q = Point::new(qx, qy);
                let got: Vec<usize> = idx.within(q, r).collect();
                let want: Vec<usize> = (0..pts.len())
                    .filter(|&i| pts[i].dist(q) <= r + freezetag_geometry::EPS)
                    .collect();
                prop_assert_eq!(got, want);
            }

            /// Points landing exactly on integer cell boundaries are found
            /// at exactly boundary-touching radii.
            #[test]
            fn boundary_exactness(k in -10i32..10, cell in 0.5f64..3.0) {
                let p = Point::new(k as f64 * cell, 0.0);
                let idx = GridIndex::build(&[p], cell);
                let q = Point::new(p.x + cell, 0.0);
                let got: Vec<usize> = idx.within(q, cell).collect();
                prop_assert_eq!(got, vec![0usize]);
            }
        }
    }
}
