use crate::cellmap::{CellMap, EMPTY};
use freezetag_geometry::Point;

/// Dense row-major directory over the occupied cell bounding box: cell
/// `(i, j)` maps to `ids[(j - min.1) * w + (i - min.0)]` (the dense cell
/// id, or [`EMPTY`]).
///
/// Range queries hit the directory instead of probing the open-addressing
/// [`CellMap`] once per scanned cell — a plain array load, and queries
/// outside the bounding box reject after the clamp without touching memory
/// at all. The sparse map is kept as the fallback for point sets whose
/// bounding box is too large to enumerate densely (long adversarial paths,
/// far-flung stragglers).
#[derive(Debug, Clone, PartialEq)]
struct CellWindow {
    min: (i64, i64),
    /// Extent in cells; `ids.len() == w * h`.
    w: i64,
    h: i64,
    ids: Vec<u32>,
    /// Coordinate-space bounds of the window inflated by one full cell on
    /// every side: any query whose inflated box lies outside cannot touch
    /// an occupied cell (the one-cell margin swallows every bucketing
    /// rounding concern), so the empty-space fast path is four compares.
    reject: [f64; 4],
}

impl CellWindow {
    /// Builds the window when the occupied bounding box stays within
    /// `budget` cells; returns `None` otherwise (fallback to the sparse
    /// directory).
    fn build(cells: &CellMap, cell: f64, budget: usize) -> Option<CellWindow> {
        if cells.len() == 0 {
            return None;
        }
        let (mut min, mut max) = ((i64::MAX, i64::MAX), (i64::MIN, i64::MIN));
        cells.for_each(|k, _| {
            min.0 = min.0.min(k.0);
            min.1 = min.1.min(k.1);
            max.0 = max.0.max(k.0);
            max.1 = max.1.max(k.1);
        });
        let w = max.0.checked_sub(min.0)?.checked_add(1)?;
        let h = max.1.checked_sub(min.1)?.checked_add(1)?;
        let area = (w as i128) * (h as i128);
        if area > budget as i128 {
            return None;
        }
        let mut ids = vec![EMPTY; area as usize];
        cells.for_each(|k, id| {
            ids[((k.1 - min.1) * w + (k.0 - min.0)) as usize] = id;
        });
        let reject = [
            (min.0 - 1) as f64 * cell,
            (min.1 - 1) as f64 * cell,
            (max.0 + 2) as f64 * cell,
            (max.1 + 2) as f64 * cell,
        ];
        Some(CellWindow {
            min,
            w,
            h,
            ids,
            reject,
        })
    }
}

/// Uniform-grid spatial index over a fixed point set.
///
/// Buckets points into square cells of a chosen width; range queries then
/// touch only the `O(1)` cells overlapping the query disk (for query radii
/// on the order of the cell width). This keeps δ-disk-graph adjacency
/// queries near-linear instead of quadratic, which matters for the
/// instance-parameter computations on large swarms.
///
/// Storage is flat (struct-of-arrays): coordinates live in two `Vec<f64>`
/// and the buckets are a CSR layout (`starts` offsets into one `order`
/// array). The cell directory is two-tiered: a dense row-major window over
/// the occupied bounding box (one array load per scanned cell, instant
/// rejection outside the box) backed by the open-addressing `CellMap`
/// for point sets too spread out to enumerate densely.
///
/// The build additionally stores a cell-ordered copy of the coordinates
/// (the `xs`/`ys` permuted into CSR order), so a cell scan is a pair of
/// contiguous slice loads feeding the [`crate::kernel`] membership
/// kernels — scalar by default, the wide lane kernel under the `simd`
/// cargo feature, with identical results either way.
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_graph::GridIndex;
///
/// let pts = vec![Point::ORIGIN, Point::new(1.0, 0.0), Point::new(5.0, 5.0)];
/// let idx = GridIndex::build(&pts, 1.0);
/// let near: Vec<usize> = idx.within(Point::ORIGIN, 1.5).collect();
/// assert_eq!(near, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    xs: Vec<f64>,
    ys: Vec<f64>,
    cell: f64,
    /// Cell key → dense cell id (index into `starts`).
    cells: CellMap,
    /// Dense fast path over the occupied cell bounding box, when small
    /// enough (see [`GridIndex::WINDOW_BUDGET_PER_POINT`]).
    window: Option<CellWindow>,
    /// CSR offsets: cell id `c` owns `order[starts[c]..starts[c + 1]]`.
    starts: Vec<u32>,
    /// Point indices grouped by cell, ascending within each cell.
    order: Vec<u32>,
    /// Coordinates permuted into `order`'s layout (`cxs[k] ==
    /// xs[order[k]]`): cell scans read these contiguously instead of
    /// gathering through `order`, which is what lets the membership
    /// kernel vectorize.
    cxs: Vec<f64>,
    cys: Vec<f64>,
}

impl GridIndex {
    /// Dense-window budget: the occupied cell bounding box may cover at
    /// most `max(65536, 8 n)` cells (4 bytes each) before the index falls
    /// back to the sparse directory. The floor covers every small-n
    /// instance (a 256 KiB directory at worst); the per-point term keeps
    /// the window within a constant factor of the point storage at 10⁶
    /// scale, and degenerate spreads (clusters megacells apart) fall back.
    pub const WINDOW_BUDGET_PER_POINT: usize = 8;

    /// Builds an index over `points` with the given cell width.
    ///
    /// # Panics
    ///
    /// Panics if `cell_width <= 0` or not finite.
    pub fn build(points: &[Point], cell_width: f64) -> Self {
        // Keys stream lazily out of the coordinate pass, so the sequential
        // build stays a fused single pass with no transient key buffer.
        Self::assemble(
            points,
            cell_width,
            points.iter().map(|&p| Self::key(p, cell_width)),
        )
    }

    /// Builds an index from precomputed cell keys — `keys[i]` must equal
    /// [`GridIndex::cell_key`]`(points[i], cell_width)`. This is the hook
    /// for parallel construction: the key pass is the only per-point float
    /// work of the build, so callers fan it out over batches (order
    /// preserved) and hand the flat key array to this single-threaded CSR
    /// assembly, yielding an index bit-identical to [`GridIndex::build`].
    ///
    /// # Panics
    ///
    /// Panics if `cell_width` is invalid or the lengths disagree.
    pub fn build_from_keys(points: &[Point], cell_width: f64, keys: &[(i64, i64)]) -> Self {
        assert_eq!(points.len(), keys.len(), "one key per point");
        Self::assemble(points, cell_width, keys.iter().copied())
    }

    /// Shared CSR assembly over a key stream (lazy for [`GridIndex::build`],
    /// a precomputed slice for [`GridIndex::build_from_keys`]).
    fn assemble(points: &[Point], cell_width: f64, keys: impl Iterator<Item = (i64, i64)>) -> Self {
        assert!(
            cell_width > 0.0 && cell_width.is_finite(),
            "invalid cell width"
        );
        let n = points.len();
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for p in points {
            xs.push(p.x);
            ys.push(p.y);
        }
        // Pass 1: count points per distinct cell. Cell ids are assigned in
        // first-occurrence order, so they are a function of the key array
        // alone — independent of how the keys were computed.
        let mut cells = CellMap::new();
        let mut counts: Vec<u32> = Vec::new();
        let mut ids: Vec<u32> = Vec::with_capacity(n);
        for key in keys {
            let next = counts.len() as u32;
            let id = cells.get_or_insert(key, next);
            if id == next {
                counts.push(0);
            }
            counts[id as usize] += 1;
            ids.push(id);
        }
        // Pass 2: prefix sums, then scatter point indices. Scattering in
        // input order keeps each cell's slice ascending by point index.
        let mut starts = Vec::with_capacity(counts.len() + 1);
        let mut acc = 0u32;
        starts.push(0);
        for &c in &counts {
            acc += c;
            starts.push(acc);
        }
        let mut cursor: Vec<u32> = starts[..counts.len()].to_vec();
        let mut order = vec![0u32; n];
        for (i, &cid) in ids.iter().enumerate() {
            order[cursor[cid as usize] as usize] = i as u32;
            cursor[cid as usize] += 1;
        }
        let window = CellWindow::build(
            &cells,
            cell_width,
            (1 << 16).max(Self::WINDOW_BUDGET_PER_POINT * n),
        );
        let mut cxs = Vec::with_capacity(n);
        let mut cys = Vec::with_capacity(n);
        for &i in &order {
            cxs.push(xs[i as usize]);
            cys.push(ys[i as usize]);
        }
        GridIndex {
            xs,
            ys,
            cell: cell_width,
            cells,
            window,
            starts,
            order,
            cxs,
            cys,
        }
    }

    /// Build- and query-side bucketing share this exact division so a
    /// point's cell and a range's cell bounds can never disagree, at any
    /// coordinate magnitude.
    fn key(p: Point, cell: f64) -> (i64, i64) {
        CellMap::key_of(p, cell)
    }

    /// The bucket key of point `p` for the given cell width — the exact
    /// function [`GridIndex::build`] applies per point, exposed so callers
    /// of [`GridIndex::build_from_keys`] can precompute keys (possibly in
    /// parallel batches) without drifting from the built-in bucketing.
    pub fn cell_key(p: Point, cell_width: f64) -> (i64, i64) {
        Self::key(p, cell_width)
    }

    /// Coordinates of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn point(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i])
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// The configured cell width.
    pub fn cell_width(&self) -> f64 {
        self.cell
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Approximate heap footprint of the index in bytes (flat arrays, the
    /// cell directory and the dense window), for the experiment engine's
    /// memory accounting.
    pub fn memory_bytes(&self) -> usize {
        // xs/ys plus the cell-ordered copies: 32 bytes of coordinates per
        // point.
        self.xs.len() * 32
            + self.order.len() * 4
            + self.starts.len() * 4
            + self.cells.len() * (16 + 4)
            + self.window.as_ref().map_or(0, |w| w.ids.len() * 4)
    }

    /// Appends the in-range points of cell `cid` to `out`: one contiguous
    /// membership-kernel scan over the cell's coordinate slice.
    #[inline]
    fn scan_cell(&self, cid: u32, q: Point, accept_sq: f64, out: &mut Vec<usize>) {
        let (a, b) = (
            self.starts[cid as usize] as usize,
            self.starts[cid as usize + 1] as usize,
        );
        let order = &self.order[a..b];
        crate::kernel::disk_scan(&self.cxs[a..b], &self.cys[a..b], q.x, q.y, accept_sq, |k| {
            out.push(order[k] as usize)
        });
    }

    /// Indices of all points within Euclidean distance `r` of `q`
    /// (inclusive, with `EPS` slack: a point `p` is accepted iff
    /// `|p - q|² <= (r + EPS)²`, evaluated in squared form so the kernel
    /// never takes a square root), appended to `out` in ascending index
    /// order. `out` is cleared first; reusing one buffer across queries
    /// makes the hot `look` path allocation-free after warm-up.
    pub fn within_into(&self, q: Point, r: f64, out: &mut Vec<usize>) {
        out.clear();
        let r = r.max(0.0);
        // Inflate the scanned cell range by the acceptance slack: a point
        // at distance r + 1e-15 must still be found (the distance test
        // below accepts it), even when it falls a hair across a cell
        // boundary.
        let rr = r + 2.0 * freezetag_geometry::EPS;
        match &self.window {
            Some(win) => {
                // Queries whose inflated box cannot touch the occupied
                // bounding box (most of a wave's empty-space sweeps)
                // reject on four compares, before any bucketing math.
                if q.x + rr < win.reject[0]
                    || q.y + rr < win.reject[1]
                    || q.x - rr > win.reject[2]
                    || q.y - rr > win.reject[3]
                {
                    return;
                }
                let lo = Self::key(q - Point::new(rr, rr), self.cell);
                let hi = Self::key(q + Point::new(rr, rr), self.cell);
                let accept = r + freezetag_geometry::EPS;
                let accept_sq = accept * accept;
                // Clamp the scan to the occupied bounding box; row slices
                // so the inner loop is a plain array walk.
                let (i0, i1) = (lo.0.max(win.min.0), hi.0.min(win.min.0 + win.w - 1));
                let (j0, j1) = (lo.1.max(win.min.1), hi.1.min(win.min.1 + win.h - 1));
                if i0 <= i1 {
                    for j in j0..=j1 {
                        let base = ((j - win.min.1) * win.w + (i0 - win.min.0)) as usize;
                        for &cid in &win.ids[base..=base + (i1 - i0) as usize] {
                            if cid != EMPTY {
                                self.scan_cell(cid, q, accept_sq, out);
                            }
                        }
                    }
                }
            }
            None => {
                // The sparse fallback exists for far-flung point sets —
                // exactly the regime where coordinates can exceed the
                // `EPS / ulp` bound the reciprocal bucketing relies on —
                // so it keeps the exact division keys of the build side.
                let lo = Self::key(q - Point::new(rr, rr), self.cell);
                let hi = Self::key(q + Point::new(rr, rr), self.cell);
                let accept = r + freezetag_geometry::EPS;
                let accept_sq = accept * accept;
                for i in lo.0..=hi.0 {
                    for j in lo.1..=hi.1 {
                        if let Some(cid) = self.cells.get((i, j)) {
                            self.scan_cell(cid, q, accept_sq, out);
                        }
                    }
                }
            }
        }
        if out.len() > 1 {
            out.sort_unstable();
        }
    }

    /// Indices of all points within Euclidean distance `r` of `q`, in
    /// ascending index order. Allocates a fresh buffer per call; hot loops
    /// should prefer [`GridIndex::within_into`].
    pub fn within(&self, q: Point, r: f64) -> impl Iterator<Item = usize> + '_ {
        let mut out = Vec::new();
        self.within_into(q, r, &mut out);
        out.into_iter()
    }

    /// Index of the closest point to `q`, or `None` when the index is
    /// empty. Falls back to a full scan; the index accelerates only
    /// bounded-radius queries.
    pub fn nearest(&self, q: Point) -> Option<usize> {
        (0..self.len()).min_by(|&a, &b| {
            self.point(a)
                .dist_sq(q)
                .partial_cmp(&self.point(b).dist_sq(q))
                .expect("finite coordinates")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<Point> {
        vec![
            Point::ORIGIN,
            Point::new(0.9, 0.0),
            Point::new(2.0, 0.0),
            Point::new(-3.0, 4.0),
            Point::new(0.0, 0.95),
        ]
    }

    #[test]
    fn within_matches_brute_force() {
        let points = pts();
        let idx = GridIndex::build(&points, 1.0);
        for &(q, r) in &[
            (Point::ORIGIN, 1.0),
            (Point::new(1.0, 1.0), 2.0),
            (Point::new(-3.0, 4.0), 0.5),
            (Point::ORIGIN, 10.0),
            (Point::ORIGIN, 0.0),
        ] {
            let got: Vec<usize> = idx.within(q, r).collect();
            let want: Vec<usize> = (0..points.len())
                .filter(|&i| points[i].dist(q) <= r + freezetag_geometry::EPS)
                .collect();
            assert_eq!(got, want, "query {q} r={r}");
        }
    }

    #[test]
    fn within_into_reuses_the_buffer() {
        let idx = GridIndex::build(&pts(), 1.0);
        let mut buf = vec![99usize; 8];
        idx.within_into(Point::ORIGIN, 1.0, &mut buf);
        assert_eq!(buf, vec![0, 1, 4]);
        idx.within_into(Point::new(-3.0, 4.0), 0.5, &mut buf);
        assert_eq!(buf, vec![3], "buffer must be cleared between queries");
    }

    #[test]
    fn nearest_point() {
        let points = pts();
        let idx = GridIndex::build(&points, 1.0);
        assert_eq!(idx.nearest(Point::new(0.8, 0.1)), Some(1));
        assert_eq!(idx.nearest(Point::new(-2.0, 3.0)), Some(3));
        assert!(GridIndex::build(&[], 1.0).nearest(Point::ORIGIN).is_none());
    }

    #[test]
    fn len_empty_and_point_access() {
        assert!(GridIndex::build(&[], 2.0).is_empty());
        let idx = GridIndex::build(&pts(), 2.0);
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.point(3), Point::new(-3.0, 4.0));
        assert!(idx.memory_bytes() > 0);
    }

    #[test]
    fn build_from_keys_matches_build_exactly() {
        let points: Vec<Point> = (0..500)
            .map(|i| {
                let a = (i * 2654435761u64 as usize % 1000) as f64 / 37.0 - 13.0;
                let b = (i * 40503 % 997) as f64 / 29.0 - 17.0;
                Point::new(a, b)
            })
            .collect();
        for cell in [0.7, 1.0, 3.5] {
            let keys: Vec<(i64, i64)> = points
                .iter()
                .map(|&p| GridIndex::cell_key(p, cell))
                .collect();
            let a = GridIndex::build(&points, cell);
            let b = GridIndex::build_from_keys(&points, cell, &keys);
            assert_eq!(a.xs, b.xs);
            assert_eq!(a.ys, b.ys);
            assert_eq!(a.starts, b.starts);
            assert_eq!(a.order, b.order);
            assert_eq!(a.cxs, b.cxs);
            assert_eq!(a.cys, b.cys);
            assert_eq!(a.cells, b.cells);
            assert_eq!(a.window, b.window);
        }
    }

    #[test]
    #[should_panic(expected = "one key per point")]
    fn build_from_keys_rejects_length_mismatch() {
        GridIndex::build_from_keys(&pts(), 1.0, &[(0, 0)]);
    }

    #[test]
    fn negative_coordinates_bucket_correctly() {
        let points = vec![Point::new(-0.5, -0.5), Point::new(-1.5, -1.5)];
        let idx = GridIndex::build(&points, 1.0);
        let got: Vec<usize> = idx.within(Point::new(-1.0, -1.0), 0.8).collect();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn sparse_fallback_answers_like_the_window() {
        // Two tight clusters a million cells apart: the bounding box blows
        // the dense budget, forcing the CellMap path — results must match
        // brute force exactly, same as the windowed path does.
        let mut points: Vec<Point> = (0..40)
            .map(|i| Point::new((i % 8) as f64 * 0.4, (i / 8) as f64 * 0.4))
            .collect();
        points.extend(
            (0..40).map(|i| Point::new(1.0e6 + (i % 8) as f64 * 0.4, 1.0e6 + (i / 8) as f64 * 0.4)),
        );
        let idx = GridIndex::build(&points, 1.0);
        assert!(idx.window.is_none(), "bounding box must exceed the budget");
        for &q in &[
            Point::ORIGIN,
            Point::new(1.0e6 + 1.0, 1.0e6 + 1.0),
            Point::new(500.0, 500.0),
        ] {
            let got: Vec<usize> = idx.within(q, 1.5).collect();
            let want: Vec<usize> = (0..points.len())
                .filter(|&i| points[i].dist(q) <= 1.5 + freezetag_geometry::EPS)
                .collect();
            assert_eq!(got, want, "query {q}");
        }
    }

    #[test]
    fn window_covers_compact_sets_and_rejects_outside_queries() {
        let points: Vec<Point> = (0..100)
            .map(|i| Point::new((i % 10) as f64, (i / 10) as f64))
            .collect();
        let idx = GridIndex::build(&points, 1.0);
        assert!(idx.window.is_some(), "compact set must get the window");
        // Far outside the box: clamp produces an empty scan.
        assert_eq!(idx.within(Point::new(500.0, -500.0), 2.0).count(), 0);
        // On the boundary, results still match brute force.
        let q = Point::new(9.5, 9.5);
        let got: Vec<usize> = idx.within(q, 1.0).collect();
        let want: Vec<usize> = (0..points.len())
            .filter(|&i| points[i].dist(q) <= 1.0 + freezetag_geometry::EPS)
            .collect();
        assert_eq!(got, want);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// The grid index agrees with brute force for arbitrary points,
            /// cell widths, query centres and radii — including radii much
            /// larger and much smaller than the cell width, and points
            /// sitting exactly on cell boundaries.
            #[test]
            fn within_matches_brute_force_always(
                raw in prop::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 0..40),
                cell in 0.1f64..5.0,
                qx in -25.0f64..25.0,
                qy in -25.0f64..25.0,
                r in 0.0f64..30.0,
            ) {
                let pts: Vec<Point> = raw.into_iter().map(|(x, y)| Point::new(x, y)).collect();
                let idx = GridIndex::build(&pts, cell);
                let q = Point::new(qx, qy);
                let got: Vec<usize> = idx.within(q, r).collect();
                let want: Vec<usize> = (0..pts.len())
                    .filter(|&i| pts[i].dist(q) <= r + freezetag_geometry::EPS)
                    .collect();
                prop_assert_eq!(got, want);
            }

            /// Points landing exactly on integer cell boundaries are found
            /// at exactly boundary-touching radii.
            #[test]
            fn boundary_exactness(k in -10i32..10, cell in 0.5f64..3.0) {
                let p = Point::new(k as f64 * cell, 0.0);
                let idx = GridIndex::build(&[p], cell);
                let q = Point::new(p.x + cell, 0.0);
                let got: Vec<usize> = idx.within(q, cell).collect();
                prop_assert_eq!(got, vec![0usize]);
            }
        }
    }
}
