use freezetag_geometry::Point;
use std::collections::HashMap;

/// Uniform-grid spatial index over a fixed point set.
///
/// Buckets points into square cells of a chosen width; range queries then
/// touch only the `O(1)` cells overlapping the query disk (for query radii
/// on the order of the cell width). This keeps δ-disk-graph adjacency
/// queries near-linear instead of quadratic, which matters for the
/// instance-parameter computations on large swarms.
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_graph::GridIndex;
///
/// let pts = vec![Point::ORIGIN, Point::new(1.0, 0.0), Point::new(5.0, 5.0)];
/// let idx = GridIndex::build(&pts, 1.0);
/// let near: Vec<usize> = idx.within(Point::ORIGIN, 1.5).collect();
/// assert_eq!(near, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    points: Vec<Point>,
    cell: f64,
    buckets: HashMap<(i64, i64), Vec<usize>>,
}

impl GridIndex {
    /// Builds an index over `points` with the given cell width.
    ///
    /// # Panics
    ///
    /// Panics if `cell_width <= 0` or not finite.
    pub fn build(points: &[Point], cell_width: f64) -> Self {
        assert!(
            cell_width > 0.0 && cell_width.is_finite(),
            "invalid cell width"
        );
        let mut buckets: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (i, p) in points.iter().enumerate() {
            buckets
                .entry(Self::key(*p, cell_width))
                .or_default()
                .push(i);
        }
        GridIndex {
            points: points.to_vec(),
            cell: cell_width,
            buckets,
        }
    }

    fn key(p: Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// The indexed points, in input order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Indices of all points within Euclidean distance `r` of `q`
    /// (inclusive, with `EPS` slack), in ascending index order.
    pub fn within(&self, q: Point, r: f64) -> impl Iterator<Item = usize> + '_ {
        let r = r.max(0.0);
        // Inflate the scanned cell range by the acceptance slack: a point
        // at distance r + 1e-15 must still be found (the distance test
        // below accepts it), even when it falls a hair across a cell
        // boundary.
        let rr = r + 2.0 * freezetag_geometry::EPS;
        let lo = Self::key(q - Point::new(rr, rr), self.cell);
        let hi = Self::key(q + Point::new(rr, rr), self.cell);
        let mut out: Vec<usize> = Vec::new();
        for i in lo.0..=hi.0 {
            for j in lo.1..=hi.1 {
                if let Some(bucket) = self.buckets.get(&(i, j)) {
                    for &idx in bucket {
                        if self.points[idx].dist(q) <= r + freezetag_geometry::EPS {
                            out.push(idx);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.into_iter()
    }

    /// Index of the closest point to `q`, or `None` when the index is
    /// empty. Falls back to a full scan; the index accelerates only
    /// bounded-radius queries.
    pub fn nearest(&self, q: Point) -> Option<usize> {
        (0..self.points.len()).min_by(|&a, &b| {
            self.points[a]
                .dist_sq(q)
                .partial_cmp(&self.points[b].dist_sq(q))
                .expect("finite coordinates")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<Point> {
        vec![
            Point::ORIGIN,
            Point::new(0.9, 0.0),
            Point::new(2.0, 0.0),
            Point::new(-3.0, 4.0),
            Point::new(0.0, 0.95),
        ]
    }

    #[test]
    fn within_matches_brute_force() {
        let points = pts();
        let idx = GridIndex::build(&points, 1.0);
        for &(q, r) in &[
            (Point::ORIGIN, 1.0),
            (Point::new(1.0, 1.0), 2.0),
            (Point::new(-3.0, 4.0), 0.5),
            (Point::ORIGIN, 10.0),
            (Point::ORIGIN, 0.0),
        ] {
            let got: Vec<usize> = idx.within(q, r).collect();
            let want: Vec<usize> = (0..points.len())
                .filter(|&i| points[i].dist(q) <= r + freezetag_geometry::EPS)
                .collect();
            assert_eq!(got, want, "query {q} r={r}");
        }
    }

    #[test]
    fn nearest_point() {
        let points = pts();
        let idx = GridIndex::build(&points, 1.0);
        assert_eq!(idx.nearest(Point::new(0.8, 0.1)), Some(1));
        assert_eq!(idx.nearest(Point::new(-2.0, 3.0)), Some(3));
        assert!(GridIndex::build(&[], 1.0).nearest(Point::ORIGIN).is_none());
    }

    #[test]
    fn len_and_empty() {
        assert!(GridIndex::build(&[], 2.0).is_empty());
        assert_eq!(GridIndex::build(&pts(), 2.0).len(), 5);
    }

    #[test]
    fn negative_coordinates_bucket_correctly() {
        let points = vec![Point::new(-0.5, -0.5), Point::new(-1.5, -1.5)];
        let idx = GridIndex::build(&points, 1.0);
        let got: Vec<usize> = idx.within(Point::new(-1.0, -1.0), 0.8).collect();
        assert_eq!(got, vec![0, 1]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// The grid index agrees with brute force for arbitrary points,
            /// cell widths, query centres and radii — including radii much
            /// larger and much smaller than the cell width, and points
            /// sitting exactly on cell boundaries.
            #[test]
            fn within_matches_brute_force_always(
                raw in prop::collection::vec((-20.0f64..20.0, -20.0f64..20.0), 0..40),
                cell in 0.1f64..5.0,
                qx in -25.0f64..25.0,
                qy in -25.0f64..25.0,
                r in 0.0f64..30.0,
            ) {
                let pts: Vec<Point> = raw.into_iter().map(|(x, y)| Point::new(x, y)).collect();
                let idx = GridIndex::build(&pts, cell);
                let q = Point::new(qx, qy);
                let got: Vec<usize> = idx.within(q, r).collect();
                let want: Vec<usize> = (0..pts.len())
                    .filter(|&i| pts[i].dist(q) <= r + freezetag_geometry::EPS)
                    .collect();
                prop_assert_eq!(got, want);
            }

            /// Points landing exactly on integer cell boundaries are found
            /// at exactly boundary-touching radii.
            #[test]
            fn boundary_exactness(k in -10i32..10, cell in 0.5f64..3.0) {
                let p = Point::new(k as f64 * cell, 0.0);
                let idx = GridIndex::build(&[p], cell);
                let q = Point::new(p.x + cell, 0.0);
                let got: Vec<usize> = idx.within(q, cell).collect();
                prop_assert_eq!(got, vec![0usize]);
            }
        }
    }
}
