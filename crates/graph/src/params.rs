use crate::{dijkstra, DiskGraph};
use freezetag_geometry::Point;

/// Radius `ρ*`: the largest distance from `points[source]` to any other
/// point (0 when the set is a singleton).
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn radius(points: &[Point], source: usize) -> f64 {
    let s = points[source];
    points.iter().map(|p| p.dist(s)).fold(0.0, f64::max)
}

/// Connectivity threshold `ℓ*`: the least `δ` such that the δ-disk graph of
/// the point set is connected. This is the bottleneck (largest) edge of a
/// minimum spanning tree, computed with Prim's algorithm in `O(n²)` time —
/// exact, and fast enough for the swarm sizes of the benchmarks.
///
/// Returns 0 for empty or singleton sets.
pub fn connectivity_threshold(points: &[Point]) -> f64 {
    let n = points.len();
    if n <= 1 {
        return 0.0;
    }
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    in_tree[0] = true;
    for (i, b) in best.iter_mut().enumerate().skip(1) {
        *b = points[i].dist(points[0]);
    }
    let mut bottleneck: f64 = 0.0;
    for _ in 1..n {
        let mut v = usize::MAX;
        let mut vd = f64::INFINITY;
        for u in 0..n {
            if !in_tree[u] && best[u] < vd {
                vd = best[u];
                v = u;
            }
        }
        debug_assert!(v != usize::MAX, "disconnected complete graph impossible");
        in_tree[v] = true;
        bottleneck = bottleneck.max(vd);
        for u in 0..n {
            if !in_tree[u] {
                let d = points[u].dist(points[v]);
                if d < best[u] {
                    best[u] = d;
                }
            }
        }
    }
    bottleneck
}

/// ℓ-eccentricity `ξ_ℓ`: the minimum weighted depth of a spanning tree of
/// the ℓ-disk graph rooted at the source — equivalently the largest
/// shortest-path distance from the source. `None` when the ℓ-disk graph is
/// not connected (the paper writes `ξ_ℓ = ∞`).
///
/// # Panics
///
/// Panics if `source` is out of range or `ell <= 0`.
pub fn eccentricity(points: &[Point], source: usize, ell: f64) -> Option<f64> {
    if points.len() <= 1 {
        return Some(0.0);
    }
    let g = DiskGraph::new(points.to_vec(), ell);
    dijkstra(&g, source).eccentricity()
}

/// The three parameters `(ρ*, ℓ*, ξ_ℓ)` of an instance, computed exactly.
///
/// Proposition 1 of the paper: `0 < ℓ* ≤ ρ* ≤ ξ_ℓ ≤ n·ℓ*` for every point
/// set with at least one non-source point (the property tests of this
/// workspace check exactly this chain).
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_graph::InstanceParams;
///
/// let pts = vec![Point::ORIGIN, Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
/// let params = InstanceParams::compute(&pts, 0, None);
/// assert!((params.rho_star - 2.0).abs() < 1e-9);
/// assert!((params.ell_star - 1.0).abs() < 1e-9);
/// assert_eq!(params.xi_ell, Some(2.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceParams {
    /// Radius `ρ*`.
    pub rho_star: f64,
    /// Connectivity threshold `ℓ*`.
    pub ell_star: f64,
    /// The `ℓ` at which `xi_ell` was evaluated (defaults to `ℓ*`).
    pub ell: f64,
    /// ℓ-eccentricity `ξ_ℓ`, `None` when the ℓ-disk graph is disconnected.
    pub xi_ell: Option<f64>,
}

impl InstanceParams {
    /// Computes all parameters of `points` with the given source index.
    /// `ell` defaults to the exact connectivity threshold `ℓ*` when `None`.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range, or if the provided `ell` is not
    /// positive while the set has more than one point.
    pub fn compute(points: &[Point], source: usize, ell: Option<f64>) -> Self {
        let rho_star = radius(points, source);
        let ell_star = connectivity_threshold(points);
        let ell = ell.unwrap_or(ell_star);
        let xi_ell = if points.len() <= 1 {
            Some(0.0)
        } else {
            assert!(ell > 0.0, "ell must be positive for multi-point sets");
            eccentricity(points, source, ell)
        };
        InstanceParams {
            rho_star,
            ell_star,
            ell,
            xi_ell,
        }
    }

    /// Whether a tuple `(ℓ, ρ, n)` is admissible (`ℓ ≤ ρ ≤ nℓ`, Section
    /// 1.2) *and* consistent with these parameters (`ℓ* ≤ ℓ`, `ρ* ≤ ρ`).
    pub fn admits(&self, ell: f64, rho: f64, n: usize) -> bool {
        ell <= rho + freezetag_geometry::EPS
            && rho <= n as f64 * ell + freezetag_geometry::EPS
            && self.ell_star <= ell + freezetag_geometry::EPS
            && self.rho_star <= rho + freezetag_geometry::EPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_of_cross() {
        let pts = vec![
            Point::ORIGIN,
            Point::new(3.0, 0.0),
            Point::new(0.0, -5.0),
            Point::new(-1.0, 0.0),
        ];
        assert_eq!(radius(&pts, 0), 5.0);
    }

    #[test]
    fn threshold_is_bottleneck_edge() {
        // Two clusters at distance 5 with intra-cluster distances <= sqrt(2).
        let pts = vec![
            Point::ORIGIN,
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(6.0, 1.0),
            Point::new(6.0, 2.0),
        ];
        let t = connectivity_threshold(&pts);
        assert!((t - 5.0).abs() < 1e-9, "got {t}");
        // Sanity: graph at threshold is connected, just below is not.
        assert!(DiskGraph::new(pts.clone(), t).is_connected());
        assert!(!DiskGraph::new(pts, t * 0.999).is_connected());
    }

    #[test]
    fn threshold_edge_cases() {
        assert_eq!(connectivity_threshold(&[]), 0.0);
        assert_eq!(connectivity_threshold(&[Point::ORIGIN]), 0.0);
        let two = [Point::ORIGIN, Point::new(0.0, 2.5)];
        assert!((connectivity_threshold(&two) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn eccentricity_on_line_and_disconnection() {
        let pts: Vec<Point> = (0..5).map(|i| Point::new(i as f64, 0.0)).collect();
        assert_eq!(eccentricity(&pts, 0, 1.0), Some(4.0));
        // Larger ell allows longer hops, shrinking the eccentricity.
        assert_eq!(eccentricity(&pts, 0, 4.0), Some(4.0));
        assert_eq!(eccentricity(&pts, 0, 0.5), None);
    }

    #[test]
    fn proposition_1_chain_on_line() {
        let pts: Vec<Point> = (0..6).map(|i| Point::new(i as f64, 0.0)).collect();
        let p = InstanceParams::compute(&pts, 0, None);
        let xi = p.xi_ell.unwrap();
        assert!(p.ell_star > 0.0);
        assert!(p.ell_star <= p.rho_star);
        assert!(p.rho_star <= xi);
        assert!(xi <= pts.len() as f64 * p.ell_star);
    }

    #[test]
    fn admissibility() {
        let pts = vec![Point::ORIGIN, Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
        let p = InstanceParams::compute(&pts, 0, None);
        assert!(p.admits(1.0, 2.0, 2));
        assert!(!p.admits(0.5, 2.0, 4)); // ell below ell*
        assert!(!p.admits(1.0, 1.5, 2)); // rho below rho*
        assert!(!p.admits(1.0, 4.0, 3)); // rho > n*ell
    }

    #[test]
    fn singleton_params() {
        let p = InstanceParams::compute(&[Point::ORIGIN], 0, None);
        assert_eq!(p.rho_star, 0.0);
        assert_eq!(p.ell_star, 0.0);
        assert_eq!(p.xi_ell, Some(0.0));
    }
}
