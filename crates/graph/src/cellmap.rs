use freezetag_geometry::Point;

/// Sentinel for an unoccupied [`CellMap`] slot (and for "no cell" in the
/// dense window directory of `GridIndex`).
pub(crate) const EMPTY: u32 = u32::MAX;

/// Open-addressing directory from cell key to a `u32` payload.
///
/// This sits in the innermost loop of every range query (one probe per
/// scanned cell, ~9 per unit-vision `look`), where `std`'s SipHash-backed
/// `HashMap` was measured at ~20 % of a 10⁶-robot sweep. The probe here is
/// a splitmix64-style mix (a handful of multiplies) plus a masked linear
/// scan — deterministic, with no per-process hasher state.
///
/// Payloads are dense cell ids in `GridIndex` and chain heads in
/// [`crate::CellGrid`]; `EMPTY` (`u32::MAX`) is reserved as the vacancy
/// sentinel either way.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CellMap {
    /// Power-of-two table; parallel key/value slots, `EMPTY` value = free.
    keys: Vec<(i64, i64)>,
    vals: Vec<u32>,
    len: usize,
}

impl CellMap {
    pub(crate) fn new() -> Self {
        CellMap {
            keys: vec![(0, 0); 16],
            vals: vec![EMPTY; 16],
            len: 0,
        }
    }

    #[inline]
    fn hash(key: (i64, i64)) -> u64 {
        let mut z = (key.0 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((key.1 as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    }

    /// The bucket key of `p` for the given cell width — shared by every
    /// grid structure in this crate so their bucketings never drift.
    #[inline]
    pub(crate) fn key_of(p: Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Number of occupied entries.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub(crate) fn get(&self, key: (i64, i64)) -> Option<u32> {
        let mask = self.keys.len() - 1;
        let mut slot = (Self::hash(key) as usize) & mask;
        loop {
            let v = self.vals[slot];
            if v == EMPTY {
                return None;
            }
            if self.keys[slot] == key {
                return Some(v);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Returns the id stored for `key`, inserting `val` first if absent
    /// (`HashMap::entry(key).or_insert(val)` semantics). Grows at 1/2 load
    /// so probe chains stay short.
    pub(crate) fn get_or_insert(&mut self, key: (i64, i64), val: u32) -> u32 {
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut slot = (Self::hash(key) as usize) & mask;
        loop {
            let v = self.vals[slot];
            if v == EMPTY {
                self.keys[slot] = key;
                self.vals[slot] = val;
                self.len += 1;
                return val;
            }
            if self.keys[slot] == key {
                return v;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Stores `val` under `key`, returning the previous payload if the key
    /// was present (`HashMap::insert` semantics). This is what lets
    /// [`crate::CellGrid`] thread chain heads through the directory.
    pub(crate) fn insert(&mut self, key: (i64, i64), val: u32) -> Option<u32> {
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut slot = (Self::hash(key) as usize) & mask;
        loop {
            let v = self.vals[slot];
            if v == EMPTY {
                self.keys[slot] = key;
                self.vals[slot] = val;
                self.len += 1;
                return None;
            }
            if self.keys[slot] == key {
                self.vals[slot] = val;
                return Some(v);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Visits every occupied `(key, payload)` entry (table order —
    /// deterministic for a given insertion history, but not sorted).
    pub(crate) fn for_each(&self, mut f: impl FnMut((i64, i64), u32)) {
        for (slot, &v) in self.vals.iter().enumerate() {
            if v != EMPTY {
                f(self.keys[slot], v);
            }
        }
    }

    /// Drops every entry, keeping the table allocation.
    pub(crate) fn clear(&mut self) {
        if self.len > 0 {
            self.vals.fill(EMPTY);
            self.len = 0;
        }
    }

    fn grow(&mut self) {
        let cap = self.keys.len() * 2;
        let (old_keys, old_vals) = (
            std::mem::replace(&mut self.keys, vec![(0, 0); cap]),
            std::mem::replace(&mut self.vals, vec![EMPTY; cap]),
        );
        let mask = cap - 1;
        for (key, v) in old_keys.into_iter().zip(old_vals) {
            if v == EMPTY {
                continue;
            }
            let mut slot = (Self::hash(key) as usize) & mask;
            while self.vals[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            self.keys[slot] = key;
            self.vals[slot] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_returns_previous_and_updates() {
        let mut m = CellMap::new();
        assert_eq!(m.insert((3, -2), 7), None);
        assert_eq!(m.get((3, -2)), Some(7));
        assert_eq!(m.insert((3, -2), 9), Some(7));
        assert_eq!(m.get((3, -2)), Some(9));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn clear_keeps_capacity_and_empties() {
        let mut m = CellMap::new();
        for i in 0..100 {
            m.insert((i, -i), i as u32);
        }
        assert_eq!(m.len(), 100);
        m.clear();
        assert_eq!(m.len(), 0);
        assert_eq!(m.get((5, -5)), None);
        m.insert((5, -5), 1);
        assert_eq!(m.get((5, -5)), Some(1));
    }

    #[test]
    fn for_each_visits_every_entry_once() {
        let mut m = CellMap::new();
        for i in 0..50i64 {
            m.get_or_insert((i % 7, i / 7), i as u32);
        }
        let mut seen = Vec::new();
        m.for_each(|k, v| seen.push((k, v)));
        assert_eq!(seen.len(), m.len());
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), m.len(), "duplicate visit");
    }
}
