//! Incremental uniform-grid index: the growable companion of
//! [`crate::GridIndex`].
//!
//! `GridIndex` is built once over a fixed point set (CSR buckets); the
//! distributed algorithms' *knowledge* layer instead discovers points one
//! sighting at a time and queries between insertions. [`CellGrid`] serves
//! that access pattern: points append into flat coordinate arrays, each
//! cell's members form a chain threaded through a `next` array, and the
//! cell directory is the same open-addressing `CellMap`
//! the CSR index uses — so a bounded range query costs O(cells scanned +
//! chain lengths), never O(points inserted).
//!
//! Membership tests run through the [`crate::kernel`] scans: each chain is
//! gathered into small stack-resident coordinate buffers (preserving chain
//! order) and the buffer is tested as one batch — the scalar kernel by
//! default, the wide lane kernel under the `simd` feature, with identical
//! emissions either way.

use crate::cellmap::{CellMap, EMPTY};
use crate::kernel;
use freezetag_geometry::Point;

/// Chain entries gathered per membership-kernel batch: large enough that
/// typical cell chains (tens of points) take one or two batches, small
/// enough to stay in registers/L1 as three stack arrays.
const GATHER: usize = 32;

/// Growable uniform-grid spatial index over an append-only point sequence.
///
/// Cell width is fixed at construction; queries with radii on the order of
/// the cell width touch O(1) cells. Indices are assigned in insertion
/// order (`push` returns them), and [`CellGrid::within_into`] reports
/// matches in ascending index order — mirroring [`crate::GridIndex`]'s
/// contract so callers can swap between the two.
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_graph::CellGrid;
///
/// let mut g = CellGrid::new(1.0);
/// g.push(Point::ORIGIN);
/// g.push(Point::new(0.5, 0.0));
/// g.push(Point::new(9.0, 9.0));
/// let mut near = Vec::new();
/// g.within_into(Point::ORIGIN, 1.0, &mut near);
/// assert_eq!(near, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct CellGrid {
    cell: f64,
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// `next[i]` chains point `i` to the previously-pushed point of the
    /// same cell (`EMPTY` terminates).
    next: Vec<u32>,
    /// Cell key → most recently pushed point index of that cell.
    heads: CellMap,
}

impl CellGrid {
    /// An empty grid with the given cell width.
    ///
    /// # Panics
    ///
    /// Panics if `cell_width <= 0` or not finite.
    pub fn new(cell_width: f64) -> Self {
        assert!(
            cell_width > 0.0 && cell_width.is_finite(),
            "invalid cell width"
        );
        CellGrid {
            cell: cell_width,
            xs: Vec::new(),
            ys: Vec::new(),
            next: Vec::new(),
            heads: CellMap::new(),
        }
    }

    /// Number of points pushed.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether no point has been pushed.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The configured cell width.
    pub fn cell_width(&self) -> f64 {
        self.cell
    }

    /// Point `i` (in push order).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn point(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i])
    }

    /// Appends a point; returns its index (== the previous [`CellGrid::len`]).
    pub fn push(&mut self, p: Point) -> usize {
        let i = self.xs.len() as u32;
        self.xs.push(p.x);
        self.ys.push(p.y);
        let key = CellMap::key_of(p, self.cell);
        let prev = self.heads.insert(key, i).unwrap_or(EMPTY);
        self.next.push(prev);
        i as usize
    }

    /// Drops every point, keeping allocations for reuse (cost is
    /// proportional to the previous contents, not to any coordinate
    /// domain).
    pub fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
        self.next.clear();
        self.heads.clear();
    }

    /// Clears the grid and changes its cell width — scratch grids reused
    /// across calls with varying ℓ go through this instead of
    /// reallocating.
    ///
    /// # Panics
    ///
    /// Panics if `cell_width <= 0` or not finite.
    pub fn reset(&mut self, cell_width: f64) {
        assert!(
            cell_width > 0.0 && cell_width.is_finite(),
            "invalid cell width"
        );
        self.clear();
        self.cell = cell_width;
    }

    /// Gathers the chain rooted at `head` into the stack buffers and hands
    /// each batch to `scan` as `(indices, xs, ys)`. Batches preserve chain
    /// order; returning `false` from `scan` stops the walk early.
    #[inline]
    fn gather_chain(&self, head: u32, mut scan: impl FnMut(&[u32], &[f64], &[f64]) -> bool) {
        let mut idxs = [0u32; GATHER];
        let mut xs = [0.0f64; GATHER];
        let mut ys = [0.0f64; GATHER];
        let mut cur = head;
        while cur != EMPTY {
            let mut n = 0;
            while cur != EMPTY && n < GATHER {
                let i = cur as usize;
                idxs[n] = cur;
                xs[n] = self.xs[i];
                ys[n] = self.ys[i];
                n += 1;
                cur = self.next[i];
            }
            if !scan(&idxs[..n], &xs[..n], &ys[..n]) {
                return;
            }
        }
    }

    /// Calls `f(index, point)` for every point whose cell intersects the
    /// axis-aligned box `[min, max]` inflated by `2 EPS`, in unspecified
    /// order. Points themselves are **not** filtered against the box —
    /// callers apply their exact region predicate (which this inflation
    /// covers for any predicate with up to `EPS` slack, e.g.
    /// `Rect::contains`). Prefer [`CellGrid::for_each_in_rect`] when the
    /// predicate *is* closed rectangle containment — it runs the filter
    /// through the membership kernel instead of per-point closure calls.
    pub fn for_each_in_box(&self, min: Point, max: Point, mut f: impl FnMut(usize, Point)) {
        let s = 2.0 * freezetag_geometry::EPS;
        let lo = CellMap::key_of(min - Point::new(s, s), self.cell);
        let hi = CellMap::key_of(max + Point::new(s, s), self.cell);
        for i in lo.0..=hi.0 {
            for j in lo.1..=hi.1 {
                let Some(head) = self.heads.get((i, j)) else {
                    continue;
                };
                let mut cur = head;
                while cur != EMPTY {
                    let idx = cur as usize;
                    f(idx, Point::new(self.xs[idx], self.ys[idx]));
                    cur = self.next[idx];
                }
            }
        }
    }

    /// Calls `f(index, point)` for every point `p` with `min.x - EPS <=
    /// p.x <= max.x + EPS` and likewise in `y` — exactly the acceptance of
    /// `Rect::contains` on the rectangle `[min, max]` — in **unspecified
    /// order**. The containment test runs through the rect membership
    /// kernel over gathered chain batches.
    pub fn for_each_in_rect(&self, min: Point, max: Point, mut f: impl FnMut(usize, Point)) {
        let s = 2.0 * freezetag_geometry::EPS;
        let lo = CellMap::key_of(min - Point::new(s, s), self.cell);
        let hi = CellMap::key_of(max + Point::new(s, s), self.cell);
        let eps = freezetag_geometry::EPS;
        let (x0, y0, x1, y1) = (min.x - eps, min.y - eps, max.x + eps, max.y + eps);
        for i in lo.0..=hi.0 {
            for j in lo.1..=hi.1 {
                let Some(head) = self.heads.get((i, j)) else {
                    continue;
                };
                self.gather_chain(head, |idxs, xs, ys| {
                    kernel::rect_scan(xs, ys, x0, y0, x1, y1, |k| {
                        f(idxs[k] as usize, Point::new(xs[k], ys[k]));
                    });
                    true
                });
            }
        }
    }

    /// Calls `f(index, point)` for every point within Euclidean distance
    /// `r` of `q` (inclusive, with the same `EPS` slack as
    /// [`crate::GridIndex::within_into`]), in **unspecified order**. Use
    /// this for order-independent reductions (min-selection, existence);
    /// use [`CellGrid::within_into`] when index order matters.
    #[inline]
    pub fn for_each_within(&self, q: Point, r: f64, mut f: impl FnMut(usize, Point)) {
        let r = r.max(0.0);
        let rr = r + 2.0 * freezetag_geometry::EPS;
        let lo = CellMap::key_of(q - Point::new(rr, rr), self.cell);
        let hi = CellMap::key_of(q + Point::new(rr, rr), self.cell);
        let accept = r + freezetag_geometry::EPS;
        let accept_sq = accept * accept;
        for i in lo.0..=hi.0 {
            for j in lo.1..=hi.1 {
                let Some(head) = self.heads.get((i, j)) else {
                    continue;
                };
                self.gather_chain(head, |idxs, xs, ys| {
                    kernel::disk_scan(xs, ys, q.x, q.y, accept_sq, |k| {
                        f(idxs[k] as usize, Point::new(xs[k], ys[k]));
                    });
                    true
                });
            }
        }
    }

    /// Indices of all points within distance `r` of `q`, appended to `out`
    /// in ascending index order (`out` is cleared first).
    pub fn within_into(&self, q: Point, r: f64, out: &mut Vec<usize>) {
        out.clear();
        self.for_each_within(q, r, |i, _| out.push(i));
        out.sort_unstable();
    }

    /// Whether any point lies within distance `r` of `q` (same acceptance
    /// as [`CellGrid::for_each_within`]). Early-exits on the first batch
    /// containing a hit.
    pub fn any_within(&self, q: Point, r: f64) -> bool {
        let r = r.max(0.0);
        let rr = r + 2.0 * freezetag_geometry::EPS;
        let lo = CellMap::key_of(q - Point::new(rr, rr), self.cell);
        let hi = CellMap::key_of(q + Point::new(rr, rr), self.cell);
        let accept = r + freezetag_geometry::EPS;
        let accept_sq = accept * accept;
        let mut hit = false;
        for i in lo.0..=hi.0 {
            for j in lo.1..=hi.1 {
                let Some(head) = self.heads.get((i, j)) else {
                    continue;
                };
                self.gather_chain(head, |_, xs, ys| {
                    hit = kernel::disk_any(xs, ys, q.x, q.y, accept_sq);
                    !hit
                });
                if hit {
                    return true;
                }
            }
        }
        false
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.xs.len() * 20 + self.heads.len() * (16 + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_query_clear_roundtrip() {
        let mut g = CellGrid::new(1.5);
        assert!(g.is_empty());
        assert_eq!(g.push(Point::ORIGIN), 0);
        assert_eq!(g.push(Point::new(1.0, 1.0)), 1);
        assert_eq!(g.push(Point::new(10.0, 0.0)), 2);
        assert_eq!(g.len(), 3);
        assert_eq!(g.point(2), Point::new(10.0, 0.0));
        let mut out = Vec::new();
        g.within_into(Point::new(0.5, 0.5), 1.0, &mut out);
        assert_eq!(out, vec![0, 1]);
        assert!(g.any_within(Point::new(9.5, 0.0), 0.6));
        assert!(!g.any_within(Point::new(9.5, 0.0), 0.1));
        g.clear();
        assert!(g.is_empty());
        assert!(!g.any_within(Point::ORIGIN, 5.0));
        // Reuse after clear: indices restart from 0.
        assert_eq!(g.push(Point::new(2.0, 2.0)), 0);
        g.within_into(Point::new(2.0, 2.0), 0.5, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn colocated_points_all_reported() {
        let mut g = CellGrid::new(1.0);
        for _ in 0..5 {
            g.push(Point::new(0.25, 0.25));
        }
        let mut out = Vec::new();
        g.within_into(Point::new(0.25, 0.25), 0.0, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cell_width_validation() {
        assert!(std::panic::catch_unwind(|| CellGrid::new(0.0)).is_err());
        assert!(std::panic::catch_unwind(|| CellGrid::new(f64::NAN)).is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            /// Incremental queries agree with brute force at every prefix
            /// of an arbitrary push sequence, and with a [`GridIndex`]
            /// built over the same points.
            #[test]
            fn matches_brute_force_and_gridindex(
                raw in prop::collection::vec((-15.0f64..15.0, -15.0f64..15.0), 1..50),
                cell in 0.2f64..4.0,
                qx in -18.0f64..18.0,
                qy in -18.0f64..18.0,
                r in 0.0f64..20.0,
            ) {
                let pts: Vec<Point> = raw.into_iter().map(|(x, y)| Point::new(x, y)).collect();
                let q = Point::new(qx, qy);
                let mut g = CellGrid::new(cell);
                let mut out = Vec::new();
                for (k, &p) in pts.iter().enumerate() {
                    g.push(p);
                    if k == pts.len() / 2 || k + 1 == pts.len() {
                        g.within_into(q, r, &mut out);
                        let want: Vec<usize> = (0..=k)
                            .filter(|&i| pts[i].dist(q) <= r + freezetag_geometry::EPS)
                            .collect();
                        prop_assert_eq!(&out, &want);
                        prop_assert_eq!(g.any_within(q, r), !want.is_empty());
                    }
                }
                let idx = crate::GridIndex::build(&pts, cell);
                let fixed: Vec<usize> = idx.within(q, r).collect();
                g.within_into(q, r, &mut out);
                prop_assert_eq!(out, fixed);
            }
        }
    }
}
