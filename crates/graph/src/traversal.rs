use crate::DiskGraph;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Result of a single-source shortest-path computation on a δ-disk graph.
///
/// The shortest-path tree rooted at the source is exactly the paper's
/// minimum weighted-depth spanning tree, so
/// [`ShortestPaths::eccentricity`] is the ℓ-eccentricity `ξ_ℓ` when the
/// graph is the ℓ-disk graph of `P ∪ {s}`.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    source: usize,
    dist: Vec<f64>,
    parent: Vec<Option<usize>>,
}

impl ShortestPaths {
    /// The source vertex.
    pub fn source(&self) -> usize {
        self.source
    }

    /// Distance from the source to `v`, `f64::INFINITY` when unreachable.
    pub fn dist(&self, v: usize) -> f64 {
        self.dist[v]
    }

    /// All distances, indexed by vertex.
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }

    /// Parent of `v` in the shortest-path tree (`None` for the source and
    /// for unreachable vertices).
    pub fn parent(&self, v: usize) -> Option<usize> {
        self.parent[v]
    }

    /// Whether every vertex is reachable from the source.
    pub fn all_reachable(&self) -> bool {
        self.dist.iter().all(|d| d.is_finite())
    }

    /// Largest finite distance (the weighted eccentricity of the source),
    /// or `None` when some vertex is unreachable.
    pub fn eccentricity(&self) -> Option<f64> {
        if !self.all_reachable() {
            return None;
        }
        self.dist.iter().cloned().fold(None, |acc, d| {
            Some(match acc {
                None => d,
                Some(m) => m.max(d),
            })
        })
    }

    /// The path from the source to `v` as a vertex list, or `None` when
    /// unreachable.
    pub fn path_to(&self, v: usize) -> Option<Vec<usize>> {
        if !self.dist[v].is_finite() {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    vertex: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance through reversed comparison; distances are
        // finite by construction.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("finite distances")
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra single-source shortest paths on a δ-disk graph.
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_graph::{dijkstra, DiskGraph};
///
/// let g = DiskGraph::new(
///     vec![Point::ORIGIN, Point::new(1.0, 0.0), Point::new(2.0, 0.0)],
///     1.0,
/// );
/// let sp = dijkstra(&g, 0);
/// assert_eq!(sp.dist(2), 2.0);
/// assert_eq!(sp.path_to(2), Some(vec![0, 1, 2]));
/// ```
pub fn dijkstra(graph: &DiskGraph, source: usize) -> ShortestPaths {
    let n = graph.len();
    assert!(source < n, "source {source} out of range {n}");
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        vertex: source,
    });
    while let Some(HeapEntry { dist: d, vertex: v }) = heap.pop() {
        if d > dist[v] {
            continue;
        }
        for (u, w) in graph.neighbors(v) {
            let nd = d + w;
            if nd < dist[u] {
                dist[u] = nd;
                parent[u] = Some(v);
                heap.push(HeapEntry {
                    dist: nd,
                    vertex: u,
                });
            }
        }
    }
    ShortestPaths {
        source,
        dist,
        parent,
    }
}

/// Minimum hop counts from `source` (unweighted BFS), `usize::MAX` when
/// unreachable.
///
/// Lemma 6 guarantees a path from `s` to any robot with at most
/// `1 + 2ξ_ℓ/ℓ` hops; the BFS count is a lower bound on the hops of any
/// such path, which the property tests exploit.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_hops(graph: &DiskGraph, source: usize) -> Vec<usize> {
    let n = graph.len();
    assert!(source < n, "source {source} out of range {n}");
    let mut hops = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    hops[source] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        for (u, _) in graph.neighbors(v) {
            if hops[u] == usize::MAX {
                hops[u] = hops[v] + 1;
                queue.push_back(u);
            }
        }
    }
    hops
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezetag_geometry::Point;

    fn line_graph(n: usize, delta: f64) -> DiskGraph {
        let pts: Vec<Point> = (0..n).map(|i| Point::new(i as f64, 0.0)).collect();
        DiskGraph::new(pts, delta)
    }

    #[test]
    fn dijkstra_on_a_line() {
        let g = line_graph(5, 1.0);
        let sp = dijkstra(&g, 0);
        for v in 0..5 {
            assert!((sp.dist(v) - v as f64).abs() < 1e-12);
        }
        assert_eq!(sp.eccentricity(), Some(4.0));
        assert!(sp.all_reachable());
        assert_eq!(sp.path_to(4).unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(sp.parent(0), None);
        assert_eq!(sp.source(), 0);
    }

    #[test]
    fn dijkstra_prefers_direct_edges() {
        // Triangle: direct edge 0-2 shorter than through 1.
        let g = DiskGraph::new(
            vec![Point::ORIGIN, Point::new(1.0, 1.0), Point::new(1.4, 0.0)],
            1.5,
        );
        let sp = dijkstra(&g, 0);
        assert!((sp.dist(2) - 1.4).abs() < 1e-12);
        assert_eq!(sp.path_to(2).unwrap(), vec![0, 2]);
    }

    #[test]
    fn unreachable_vertices() {
        let g = DiskGraph::new(vec![Point::ORIGIN, Point::new(10.0, 0.0)], 1.0);
        let sp = dijkstra(&g, 0);
        assert!(sp.dist(1).is_infinite());
        assert!(!sp.all_reachable());
        assert_eq!(sp.eccentricity(), None);
        assert_eq!(sp.path_to(1), None);
    }

    #[test]
    fn bfs_hop_counts() {
        let g = line_graph(4, 1.0);
        assert_eq!(bfs_hops(&g, 0), vec![0, 1, 2, 3]);
        let g2 = line_graph(4, 2.0);
        assert_eq!(bfs_hops(&g2, 0), vec![0, 1, 1, 2]);
    }

    #[test]
    fn bfs_unreachable_is_max() {
        let g = DiskGraph::new(vec![Point::ORIGIN, Point::new(5.0, 0.0)], 1.0);
        assert_eq!(bfs_hops(&g, 0)[1], usize::MAX);
    }
}
