use crate::{NodeId, WakeTree};
use freezetag_geometry::{Point, Rect};
use freezetag_sim::RobotId;

/// Divide-and-conquer wake-up tree with makespan `O(R)` for any point set
/// of diameter `R` around the root.
///
/// This is the workspace's stand-in for the `5R` square strategy of
/// Lemma 2 / \[BCGH24\] (see DESIGN.md, substitutions): at every node the
/// carrier wakes the item nearest to it, the bounding rectangle is split
/// across its longer side, and the two now-awake robots recurse into the
/// two halves. Rectangle width halves every two levels, so total travel is
/// a geometric series `O(R)`; the measured constant is reported in
/// EXPERIMENTS.md and asserted `< 10` in the tests.
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_sim::RobotId;
/// use freezetag_central::quadtree_wake_tree;
///
/// let items: Vec<(RobotId, Point)> = (0..20)
///     .map(|i| (RobotId::sleeper(i), Point::new((i % 5) as f64, (i / 5) as f64)))
///     .collect();
/// let tree = quadtree_wake_tree(Point::new(2.0, 2.0), &items);
/// assert_eq!(tree.robot_count(), 20);
/// // Diameter of the set around the root is < 6; makespan stays O(R).
/// assert!(tree.makespan() < 60.0);
/// ```
pub fn quadtree_wake_tree(root_pos: Point, items: &[(RobotId, Point)]) -> WakeTree {
    let mut tree = WakeTree::new(root_pos);
    if items.is_empty() {
        return tree;
    }
    let rect = Rect::bounding(items.iter().map(|&(_, p)| p)).expect("non-empty items");
    build(&mut tree, WakeTree::ROOT, root_pos, items.to_vec(), rect);
    tree
}

/// Recursive worker: `carrier` (sitting at tree node `parent` located at
/// `from`) must wake every item in `items ⊆ rect`. Attaches the subtree to
/// `parent` and returns.
fn build(
    tree: &mut WakeTree,
    parent: NodeId,
    from: Point,
    mut items: Vec<(RobotId, Point)>,
    rect: Rect,
) {
    if items.is_empty() {
        return;
    }
    // Pivot: the item nearest the carrier's entry point.
    let pivot_idx = items
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.1.dist_sq(from)
                .partial_cmp(&b.1.dist_sq(from))
                .expect("finite")
        })
        .map(|(i, _)| i)
        .expect("non-empty");
    let (pivot_robot, pivot_pos) = items.swap_remove(pivot_idx);
    let node = tree.add_child(parent, pivot_robot, pivot_pos);
    if items.is_empty() {
        return;
    }
    // Degenerate rectangle (all points numerically coincident): chain-wake.
    if rect.width().max(rect.height()) <= freezetag_geometry::EPS {
        let mut cur = node;
        let mut pos = pivot_pos;
        for (r, p) in items {
            cur = tree.add_child(cur, r, p);
            pos = p;
        }
        let _ = pos;
        return;
    }
    // Split the rectangle across its longer side.
    let (left_rect, right_rect) = split(&rect);
    let (left, right): (Vec<_>, Vec<_>) =
        items.into_iter().partition(|&(_, p)| left_rect.contains(p));
    // The woken robot takes the half containing more work far from the
    // carrier; both depart from the pivot node.
    build(tree, node, pivot_pos, left, left_rect);
    build(tree, node, pivot_pos, right, right_rect);
}

fn split(rect: &Rect) -> (Rect, Rect) {
    if rect.width() >= rect.height() {
        let mid = rect.min().x + rect.width() / 2.0;
        (
            Rect::from_corners(rect.min(), Point::new(mid, rect.max().y)),
            Rect::from_corners(Point::new(mid, rect.min().y), rect.max()),
        )
    } else {
        let mid = rect.min().y + rect.height() / 2.0;
        (
            Rect::from_corners(rect.min(), Point::new(rect.max().x, mid)),
            Rect::from_corners(Point::new(rect.min().x, mid), rect.max()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_items(n: usize, radius: f64, seed: u64) -> Vec<(RobotId, Point)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    RobotId::sleeper(i),
                    Point::new(
                        rng.gen_range(-radius..=radius),
                        rng.gen_range(-radius..=radius),
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn wakes_every_robot_exactly_once() {
        let items = random_items(100, 20.0, 1);
        let tree = quadtree_wake_tree(Point::ORIGIN, &items);
        assert_eq!(tree.robot_count(), 100);
        let woken = tree.woken_robots();
        assert_eq!(woken.len(), 100);
    }

    #[test]
    fn makespan_is_linear_in_radius() {
        // Constant c = makespan / R stays bounded (< 10) across scales —
        // the Lemma 2 substitute property.
        for &radius in &[4.0, 16.0, 64.0, 256.0] {
            for seed in 0..3 {
                let items = random_items(200, radius, seed);
                let tree = quadtree_wake_tree(Point::ORIGIN, &items);
                let r_max = items.iter().map(|&(_, p)| p.norm()).fold(0.0_f64, f64::max);
                let c = tree.makespan() / r_max;
                assert!(c < 10.0, "constant {c} too large at radius {radius}");
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        let t = quadtree_wake_tree(Point::ORIGIN, &[]);
        assert!(t.is_empty());
        let t1 = quadtree_wake_tree(
            Point::ORIGIN,
            &[(RobotId::sleeper(0), Point::new(3.0, 4.0))],
        );
        assert_eq!(t1.robot_count(), 1);
        assert_eq!(t1.makespan(), 5.0);
    }

    #[test]
    fn coincident_points_chain() {
        let p = Point::new(1.0, 1.0);
        let items: Vec<_> = (0..5).map(|i| (RobotId::sleeper(i), p)).collect();
        let tree = quadtree_wake_tree(Point::ORIGIN, &items);
        assert_eq!(tree.robot_count(), 5);
        assert!((tree.makespan() - p.norm()).abs() < 1e-9);
    }

    #[test]
    fn clustered_far_corner() {
        // All robots in a far corner: makespan ~ distance + small cluster
        // cost, not distance * n.
        let mut items = Vec::new();
        for i in 0..50 {
            items.push((
                RobotId::sleeper(i),
                Point::new(100.0 + (i % 7) as f64 * 0.1, 100.0 + (i / 7) as f64 * 0.1),
            ));
        }
        let tree = quadtree_wake_tree(Point::ORIGIN, &items);
        let direct = Point::ORIGIN.dist(Point::new(100.0, 100.0));
        assert!(tree.makespan() < direct + 30.0);
    }
}
