//! GLS-style anytime optimizer over wake trees: parallel local search
//! with delta evaluation.
//!
//! The constructive strategies ([`crate::WakeStrategy`]) build one tree
//! and stop; this module *improves* a tree by local moves until an
//! iteration budget, a strike limit, or a wall-clock deadline is hit —
//! the strong centralized baseline the competitive-ratio tables need.
//!
//! # Search model
//!
//! [`anytime_wake_tree`] runs a fixed number of logical *streams*
//! ([`AnytimeConfig::streams`]), each owning a candidate [`OptTree`] and
//! an RNG deterministically split from `(seed, stream_id)`. Streams run
//! *rounds* of random local moves — [subtree reassignment](OptTree::reassign)
//! and [wake-order swaps](OptTree::swap) under an only-improving
//! acceptance rule — and exchange the globally best tree at every round
//! barrier: the best stream's tree (ties to the lowest stream id)
//! replaces every candidate that is strictly worse. A global strike
//! counter stops the search after [`AnytimeConfig::strike_limit`]
//! consecutive rounds without improvement.
//!
//! The streams are mapped onto a [`ParPool`] one stream per batch, so the
//! pool width is an execution lever only: **the best tree is
//! byte-identical at any worker count** — the same two-axis contract as
//! the rest of the workspace (`--sim-threads`, `--threads`).
//!
//! # Delta evaluation
//!
//! The perf core is the cached per-subtree completion time
//! ([`OptTree`]'s `height` array): a local move re-evaluates only the
//! paths from the touched nodes to the root — `O(depth)` instead of the
//! `O(n)` full-tree DFS of [`WakeTree::makespan`]. The cache is pinned
//! bit-equal to a full recomputation ([`OptTree::oracle_makespan`],
//! [`OptTree::cache_matches_oracle`]) by the workspace proptest suite.
//!
//! # Cancellation
//!
//! Two tokens with different contracts: the *ambient* engine token
//! aborts the job with [`Cancelled::unwind`] (no partial result — a
//! cancelled sweep job never pollutes the result cache), while the
//! optional [`AnytimeConfig::time_budget`] arms an internal deadline
//! that stops the search cleanly at the best-so-far tree (the *anytime*
//! contract behind `dftp solve --time-budget`). Both are polled at round
//! barriers only, so a run's reachable states stay deterministic; under
//! a time budget the number of completed rounds is wall-clock dependent,
//! under a pure iteration budget the result is fully reproducible.

use crate::{greedy_wake_tree, median_wake_tree, quadtree_wake_tree, WakeTree};
use freezetag_geometry::Point;
use freezetag_sim::{CancelToken, Cancelled, ParPool, RobotId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;
use std::time::Duration;

/// Sentinel for "no node" in [`OptTree`]'s parent/children arrays.
const NONE: usize = usize::MAX;

/// Tuning knobs of [`anytime_wake_tree`]. The defaults keep a sweep job
/// deterministic and cheap; the CLI raises budgets explicitly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnytimeConfig {
    /// Logical search streams. Fixed independently of the pool width —
    /// this count (not the thread count) is what shapes the search, so
    /// results are byte-identical at any [`ParPool`] width.
    pub streams: usize,
    /// Round barriers (best-tree exchange points).
    pub rounds: usize,
    /// Move attempts per stream per round.
    pub moves_per_round: usize,
    /// Consecutive rounds without a global improvement before stopping.
    pub strike_limit: usize,
    /// Seed one stream with the `O(n³)` earliest-finish greedy when
    /// `n` is at most this; larger instances start from the fast
    /// divide-and-conquer trees only.
    pub greedy_init_max_n: usize,
    /// Optional anytime deadline: the search stops cleanly at the best
    /// tree so far once this much wall clock has elapsed. `None` runs
    /// the full iteration budget (fully reproducible).
    pub time_budget: Option<Duration>,
}

impl Default for AnytimeConfig {
    fn default() -> Self {
        AnytimeConfig {
            streams: 8,
            rounds: 16,
            moves_per_round: 1000,
            strike_limit: 3,
            greedy_init_max_n: 2500,
            time_budget: None,
        }
    }
}

/// What one [`anytime_wake_tree`] run produced, plus its search counters.
#[derive(Debug, Clone)]
pub struct AnytimeReport {
    /// The best tree found (at least as good as every initial tree).
    pub tree: WakeTree,
    /// Makespan of the best *initial* tree, before any move.
    pub initial_makespan: f64,
    /// Makespan of [`AnytimeReport::tree`] as the optimizer evaluated it
    /// (bit-equal to a bottom-up recomputation; [`WakeTree::makespan`]'s
    /// top-down accumulation may differ in the last ulp).
    pub makespan: f64,
    /// Rounds completed before a budget, strike limit, or deadline hit.
    pub rounds_run: usize,
    /// Local moves attempted across all streams (invalid proposals count).
    pub moves_tried: u64,
    /// Local moves accepted (strict improvements).
    pub moves_accepted: u64,
}

/// A wake tree in the optimizer's mutable representation: parent
/// pointers, fixed-arity child slots, and the cached per-subtree
/// completion time that makes move evaluation `O(depth)`.
///
/// `height[v]` is the time from reaching `v` until the last robot of
/// `v`'s subtree is woken: `0` for a leaf, else the max over children
/// `c` of `dist(pos(v), pos(c)) + height[c]`. The tree's makespan is
/// `height[root]` (the root holds the already-awake source).
///
/// The arity invariant of [`WakeTree`] is preserved by every move: the
/// root keeps at most one child, every other node at most two.
#[derive(Debug, Clone, PartialEq)]
pub struct OptTree {
    robot: Vec<RobotId>,
    pos: Vec<Point>,
    parent: Vec<usize>,
    children: Vec<[usize; 2]>,
    n_children: Vec<u8>,
    height: Vec<f64>,
}

impl OptTree {
    /// Converts a [`WakeTree`] (node ids are preserved: parents precede
    /// children, the root is node 0) and fills the height cache.
    pub fn from_wake_tree(tree: &WakeTree) -> Self {
        let len = tree.len();
        let mut t = OptTree {
            robot: (0..len).map(|v| tree.robot(v)).collect(),
            pos: (0..len).map(|v| tree.pos(v)).collect(),
            parent: vec![NONE; len],
            children: vec![[NONE; 2]; len],
            n_children: vec![0; len],
            height: vec![0.0; len],
        };
        for v in 0..len {
            for &c in tree.children(v) {
                t.children[v][t.n_children[v] as usize] = c;
                t.n_children[v] += 1;
                t.parent[c] = v;
            }
            t.sort_slots(v);
        }
        // `add_child` only ever appends nodes under existing ones, so
        // every parent id is smaller than its children's: reverse index
        // order is a valid bottom-up pass.
        for v in (0..len).rev() {
            t.recompute_height(v);
        }
        t
    }

    /// Converts back to a [`WakeTree`], inserting nodes in index order
    /// (parents precede children by construction) — a deterministic
    /// function of the tree state.
    pub fn to_wake_tree(&self) -> WakeTree {
        let mut out = WakeTree::new(self.pos[0]);
        let mut new_id = vec![NONE; self.len()];
        new_id[0] = WakeTree::ROOT;
        // After reassignments a parent's index may exceed its child's,
        // so raw index order is not insertion-safe; walk an explicit
        // DFS from the root instead.
        let mut stack = vec![0usize];
        while let Some(v) = stack.pop() {
            for slot in (0..self.n_children[v] as usize).rev() {
                let c = self.children[v][slot];
                let id = out.add_child(new_id[v], self.robot[c], self.pos[c]);
                new_id[c] = id;
                stack.push(c);
            }
        }
        out
    }

    /// Total node count, including the root.
    pub fn len(&self) -> usize {
        self.robot.len()
    }

    /// Whether only the root is present.
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// The cached makespan: `height[root]`, maintained incrementally.
    pub fn makespan(&self) -> f64 {
        self.height[0]
    }

    /// The parent of node `v`, or `None` for the root — what a caller
    /// needs to revert a [`OptTree::reassign`] (the benches drive the
    /// apply/revert loop from outside the crate).
    pub fn parent(&self, v: usize) -> Option<usize> {
        if v == 0 {
            None
        } else {
            Some(self.parent[v])
        }
    }

    /// Full `O(n)` bottom-up recomputation of the makespan, ignoring the
    /// cache — the oracle the delta evaluation is pinned against.
    pub fn oracle_makespan(&self) -> f64 {
        self.oracle_heights()[0]
    }

    /// Whether every cached height is bit-equal to a full recomputation.
    pub fn cache_matches_oracle(&self) -> bool {
        let oracle = self.oracle_heights();
        self.height
            .iter()
            .zip(&oracle)
            .all(|(a, b)| a.to_bits() == b.to_bits())
    }

    fn oracle_heights(&self) -> Vec<f64> {
        // Bottom-up over a DFS post-order (indices are not ordered by
        // depth once moves have run).
        let mut order = Vec::with_capacity(self.len());
        let mut stack = vec![0usize];
        while let Some(v) = stack.pop() {
            order.push(v);
            for slot in 0..self.n_children[v] as usize {
                stack.push(self.children[v][slot]);
            }
        }
        let mut heights = vec![0.0f64; self.len()];
        for &v in order.iter().rev() {
            let mut h = 0.0f64;
            for slot in 0..self.n_children[v] as usize {
                let c = self.children[v][slot];
                h = h.max(self.pos[v].dist(self.pos[c]) + heights[c]);
            }
            heights[v] = h;
        }
        heights
    }

    fn capacity(v: usize) -> usize {
        if v == 0 {
            1
        } else {
            2
        }
    }

    /// Keeps a node's child slots sorted by index — the canonical form
    /// that makes apply/revert exactly involutive (detach-compaction
    /// plus sorted re-insertion always lands back on the same slots).
    /// Child order never affects makespan (height is a max).
    fn sort_slots(&mut self, v: usize) {
        if self.n_children[v] == 2 && self.children[v][0] > self.children[v][1] {
            self.children[v].swap(0, 1);
        }
    }

    fn recompute_height(&mut self, v: usize) {
        let mut h = 0.0f64;
        for slot in 0..self.n_children[v] as usize {
            let c = self.children[v][slot];
            h = h.max(self.pos[v].dist(self.pos[c]) + self.height[c]);
        }
        self.height[v] = h;
    }

    /// Recomputes heights from `v` to the root — the `O(depth)` delta
    /// pass every move is built on.
    fn bubble_up(&mut self, mut v: usize) {
        loop {
            self.recompute_height(v);
            if v == 0 {
                break;
            }
            v = self.parent[v];
        }
    }

    /// Whether `candidate` lies in the subtree rooted at `v` (including
    /// `v` itself). `O(depth)` ancestor walk.
    fn in_subtree(&self, candidate: usize, v: usize) -> bool {
        let mut x = candidate;
        loop {
            if x == v {
                return true;
            }
            if x == 0 {
                return false;
            }
            x = self.parent[x];
        }
    }

    /// Subtree reassignment: detaches the subtree rooted at `v` and
    /// re-attaches it under `new_parent`. Returns `false` (tree
    /// untouched) when the move is invalid: `v` is the root, the target
    /// is `v`'s current parent, the target has no free child slot, or
    /// the target lies inside `v`'s own subtree (which would disconnect
    /// it). On success both affected root paths are re-evaluated in
    /// `O(depth)`.
    ///
    /// The move is its own inverse: `reassign(v, old_parent)` restores
    /// the previous tree (and, because heights are recomputed from the
    /// same inputs, the exact cache bits).
    pub fn reassign(&mut self, v: usize, new_parent: usize) -> bool {
        if v == 0 || new_parent == self.parent[v] {
            return false;
        }
        if (self.n_children[new_parent] as usize) >= Self::capacity(new_parent) {
            return false;
        }
        if self.in_subtree(new_parent, v) {
            return false;
        }
        let p = self.parent[v];
        // Detach, keeping the remaining sibling (if any) in slot 0.
        if self.children[p][0] == v {
            self.children[p][0] = self.children[p][1];
        }
        self.children[p][1] = NONE;
        self.n_children[p] -= 1;
        // Attach (child slots stay sorted — the canonical form).
        self.children[new_parent][self.n_children[new_parent] as usize] = v;
        self.n_children[new_parent] += 1;
        self.sort_slots(new_parent);
        self.parent[v] = new_parent;
        // v's own subtree heights are unchanged; both former and new
        // ancestor chains must be re-evaluated. Shared ancestors are
        // recomputed twice — the second pass sees only current values.
        self.bubble_up(p);
        self.bubble_up(new_parent);
        true
    }

    /// Wake-order swap: exchanges which robots are woken at tree slots
    /// `a` and `b` (payload swap — structure is untouched, the four-ish
    /// edges around `a` and `b` change weight). Returns `false` when a
    /// slot is the root or `a == b`. Applying the same swap again
    /// restores the previous tree and cache bits.
    pub fn swap(&mut self, a: usize, b: usize) -> bool {
        if a == 0 || b == 0 || a == b {
            return false;
        }
        self.robot.swap(a, b);
        self.pos.swap(a, b);
        // Each bubble starts at the touched node (its child edges moved
        // with its position); shared ancestors settle on the second pass.
        self.bubble_up(a);
        self.bubble_up(b);
        true
    }
}

/// One logical search stream: a candidate tree plus its private RNG.
struct Stream {
    tree: OptTree,
    rng: StdRng,
    moves_tried: u64,
    moves_accepted: u64,
}

impl Stream {
    /// Runs one round of random local moves under only-improving
    /// acceptance; returns the resulting makespan.
    fn run_round(&mut self, moves: usize) -> f64 {
        let len = self.tree.len();
        if len <= 2 {
            // 0 or 1 robots: no move can change anything.
            return self.tree.makespan();
        }
        for _ in 0..moves {
            self.moves_tried += 1;
            let before = self.tree.makespan();
            match self.rng.gen_range(0..2u32) {
                0 => {
                    let v = self.rng.gen_range(1..len);
                    let u = self.rng.gen_range(0..len);
                    let p = self.tree.parent[v];
                    if self.tree.reassign(v, u) {
                        if self.tree.makespan() < before {
                            self.moves_accepted += 1;
                        } else {
                            let ok = self.tree.reassign(v, p);
                            debug_assert!(ok, "reassign revert must apply");
                        }
                    }
                }
                _ => {
                    let a = self.rng.gen_range(1..len);
                    let b = self.rng.gen_range(1..len);
                    if self.tree.swap(a, b) {
                        if self.tree.makespan() < before {
                            self.moves_accepted += 1;
                        } else {
                            let ok = self.tree.swap(a, b);
                            debug_assert!(ok, "swap revert must apply");
                        }
                    }
                }
            }
        }
        self.tree.makespan()
    }
}

/// Splitmix64 finalizer: the per-stream RNG seed from `(seed, stream)`.
fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The initial tree of stream `i`: the fast quadtree for most streams,
/// with the median split (stream 1) and — on small instances — the
/// strong `O(n³)` greedy (stream 0) mixed in for diversity. The greedy
/// seed is what makes the optimizer dominate the greedy baseline by
/// construction wherever that baseline is tractable.
fn initial_tree(
    i: usize,
    root_pos: Point,
    items: &[(RobotId, Point)],
    config: &AnytimeConfig,
) -> OptTree {
    let tree = match i {
        0 if items.len() <= config.greedy_init_max_n => greedy_wake_tree(root_pos, items),
        1 => median_wake_tree(root_pos, items),
        _ => quadtree_wake_tree(root_pos, items),
    };
    OptTree::from_wake_tree(&tree)
}

/// Runs the parallel anytime optimizer; see the [module docs](self).
///
/// `seed` shapes every stream's RNG (split as `(seed, stream_id)`);
/// `pool` only maps the fixed logical streams onto threads, so the
/// result is byte-identical at any pool width. The ambient `cancel`
/// token aborts the job via [`Cancelled::unwind`] with no result; the
/// config's own [`AnytimeConfig::time_budget`] instead stops cleanly at
/// the best-so-far tree.
///
/// # Panics
///
/// Panics if `config.streams`, `config.rounds` or
/// `config.moves_per_round` is 0 (user-facing layers reject these
/// before this is reached), and unwinds with [`Cancelled`] when the
/// ambient token fires.
pub fn anytime_wake_tree(
    root_pos: Point,
    items: &[(RobotId, Point)],
    config: &AnytimeConfig,
    seed: u64,
    pool: &ParPool,
    cancel: &CancelToken,
) -> AnytimeReport {
    assert!(config.streams >= 1, "anytime needs at least one stream");
    assert!(config.rounds >= 1, "anytime needs at least one round");
    assert!(
        config.moves_per_round >= 1,
        "anytime needs at least one move per round"
    );
    let deadline = match config.time_budget {
        Some(budget) => CancelToken::with_deadline(budget),
        None => CancelToken::never(),
    };
    let streams: Vec<Mutex<Stream>> = (0..config.streams)
        .map(|i| {
            Mutex::new(Stream {
                tree: initial_tree(i, root_pos, items, config),
                rng: StdRng::seed_from_u64(split_seed(seed, i as u64)),
                moves_tried: 0,
                moves_accepted: 0,
            })
        })
        .collect();

    // Global best: strictly smallest makespan, ties to the lowest
    // stream id (the iteration order below).
    let mut best_makespan = f64::INFINITY;
    let mut best_tree: Option<OptTree> = None;
    for s in &streams {
        let s = s.lock().expect("stream lock");
        if s.tree.makespan() < best_makespan {
            best_makespan = s.tree.makespan();
            best_tree = Some(s.tree.clone());
        }
    }
    let mut best_tree = best_tree.expect("at least one stream");
    let initial_makespan = best_makespan;

    let mut rounds_run = 0;
    let mut strikes = 0;
    for _ in 0..config.rounds {
        if cancel.should_stop(true) {
            // Engine-owned cancellation: no partial result may escape
            // (the job either completes bit-identically or not at all).
            Cancelled::unwind();
        }
        if deadline.should_stop(true) {
            break; // anytime: return the best tree found so far
        }
        // One stream per batch: each worker locks a distinct stream, so
        // the pool adds concurrency without contention, and the
        // makespans come back in stream order at any width.
        let makespans = pool.map_batches(&streams, 1, |_, chunk| {
            let mut s = chunk[0].lock().expect("stream lock");
            s.run_round(config.moves_per_round)
        });
        rounds_run += 1;
        let mut improved = false;
        for (i, &m) in makespans.iter().enumerate() {
            if m < best_makespan {
                best_makespan = m;
                best_tree = streams[i].lock().expect("stream lock").tree.clone();
                improved = true;
            }
        }
        if improved {
            strikes = 0;
        } else {
            strikes += 1;
            if strikes >= config.strike_limit {
                break;
            }
        }
        // Exchange: strictly worse streams restart from the global best.
        for s in &streams {
            let mut s = s.lock().expect("stream lock");
            if s.tree.makespan() > best_makespan {
                s.tree = best_tree.clone();
            }
        }
    }

    let (moves_tried, moves_accepted) = streams.iter().fold((0, 0), |(t, a), s| {
        let s = s.lock().expect("stream lock");
        (t + s.moves_tried, a + s.moves_accepted)
    });
    AnytimeReport {
        tree: best_tree.to_wake_tree(),
        initial_makespan,
        makespan: best_makespan,
        rounds_run,
        moves_tried,
        moves_accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_items(n: usize, radius: f64, seed: u64) -> Vec<(RobotId, Point)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x: f64 = rng.gen_range(-radius..radius);
                let y: f64 = rng.gen_range(-radius..radius);
                (RobotId::sleeper(i), Point::new(x, y))
            })
            .collect()
    }

    fn run(items: &[(RobotId, Point)], config: &AnytimeConfig, threads: usize) -> AnytimeReport {
        anytime_wake_tree(
            Point::ORIGIN,
            items,
            config,
            7,
            &ParPool::new(threads),
            &CancelToken::never(),
        )
    }

    #[test]
    fn round_trip_preserves_tree_and_makespan_cache() {
        let items = random_items(80, 20.0, 3);
        let tree = quadtree_wake_tree(Point::ORIGIN, &items);
        let opt = OptTree::from_wake_tree(&tree);
        assert!(opt.cache_matches_oracle());
        let back = opt.to_wake_tree();
        assert_eq!(back.robot_count(), tree.robot_count());
        assert_eq!(back.woken_robots(), tree.woken_robots());
        assert_eq!(back.makespan().to_bits(), tree.makespan().to_bits());
    }

    #[test]
    fn moves_keep_the_cache_consistent_and_are_invertible() {
        let items = random_items(60, 15.0, 5);
        let mut opt = OptTree::from_wake_tree(&quadtree_wake_tree(Point::ORIGIN, &items));
        let snapshot = opt.clone();
        let mut rng = StdRng::seed_from_u64(11);
        let len = opt.len();
        let mut log: Vec<(u8, usize, usize, usize)> = Vec::new();
        for _ in 0..500 {
            if rng.gen_bool(0.5) {
                let v = rng.gen_range(1..len);
                let u = rng.gen_range(0..len);
                let p = opt.parent[v];
                if opt.reassign(v, u) {
                    log.push((0, v, u, p));
                }
            } else {
                let a = rng.gen_range(1..len);
                let b = rng.gen_range(1..len);
                if opt.swap(a, b) {
                    log.push((1, a, b, 0));
                }
            }
            assert!(opt.cache_matches_oracle(), "cache drifted after a move");
        }
        assert!(!log.is_empty(), "no move applied — test is vacuous");
        // Unwind the full move log: the exact starting state returns.
        for &(kind, x, y, p) in log.iter().rev() {
            let ok = if kind == 0 {
                opt.reassign(x, p)
            } else {
                opt.swap(x, y)
            };
            assert!(ok, "inverse move must apply");
        }
        assert_eq!(opt, snapshot, "move log unwind must restore the tree");
    }

    #[test]
    fn reassign_rejects_structurally_invalid_moves() {
        // Chain: root -> a -> b -> c.
        let mut t = WakeTree::new(Point::ORIGIN);
        let a = t.add_child(WakeTree::ROOT, RobotId::sleeper(0), Point::new(1.0, 0.0));
        let b = t.add_child(a, RobotId::sleeper(1), Point::new(2.0, 0.0));
        let c = t.add_child(b, RobotId::sleeper(2), Point::new(3.0, 0.0));
        let mut opt = OptTree::from_wake_tree(&t);
        assert!(!opt.reassign(0, a), "root cannot move");
        assert!(!opt.reassign(b, a), "already the parent");
        assert!(!opt.reassign(a, c), "target inside own subtree");
        assert!(!opt.reassign(c, 0), "root already has one child");
        assert!(!opt.swap(a, a), "self-swap rejected");
        assert!(!opt.swap(0, a), "root payload is pinned");
        // A valid move: c re-parented under a (a has one free slot).
        assert!(opt.reassign(c, a));
        assert!(opt.cache_matches_oracle());
        assert_eq!(opt.to_wake_tree().woken_robots().len(), 3);
    }

    #[test]
    fn optimizer_improves_and_never_regresses() {
        let items = random_items(120, 25.0, 1);
        let report = run(&items, &AnytimeConfig::default(), 2);
        assert!(report.makespan <= report.initial_makespan);
        assert!(report.moves_accepted > 0, "no improving move on n=120");
        assert!(report.rounds_run >= 1);
        let tree = &report.tree;
        assert_eq!(tree.robot_count(), 120);
        assert_eq!(tree.woken_robots().len(), 120);
        // The reported makespan is the optimizer's own (bottom-up)
        // evaluation of the same tree: agreement up to accumulation
        // order.
        assert!((tree.makespan() - report.makespan).abs() <= 1e-9 * report.makespan.max(1.0));
    }

    #[test]
    fn result_is_byte_identical_at_any_pool_width() {
        let items = random_items(90, 18.0, 9);
        let config = AnytimeConfig {
            rounds: 6,
            moves_per_round: 300,
            ..AnytimeConfig::default()
        };
        let base = run(&items, &config, 1);
        for threads in [2, 4] {
            let other = run(&items, &config, threads);
            assert_eq!(base.tree, other.tree, "threads={threads}");
            assert_eq!(
                base.makespan.to_bits(),
                other.makespan.to_bits(),
                "threads={threads}"
            );
            assert_eq!(base.moves_tried, other.moves_tried);
            assert_eq!(base.moves_accepted, other.moves_accepted);
            assert_eq!(base.rounds_run, other.rounds_run);
        }
    }

    #[test]
    fn different_seeds_explore_differently() {
        let items = random_items(70, 14.0, 4);
        let config = AnytimeConfig {
            rounds: 4,
            moves_per_round: 200,
            ..AnytimeConfig::default()
        };
        let a = anytime_wake_tree(
            Point::ORIGIN,
            &items,
            &config,
            1,
            &ParPool::sequential(),
            &CancelToken::never(),
        );
        let b = anytime_wake_tree(
            Point::ORIGIN,
            &items,
            &config,
            2,
            &ParPool::sequential(),
            &CancelToken::never(),
        );
        // Same instance, different seeds: counters virtually never agree.
        assert_ne!(
            (a.moves_accepted, a.makespan.to_bits()),
            (b.moves_accepted, b.makespan.to_bits())
        );
    }

    #[test]
    fn dominates_the_greedy_baseline_on_small_instances() {
        // greedy_init_max_n covers these sizes, so domination is by
        // construction (greedy seed + only-improving moves).
        for seed in [1, 2, 3] {
            let items = random_items(100, 20.0, seed);
            let greedy = greedy_wake_tree(Point::ORIGIN, &items).makespan();
            let report = run(&items, &AnytimeConfig::default(), 2);
            assert!(
                report.makespan <= greedy + 1e-12,
                "anytime {} vs greedy {} (seed {seed})",
                report.makespan,
                greedy
            );
        }
    }

    #[test]
    fn empty_and_singleton_instances_are_handled() {
        let report = run(&[], &AnytimeConfig::default(), 2);
        assert_eq!(report.tree.robot_count(), 0);
        assert_eq!(report.makespan, 0.0);
        let one = [(RobotId::sleeper(0), Point::new(3.0, 4.0))];
        let report = run(&one, &AnytimeConfig::default(), 2);
        assert_eq!(report.tree.robot_count(), 1);
        assert!((report.makespan - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ambient_cancellation_aborts_without_a_result() {
        let items = random_items(50, 10.0, 2);
        let token = CancelToken::new();
        token.cancel();
        let caught = freezetag_sim::catch_cancel(|| {
            anytime_wake_tree(
                Point::ORIGIN,
                &items,
                &AnytimeConfig::default(),
                7,
                &ParPool::sequential(),
                &token,
            )
        });
        assert!(caught.is_err(), "fired ambient token must unwind");
    }

    #[test]
    fn expired_time_budget_still_returns_a_valid_tree() {
        let items = random_items(50, 10.0, 2);
        let config = AnytimeConfig {
            time_budget: Some(Duration::from_secs(0)),
            ..AnytimeConfig::default()
        };
        let report = run(&items, &config, 2);
        // The deadline fires before the first barrier: zero rounds, but
        // the best initial tree is still a complete, valid answer.
        assert_eq!(report.rounds_run, 0);
        assert_eq!(report.tree.woken_robots().len(), 50);
        assert!(report.makespan <= report.initial_makespan);
    }
}
