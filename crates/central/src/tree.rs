use freezetag_geometry::Point;
use freezetag_sim::RobotId;

/// Index of a node inside a [`WakeTree`].
pub type NodeId = usize;

#[derive(Debug, Clone, PartialEq)]
struct Node {
    robot: RobotId,
    pos: Point,
    children: Vec<NodeId>,
}

/// A binary wake-up tree (Section 1.1 of the paper).
///
/// The root is the position of the initially-awake robot and has at most
/// one child; every other node is a robot to wake and has at most two
/// children (after a wake, exactly two robots — waker and woken — depart
/// from the node, each towards one child subtree). The *makespan* of the
/// tree is its weighted depth: the largest root-to-node path length.
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_sim::RobotId;
/// use freezetag_central::WakeTree;
///
/// let mut t = WakeTree::new(Point::ORIGIN);
/// let a = t.add_child(WakeTree::ROOT, RobotId::sleeper(0), Point::new(3.0, 4.0));
/// t.add_child(a, RobotId::sleeper(1), Point::new(3.0, 5.0));
/// assert_eq!(t.makespan(), 6.0); // 5 + 1
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WakeTree {
    nodes: Vec<Node>,
}

impl WakeTree {
    /// The root's node id.
    pub const ROOT: NodeId = 0;

    /// A tree containing only the root (the initially-awake robot's
    /// position); realizes to a no-op.
    pub fn new(root_pos: Point) -> Self {
        WakeTree {
            nodes: vec![Node {
                robot: RobotId::SOURCE,
                pos: root_pos,
                children: Vec::new(),
            }],
        }
    }

    /// Adds a wake of `robot` (at position `pos`) as a child of `parent`.
    /// Returns the new node's id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not exist, if the root would get a second
    /// child, or any other node a third child.
    pub fn add_child(&mut self, parent: NodeId, robot: RobotId, pos: Point) -> NodeId {
        let limit = if parent == Self::ROOT { 1 } else { 2 };
        assert!(
            self.nodes[parent].children.len() < limit,
            "node {parent} already has {} children (limit {limit})",
            self.nodes[parent].children.len()
        );
        let id = self.nodes.len();
        self.nodes.push(Node {
            robot,
            pos,
            children: Vec::new(),
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// The robot woken at `node` (the source for the root).
    pub fn robot(&self, node: NodeId) -> RobotId {
        self.nodes[node].robot
    }

    /// The position of `node`.
    pub fn pos(&self, node: NodeId) -> Point {
        self.nodes[node].pos
    }

    /// Children of `node` (≤ 1 for the root, ≤ 2 otherwise).
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node].children
    }

    /// Total number of nodes, including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree contains only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Number of robots to wake (nodes minus the root).
    pub fn robot_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The weighted depth: max over nodes of the root-to-node path length,
    /// where each edge weighs the Euclidean distance between endpoint
    /// positions. This equals the makespan of realizing the tree with
    /// Algorithm 1.
    pub fn makespan(&self) -> f64 {
        let mut best: f64 = 0.0;
        let mut stack: Vec<(NodeId, f64)> = vec![(Self::ROOT, 0.0)];
        while let Some((v, d)) = stack.pop() {
            best = best.max(d);
            for &c in &self.nodes[v].children {
                let w = self.nodes[v].pos.dist(self.nodes[c].pos);
                stack.push((c, d + w));
            }
        }
        best
    }

    /// Total edge weight of the tree (sum of all wake-travel distances —
    /// the swarm's total energy for the realization, ignoring entry legs).
    pub fn total_length(&self) -> f64 {
        let mut sum = 0.0;
        for (v, node) in self.nodes.iter().enumerate() {
            for &c in &node.children {
                sum += self.nodes[v].pos.dist(self.nodes[c].pos);
            }
        }
        sum
    }

    /// A structural fingerprint of the tree: FNV-1a over every node's
    /// robot index, exact position bits, and child list, in node order.
    /// Two trees digest equal iff they are byte-identical — the cheap
    /// cross-run comparator behind the `--workers 1/2/4` determinism
    /// checks in CI and `dftp solve` output.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |x: u64| {
            for byte in x.to_le_bytes() {
                h = (h ^ u64::from(byte)).wrapping_mul(PRIME);
            }
        };
        for node in &self.nodes {
            eat(node.robot.index() as u64);
            eat(node.pos.x.to_bits());
            eat(node.pos.y.to_bits());
            eat(node.children.len() as u64);
            for &c in &node.children {
                eat(c as u64);
            }
        }
        h
    }

    /// Checks structural sanity: every non-root robot appears exactly once
    /// and is not the source. Returns the sorted list of woken robots.
    ///
    /// # Panics
    ///
    /// Panics on duplicates or a source-waking node.
    pub fn woken_robots(&self) -> Vec<RobotId> {
        let mut robots: Vec<RobotId> = self.nodes[1..].iter().map(|n| n.robot).collect();
        robots.sort_unstable();
        for w in robots.windows(2) {
            assert!(w[0] != w[1], "robot {} woken twice", w[0]);
        }
        assert!(
            !robots.contains(&RobotId::SOURCE),
            "tree wakes the source robot"
        );
        robots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_only_tree() {
        let t = WakeTree::new(Point::ORIGIN);
        assert!(t.is_empty());
        assert_eq!(t.len(), 1);
        assert_eq!(t.robot_count(), 0);
        assert_eq!(t.makespan(), 0.0);
        assert_eq!(t.total_length(), 0.0);
        assert!(t.woken_robots().is_empty());
    }

    #[test]
    fn makespan_is_deepest_path() {
        let mut t = WakeTree::new(Point::ORIGIN);
        let a = t.add_child(WakeTree::ROOT, RobotId::sleeper(0), Point::new(1.0, 0.0));
        let b = t.add_child(a, RobotId::sleeper(1), Point::new(1.0, 2.0));
        t.add_child(a, RobotId::sleeper(2), Point::new(4.0, 0.0));
        t.add_child(b, RobotId::sleeper(3), Point::new(1.0, 2.5));
        // Paths: 1+2+0.5 = 3.5 vs 1+3 = 4.
        assert_eq!(t.makespan(), 4.0);
        assert_eq!(t.total_length(), 1.0 + 2.0 + 3.0 + 0.5);
    }

    #[test]
    fn digest_separates_distinct_trees() {
        let mut a = WakeTree::new(Point::ORIGIN);
        let r = a.add_child(WakeTree::ROOT, RobotId::sleeper(0), Point::new(1.0, 0.0));
        a.add_child(r, RobotId::sleeper(1), Point::new(2.0, 0.0));
        let same = a.clone();
        assert_eq!(a.digest(), same.digest());
        let mut b = WakeTree::new(Point::ORIGIN);
        let r = b.add_child(WakeTree::ROOT, RobotId::sleeper(1), Point::new(1.0, 0.0));
        b.add_child(r, RobotId::sleeper(0), Point::new(2.0, 0.0));
        assert_ne!(a.digest(), b.digest(), "robot order must change the digest");
    }

    #[test]
    #[should_panic]
    fn root_cannot_have_two_children() {
        let mut t = WakeTree::new(Point::ORIGIN);
        t.add_child(WakeTree::ROOT, RobotId::sleeper(0), Point::new(1.0, 0.0));
        t.add_child(WakeTree::ROOT, RobotId::sleeper(1), Point::new(2.0, 0.0));
    }

    #[test]
    #[should_panic]
    fn inner_node_capped_at_two_children() {
        let mut t = WakeTree::new(Point::ORIGIN);
        let a = t.add_child(WakeTree::ROOT, RobotId::sleeper(0), Point::new(1.0, 0.0));
        t.add_child(a, RobotId::sleeper(1), Point::new(2.0, 0.0));
        t.add_child(a, RobotId::sleeper(2), Point::new(3.0, 0.0));
        t.add_child(a, RobotId::sleeper(3), Point::new(4.0, 0.0));
    }

    #[test]
    #[should_panic]
    fn duplicate_robot_is_caught() {
        let mut t = WakeTree::new(Point::ORIGIN);
        let a = t.add_child(WakeTree::ROOT, RobotId::sleeper(0), Point::new(1.0, 0.0));
        t.add_child(a, RobotId::sleeper(0), Point::new(2.0, 0.0));
        let _ = t.woken_robots();
    }
}
