use freezetag_geometry::Point;

/// Exhaustive branch-and-bound for the optimal centralized makespan.
///
/// State: the multiset of awake robots as `(position, available time)`
/// pairs plus the set of still-sleeping positions; branches over which
/// awake robot wakes which sleeper next. Pruning: a branch is cut when its
/// optimistic completion (current best wake time plus the largest remaining
/// direct distance from any awake robot) already exceeds the incumbent.
///
/// Exponential — intended for `n ≤ 9` as ground truth in tests comparing
/// [`crate::quadtree_wake_tree`] and [`crate::greedy_wake_tree`] against
/// the true optimum (the paper cites NP-hardness of exactly this problem
/// \[ABF+06, AAJ17\]).
///
/// # Panics
///
/// Panics if `sleepers.len() > 10` (guard against accidental blow-up).
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_central::optimal_makespan;
///
/// let opt = optimal_makespan(Point::ORIGIN, &[Point::new(1.0, 0.0), Point::new(-1.0, 0.0)]);
/// assert!((opt - 3.0).abs() < 1e-9);
/// ```
pub fn optimal_makespan(root_pos: Point, sleepers: &[Point]) -> f64 {
    assert!(
        sleepers.len() <= 10,
        "optimal_makespan is exponential; {} sleepers is too many",
        sleepers.len()
    );
    if sleepers.is_empty() {
        return 0.0;
    }
    let mut best = f64::INFINITY;
    let mut awake: Vec<(Point, f64)> = vec![(root_pos, 0.0)];
    let mut remaining: Vec<Point> = sleepers.to_vec();
    search(&mut awake, &mut remaining, 0.0, &mut best);
    best
}

fn lower_bound(awake: &[(Point, f64)], remaining: &[Point], current_max: f64) -> f64 {
    // Each remaining sleeper must be reached by some awake robot: at least
    // min over awake of (time + dist).
    let mut lb = current_max;
    for &p in remaining {
        let reach = awake
            .iter()
            .map(|&(a, t)| t + a.dist(p))
            .fold(f64::INFINITY, f64::min);
        lb = lb.max(reach);
    }
    lb
}

fn search(
    awake: &mut Vec<(Point, f64)>,
    remaining: &mut Vec<Point>,
    current_max: f64,
    best: &mut f64,
) {
    if remaining.is_empty() {
        *best = best.min(current_max);
        return;
    }
    if lower_bound(awake, remaining, current_max) >= *best - freezetag_geometry::EPS {
        return;
    }
    let n_awake = awake.len();
    let n_rem = remaining.len();
    for ai in 0..n_awake {
        for ri in 0..n_rem {
            let (apos, atime) = awake[ai];
            let target = remaining[ri];
            let finish = atime + apos.dist(target);
            if finish >= *best - freezetag_geometry::EPS {
                continue;
            }
            // Commit: waker relocates, woken robot activates.
            let saved_awake = awake[ai];
            awake[ai] = (target, finish);
            awake.push((target, finish));
            let saved_rem = remaining.swap_remove(ri);
            search(awake, remaining, current_max.max(finish), best);
            remaining.push(saved_rem);
            let last = remaining.len() - 1;
            remaining.swap(ri, last);
            awake.pop();
            awake[ai] = saved_awake;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{greedy_wake_tree, quadtree_wake_tree};
    use freezetag_sim::RobotId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn single_robot_is_direct_distance() {
        assert_eq!(
            optimal_makespan(Point::ORIGIN, &[Point::new(3.0, 4.0)]),
            5.0
        );
        assert_eq!(optimal_makespan(Point::ORIGIN, &[]), 0.0);
    }

    #[test]
    fn symmetric_pair_requires_crossing() {
        // (1,0) and (-1,0): optimum 3 (wake one, then both... one crosses).
        let opt = optimal_makespan(
            Point::ORIGIN,
            &[Point::new(1.0, 0.0), Point::new(-1.0, 0.0)],
        );
        assert!((opt - 3.0).abs() < 1e-9);
    }

    #[test]
    fn forking_beats_chaining() {
        // Four points on a cross at distance 1: with forking the makespan
        // is strictly less than the 4-chain.
        let pts = [
            Point::new(1.0, 0.0),
            Point::new(-1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(0.0, -1.0),
        ];
        let opt = optimal_makespan(Point::ORIGIN, &pts);
        assert!(opt < 4.0);
        assert!(opt >= 1.0);
    }

    #[test]
    fn strategies_are_never_better_than_optimal() {
        let mut rng = StdRng::seed_from_u64(77);
        for case in 0..8 {
            let n = 3 + case % 4;
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)))
                .collect();
            let items: Vec<(RobotId, Point)> = pts
                .iter()
                .enumerate()
                .map(|(i, &p)| (RobotId::sleeper(i), p))
                .collect();
            let opt = optimal_makespan(Point::ORIGIN, &pts);
            let quad = quadtree_wake_tree(Point::ORIGIN, &items).makespan();
            let greedy = greedy_wake_tree(Point::ORIGIN, &items).makespan();
            assert!(quad >= opt - 1e-9, "quadtree {quad} beat optimal {opt}");
            assert!(greedy >= opt - 1e-9, "greedy {greedy} beat optimal {opt}");
            // And stay within a sane approximation factor on tiny inputs.
            assert!(quad <= 6.0 * opt + 1e-9, "quadtree ratio too big");
        }
    }
}
