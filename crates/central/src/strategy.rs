use crate::{chain_wake_tree, greedy_wake_tree, median_wake_tree, quadtree_wake_tree, WakeTree};
use freezetag_geometry::Point;
use freezetag_sim::RobotId;
use std::fmt;

/// Selectable centralized wake-up strategy — lets the distributed
/// algorithms ablate their Lemma 2 substitute end-to-end (see the
/// `ablation` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WakeStrategy {
    /// Midline quadtree — `O(R)` makespan, the workspace default.
    #[default]
    Quadtree,
    /// Earliest-finish greedy — strong on uniform swarms, no worst-case
    /// guarantee.
    Greedy,
    /// Count-balanced median split — ablation foil for the midline choice.
    MedianSplit,
    /// Nearest-neighbour chain without forking — the naive baseline.
    Chain,
}

impl WakeStrategy {
    /// Builds a wake-up tree over `items` rooted at `root_pos` using this
    /// strategy.
    ///
    /// # Example
    ///
    /// ```
    /// use freezetag_central::WakeStrategy;
    /// use freezetag_geometry::Point;
    /// use freezetag_sim::RobotId;
    ///
    /// let items = vec![(RobotId::sleeper(0), Point::new(0.0, 3.0))];
    /// let tree = WakeStrategy::Greedy.build(Point::ORIGIN, &items);
    /// assert_eq!(tree.makespan(), 3.0);
    /// ```
    pub fn build(self, root_pos: Point, items: &[(RobotId, Point)]) -> WakeTree {
        match self {
            WakeStrategy::Quadtree => quadtree_wake_tree(root_pos, items),
            WakeStrategy::Greedy => greedy_wake_tree(root_pos, items),
            WakeStrategy::MedianSplit => median_wake_tree(root_pos, items),
            WakeStrategy::Chain => chain_wake_tree(root_pos, items),
        }
    }

    /// All strategies, for sweeps.
    pub const ALL: [WakeStrategy; 4] = [
        WakeStrategy::Quadtree,
        WakeStrategy::Greedy,
        WakeStrategy::MedianSplit,
        WakeStrategy::Chain,
    ];
}

impl fmt::Display for WakeStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WakeStrategy::Quadtree => write!(f, "quadtree"),
            WakeStrategy::Greedy => write!(f, "greedy"),
            WakeStrategy::MedianSplit => write!(f, "median"),
            WakeStrategy::Chain => write!(f, "chain"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_strategy_wakes_everyone() {
        let items: Vec<(RobotId, Point)> = (0..25)
            .map(|i| {
                (
                    RobotId::sleeper(i),
                    Point::new((i % 5) as f64, (i / 5) as f64),
                )
            })
            .collect();
        for s in WakeStrategy::ALL {
            let tree = s.build(Point::new(2.0, 2.0), &items);
            assert_eq!(tree.robot_count(), 25, "{s}");
            assert_eq!(tree.woken_robots().len(), 25, "{s}");
        }
    }

    #[test]
    fn default_is_quadtree() {
        assert_eq!(WakeStrategy::default(), WakeStrategy::Quadtree);
    }

    #[test]
    fn display_names_are_distinct() {
        let names: std::collections::BTreeSet<String> =
            WakeStrategy::ALL.iter().map(|s| s.to_string()).collect();
        assert_eq!(names.len(), 4);
    }
}
