use crate::WakeTree;
use freezetag_geometry::Point;
use freezetag_sim::RobotId;
use std::collections::HashMap;

/// Earliest-finish greedy wake-up tree: repeatedly pick the
/// (awake robot, sleeping robot) pair minimizing the wake time
/// `t_awake + dist`, and commit it. A classic baseline — good on dense
/// uniform swarms, but with no worst-case guarantee (compare against
/// [`crate::quadtree_wake_tree`] in the benchmarks).
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_sim::RobotId;
/// use freezetag_central::greedy_wake_tree;
///
/// let items = vec![
///     (RobotId::sleeper(0), Point::new(1.0, 0.0)),
///     (RobotId::sleeper(1), Point::new(-1.0, 0.0)),
/// ];
/// let tree = greedy_wake_tree(Point::ORIGIN, &items);
/// assert_eq!(tree.robot_count(), 2);
/// // Greedy wakes the nearest first (tie broken by order), then forks.
/// assert!((tree.makespan() - 3.0).abs() < 1e-9);
/// ```
pub fn greedy_wake_tree(root_pos: Point, items: &[(RobotId, Point)]) -> WakeTree {
    let mut tree = WakeTree::new(root_pos);
    // Active robots: (current position, available time, tree node they sit at).
    let mut active: Vec<(Point, f64, usize)> = vec![(root_pos, 0.0, WakeTree::ROOT)];
    let mut asleep: HashMap<RobotId, Point> = items.iter().copied().collect();
    // Keep deterministic order for ties.
    let mut asleep_order: Vec<RobotId> = items.iter().map(|&(r, _)| r).collect();

    while !asleep_order.is_empty() {
        let mut best: Option<(f64, usize, usize)> = None; // (finish, active idx, order idx)
        for (ai, &(apos, atime, _)) in active.iter().enumerate() {
            for (oi, r) in asleep_order.iter().enumerate() {
                let p = asleep[r];
                let finish = atime + apos.dist(p);
                let better = match best {
                    None => true,
                    Some((bf, _, _)) => finish < bf - freezetag_geometry::EPS,
                };
                if better {
                    best = Some((finish, ai, oi));
                }
            }
        }
        let (finish, ai, oi) = best.expect("asleep non-empty");
        let robot = asleep_order.remove(oi);
        let pos = asleep.remove(&robot).expect("tracked");
        let parent_node = active[ai].2;
        let node = tree.add_child(parent_node, robot, pos);
        // The waker moves to the new node; the woken robot activates there.
        active[ai] = (pos, finish, node);
        active.push((pos, finish, node));
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_items(n: usize) -> Vec<(RobotId, Point)> {
        (0..n)
            .map(|i| (RobotId::sleeper(i), Point::new((i + 1) as f64, 0.0)))
            .collect()
    }

    #[test]
    fn wakes_all_on_a_line() {
        let tree = greedy_wake_tree(Point::ORIGIN, &line_items(6));
        assert_eq!(tree.robot_count(), 6);
        assert_eq!(tree.woken_robots().len(), 6);
        // On a line greedy just walks right: makespan = 6.
        assert!((tree.makespan() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn forks_help_on_symmetric_input() {
        let items = vec![
            (RobotId::sleeper(0), Point::new(1.0, 0.0)),
            (RobotId::sleeper(1), Point::new(-1.0, 0.0)),
            (RobotId::sleeper(2), Point::new(2.0, 0.0)),
            (RobotId::sleeper(3), Point::new(-2.0, 0.0)),
        ];
        let tree = greedy_wake_tree(Point::ORIGIN, &items);
        // Wake (1,0); pair splits: one goes to 2, the other crosses to -1
        // then -2. Makespan = 1 + 2 + 1 = 4 for the crosser.
        assert!((tree.makespan() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input() {
        let tree = greedy_wake_tree(Point::ORIGIN, &[]);
        assert!(tree.is_empty());
    }

    #[test]
    fn respects_binary_arity() {
        // A star forces many forks; woken_robots() panics on structure
        // violations, so reaching the assert is the test.
        let items: Vec<_> = (0..30)
            .map(|i| {
                let a = std::f64::consts::TAU * i as f64 / 30.0;
                (
                    RobotId::sleeper(i),
                    Point::new(a.cos() * 5.0, a.sin() * 5.0),
                )
            })
            .collect();
        let tree = greedy_wake_tree(Point::ORIGIN, &items);
        assert_eq!(tree.woken_robots().len(), 30);
    }
}
