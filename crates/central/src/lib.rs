//! Centralized Freeze Tag: waking robots whose positions are *known*.
//!
//! The distributed algorithms of the paper repeatedly reduce to the
//! centralized problem: once a team knows the sleeping positions inside a
//! region, one robot computes a *wake-up tree* and the swarm realizes it
//! (Lemma 2 and Algorithm 1 of the paper). This crate provides:
//!
//! * [`WakeTree`] — the binary wake-up tree structure (root = the initial
//!   robot, one child; every other node ≤ 2 children);
//! * [`quadtree_wake_tree`] — a divide-and-conquer strategy with makespan
//!   `O(R)` for points in a region of diameter `R` (our stand-in for the
//!   5R algorithm of \[BCGH24\], see DESIGN.md);
//! * [`greedy_wake_tree`] — the earliest-finish greedy baseline;
//! * [`anytime_wake_tree`] — a parallel anytime local-search optimizer
//!   over wake trees with `O(depth)` delta evaluation, the strong
//!   centralized baseline behind the competitive-ratio tables;
//! * [`optimal_makespan`] — exhaustive branch-and-bound for tiny inputs,
//!   used to sanity-check the approximation quality of the strategies;
//! * [`realize`] — Algorithm 1: executes a wake-up tree on a
//!   [`freezetag_sim::Sim`], splitting the tree between waker and woken at
//!   every node.
//!
//! # Example
//!
//! ```
//! use freezetag_geometry::Point;
//! use freezetag_sim::RobotId;
//! use freezetag_central::quadtree_wake_tree;
//!
//! let items = vec![
//!     (RobotId::sleeper(0), Point::new(1.0, 0.0)),
//!     (RobotId::sleeper(1), Point::new(0.0, 2.0)),
//!     (RobotId::sleeper(2), Point::new(-1.0, -1.0)),
//! ];
//! let tree = quadtree_wake_tree(Point::ORIGIN, &items);
//! assert_eq!(tree.robot_count(), 3);
//! assert!(tree.makespan() > 0.0);
//! ```

pub mod anytime;
mod greedy;
pub mod online;
mod optimal;
mod propagate;
mod quadtree;
mod strategy;
mod tree;
mod variants;

pub use anytime::{anytime_wake_tree, AnytimeConfig, AnytimeReport, OptTree};
pub use greedy::greedy_wake_tree;
pub use optimal::optimal_makespan;
pub use propagate::realize;
pub use quadtree::quadtree_wake_tree;
pub use strategy::WakeStrategy;
pub use tree::{NodeId, WakeTree};
pub use variants::{chain_wake_tree, median_wake_tree};
