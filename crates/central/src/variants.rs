//! Ablation variants of the centralized wake-up strategy, used by the
//! `ablation` bench to justify the design choices documented in DESIGN.md:
//!
//! * [`chain_wake_tree`] — no forking at all: one robot wakes everyone in
//!   nearest-neighbour order. The worst reasonable baseline (`Θ(n)`-depth
//!   makespan) — shows what the binary forking of wake-up trees buys.
//! * [`median_wake_tree`] — the quadtree strategy but splitting at the
//!   *median* point (balancing counts) instead of the geometric midline.
//!   Balanced counts do **not** give `O(R)` makespan (a far cluster can be
//!   chained through repeatedly); the bench measures the gap.

use crate::WakeTree;
use freezetag_geometry::{Point, Rect};
use freezetag_sim::RobotId;

/// Pure nearest-neighbour chain: the single awake robot visits the closest
/// unvisited sleeper, wakes it, and *the waker* moves on (no forking).
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_sim::RobotId;
/// use freezetag_central::chain_wake_tree;
///
/// let items = vec![
///     (RobotId::sleeper(0), Point::new(1.0, 0.0)),
///     (RobotId::sleeper(1), Point::new(2.0, 0.0)),
/// ];
/// let tree = chain_wake_tree(Point::ORIGIN, &items);
/// assert_eq!(tree.makespan(), 2.0);
/// ```
pub fn chain_wake_tree(root_pos: Point, items: &[(RobotId, Point)]) -> WakeTree {
    let mut tree = WakeTree::new(root_pos);
    let mut remaining: Vec<(RobotId, Point)> = items.to_vec();
    let mut pos = root_pos;
    let mut node = WakeTree::ROOT;
    while !remaining.is_empty() {
        let next = remaining
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.1.dist_sq(pos)
                    .partial_cmp(&b.1.dist_sq(pos))
                    .expect("finite")
            })
            .map(|(i, _)| i)
            .expect("non-empty");
        let (robot, p) = remaining.swap_remove(next);
        node = tree.add_child(node, robot, p);
        pos = p;
    }
    tree
}

/// Quadtree-style recursion splitting at the coordinate *median* of the
/// longer axis (count-balanced) rather than the geometric midline.
pub fn median_wake_tree(root_pos: Point, items: &[(RobotId, Point)]) -> WakeTree {
    let mut tree = WakeTree::new(root_pos);
    if items.is_empty() {
        return tree;
    }
    build_median(&mut tree, WakeTree::ROOT, root_pos, items.to_vec());
    tree
}

fn build_median(
    tree: &mut WakeTree,
    parent: crate::NodeId,
    from: Point,
    mut items: Vec<(RobotId, Point)>,
) {
    if items.is_empty() {
        return;
    }
    let pivot_idx = items
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.1.dist_sq(from)
                .partial_cmp(&b.1.dist_sq(from))
                .expect("finite")
        })
        .map(|(i, _)| i)
        .expect("non-empty");
    let (pivot_robot, pivot_pos) = items.swap_remove(pivot_idx);
    let node = tree.add_child(parent, pivot_robot, pivot_pos);
    if items.is_empty() {
        return;
    }
    // Median split along the longer axis of the bounding rectangle.
    let rect = Rect::bounding(items.iter().map(|&(_, p)| p)).expect("non-empty");
    let horizontal = rect.width() >= rect.height();
    items.sort_by(|a, b| {
        let (ka, kb) = if horizontal {
            (a.1.x, b.1.x)
        } else {
            (a.1.y, b.1.y)
        };
        ka.partial_cmp(&kb).expect("finite")
    });
    let mid = items.len() / 2;
    let right = items.split_off(mid);
    build_median(tree, node, pivot_pos, items);
    build_median(tree, node, pivot_pos, right);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadtree_wake_tree;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_items(n: usize, radius: f64, seed: u64) -> Vec<(RobotId, Point)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    RobotId::sleeper(i),
                    Point::new(
                        rng.gen_range(-radius..=radius),
                        rng.gen_range(-radius..=radius),
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn chain_is_a_path() {
        let items = random_items(20, 10.0, 1);
        let tree = chain_wake_tree(Point::ORIGIN, &items);
        assert_eq!(tree.robot_count(), 20);
        assert_eq!(tree.woken_robots().len(), 20);
        // Every node has at most one child: it is a path.
        for node in 0..tree.len() {
            assert!(tree.children(node).len() <= 1);
        }
        // Path makespan equals total length.
        assert!((tree.makespan() - tree.total_length()).abs() < 1e-9);
    }

    #[test]
    fn forking_beats_chaining_on_spread_inputs() {
        let items = random_items(120, 30.0, 2);
        let chain = chain_wake_tree(Point::ORIGIN, &items).makespan();
        let quad = quadtree_wake_tree(Point::ORIGIN, &items).makespan();
        assert!(
            quad < chain / 3.0,
            "forking ({quad:.1}) should crush chaining ({chain:.1})"
        );
    }

    #[test]
    fn median_variant_wakes_everyone() {
        let items = random_items(60, 15.0, 3);
        let tree = median_wake_tree(Point::ORIGIN, &items);
        assert_eq!(tree.robot_count(), 60);
        assert_eq!(tree.woken_robots().len(), 60);
    }

    #[test]
    fn midline_beats_median_on_skewed_inputs() {
        // Skewed input: a dense near cluster plus a far singleton. The
        // median split keeps dragging the far point into balanced halves,
        // the midline isolates it geometrically.
        let mut items = random_items(80, 2.0, 4);
        items.push((RobotId::sleeper(80), Point::new(100.0, 100.0)));
        let midline = quadtree_wake_tree(Point::ORIGIN, &items).makespan();
        let median = median_wake_tree(Point::ORIGIN, &items).makespan();
        assert!(
            midline <= median + 1e-9,
            "midline {midline:.1} should not lose to median {median:.1} here"
        );
    }
}
