//! Online Freeze Tag — the arrival-over-time setting the paper cites as
//! the first step away from global knowledge (\[HNP06\], \[BW20\] in its
//! bibliography): each sleeping robot *appears* at a release time not
//! known in advance, and must then be reached by an awake robot.
//!
//! This module provides a greedy online baseline and an exact offline
//! optimum (for tiny inputs) so the empirical competitive ratio can be
//! measured — the quantity \[BW20\] bounds by `1 + √2` for their optimal
//! online strategy.

use freezetag_geometry::Point;

/// An online request: a sleeping robot appearing at `release` at `pos`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineRequest {
    /// Appearance (release) time.
    pub release: f64,
    /// Position of the sleeping robot.
    pub pos: Point,
}

/// Greedy online strategy: whenever robots are available, commit the
/// (awake robot, released request) pair with the earliest feasible wake
/// time; unreleased requests are invisible until they appear. Returns the
/// makespan (time of the last wake).
///
/// # Panics
///
/// Panics if any release time is negative or not finite.
///
/// # Example
///
/// ```
/// use freezetag_central::online::{online_greedy_makespan, OnlineRequest};
/// use freezetag_geometry::Point;
///
/// let reqs = [
///     OnlineRequest { release: 0.0, pos: Point::new(1.0, 0.0) },
///     OnlineRequest { release: 5.0, pos: Point::new(-1.0, 0.0) },
/// ];
/// let makespan = online_greedy_makespan(Point::ORIGIN, &reqs);
/// assert!(makespan >= 5.0); // cannot wake before release
/// ```
pub fn online_greedy_makespan(source: Point, requests: &[OnlineRequest]) -> f64 {
    for (i, r) in requests.iter().enumerate() {
        assert!(
            r.release >= 0.0 && r.release.is_finite(),
            "request {i} has invalid release time"
        );
    }
    let mut awake: Vec<(Point, f64)> = vec![(source, 0.0)];
    let mut pending: Vec<OnlineRequest> = requests.to_vec();
    pending.sort_by(|a, b| a.release.partial_cmp(&b.release).expect("finite"));
    let mut makespan = 0.0_f64;
    while !pending.is_empty() {
        // Earliest feasible (robot, request) commitment. A request only
        // becomes visible at its release; the wake time is
        // max(robot free time, release) + travel from the robot's
        // position. (The greedy rule may not be optimal — that is the
        // point of a baseline.)
        let mut best: Option<(f64, usize, usize)> = None;
        for (ai, &(apos, afree)) in awake.iter().enumerate() {
            for (ri, req) in pending.iter().enumerate() {
                let depart = afree.max(req.release);
                let finish = depart + apos.dist(req.pos);
                if best.is_none_or(|(bf, _, _)| finish < bf - freezetag_geometry::EPS) {
                    best = Some((finish, ai, ri));
                }
            }
        }
        let (finish, ai, ri) = best.expect("pending non-empty");
        let req = pending.remove(ri);
        awake[ai] = (req.pos, finish);
        awake.push((req.pos, finish));
        makespan = makespan.max(finish);
    }
    makespan
}

/// Exact offline optimum with release times, by branch and bound —
/// exponential, intended for `n ≤ 8` ground truth.
///
/// # Panics
///
/// Panics if `requests.len() > 9`.
pub fn offline_optimal_makespan(source: Point, requests: &[OnlineRequest]) -> f64 {
    assert!(
        requests.len() <= 9,
        "offline_optimal_makespan is exponential; {} requests is too many",
        requests.len()
    );
    if requests.is_empty() {
        return 0.0;
    }
    let mut best = f64::INFINITY;
    let mut awake: Vec<(Point, f64)> = vec![(source, 0.0)];
    let mut remaining: Vec<OnlineRequest> = requests.to_vec();
    search(&mut awake, &mut remaining, 0.0, &mut best);
    best
}

fn search(
    awake: &mut Vec<(Point, f64)>,
    remaining: &mut Vec<OnlineRequest>,
    current_max: f64,
    best: &mut f64,
) {
    if remaining.is_empty() {
        *best = best.min(current_max);
        return;
    }
    // Optimistic bound: every remaining request served by its best robot.
    let mut lb = current_max;
    for req in remaining.iter() {
        let reach = awake
            .iter()
            .map(|&(p, t)| t.max(req.release) + p.dist(req.pos))
            .fold(f64::INFINITY, f64::min);
        lb = lb.max(reach);
    }
    if lb >= *best - freezetag_geometry::EPS {
        return;
    }
    for ai in 0..awake.len() {
        for ri in 0..remaining.len() {
            let (apos, afree) = awake[ai];
            let req = remaining[ri];
            let finish = afree.max(req.release) + apos.dist(req.pos);
            if finish >= *best - freezetag_geometry::EPS {
                continue;
            }
            let saved = awake[ai];
            awake[ai] = (req.pos, finish);
            awake.push((req.pos, finish));
            let removed = remaining.swap_remove(ri);
            search(awake, remaining, current_max.max(finish), best);
            remaining.push(removed);
            let last = remaining.len() - 1;
            remaining.swap(ri, last);
            awake.pop();
            awake[ai] = saved;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn single_request_is_release_plus_travel() {
        let reqs = [OnlineRequest {
            release: 3.0,
            pos: Point::new(4.0, 0.0),
        }];
        assert_eq!(online_greedy_makespan(Point::ORIGIN, &reqs), 7.0);
        assert_eq!(offline_optimal_makespan(Point::ORIGIN, &reqs), 7.0);
    }

    #[test]
    fn all_released_at_zero_matches_plain_freeze_tag() {
        let pts = [Point::new(1.0, 0.0), Point::new(-1.0, 0.0)];
        let reqs: Vec<OnlineRequest> = pts
            .iter()
            .map(|&pos| OnlineRequest { release: 0.0, pos })
            .collect();
        let opt = offline_optimal_makespan(Point::ORIGIN, &reqs);
        let plain = crate::optimal_makespan(Point::ORIGIN, &pts);
        assert!((opt - plain).abs() < 1e-9);
    }

    #[test]
    fn waiting_for_late_release_is_forced() {
        // A robot released very late dominates the makespan regardless of
        // strategy.
        let reqs = [
            OnlineRequest {
                release: 0.0,
                pos: Point::new(1.0, 0.0),
            },
            OnlineRequest {
                release: 100.0,
                pos: Point::new(1.0, 1.0),
            },
        ];
        let greedy = online_greedy_makespan(Point::ORIGIN, &reqs);
        let opt = offline_optimal_makespan(Point::ORIGIN, &reqs);
        assert!(greedy >= 100.0 && opt >= 100.0);
        assert!((opt - 101.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_is_never_better_than_offline_optimal() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let n = rng.gen_range(2..6);
            let reqs: Vec<OnlineRequest> = (0..n)
                .map(|_| OnlineRequest {
                    release: rng.gen_range(0.0..10.0),
                    pos: Point::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)),
                })
                .collect();
            let greedy = online_greedy_makespan(Point::ORIGIN, &reqs);
            let opt = offline_optimal_makespan(Point::ORIGIN, &reqs);
            assert!(greedy >= opt - 1e-9, "greedy {greedy} beat optimal {opt}");
            // Empirical competitive window for the baseline on small
            // inputs (BW20's optimal online strategy achieves 1 + √2).
            assert!(
                greedy <= 4.0 * opt + 1e-9,
                "greedy ratio {} implausibly bad",
                greedy / opt
            );
        }
    }

    #[test]
    fn empty_input() {
        assert_eq!(online_greedy_makespan(Point::ORIGIN, &[]), 0.0);
        assert_eq!(offline_optimal_makespan(Point::ORIGIN, &[]), 0.0);
    }
}
