use crate::{NodeId, WakeTree};
use freezetag_sim::{Recorder, RobotId, Sim, WorldView};

/// Realizes a wake-up tree on the simulator — Algorithm 1 of the paper.
///
/// `carrier` must be awake and co-located with the tree's root position.
/// The carrier moves to the root's child, wakes it and hands over half of
/// the remaining tree: at every node the *woken* robot takes the first
/// child subtree and the *waker* takes the second (lines 2–3 and 9–11 of
/// Algorithm 1). Robots whose subtree is exhausted simply stop.
///
/// Returns the list of robots woken, in wake order. The makespan increase
/// equals the tree's weighted depth ([`WakeTree::makespan`]), which the
/// tests verify.
///
/// # Panics
///
/// Panics if the carrier is asleep, not at the root position, or the tree
/// wakes a robot that is already awake (all algorithm bugs).
pub fn realize<W: WorldView, R: Recorder>(
    sim: &mut Sim<W, R>,
    carrier: RobotId,
    tree: &WakeTree,
) -> Vec<RobotId> {
    let root_pos = tree.pos(WakeTree::ROOT);
    assert!(
        sim.pos(carrier).dist(root_pos) <= 1e-6,
        "carrier {carrier} is not at the wake-tree root"
    );
    let mut woken = Vec::with_capacity(tree.robot_count());
    // Explicit stack: (robot responsible, node to wake). Chains can be
    // O(n) deep, so no recursion.
    let mut stack: Vec<(RobotId, NodeId)> = Vec::new();
    if let Some(&first) = tree.children(WakeTree::ROOT).first() {
        stack.push((carrier, first));
    }
    while let Some((robot, node)) = stack.pop() {
        sim.move_to(robot, tree.pos(node));
        let target = tree.robot(node);
        sim.wake(robot, target);
        woken.push(target);
        match *tree.children(node) {
            [] => {}
            [c1] => stack.push((target, c1)),
            [c1, c2] => {
                stack.push((target, c1));
                stack.push((robot, c2));
            }
            _ => unreachable!("WakeTree enforces binary arity"),
        }
    }
    woken
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadtree_wake_tree;
    use freezetag_geometry::Point;
    use freezetag_instances::Instance;
    use freezetag_sim::{validate, ConcreteWorld, ValidationOptions};

    fn items_of(inst: &Instance) -> Vec<(RobotId, Point)> {
        inst.positions()
            .iter()
            .enumerate()
            .map(|(i, &p)| (RobotId::sleeper(i), p))
            .collect()
    }

    #[test]
    fn realization_matches_tree_makespan() {
        let inst = Instance::new(vec![
            Point::new(1.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(-1.0, -1.0),
            Point::new(0.5, -2.0),
            Point::new(3.0, 3.0),
        ]);
        let tree = quadtree_wake_tree(Point::ORIGIN, &items_of(&inst));
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        let woken = realize(&mut sim, RobotId::SOURCE, &tree);
        assert_eq!(woken.len(), 5);
        assert!(sim.world().all_awake());
        let (world, schedule, _) = sim.into_parts();
        let _ = world;
        assert!((schedule.makespan() - tree.makespan()).abs() < 1e-9);
        let rep = validate(
            &schedule,
            Point::ORIGIN,
            inst.positions(),
            &ValidationOptions::default(),
        )
        .expect("valid realization");
        assert_eq!(rep.wake_count, 5);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 5000 robots in a line: the tree degenerates to a chain.
        let pts: Vec<Point> = (1..=5000)
            .map(|i| Point::new(i as f64 * 0.001, 0.0))
            .collect();
        let inst = Instance::new(pts);
        let tree = quadtree_wake_tree(Point::ORIGIN, &items_of(&inst));
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        let woken = realize(&mut sim, RobotId::SOURCE, &tree);
        assert_eq!(woken.len(), 5000);
        assert!(sim.world().all_awake());
    }

    #[test]
    fn empty_tree_is_noop() {
        let inst = Instance::new(vec![Point::new(5.0, 5.0)]);
        let tree = crate::WakeTree::new(Point::ORIGIN);
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        let woken = realize(&mut sim, RobotId::SOURCE, &tree);
        assert!(woken.is_empty());
        assert_eq!(sim.time(RobotId::SOURCE), 0.0);
    }

    #[test]
    #[should_panic]
    fn carrier_must_be_at_root() {
        let inst = Instance::new(vec![Point::new(1.0, 0.0)]);
        let tree = quadtree_wake_tree(Point::new(5.0, 5.0), &items_of(&inst));
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        let _ = realize(&mut sim, RobotId::SOURCE, &tree);
    }
}
