//! The `Explore` procedure — Lemma 1 of the paper.
//!
//! A team of `k` co-located robots explores a `w × h` rectangle in time
//! `O(wh/k + w + h)`: the rectangle is cut into `k` horizontal strips, each
//! robot sweeps one strip in boustrophedon order taking a unit-vision
//! snapshot every `√2` of movement (rows spaced `√2`), and the team
//! rendezvouses at a designated endpoint.

use crate::team::Team;
use freezetag_geometry::{sweep, Point, Rect};
use freezetag_sim::{Recorder, Sighting, Sim, WorldView};
use std::collections::BTreeMap;

/// Explores `rect` with the whole team, then gathers everyone at
/// `endpoint` (synchronized). Returns all sleeping robots observed during
/// the sweep, deduplicated, in id order.
///
/// The returned sightings may include robots slightly *outside* `rect`
/// (unit vision bleeds over the border); callers filter by their region of
/// responsibility.
///
/// # Panics
///
/// Panics if any team member is asleep (a bug in the calling algorithm).
pub(crate) fn explore<W: WorldView, R: Recorder>(
    sim: &mut Sim<W, R>,
    team: &Team,
    rect: &Rect,
    endpoint: Point,
) -> Vec<Sighting> {
    let strips = rect.horizontal_strips(team.len());
    let mut seen: BTreeMap<freezetag_sim::RobotId, Sighting> = BTreeMap::new();
    // One sighting buffer for the whole sweep: the look loop below is the
    // hottest path of every algorithm and must not allocate per snapshot.
    let mut sightings: Vec<Sighting> = Vec::new();
    for (i, &robot) in team.members().iter().enumerate() {
        // Teams may outnumber strips only when len > strips (never: strips
        // = len); each member sweeps exactly one strip.
        let strip = &strips[i];
        for snap in sweep::snapshot_positions(strip) {
            sim.move_to(robot, snap);
            sim.look_into(robot, &mut sightings);
            for s in &sightings {
                seen.insert(s.id, *s);
            }
        }
        sim.move_to(robot, endpoint);
    }
    team.sync(sim);
    seen.into_values().collect()
}

/// Theoretical duration bound for [`explore`]: entry leg + strip sweep +
/// exit leg, maximized over members (Lemma 1's `O(wh/k + w + h)` with
/// explicit constants). Exercised by the tests and the figure-4 bench.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn explore_bound(rect: &Rect, k: usize, entry_dist: f64, exit_dist: f64) -> f64 {
    let strip_h = rect.height() / k.max(1) as f64;
    let strip = Rect::with_size(rect.min(), rect.width(), strip_h);
    entry_dist + rect.height() + sweep::sweep_length_bound(&strip) + exit_dist + rect.height()
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezetag_instances::Instance;
    use freezetag_sim::{ConcreteWorld, RobotId};

    fn team_of_awake<WV: WorldView>(_sim: &mut Sim<WV>, ids: &[RobotId]) -> Team {
        Team::new(ids.to_vec())
    }

    #[test]
    fn single_robot_finds_everything_in_rect() {
        let inst = Instance::new(vec![
            Point::new(3.0, 3.0),
            Point::new(7.5, 1.2),
            Point::new(0.5, 7.5),
            Point::new(20.0, 20.0), // outside
        ]);
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        let team = team_of_awake(&mut sim, &[RobotId::SOURCE]);
        let rect = Rect::with_size(Point::ORIGIN, 8.0, 8.0);
        let seen = explore(&mut sim, &team, &rect, Point::ORIGIN);
        let ids: Vec<RobotId> = seen.iter().map(|s| s.id).collect();
        assert!(ids.contains(&RobotId::sleeper(0)));
        assert!(ids.contains(&RobotId::sleeper(1)));
        assert!(ids.contains(&RobotId::sleeper(2)));
        assert!(!ids.contains(&RobotId::sleeper(3)));
        // Team ends at the endpoint.
        assert_eq!(sim.pos(RobotId::SOURCE), Point::ORIGIN);
    }

    #[test]
    fn team_exploration_is_faster() {
        // Compare duration of exploring the same rectangle with 1 vs 4
        // robots (robots pre-woken by hand at the origin).
        let sleepers: Vec<Point> = (0..3)
            .map(|i| Point::new(0.3 + i as f64 * 0.1, 0.0))
            .collect();
        let build = |k: usize| -> f64 {
            let inst = Instance::new(
                sleepers
                    .iter()
                    .copied()
                    .chain((0..20).map(|i| Point::new(5.0 + (i % 5) as f64, 5.0 + (i / 5) as f64)))
                    .collect(),
            );
            let mut sim = Sim::new(ConcreteWorld::new(&inst));
            let mut members = vec![RobotId::SOURCE];
            for (i, &sleeper_pos) in sleepers.iter().enumerate().take(k - 1) {
                sim.move_to(*members.last().unwrap(), sleeper_pos);
                let r = sim.wake(*members.last().unwrap(), RobotId::sleeper(i));
                members.push(r);
            }
            let team = Team::new(members.clone());
            // Gather at origin, then time the exploration itself.
            team.move_all(&mut sim, Point::ORIGIN);
            let t0 = team.time(&sim);
            let rect = Rect::with_size(Point::new(2.0, 2.0), 16.0, 16.0);
            explore(&mut sim, &team, &rect, Point::new(2.0, 2.0));
            team.time(&sim) - t0
        };
        let solo = build(1);
        let four = build(4);
        assert!(
            four < solo * 0.55,
            "4 robots ({four:.1}) not ~4x faster than 1 ({solo:.1})"
        );
    }

    #[test]
    fn duration_respects_bound() {
        let inst = Instance::new(vec![Point::new(50.0, 50.0)]);
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        let team = team_of_awake(&mut sim, &[RobotId::SOURCE]);
        let rect = Rect::with_size(Point::ORIGIN, 12.0, 7.0);
        let t0 = sim.time(RobotId::SOURCE);
        explore(&mut sim, &team, &rect, Point::ORIGIN);
        let dt = sim.time(RobotId::SOURCE) - t0;
        let bound = explore_bound(
            &rect,
            1,
            rect.dist(Point::ORIGIN) + rect.width(),
            rect.width(),
        );
        assert!(dt <= bound, "explore took {dt}, bound {bound}");
    }

    #[test]
    fn woken_robots_are_not_reported() {
        let inst = Instance::new(vec![Point::new(1.0, 1.0), Point::new(1.2, 1.0)]);
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        sim.move_to(RobotId::SOURCE, Point::new(1.0, 1.0));
        sim.wake(RobotId::SOURCE, RobotId::sleeper(0));
        let team = Team::new(vec![RobotId::SOURCE]);
        let rect = Rect::with_size(Point::ORIGIN, 3.0, 3.0);
        let seen = explore(&mut sim, &team, &rect, Point::ORIGIN);
        let ids: Vec<RobotId> = seen.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![RobotId::sleeper(1)]);
    }
}
