//! The `Explore` procedure — Lemma 1 of the paper.
//!
//! A team of `k` co-located robots explores a `w × h` rectangle in time
//! `O(wh/k + w + h)`: the rectangle is cut into `k` horizontal strips, each
//! robot sweeps one strip in boustrophedon order taking a unit-vision
//! snapshot every `√2` of movement (rows spaced `√2`), and the team
//! rendezvouses at a designated endpoint.

use crate::knowledge::Knowledge;
use crate::team::Team;
use freezetag_geometry::{sweep, Point, Rect};
use freezetag_sim::{Recorder, Sighting, Sim, WorldView};

/// Drives the *kinematic* half of an exploration — the sweep trajectory is
/// oblivious (snapshot positions depend only on `rect`, never on what is
/// seen), which is what makes the sensing half batchable: every member
/// sweeps its strip in boustrophedon order and gathers at `endpoint`
/// (synchronized), while the `(position, arrival time)` of each would-be
/// snapshot is **appended** to `queries` in the exact order the sequential
/// loop would have looked.
///
/// At most `⌈height/√2⌉` members actually sweep: rows spaced `√2` already
/// certify the whole rectangle (Lemma 1's snapshot grid), so strips
/// thinner than `√2` only duplicate coverage. Surplus members head
/// straight to `endpoint` — same rendezvous time (sweepers bound the
/// sync), same Lemma 1 duration `O(wh/k + w + h)`, but the snapshot count
/// stays `Θ(area)` instead of growing with team size. Before this cap an
/// `AWave` frontier team of 10⁴ robots re-swept each ring row thousands
/// of times, which is where the ~5·10⁸ looks of a `wave_100k` run came
/// from.
///
/// Callers resolve the accumulated queries with [`Sim::look_many_into`] —
/// possibly pooling several explorations into one batch (a separator ring,
/// a whole wave slot). Because no wake is committed between the moves of
/// an exploration, deferring the looks to after the moves returns exactly
/// the sightings of the interleaved move/look loop, on every world.
///
/// # Panics
///
/// Panics if any team member is asleep (a bug in the calling algorithm).
pub(crate) fn sweep_queries<W: WorldView, R: Recorder>(
    sim: &mut Sim<W, R>,
    team: &Team,
    rect: &Rect,
    endpoint: Point,
    queries: &mut Vec<(Point, f64)>,
) {
    let needed = (rect.height() / freezetag_geometry::SQRT_2).ceil().max(1.0) as usize;
    let active = team.len().min(needed);
    let strips = rect.horizontal_strips(active);
    for (i, &robot) in team.members().iter().enumerate() {
        if i >= active {
            // Surplus member: its strip would be redundant (see above), so
            // it skips the sweep and waits at the rendezvous.
            sim.move_to(robot, endpoint);
            continue;
        }
        let strip = &strips[i];
        let snaps = sweep::snapshot_positions(strip);
        sim.reserve_moves(robot, snaps.len() + 1);
        queries.reserve(snaps.len());
        for snap in snaps {
            let t = sim.move_to(robot, snap);
            queries.push((snap, t));
        }
        sim.move_to(robot, endpoint);
    }
    team.sync(sim);
}

/// Deduplicates a concatenated run of sightings by robot id (last sighting
/// wins, as repeated map inserts did in the interleaved loop — initial
/// positions never change, so duplicates are identical anyway); returns
/// them in id order, matching the old per-look insert order.
///
/// Sort-based: a stable sort groups each id's sightings in arrival order
/// and a compacting walk keeps the last of every run — no tree, no
/// per-entry allocation.
pub(crate) fn dedup_sightings(flat: &[Sighting]) -> Vec<Sighting> {
    let mut out = flat.to_vec();
    out.sort_by_key(|s| s.id);
    let mut w = 0;
    for i in 0..out.len() {
        if w > 0 && out[w - 1].id == out[i].id {
            out[w - 1] = out[i];
        } else {
            out[w] = out[i];
            w += 1;
        }
    }
    out.truncate(w);
    out
}

/// Prefix sums over per-query sighting counts (as filled by
/// [`Sim::look_many_into`]): `offsets[i]..offsets[i + 1]` is query `i`'s
/// slice of the concatenated sighting buffer, so a caller that pooled
/// several explorations into one batch can split the result back per
/// exploration.
pub(crate) fn sighting_offsets(counts: &[u32]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &c in counts {
        acc += c as usize;
        offsets.push(acc);
    }
    offsets
}

/// Reusable query/sighting/count buffers of one [`explore`] call.
type ExploreScratch = (Vec<(Point, f64)>, Vec<Sighting>, Vec<u32>);

thread_local! {
    /// Per-thread scratch for [`explore`]'s query/sighting/count buffers:
    /// `DFSampling` issues thousands of small ball explorations per run,
    /// and reusing the buffers keeps that steady-state loop allocation-free
    /// (the property the pre-batching explore had with its single sighting
    /// buffer).
    static EXPLORE_SCRATCH: std::cell::RefCell<ExploreScratch> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
}

/// Explores `rect` with the whole team, then gathers everyone at
/// `endpoint` (synchronized). Returns all sleeping robots observed during
/// the sweep, deduplicated, in id order.
///
/// The returned sightings may include robots slightly *outside* `rect`
/// (unit vision bleeds over the border); callers filter by their region of
/// responsibility.
///
/// Internally this is [`sweep_queries`] followed by one batched
/// [`Sim::look_many_into`], so the snapshots of a single exploration
/// already fan out over the sim's pool on pure-sensing worlds.
///
/// # Panics
///
/// Panics if any team member is asleep (a bug in the calling algorithm).
pub(crate) fn explore<W: WorldView, R: Recorder>(
    sim: &mut Sim<W, R>,
    team: &Team,
    rect: &Rect,
    endpoint: Point,
) -> Vec<Sighting> {
    EXPLORE_SCRATCH.with(|scratch| {
        let (queries, flat, counts) = &mut *scratch.borrow_mut();
        queries.clear();
        sweep_queries(sim, team, rect, endpoint, queries);
        sim.look_many_into(queries, flat, counts);
        dedup_sightings(flat)
    })
}

/// [`explore`] feeding the sightings straight into a [`Knowledge`] store —
/// the `DFSampling` ball-exploration path. `note_sighting` is idempotent
/// on duplicate sightings (a sleeping robot is always reported at the same
/// initial position), so skipping the dedup changes no knowledge state and
/// saves the intermediate buffer entirely.
pub(crate) fn explore_noted<W: WorldView, R: Recorder>(
    sim: &mut Sim<W, R>,
    team: &Team,
    rect: &Rect,
    endpoint: Point,
    knowledge: &mut Knowledge,
) {
    EXPLORE_SCRATCH.with(|scratch| {
        let (queries, flat, counts) = &mut *scratch.borrow_mut();
        queries.clear();
        sweep_queries(sim, team, rect, endpoint, queries);
        sim.look_many_into(queries, flat, counts);
        for s in flat.iter() {
            knowledge.note_sighting(s.id, s.pos);
        }
    })
}

/// Theoretical duration bound for [`explore`]: entry leg + strip sweep +
/// exit leg, maximized over members (Lemma 1's `O(wh/k + w + h)` with
/// explicit constants). Exercised by the tests and the figure-4 bench.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn explore_bound(rect: &Rect, k: usize, entry_dist: f64, exit_dist: f64) -> f64 {
    let strip_h = rect.height() / k.max(1) as f64;
    let strip = Rect::with_size(rect.min(), rect.width(), strip_h);
    entry_dist + rect.height() + sweep::sweep_length_bound(&strip) + exit_dist + rect.height()
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezetag_instances::Instance;
    use freezetag_sim::{ConcreteWorld, RobotId};

    fn team_of_awake<WV: WorldView>(_sim: &mut Sim<WV>, ids: &[RobotId]) -> Team {
        Team::new(ids.to_vec())
    }

    #[test]
    fn single_robot_finds_everything_in_rect() {
        let inst = Instance::new(vec![
            Point::new(3.0, 3.0),
            Point::new(7.5, 1.2),
            Point::new(0.5, 7.5),
            Point::new(20.0, 20.0), // outside
        ]);
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        let team = team_of_awake(&mut sim, &[RobotId::SOURCE]);
        let rect = Rect::with_size(Point::ORIGIN, 8.0, 8.0);
        let seen = explore(&mut sim, &team, &rect, Point::ORIGIN);
        let ids: Vec<RobotId> = seen.iter().map(|s| s.id).collect();
        assert!(ids.contains(&RobotId::sleeper(0)));
        assert!(ids.contains(&RobotId::sleeper(1)));
        assert!(ids.contains(&RobotId::sleeper(2)));
        assert!(!ids.contains(&RobotId::sleeper(3)));
        // Team ends at the endpoint.
        assert_eq!(sim.pos(RobotId::SOURCE), Point::ORIGIN);
    }

    #[test]
    fn team_exploration_is_faster() {
        // Compare duration of exploring the same rectangle with 1 vs 4
        // robots (robots pre-woken by hand at the origin).
        let sleepers: Vec<Point> = (0..3)
            .map(|i| Point::new(0.3 + i as f64 * 0.1, 0.0))
            .collect();
        let build = |k: usize| -> f64 {
            let inst = Instance::new(
                sleepers
                    .iter()
                    .copied()
                    .chain((0..20).map(|i| Point::new(5.0 + (i % 5) as f64, 5.0 + (i / 5) as f64)))
                    .collect(),
            );
            let mut sim = Sim::new(ConcreteWorld::new(&inst));
            let mut members = vec![RobotId::SOURCE];
            for (i, &sleeper_pos) in sleepers.iter().enumerate().take(k - 1) {
                sim.move_to(*members.last().unwrap(), sleeper_pos);
                let r = sim.wake(*members.last().unwrap(), RobotId::sleeper(i));
                members.push(r);
            }
            let team = Team::new(members.clone());
            // Gather at origin, then time the exploration itself.
            team.move_all(&mut sim, Point::ORIGIN);
            let t0 = team.time(&sim);
            let rect = Rect::with_size(Point::new(2.0, 2.0), 16.0, 16.0);
            explore(&mut sim, &team, &rect, Point::new(2.0, 2.0));
            team.time(&sim) - t0
        };
        let solo = build(1);
        let four = build(4);
        assert!(
            four < solo * 0.55,
            "4 robots ({four:.1}) not ~4x faster than 1 ({solo:.1})"
        );
    }

    #[test]
    fn duration_respects_bound() {
        let inst = Instance::new(vec![Point::new(50.0, 50.0)]);
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        let team = team_of_awake(&mut sim, &[RobotId::SOURCE]);
        let rect = Rect::with_size(Point::ORIGIN, 12.0, 7.0);
        let t0 = sim.time(RobotId::SOURCE);
        explore(&mut sim, &team, &rect, Point::ORIGIN);
        let dt = sim.time(RobotId::SOURCE) - t0;
        let bound = explore_bound(
            &rect,
            1,
            rect.dist(Point::ORIGIN) + rect.width(),
            rect.width(),
        );
        assert!(dt <= bound, "explore took {dt}, bound {bound}");
    }

    #[test]
    fn woken_robots_are_not_reported() {
        let inst = Instance::new(vec![Point::new(1.0, 1.0), Point::new(1.2, 1.0)]);
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        sim.move_to(RobotId::SOURCE, Point::new(1.0, 1.0));
        sim.wake(RobotId::SOURCE, RobotId::sleeper(0));
        let team = Team::new(vec![RobotId::SOURCE]);
        let rect = Rect::with_size(Point::ORIGIN, 3.0, 3.0);
        let seen = explore(&mut sim, &team, &rect, Point::ORIGIN);
        let ids: Vec<RobotId> = seen.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![RobotId::sleeper(1)]);
    }
}
