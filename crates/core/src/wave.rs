//! `AWave` — the energy-frugal, near-optimal-makespan algorithm of
//! Section 4 / 8.2: energy budget `O(ℓ² log ℓ)` per robot, makespan
//! `O(ξ_ℓ + ℓ² log(ξ_ℓ/ℓ))` (Theorem 5).
//!
//! Same wave structure as `AGrid` but with squares of width
//! `R = 8ℓ² log₂ ℓ` (with `ℓ := max(ℓ, 4)`) and `ASeparator` as the
//! per-square wake-up procedure: round 0 runs `ASeparator` from the source
//! inside its square; in round `k`, robots woken in round `k−1` gather at
//! their square's lower-left corner, and every team of at least `4ℓ`
//! robots sweeps the 8 adjacent squares in fixed slots, waking each with
//! `ASeparator` started directly at its partitioning rounds.

use crate::scratch::AlgScratch;
use crate::separator::{wake_square_with_team, Region, SeparatorParams};
use crate::team::Team;
use freezetag_geometry::{CellCoord, Point, Square, SquareTiling};
use freezetag_sim::{Recorder, RobotId, Sim, WorldView};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Configuration of an `AWave` run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AWaveConfig {
    /// Upper bound ℓ on the connectivity threshold.
    pub ell: f64,
}

/// Effective ℓ (the paper sets `ℓ ← max(ℓ, 4)` so `log₂ ℓ ≥ 2`).
pub(crate) fn effective_ell(ell: f64) -> f64 {
    ell.max(4.0)
}

/// Wave-square width `R = 8ℓ² log₂ ℓ`.
pub(crate) fn wave_width(ell: f64) -> f64 {
    let l = effective_ell(ell);
    8.0 * l * l * l.log2()
}

/// Upper bound on an `ASeparator` run confined to a square of width `r`
/// with connectivity parameter ℓ (Theorem 1's `O(R + ℓ² log(R/ℓ))` with
/// generous explicit constants, checked by runtime assertions).
pub(crate) fn separator_bound(r: f64, ell: f64) -> f64 {
    let rounds = (r / ell).max(2.0).log2() + 2.0;
    30.0 * r + 60.0 * ell * ell * rounds + 100.0
}

/// Duration of one wave slot.
pub(crate) fn wave_slot(r: f64, ell: f64) -> f64 {
    separator_bound(r, ell) + 4.5 * r
}

/// Runs `AWave` to completion (wakes every robot, given `ℓ ≥ ℓ*`).
///
/// # Example
///
/// ```
/// use freezetag_core::{a_wave, AWaveConfig};
/// use freezetag_instances::generators::grid_lattice;
/// use freezetag_sim::{ConcreteWorld, Sim, WorldView};
///
/// let inst = grid_lattice(3, 5, 1.0);
/// let mut sim = Sim::new(ConcreteWorld::new(&inst));
/// a_wave(&mut sim, &AWaveConfig { ell: 1.0 });
/// assert!(sim.world().all_awake());
/// ```
pub fn a_wave<W: WorldView, R: Recorder>(sim: &mut Sim<W, R>, cfg: &AWaveConfig) {
    a_wave_in(sim, cfg, &mut AlgScratch::new());
}

/// [`a_wave`] with caller-provided scratch state: resident workers
/// construct one [`AlgScratch`] per thread and recycle its knowledge
/// store across jobs instead of reallocating (see
/// [`scratch`](crate::scratch)). Results are identical to [`a_wave`].
pub fn a_wave_in<W: WorldView, R: Recorder>(
    sim: &mut Sim<W, R>,
    cfg: &AWaveConfig,
    scratch: &mut AlgScratch,
) {
    assert!(cfg.ell > 0.0 && cfg.ell.is_finite(), "ell must be positive");
    let ell = effective_ell(cfg.ell);
    let r = wave_width(cfg.ell);
    let src = sim.world().source_pos();
    let tiling = SquareTiling::new(r);
    let cell_of = move |p: Point| tiling.cell_of(p - src);
    let square_of = move |c: CellCoord| {
        let s = tiling.square_of(c);
        Square::new(s.center() + src, s.width())
    };
    // The wave's slot schedule relies on the O(R) guarantee of the
    // quadtree strategy (Lemma 2); alternative strategies are only
    // ablatable in the unconstrained ASeparator.
    let params = SeparatorParams {
        ell,
        target: ((4.0 * ell).ceil() as usize).max(4),
        strategy: freezetag_central::WakeStrategy::Quadtree,
    };
    let knowledge = scratch.knowledge(ell);
    knowledge.note_awake(RobotId::SOURCE, src);

    // Round 0: ASeparator inside the source's square.
    let home = cell_of(src);
    let own0 = region_of_cell(cell_of, home);
    wake_square_with_team(
        sim,
        Team::new(vec![RobotId::SOURCE]),
        knowledge,
        square_of(home),
        own0,
        params,
        0,
    );
    let t0_bound = separator_bound(r, ell);
    let wakes_so_far = sim.wake_count();
    let mut frontier: Vec<RobotId> = Vec::with_capacity(wakes_so_far + 1);
    sim.for_each_wake_from(0, |w| frontier.push(w.target));
    frontier.push(RobotId::SOURCE);
    let t_round0_end = sim.time(RobotId::SOURCE);
    sim.trace_mut().record(
        "wave/round0",
        0.0,
        t_round0_end,
        format!("woke={wakes_so_far} R={r:.0}"),
    );
    assert!(
        sim.time(RobotId::SOURCE) <= t0_bound + 1e-6,
        "wave round 0 exceeded its bound"
    );

    let slot = wave_slot(r, ell);
    let mut round_start = t0_bound + 4.5 * r;
    let mut round = 1usize;
    let mut prev_wake_len = sim.wake_count();
    while !frontier.is_empty() {
        // Teams form at the lower-left corner of each populated square.
        let groups = crate::grid::bucket_by_cell(sim, &frontier, &cell_of);
        // Only teams of at least 4ℓ act (Theorem 5's progress argument
        // guarantees the most populated square has that many).
        let mut teams: BTreeMap<CellCoord, Team> = BTreeMap::new();
        for (cell, robots) in groups {
            if robots.len() >= params.target {
                let team = Team::new(robots);
                team.move_all(sim, square_of(cell).min_corner());
                teams.insert(cell, team);
            }
        }
        if teams.is_empty() {
            break;
        }
        for slot_idx in 0..8 {
            let slot_start = round_start + slot_idx as f64 * slot;
            for (cell, team) in &teams {
                let target_cell = tiling.neighbors8(*cell)[slot_idx];
                let target_sq = square_of(target_cell);
                team.move_all(sim, target_sq.min_corner());
                assert!(
                    team.time(sim) <= slot_start + 1e-6,
                    "wave team missed slot {slot_idx} of round {round}"
                );
                for &rb in team.members() {
                    sim.wait_until(rb, slot_start);
                }
                let own = region_of_cell(cell_of, target_cell);
                wake_square_with_team(sim, team.clone(), knowledge, target_sq, own, params, round);
                // The team re-gathers at the target's corner for the next
                // hop (members may have dispersed during the wake-up).
                team.move_all(sim, target_sq.min_corner());
                assert!(
                    team.time(sim) <= slot_start + slot + 1e-6,
                    "wave slot {slot_idx} of round {round} overran"
                );
            }
        }
        frontier = Vec::new();
        sim.for_each_wake_from(prev_wake_len, |w| frontier.push(w.target));
        prev_wake_len = sim.wake_count();
        sim.trace_mut().record(
            format!("wave/round{round}"),
            round_start,
            round_start + 8.0 * slot,
            format!("teams={} woke={}", teams.len(), frontier.len()),
        );
        round_start += 8.0 * slot + 4.5 * r;
        round += 1;
    }
}

fn region_of_cell<C: Fn(Point) -> CellCoord + 'static>(cell_of: C, cell: CellCoord) -> Region {
    Rc::new(move |p| cell_of(p) == cell)
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezetag_instances::generators::{snake, uniform_disk};
    use freezetag_instances::Instance;
    use freezetag_sim::{validate, ConcreteWorld, ValidationOptions};

    fn run(inst: &Instance, ell: f64) -> freezetag_sim::ValidationReport {
        let mut sim = Sim::new(ConcreteWorld::new(inst));
        a_wave(&mut sim, &AWaveConfig { ell });
        assert!(sim.world().all_awake(), "not everyone woke up");
        let (_, schedule, _) = sim.into_parts();
        validate(
            &schedule,
            inst.source(),
            inst.positions(),
            &ValidationOptions::default(),
        )
        .expect("schedule must validate")
    }

    #[test]
    fn wakes_uniform_disk_within_home_square() {
        // R = 8·16·2 = 256 for ell=4: a radius-20 disk fits in round 0.
        let inst = uniform_disk(60, 20.0, 11);
        let rep = run(&inst, 4.0);
        assert_eq!(rep.wake_count, 60);
    }

    #[test]
    fn wave_crosses_square_borders() {
        // A long snake stretching beyond one wave square for ell = 4
        // (R = 256): legs of 600 force at least two squares.
        let inst = snake(2, 600.0, 3.0, 2.0);
        let tuple = inst.admissible_tuple();
        let rep = run(&inst, tuple.ell);
        assert_eq!(rep.wake_count, inst.n());
    }

    #[test]
    fn energy_stays_within_ell2_log_ell() {
        let inst = uniform_disk(80, 25.0, 3);
        let tuple = inst.admissible_tuple();
        let rep = run(&inst, tuple.ell);
        let l = effective_ell(tuple.ell);
        // Measured constant ≈ 550·ℓ²·log₂ℓ: a robot woken in round k
        // sweeps the separators of all 8 neighbour squares in round k+1
        // (4 quadrants × 4 rectangles, Θ(R/2) entry/exit legs each, with
        // R = 8ℓ²log₂ℓ). Θ(ℓ² log ℓ) per robot, as Theorem 5 requires.
        let budget = 800.0 * l * l * l.log2() + 500.0;
        assert!(
            rep.max_energy <= budget,
            "max energy {} exceeds O(ell^2 log ell) budget {budget}",
            rep.max_energy
        );
    }

    #[test]
    fn widths_and_bounds() {
        assert_eq!(wave_width(4.0), 8.0 * 16.0 * 2.0);
        assert!(wave_width(2.0) == wave_width(4.0), "ell clamps to 4");
        assert!(separator_bound(256.0, 4.0) > 256.0);
        assert!(wave_slot(256.0, 4.0) > separator_bound(256.0, 4.0));
    }
}
