//! The theoretical bound formulas of Table 1, used by tests and the bench
//! harness to report measured/bound ratios.

/// `ASeparator` upper bound and the matching unconstrained lower bound:
/// `ρ + ℓ² log(ρ/ℓ)` (Theorems 1 and 2).
pub fn separator_makespan_bound(rho: f64, ell: f64) -> f64 {
    rho + ell * ell * (rho / ell).max(2.0).log2()
}

/// `AGrid` upper bound: `ξ_ℓ · ℓ` (Theorem 4).
pub fn grid_makespan_bound(xi: f64, ell: f64) -> f64 {
    xi * ell
}

/// `AWave` upper bound and the matching energy-constrained lower bound:
/// `ξ_ℓ + ℓ² log(ξ_ℓ/ℓ)` (Theorems 5 and 6).
pub fn wave_makespan_bound(xi: f64, ell: f64) -> f64 {
    xi + ell * ell * (xi / ell).max(2.0).log2()
}

/// The energy threshold below which the dFTP is unsolvable:
/// `π(ℓ² − 1)/2` (Theorem 3).
pub fn infeasible_energy_threshold(ell: f64) -> f64 {
    std::f64::consts::PI * (ell * ell - 1.0) / 2.0
}

/// `AGrid`'s energy budget shape: `Θ(ℓ²)`.
pub fn grid_energy_shape(ell: f64) -> f64 {
    ell * ell
}

/// `AWave`'s energy budget shape: `Θ(ℓ² log ℓ)`.
pub fn wave_energy_shape(ell: f64) -> f64 {
    let l = ell.max(4.0);
    l * l * l.log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_monotone_in_their_arguments() {
        assert!(separator_makespan_bound(100.0, 4.0) < separator_makespan_bound(200.0, 4.0));
        assert!(separator_makespan_bound(100.0, 2.0) < separator_makespan_bound(100.0, 8.0));
        assert!(grid_makespan_bound(50.0, 2.0) < grid_makespan_bound(100.0, 2.0));
        assert!(wave_makespan_bound(50.0, 2.0) < wave_makespan_bound(500.0, 2.0));
    }

    #[test]
    fn log_terms_clamp_below_ratio_two() {
        // rho/ell < 2 must not produce negative log contributions.
        assert!(separator_makespan_bound(2.0, 2.0) >= 2.0);
        assert!(wave_makespan_bound(2.0, 2.0) >= 2.0);
    }

    #[test]
    fn infeasibility_threshold_matches_paper() {
        let t = infeasible_energy_threshold(3.0);
        assert!((t - std::f64::consts::PI * 4.0).abs() < 1e-12);
    }

    #[test]
    fn energy_shapes_order() {
        // For the same ℓ: grid budget < wave budget (the paper's tradeoff).
        for ell in [4.0, 8.0, 16.0] {
            assert!(grid_energy_shape(ell) < wave_energy_shape(ell));
        }
    }
}
