//! The distributed Freeze Tag algorithms of *Distributed Freeze Tag: a
//! Sustainable Solution to Discover and Wake-up a Robot Swarm* (Gavoille,
//! Hanusse, Le Bouder, Marcé — PODC 2025).
//!
//! A swarm of `n` sleeping robots at unknown positions must be woken from
//! one awake source robot, under unit speed, unit vision and co-location
//! communication. This crate implements the paper's three algorithms plus
//! their building blocks, all driven through the restricted sensing
//! interface of `freezetag-sim`:
//!
//! | algorithm | energy/robot | makespan |
//! |-----------|--------------|----------|
//! | [`a_separator`] | unconstrained | `O(ρ + ℓ² log(ρ/ℓ))` (Thm 1, optimal by Thm 2) |
//! | [`a_grid`] | `Θ(ℓ²)` (optimal by Thm 3) | `O(ξ_ℓ·ℓ)` (Thm 4) |
//! | [`a_wave`] | `Θ(ℓ² log ℓ)` | `O(ξ_ℓ + ℓ² log(ξ_ℓ/ℓ))` (Thm 5, optimal by Thm 6) |
//!
//! Building blocks: team exploration (Lemma 1), distributed ℓ-sampling
//! `DFSampling` (Lemma 5), geometric separators (Lemma 3), centralized
//! wake-up trees (Lemma 2, from `freezetag-central`), and the `ρ*`
//! estimation of Section 5 ([`estimate_radius`]).
//!
//! # Quickstart
//!
//! ```
//! use freezetag_core::{solve, Algorithm};
//! use freezetag_instances::generators::uniform_disk;
//!
//! let instance = uniform_disk(50, 10.0, 42);
//! let tuple = instance.admissible_tuple();
//! let report = solve(&instance, &tuple, Algorithm::Separator).unwrap();
//! assert!(report.all_awake);
//! println!("makespan {:.1}, worst energy {:.1}", report.makespan, report.max_energy);
//! ```

pub mod bounds;
mod explore;
mod grid;
mod grid_events;
pub mod knowledge;
mod radius_approx;
mod sampling;
pub mod scratch;
mod separator;
mod solve;
mod team;
mod treasure_hunt;
mod wave;

pub use grid::{a_grid, AGridConfig};
pub use grid_events::{a_grid_events, AGridRobot};
pub use radius_approx::{estimate_radius, RadiusEstimate};
pub use scratch::AlgScratch;
pub use separator::{a_separator, a_separator_in, ASeparatorConfig};
pub use solve::{run_algorithm, solve, solve_with_options, Algorithm, RunReport};
pub use treasure_hunt::{spiral_search, team_search, SearchOutcome};
pub use wave::{a_wave, a_wave_in, AWaveConfig};
