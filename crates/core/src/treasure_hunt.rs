//! Treasure hunt (cow-path) primitives — the discovery substrate the
//! paper's introduction builds on.
//!
//! The intro observes that a robot with unit vision must move `Ω(D²)` to
//! find the closest robot at unknown distance `D`, achievable by a spiral;
//! and that `k` co-located robots discover a robot at distance `D` within
//! `Θ(D + D²/k)` moves per robot, by exploring squares of doubling width
//! split into strips (\[FHG+16\], \[FKLS12\] in the paper's bibliography).
//! Both are implemented here against the restricted sensing interface and
//! measured in the `fig_explore` bench.

use crate::explore::{dedup_sightings, explore};
use crate::team::Team;
use freezetag_geometry::Square;
use freezetag_sim::{Recorder, Sighting, Sim, WorldView};

/// Outcome of a search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// First sleeping robots discovered (non-empty on success).
    pub found: Vec<Sighting>,
    /// Simulated time the search took.
    pub duration: f64,
    /// Width of the last square searched.
    pub final_width: f64,
}

/// Square-spiral search by a single robot: sweep the boundary rings of
/// squares of doubling width around the start until a sleeping robot is
/// seen or `max_width` is exhausted.
///
/// Guarantees `O(D²)` total movement to discover a robot at distance `D`
/// (each doubling costs the area swept so far, a geometric series).
///
/// # Panics
///
/// Panics if the robot is asleep or `max_width <= 0`.
///
/// # Example
///
/// ```
/// use freezetag_core::spiral_search;
/// use freezetag_geometry::Point;
/// use freezetag_instances::Instance;
/// use freezetag_sim::{ConcreteWorld, RobotId, Sim};
///
/// let inst = Instance::new(vec![Point::new(6.0, 2.0)]);
/// let mut sim = Sim::new(ConcreteWorld::new(&inst));
/// let out = spiral_search(&mut sim, RobotId::SOURCE, 64.0);
/// assert_eq!(out.found.len(), 1);
/// ```
pub fn spiral_search<W: WorldView, R: Recorder>(
    sim: &mut Sim<W, R>,
    robot: freezetag_sim::RobotId,
    max_width: f64,
) -> SearchOutcome {
    assert!(max_width > 0.0, "max_width must be positive");
    let start = sim.pos(robot);
    let t0 = sim.time(robot);
    let team = Team::solo(robot);
    let mut width = 2.0;
    let mut inner = 0.0;
    loop {
        // Explore the ring between the previous square and the new one —
        // the doubled square minus the already-seen core.
        let square = Square::new(start, width);
        let found = if inner <= freezetag_geometry::EPS {
            explore(sim, &team, &square.to_rect(), start)
        } else {
            let ring = freezetag_geometry::Separator::new(square, (width - inner) / 2.0);
            // Ring rectangles overlap in vision range: dedupe by id with
            // the shared sort-based pass (last sighting wins, id order —
            // exactly what the old ad-hoc map here did).
            let mut all: Vec<Sighting> = Vec::new();
            for rect in ring.rectangles() {
                all.extend(explore(sim, &team, &rect, rect.min()));
            }
            sim.move_to(robot, start);
            dedup_sightings(&all)
        };
        if !found.is_empty() {
            return SearchOutcome {
                duration: sim.time(robot) - t0,
                found,
                final_width: width,
            };
        }
        if width >= max_width {
            return SearchOutcome {
                found: Vec::new(),
                duration: sim.time(robot) - t0,
                final_width: width,
            };
        }
        inner = width;
        width = (width * 2.0).min(max_width);
    }
}

/// Collaborative doubling search by a co-located team: each round the team
/// explores the square of doubled width around the start, split into one
/// strip per member — `Θ(D + D²/k)` per robot to reach distance `D`
/// (the \[FHG+16\]/\[FKLS12\] bound quoted in the paper's introduction).
///
/// # Panics
///
/// Panics if any team robot is asleep or `max_width <= 0`.
pub fn team_search<W: WorldView, R: Recorder>(
    sim: &mut Sim<W, R>,
    team_members: &[freezetag_sim::RobotId],
    max_width: f64,
) -> SearchOutcome {
    assert!(max_width > 0.0, "max_width must be positive");
    let team = Team::new(team_members.to_vec());
    let start = team.pos(sim);
    let t0 = team.time(sim);
    let mut width = 2.0;
    loop {
        let square = Square::new(start, width);
        let found = explore(sim, &team, &square.to_rect(), start);
        if !found.is_empty() {
            return SearchOutcome {
                duration: team.time(sim) - t0,
                found,
                final_width: width,
            };
        }
        if width >= max_width {
            return SearchOutcome {
                found: Vec::new(),
                duration: team.time(sim) - t0,
                final_width: width,
            };
        }
        width = (width * 2.0).min(max_width);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezetag_geometry::Point;
    use freezetag_instances::Instance;
    use freezetag_sim::{ConcreteWorld, RobotId};

    fn single_robot_at(p: Point) -> Sim<ConcreteWorld> {
        Sim::new(ConcreteWorld::new(&Instance::new(vec![p])))
    }

    #[test]
    fn spiral_finds_nearby_robot() {
        let mut sim = single_robot_at(Point::new(3.0, -2.0));
        let out = spiral_search(&mut sim, RobotId::SOURCE, 32.0);
        assert_eq!(out.found.len(), 1);
        assert!(
            out.final_width >= 6.0,
            "width {} too small",
            out.final_width
        );
    }

    #[test]
    fn spiral_cost_is_quadratic_in_distance() {
        // Doubling distance should roughly quadruple the search time.
        let mut t = Vec::new();
        for d in [4.0, 8.0, 16.0] {
            let mut sim = single_robot_at(Point::new(d, 0.0));
            let out = spiral_search(&mut sim, RobotId::SOURCE, 128.0);
            assert!(!out.found.is_empty());
            t.push(out.duration);
        }
        let r1 = t[1] / t[0];
        let r2 = t[2] / t[1];
        assert!(r1 > 2.0 && r1 < 8.0, "growth {r1} not quadratic-ish");
        assert!(r2 > 2.0 && r2 < 8.0, "growth {r2} not quadratic-ish");
    }

    #[test]
    fn spiral_gives_up_at_max_width() {
        let mut sim = single_robot_at(Point::new(500.0, 0.0));
        let out = spiral_search(&mut sim, RobotId::SOURCE, 16.0);
        assert!(out.found.is_empty());
        assert_eq!(out.final_width, 16.0);
    }

    #[test]
    fn team_search_speedup() {
        // Same target, 1 vs 4 searchers: the k-team must be faster.
        let target = Point::new(11.0, 7.0);
        let run = |k: usize| -> f64 {
            let mut pts: Vec<Point> = (0..k - 1)
                .map(|i| Point::new(0.01 * (i + 1) as f64, 0.0))
                .collect();
            pts.push(target);
            let inst = Instance::new(pts);
            let mut sim = Sim::new(ConcreteWorld::new(&inst));
            let mut members = vec![RobotId::SOURCE];
            for i in 0..k - 1 {
                sim.move_to(*members.last().unwrap(), inst.positions()[i]);
                members.push(sim.wake(*members.last().unwrap(), RobotId::sleeper(i)));
            }
            for &m in &members {
                sim.move_to(m, Point::ORIGIN);
            }
            sim.barrier(&members);
            let out = team_search(&mut sim, &members, 64.0);
            assert!(out.found.iter().any(|s| s.pos.approx_eq(target)));
            out.duration
        };
        let solo = run(1);
        let four = run(4);
        assert!(
            four < 0.6 * solo,
            "4 searchers ({four:.1}) not substantially faster than 1 ({solo:.1})"
        );
    }

    #[test]
    fn search_with_no_robots_terminates_empty() {
        let inst = Instance::new(vec![Point::new(1000.0, 1000.0)]);
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        let out = team_search(&mut sim, &[RobotId::SOURCE], 8.0);
        assert!(out.found.is_empty());
    }
}
