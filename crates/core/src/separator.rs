//! `ASeparator` — the unconstrained-energy algorithm of Section 3, with
//! makespan `O(ρ + ℓ² log(ρ/ℓ))` (Theorem 1).
//!
//! Divide and conquer on squares: starting from the width-`2ρ` square
//! around the source, every round partitions the current square into four
//! quadrants, sends a sub-team to explore each quadrant's *separator* ring
//! (collecting recruitment seeds), recruits a fresh team of `4ℓ` robots per
//! quadrant with `DFSampling`, merges everyone at the square's centre and
//! recurses. A quadrant whose sampling *exhausted* (`covered`) has all its
//! robots discovered, so a terminating round wakes them with a centralized
//! wake-up tree (Lemma 2 / Algorithm 1).
//!
//! ## Driver notes (deviations documented in DESIGN.md)
//!
//! * Robots are *owned* by the quadrant containing their initial position
//!   (deterministic tie-break on borders); only the owning team ever wakes
//!   a robot, which realizes the paper's assumption that wake-up trees are
//!   computed in separate regions (Section 2.2).
//! * Knowledge is held in one structure shared by all branches; every use
//!   is filtered by the owning region, so behaviour matches per-team
//!   memories exchanged at rendezvous (soundness: knowledge only ever
//!   contains looked-at robots).
//! * At reorganization, team members whose origin lies outside the current
//!   square (possible when `AWave` injects a foreign team) are dealt
//!   round-robin to the quadrants that still have work.

use crate::explore::sweep_queries;
use crate::knowledge::Knowledge;
use crate::sampling::{df_sampling, SamplingOutcome};
use crate::scratch::AlgScratch;
use crate::team::Team;
use freezetag_central::{realize, WakeStrategy};
use freezetag_geometry::{Point, Square};
use freezetag_instances::AdmissibleTuple;
use freezetag_sim::{Recorder, RobotId, Sim, WorldView};
use std::rc::Rc;

/// Region-ownership predicate threaded through the recursion.
pub(crate) type Region = Rc<dyn Fn(Point) -> bool>;

/// Reusable query/sighting/count buffers of one separator-ring sweep.
type RingScratch = (Vec<(Point, f64)>, Vec<freezetag_sim::Sighting>, Vec<u32>);

thread_local! {
    /// Reused buffers of the separator-ring sweeps: a deep `ASeparator`
    /// recursion explores thousands of rings, and the buffers (hundreds
    /// of kilobytes at large widths) survive between them instead of
    /// regrowing per quadrant.
    static RING_SCRATCH: std::cell::RefCell<RingScratch> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
}

/// Internal parameters of the separator engine.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SeparatorParams {
    /// Connectivity upper bound ℓ.
    pub ell: f64,
    /// Team-size target `4ℓ` (integer).
    pub target: usize,
    /// Centralized strategy used by terminating rounds (Lemma 2 slot).
    pub strategy: WakeStrategy,
}

/// Configuration of a top-level `ASeparator` run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ASeparatorConfig {
    /// The admissible input tuple `(ℓ, ρ, n)`.
    pub tuple: AdmissibleTuple,
    /// Centralized wake strategy for terminating rounds (default:
    /// quadtree, the `O(R)` Lemma 2 substitute; others are ablations).
    pub strategy: WakeStrategy,
}

impl ASeparatorConfig {
    /// Default configuration for a tuple.
    pub fn new(tuple: AdmissibleTuple) -> Self {
        ASeparatorConfig {
            tuple,
            strategy: WakeStrategy::default(),
        }
    }
}

/// Runs `ASeparator` to completion: wakes every robot of the world
/// (given `ℓ ≥ ℓ*` and `ρ ≥ ρ*`).
///
/// # Example
///
/// ```
/// use freezetag_core::{a_separator, ASeparatorConfig};
/// use freezetag_instances::generators::uniform_disk;
/// use freezetag_sim::{ConcreteWorld, Sim, WorldView};
///
/// let inst = uniform_disk(30, 6.0, 1);
/// let mut sim = Sim::new(ConcreteWorld::new(&inst));
/// a_separator(&mut sim, &ASeparatorConfig::new(inst.admissible_tuple()));
/// assert!(sim.world().all_awake());
/// ```
pub fn a_separator<W: WorldView, R: Recorder>(sim: &mut Sim<W, R>, cfg: &ASeparatorConfig) {
    a_separator_in(sim, cfg, &mut AlgScratch::new());
}

/// [`a_separator`] with caller-provided scratch state: resident workers
/// construct one [`AlgScratch`] per thread and recycle its knowledge
/// store across jobs instead of reallocating (see
/// [`scratch`](crate::scratch)). Results are identical to [`a_separator`].
pub fn a_separator_in<W: WorldView, R: Recorder>(
    sim: &mut Sim<W, R>,
    cfg: &ASeparatorConfig,
    scratch: &mut AlgScratch,
) {
    let src = sim.world().source_pos();
    let square = Square::new(src, 2.0 * cfg.tuple.rho);
    let knowledge = scratch.knowledge(cfg.tuple.ell);
    knowledge.note_awake(RobotId::SOURCE, src);
    let team = Team::new(vec![RobotId::SOURCE]);
    let params = SeparatorParams {
        ell: cfg.tuple.ell,
        target: cfg.tuple.team_target(),
        strategy: cfg.strategy,
    };
    let sq = square;
    let own: Region = Rc::new(move |p| sq.contains(p));
    wake_square_with_team(sim, team, knowledge, square, own, params, 0);
}

/// Entry point shared with `AWave`: wake every owned robot inside
/// `square`, starting from `team` (anywhere, awake, synchronized).
///
/// With a team below the `4ℓ` target this performs the paper's Round 0
/// (recruitment by `DFSampling` seeded at the team's position); otherwise
/// it goes straight to partitioning rounds, as `AWave` does for its
/// per-square wake-ups (Section 8.2).
pub(crate) fn wake_square_with_team<W: WorldView, R: Recorder>(
    sim: &mut Sim<W, R>,
    mut team: Team,
    knowledge: &mut Knowledge,
    square: Square,
    own: Region,
    params: SeparatorParams,
    depth: usize,
) {
    let covered = if team.len() < params.target {
        // Round 0: recruit from the team's own position.
        let t0 = team.time(sim);
        let seeds = vec![team.pos(sim)];
        let own_in_square = in_square(&own, square);
        let out = df_sampling(
            sim,
            &mut team,
            knowledge,
            square,
            &seeds,
            own_in_square,
            params.ell,
            params.target,
        );
        team.move_all(sim, square.center());
        let t_end = team.time(sim);
        sim.trace_mut().record(
            format!("d{depth}/recruit"),
            t0,
            t_end,
            format!("team={} covered={}", team.len(), out.covered),
        );
        out.covered
    } else {
        team.move_all(sim, square.center());
        false
    };
    rounds(sim, team, knowledge, square, own, covered, params, depth);
}

/// Clones an ownership filter restricted to a square.
fn in_square(own: &Region, square: Square) -> impl Fn(Point) -> bool {
    let own = Rc::clone(own);
    move |p| square.contains(p) && own(p)
}

/// Index (0–3, matching [`Square::quadrants`]) of the quadrant *owning*
/// point `p` of `square`: deterministic even for border points.
pub(crate) fn owner_quadrant(square: &Square, p: Point) -> usize {
    let c = square.center();
    match (p.x >= c.x, p.y >= c.y) {
        (false, false) => 0,
        (true, false) => 1,
        (true, true) => 2,
        (false, true) => 3,
    }
}

/// One round of `ASeparator` on `square` (Figure 3, Rounds `k ≥ 1`). The
/// team must be at the square's centre, synchronized.
#[allow(clippy::too_many_arguments)]
fn rounds<W: WorldView, R: Recorder>(
    sim: &mut Sim<W, R>,
    team: Team,
    knowledge: &mut Knowledge,
    square: Square,
    own: Region,
    covered: bool,
    params: SeparatorParams,
    depth: usize,
) {
    if covered {
        // (i) Termination: everything owned in the square is discovered
        // (Lemma 5 coverage); wake the remainder centrally. Teams smaller
        // than 4 simply handle several quadrants sequentially below, so
        // no size check is needed here.
        terminating_round(sim, &team, knowledge, square, &own, params.strategy, depth);
        return;
    }

    // (ii) Partition.
    let quads = square.quadrants();
    let subteams = team.split(4);
    let n_sub = subteams.len();
    let mut outcomes: [Option<SamplingOutcome>; 4] = [None, None, None, None];
    let mut finished: Vec<Team> = Vec::new();

    for (ti, mut t) in subteams.into_iter().enumerate() {
        for qi in (0..4).filter(|q| q % n_sub == ti) {
            let quad = quads[qi];
            let sep = quad.separator(params.ell);
            let t0 = t.time(sim);
            // (iii) Exploration of sep(quad): the four ring rectangles
            // have oblivious sweep trajectories, so their moves are driven
            // first and the ring's sensing queries resolve as one batch on
            // the sim's pool. No wake happens between the sweeps, so this
            // is bit-identical to exploring the rectangles one at a time —
            // on every world. The sightings feed the knowledge store
            // directly (note_sighting is idempotent on the duplicates the
            // old per-rectangle dedup removed).
            RING_SCRATCH.with(|scratch| {
                let (queries, flat, counts) = &mut *scratch.borrow_mut();
                queries.clear();
                for rect in sep.rectangles() {
                    sweep_queries(sim, &t, &rect, rect.min(), queries);
                }
                sim.look_many_into(queries, flat, counts);
                for s in flat.iter() {
                    knowledge.note_sighting(s.id, s.pos);
                }
            });
            let t_sep_end = t.time(sim);
            sim.trace_mut().record(
                format!("d{depth}/explore-sep"),
                t0,
                t_sep_end,
                format!("quad={qi} width={:.1}", quad.width()),
            );
            // Seeds: every known robot (asleep or awake) located in the
            // separator ring, in id order — gathered from the cells of the
            // ring rectangles (adjacent rectangles share boundary cells,
            // hence the sort + dedup) instead of a full knowledge scan.
            let mut seed_ids: Vec<(usize, Point)> = Vec::new();
            for rect in sep.rectangles() {
                knowledge.for_each_known_in_rect(&rect, |id, origin, _| {
                    if sep.contains(origin) {
                        seed_ids.push((id.index(), origin));
                    }
                });
            }
            seed_ids.sort_unstable_by_key(|&(i, _)| i);
            seed_ids.dedup_by_key(|&mut (i, _)| i);
            let seeds: Vec<Point> = seed_ids.into_iter().map(|(_, p)| p).collect();
            // (iv) Recruitment inside the quadrant, with border ownership.
            let own_q = quadrant_region(&own, square, qi);
            let t1 = t.time(sim);
            let out = df_sampling(
                sim,
                &mut t,
                knowledge,
                quad,
                &seeds,
                own_q,
                params.ell,
                params.target,
            );
            let t_rec_end = t.time(sim);
            sim.trace_mut().record(
                format!("d{depth}/recruit"),
                t1,
                t_rec_end,
                format!(
                    "quad={qi} sample={} recruits={} covered={}",
                    out.sample.len(),
                    out.recruits.len(),
                    out.covered
                ),
            );
            outcomes[qi] = Some(out);
        }
        t.move_all(sim, square.center());
        finished.push(t);
    }

    // (v) Reorganization: merge at the centre, share variables, re-split
    // by quadrant of origin.
    let merged = Team::merge(finished);
    merged.sync(sim);

    #[derive(Clone, Copy, PartialEq)]
    enum Work {
        None,
        Terminate,
        Recurse,
    }
    let mut work = [Work::None; 4];
    for qi in 0..4 {
        let out = outcomes[qi].as_ref().expect("all quadrants sampled");
        let own_q = quadrant_region(&own, square, qi);
        // Owned sleepers can only originate inside the quadrant (the
        // ownership predicate conjoins `quad.contains`), so the existence
        // check is a bounded cell scan over the quadrant, not a pass over
        // everything known.
        let mut has_asleep = false;
        knowledge.for_each_known_in_rect(&quads[qi].to_rect(), |_, origin, awake| {
            has_asleep = has_asleep || (!awake && own_q(origin));
        });
        work[qi] = if !out.covered {
            Work::Recurse
        } else if has_asleep {
            Work::Terminate
        } else {
            Work::None
        };
    }

    // Buckets by origin quadrant; foreigners (origin outside the square)
    // are dealt round-robin to working quadrants.
    let mut buckets: [Vec<RobotId>; 4] = Default::default();
    let mut foreigners: Vec<RobotId> = Vec::new();
    let src_pos = sim.world().source_pos();
    for &r in merged.members() {
        let origin = knowledge.get(r).map_or(src_pos, |i| i.origin);
        if square.contains(origin) {
            buckets[owner_quadrant(&square, origin)].push(r);
        } else {
            foreigners.push(r);
        }
    }
    let working: Vec<usize> = (0..4).filter(|&q| work[q] != Work::None).collect();
    if working.is_empty() {
        return;
    }
    for (i, r) in foreigners.into_iter().enumerate() {
        buckets[working[i % working.len()]].push(r);
    }
    // Robots bucketed into workless quadrants stop here (stay at the
    // centre); working quadrants must each have at least one robot.
    for &qi in &working {
        if buckets[qi].is_empty() {
            let donor = (0..4)
                .filter(|&j| work[j] == Work::None || buckets[j].len() > 1)
                .max_by_key(|&j| buckets[j].len())
                .expect("merged team is non-empty");
            let r = buckets[donor].pop().expect("donor checked non-empty");
            buckets[qi].push(r);
        }
    }

    for &qi in &working {
        let quad = quads[qi];
        let t = Team::new(std::mem::take(&mut buckets[qi]));
        t.move_all(sim, quad.center());
        let own_q: Region = {
            let own = Rc::clone(&own);
            let sq = square;
            Rc::new(move |p| own(p) && quad.contains(p) && owner_quadrant(&sq, p) == qi)
        };
        let covered_q = work[qi] == Work::Terminate;
        rounds(sim, t, knowledge, quad, own_q, covered_q, params, depth + 1);
    }
}

fn quadrant_region(own: &Region, square: Square, qi: usize) -> impl Fn(Point) -> bool {
    let own = Rc::clone(own);
    let quad = square.quadrants()[qi];
    move |p| own(p) && quad.contains(p) && owner_quadrant(&square, p) == qi
}

/// Terminating round: wake every known sleeping owned robot with a
/// centralized wake-up tree rooted at the team's position (Lemma 2 +
/// Algorithm 1).
#[allow(clippy::too_many_arguments)]
fn terminating_round<W: WorldView, R: Recorder>(
    sim: &mut Sim<W, R>,
    team: &Team,
    knowledge: &mut Knowledge,
    square: Square,
    own: &Region,
    strategy: WakeStrategy,
    depth: usize,
) {
    // Known sleepers owned by the square, in id order (the wake-tree
    // builders are sensitive to item order): a bounded cell scan over the
    // square plus a sort, instead of the old full-knowledge filter.
    let mut items: Vec<(RobotId, Point)> = Vec::new();
    knowledge.for_each_known_in_rect(&square.to_rect(), |id, origin, awake| {
        if !awake && square.contains(origin) && own(origin) {
            items.push((id, origin));
        }
    });
    items.sort_unstable_by_key(|&(id, _)| id);
    if items.is_empty() {
        return;
    }
    let t0 = team.time(sim);
    let tree = strategy.build(team.pos(sim), &items);
    let woken = realize(sim, team.lead(), &tree);
    for id in &woken {
        // The item list was read off the store, so the origin lookup is a
        // direct probe (wakes never relocate an origin).
        let origin = knowledge
            .get(*id)
            .expect("woken robot was in the item list")
            .origin;
        knowledge.note_awake(*id, origin);
    }
    let t_end = team.time(sim);
    sim.trace_mut().record(
        format!("d{depth}/terminate"),
        t0,
        t_end,
        format!("woke={} width={:.1}", woken.len(), square.width()),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezetag_instances::generators::{grid_lattice, snake, uniform_disk};
    use freezetag_sim::{validate, ConcreteWorld, ValidationOptions};

    fn run(inst: &freezetag_instances::Instance) -> freezetag_sim::ValidationReport {
        let mut sim = Sim::new(ConcreteWorld::new(inst));
        a_separator(&mut sim, &ASeparatorConfig::new(inst.admissible_tuple()));
        assert!(sim.world().all_awake(), "not everyone woke up");
        let (_, schedule, _) = sim.into_parts();
        validate(
            &schedule,
            inst.source(),
            inst.positions(),
            &ValidationOptions::default(),
        )
        .expect("schedule must validate")
    }

    #[test]
    fn wakes_uniform_disk() {
        let inst = uniform_disk(40, 8.0, 3);
        let rep = run(&inst);
        assert_eq!(rep.wake_count, 40);
        assert!(rep.makespan > 0.0);
    }

    #[test]
    fn wakes_lattice() {
        let inst = grid_lattice(5, 8, 1.5);
        let rep = run(&inst);
        assert_eq!(rep.wake_count, 40);
    }

    #[test]
    fn wakes_snake() {
        let inst = snake(4, 12.0, 1.5, 1.0);
        let rep = run(&inst);
        assert_eq!(rep.wake_count, inst.n());
    }

    #[test]
    fn single_far_robot() {
        let inst = freezetag_instances::Instance::new(vec![Point::new(0.4, 0.3)]);
        let rep = run(&inst);
        assert_eq!(rep.wake_count, 1);
    }

    #[test]
    fn makespan_within_theoretical_shape() {
        // makespan / (rho + ell^2 log(rho/ell)) bounded by a modest
        // constant across sizes.
        for (n, radius, seed) in [(30, 6.0, 1), (80, 16.0, 2), (150, 32.0, 3)] {
            let inst = uniform_disk(n, radius, seed);
            let tuple = inst.admissible_tuple();
            let rep = run(&inst);
            let bound = tuple.rho + tuple.ell * tuple.ell * (tuple.rho / tuple.ell).max(2.0).log2();
            let ratio = rep.makespan / bound;
            assert!(
                ratio < 60.0,
                "ratio {ratio:.1} out of shape for n={n} radius={radius}"
            );
        }
    }

    #[test]
    fn all_wake_strategies_complete_the_run() {
        // The Lemma 2 slot is pluggable in ASeparator: every strategy must
        // still wake everyone (makespans differ — see the ablation bench).
        let inst = uniform_disk(35, 7.0, 6);
        let tuple = inst.admissible_tuple();
        let mut makespans = Vec::new();
        for strategy in WakeStrategy::ALL {
            let mut sim = Sim::new(ConcreteWorld::new(&inst));
            a_separator(&mut sim, &ASeparatorConfig { tuple, strategy });
            assert!(sim.world().all_awake(), "{strategy} left robots asleep");
            makespans.push(sim.schedule().makespan());
        }
        // The chain baseline should be the worst of the four here.
        let quadtree = makespans[0];
        let chain = makespans[3];
        assert!(chain >= quadtree, "chain {chain} beat quadtree {quadtree}");
    }

    #[test]
    fn owner_quadrant_is_deterministic_partition() {
        let sq = Square::new(Point::ORIGIN, 8.0);
        // Center belongs to exactly one quadrant.
        assert_eq!(owner_quadrant(&sq, Point::ORIGIN), 2);
        assert_eq!(owner_quadrant(&sq, Point::new(-1.0, -1.0)), 0);
        assert_eq!(owner_quadrant(&sq, Point::new(1.0, -1.0)), 1);
        assert_eq!(owner_quadrant(&sq, Point::new(-1.0, 1.0)), 3);
        // Border point on the vertical midline goes right.
        assert_eq!(owner_quadrant(&sq, Point::new(0.0, -1.0)), 1);
    }
}
