//! Worker-resident scratch state reused across jobs.
//!
//! A one-shot CLI run pays its per-job allocations once, but a resident
//! serving process (the `Engine` worker pool behind `dftp serve`) runs
//! thousands of jobs per worker thread. [`AlgScratch`] bundles the
//! allocation-heavy per-run state the algorithms need — today the
//! [`Knowledge`] store with its spatial index — so a worker constructs it
//! once and hands it to every job via [`a_separator_in`](crate::a_separator_in)
//! / [`a_wave_in`](crate::a_wave_in). Between jobs the store is recycled
//! by [`Knowledge::reset`]: an O(1) epoch bump plus a cell-width swap,
//! never a reallocation.
//!
//! Reuse is unobservable in results: a reset store answers every query
//! exactly like a fresh one (pinned by the knowledge-layer tests and the
//! schedule-identity suite), so cached and freshly-computed results stay
//! byte-identical.

use crate::knowledge::Knowledge;

/// Reusable per-worker scratch for the distributed algorithms; see the
/// [module docs](self).
///
/// # Example
///
/// ```
/// use freezetag_core::{a_separator_in, ASeparatorConfig, AlgScratch};
/// use freezetag_instances::generators::uniform_disk;
/// use freezetag_sim::{ConcreteWorld, Sim, WorldView};
///
/// let mut scratch = AlgScratch::new();
/// for seed in 1..3 {
///     let inst = uniform_disk(30, 6.0, seed);
///     let mut sim = Sim::new(ConcreteWorld::new(&inst));
///     a_separator_in(&mut sim, &ASeparatorConfig::new(inst.admissible_tuple()), &mut scratch);
///     assert!(sim.world().all_awake());
/// }
/// ```
#[derive(Debug, Default)]
pub struct AlgScratch {
    knowledge: Knowledge,
}

impl AlgScratch {
    /// Fresh scratch (no allocations yet; they grow with the first job
    /// and are kept from then on).
    pub fn new() -> Self {
        AlgScratch::default()
    }

    /// The knowledge store, recycled for a run with connectivity
    /// parameter `cell_width = ℓ` (see [`Knowledge::with_cell_width`]).
    ///
    /// # Panics
    ///
    /// Panics if `cell_width <= 0` or not finite.
    pub fn knowledge(&mut self, cell_width: f64) -> &mut Knowledge {
        self.knowledge.reset(cell_width);
        &mut self.knowledge
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::separator::ASeparatorConfig;
    use crate::wave::AWaveConfig;
    use crate::{a_separator_in, a_wave_in};
    use freezetag_instances::generators::uniform_disk;
    use freezetag_sim::{ConcreteWorld, Schedule, Sim, WorldView};

    fn fingerprint(s: &Schedule) -> (u64, u64, usize) {
        (
            s.makespan().to_bits(),
            s.total_energy().to_bits(),
            s.wakes().len(),
        )
    }

    #[test]
    fn reused_scratch_reproduces_fresh_schedules_across_varied_jobs() {
        // One scratch serves a separator job, then a wave job with a
        // different ℓ, then the first job again — every schedule must
        // match a fresh-scratch run bit for bit.
        let mut reused = AlgScratch::new();
        let run = |scratch: &mut AlgScratch, seed: u64, wave: bool| {
            let inst = uniform_disk(40, 8.0, seed);
            let mut sim = Sim::new(ConcreteWorld::new(&inst));
            if wave {
                a_wave_in(&mut sim, &AWaveConfig { ell: 2.0 }, scratch);
            } else {
                a_separator_in(
                    &mut sim,
                    &ASeparatorConfig::new(inst.admissible_tuple()),
                    scratch,
                );
            }
            assert!(sim.world().all_awake());
            let (_, schedule, _) = sim.into_parts();
            fingerprint(&schedule)
        };
        for (seed, wave) in [(3, false), (4, true), (3, false)] {
            let want = run(&mut AlgScratch::new(), seed, wave);
            let got = run(&mut reused, seed, wave);
            assert_eq!(got, want, "seed {seed} wave {wave}");
        }
    }
}
