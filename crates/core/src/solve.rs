use crate::{a_grid, a_separator, a_wave, AGridConfig, ASeparatorConfig, AWaveConfig};
use freezetag_instances::{AdmissibleTuple, Instance};
use freezetag_sim::{
    validate, ConcreteWorld, Recorder, Sim, SimError, Trace, ValidationOptions, ValidationReport,
    WorldView,
};

/// The three distributed algorithms of the paper (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// `ASeparator`: unconstrained energy, makespan `O(ρ + ℓ² log(ρ/ℓ))`.
    Separator,
    /// `AGrid`: energy `Θ(ℓ²)`, makespan `O(ξ_ℓ·ℓ)`.
    Grid,
    /// `AWave`: energy `Θ(ℓ² log ℓ)`, makespan `O(ξ_ℓ + ℓ² log(ξ_ℓ/ℓ))`.
    Wave,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::Separator => write!(f, "ASeparator"),
            Algorithm::Grid => write!(f, "AGrid"),
            Algorithm::Wave => write!(f, "AWave"),
        }
    }
}

/// Everything measured on one validated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The algorithm that produced this run.
    pub algorithm: Algorithm,
    /// Time the last robot was woken — the quantity the theorems bound.
    pub makespan: f64,
    /// Time the last robot stopped moving.
    pub completion_time: f64,
    /// Worst per-robot travel (energy).
    pub max_energy: f64,
    /// Total travel of the swarm.
    pub total_energy: f64,
    /// Number of robots woken.
    pub wake_count: usize,
    /// Whether every robot ended awake.
    pub all_awake: bool,
    /// Number of `look` snapshots taken.
    pub looks: usize,
    /// Phase trace (for the figure harness).
    pub trace: Trace,
}

impl RunReport {
    fn from_parts(
        algorithm: Algorithm,
        report: ValidationReport,
        looks: usize,
        n: usize,
        trace: Trace,
    ) -> Self {
        RunReport {
            algorithm,
            makespan: report.makespan,
            completion_time: report.completion_time,
            max_energy: report.max_energy,
            total_energy: report.total_energy,
            wake_count: report.wake_count,
            all_awake: report.robots_awake == n + 1,
            looks,
            trace,
        }
    }
}

/// Dispatches one of the three algorithms on an already-built simulation.
/// Useful for driving adversarial worlds; [`solve`] is the plain-instance
/// convenience wrapper.
pub fn run_algorithm<W: WorldView, R: Recorder>(
    sim: &mut Sim<W, R>,
    tuple: &AdmissibleTuple,
    alg: Algorithm,
) {
    match alg {
        Algorithm::Separator => a_separator(sim, &ASeparatorConfig::new(*tuple)),
        Algorithm::Grid => a_grid(sim, &AGridConfig { ell: tuple.ell }),
        Algorithm::Wave => a_wave(sim, &AWaveConfig { ell: tuple.ell }),
    }
}

/// Solves the dFTP on `instance` with the given input tuple and algorithm,
/// then validates the produced schedule end-to-end (kinematics, wake
/// legality, full coverage).
///
/// # Errors
///
/// Returns the first validation failure — which, on a correct build, never
/// happens for admissible tuples with `ℓ ≥ ℓ*` and `ρ ≥ ρ*`.
///
/// # Example
///
/// ```
/// use freezetag_core::{solve, Algorithm};
/// use freezetag_instances::generators::uniform_disk;
///
/// let inst = uniform_disk(40, 8.0, 1);
/// let report = solve(&inst, &inst.admissible_tuple(), Algorithm::Grid).unwrap();
/// assert!(report.all_awake);
/// ```
pub fn solve(
    instance: &Instance,
    tuple: &AdmissibleTuple,
    alg: Algorithm,
) -> Result<RunReport, SimError> {
    solve_with_options(instance, tuple, alg, &ValidationOptions::default())
}

/// Like [`solve`], but validating against caller-chosen options — most
/// usefully a per-robot energy budget `B`, turning the run into the
/// paper's *dFTP with energy budget* (Definition 1):
///
/// ```
/// use freezetag_core::{solve_with_options, Algorithm};
/// use freezetag_instances::generators::grid_lattice;
/// use freezetag_sim::ValidationOptions;
///
/// let inst = grid_lattice(4, 4, 1.0);
/// let tuple = inst.admissible_tuple();
/// let opts = ValidationOptions {
///     energy_budget: Some(200.0), // generous Θ(ℓ²) budget for ℓ = 1
///     ..Default::default()
/// };
/// let rep = solve_with_options(&inst, &tuple, Algorithm::Grid, &opts).unwrap();
/// assert!(rep.all_awake);
/// ```
///
/// # Errors
///
/// Any validation failure, including [`SimError::EnergyExceeded`] when the
/// budget binds.
pub fn solve_with_options(
    instance: &Instance,
    tuple: &AdmissibleTuple,
    alg: Algorithm,
    opts: &ValidationOptions,
) -> Result<RunReport, SimError> {
    let mut sim = Sim::new(ConcreteWorld::new(instance));
    run_algorithm(&mut sim, tuple, alg);
    let (world, schedule, trace) = sim.into_parts();
    let report = validate(&schedule, instance.source(), instance.positions(), opts)?;
    Ok(RunReport::from_parts(
        alg,
        report,
        world.look_count(),
        instance.n(),
        trace,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezetag_instances::generators::uniform_disk;

    #[test]
    fn solve_runs_all_three_algorithms() {
        let inst = uniform_disk(25, 6.0, 13);
        let tuple = inst.admissible_tuple();
        for alg in [Algorithm::Separator, Algorithm::Grid, Algorithm::Wave] {
            let rep = solve(&inst, &tuple, alg).expect("valid run");
            assert!(rep.all_awake, "{alg} left robots asleep");
            assert_eq!(rep.wake_count, 25);
            assert!(rep.makespan > 0.0);
            assert!(rep.makespan <= rep.completion_time + 1e-9);
            assert!(rep.looks > 0);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Algorithm::Separator.to_string(), "ASeparator");
        assert_eq!(Algorithm::Grid.to_string(), "AGrid");
        assert_eq!(Algorithm::Wave.to_string(), "AWave");
    }
}
