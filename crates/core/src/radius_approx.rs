//! Constant-factor approximation of the radius `ρ*` knowing only `ℓ`
//! (the Section 5 discussion): build a team of `4ℓ` robots with
//! `DFSampling`, then explore the ℓ-separators of squares of doubling
//! width `ℓ·2^i` until one comes back empty — at that point every robot
//! lies inside the last square, and its width is a constant-factor
//! estimate of `ρ*`. Total overhead `O(ℓ² log ℓ + ρ)`.

use crate::explore::explore;
use crate::knowledge::Knowledge;
use crate::sampling::df_sampling;
use crate::team::Team;
use freezetag_geometry::{Separator, Square};
use freezetag_sim::{Recorder, RobotId, Sim, WorldView};

/// Whether any known origin lies in the separator ring: a bounded cell
/// scan over the ring's rectangle decomposition (the rectangles tile the
/// ring, so together they see every origin `sep.contains` accepts),
/// instead of a full pass over everything known. The doubling search
/// re-asks this each round over an ever-larger store, so the full scan
/// was quadratic in discovered robots.
fn any_known_in_separator(knowledge: &Knowledge, sep: &Separator) -> bool {
    let mut found = false;
    for rect in sep.rectangles() {
        knowledge.for_each_known_in_rect(&rect, |_, origin, _| {
            found = found || sep.contains(origin);
        });
        if found {
            break;
        }
    }
    found
}

/// Result of [`estimate_radius`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadiusEstimate {
    /// The estimate `ρ̂` — within a constant factor of `ρ*` (see the
    /// integration tests for the empirically asserted window).
    pub rho_hat: f64,
    /// Simulated time the estimation took (the Section 5 overhead).
    pub duration: f64,
    /// Whether the estimate is exact: the initial sampling already covered
    /// the whole swarm, so `ρ̂` is the true maximum origin distance.
    pub exact: bool,
}

/// Estimates `ρ*` from the source given only `ℓ ≥ ℓ*`.
///
/// # Panics
///
/// Panics if `ell <= 0`, or if the doubling search exceeds width `2^40·ℓ`
/// (instance radii beyond any practical experiment, indicating a
/// disconnected input).
///
/// # Example
///
/// ```
/// use freezetag_core::estimate_radius;
/// use freezetag_instances::generators::uniform_disk;
/// use freezetag_sim::{ConcreteWorld, Sim};
///
/// let inst = uniform_disk(40, 10.0, 5);
/// let tuple = inst.admissible_tuple();
/// let mut sim = Sim::new(ConcreteWorld::new(&inst));
/// let est = estimate_radius(&mut sim, tuple.ell);
/// let rho_star = inst.params(None).rho_star;
/// assert!(est.rho_hat >= rho_star / 2.0);
/// ```
pub fn estimate_radius<W: WorldView, R: Recorder>(sim: &mut Sim<W, R>, ell: f64) -> RadiusEstimate {
    assert!(ell > 0.0 && ell.is_finite(), "ell must be positive");
    let src = sim.world().source_pos();
    let t_start = sim.time(RobotId::SOURCE);
    let mut team = Team::new(vec![RobotId::SOURCE]);
    let mut knowledge = Knowledge::with_cell_width(ell);
    knowledge.note_awake(RobotId::SOURCE, src);
    let target = ((4.0 * ell).ceil() as usize).max(4);

    // Step 1: recruit a team of 4ℓ (region unbounded — the DFS is confined
    // by connectivity anyway).
    let huge = Square::new(src, 2.0_f64.powi(41) * ell);
    let out = df_sampling(
        sim,
        &mut team,
        &mut knowledge,
        huge,
        &[src],
        |_| true,
        ell,
        target,
    );
    if out.covered {
        // The whole swarm is discovered: ρ* is read off the origins.
        let rho_hat = knowledge
            .iter()
            .map(|(_, info)| info.origin.dist(src))
            .fold(0.0, f64::max);
        return RadiusEstimate {
            rho_hat: rho_hat.max(ell),
            duration: team.time(sim) - t_start,
            exact: true,
        };
    }

    // Step 2: doubling separator sweeps until an empty ring.
    for i in 1..=40 {
        let width = ell * 2.0_f64.powi(i);
        let sq = Square::new(src, width);
        let sep = sq.separator(ell);
        let mut found = any_known_in_separator(&knowledge, &sep);
        if !found {
            for rect in sep.rectangles() {
                let sightings = explore(sim, &team, &rect, rect.min());
                for s in sightings {
                    knowledge.note_sighting(s.id, s.pos);
                    if sep.contains(s.pos) {
                        found = true;
                    }
                }
            }
        }
        if !found {
            return RadiusEstimate {
                rho_hat: width,
                duration: team.time(sim) - t_start,
                exact: false,
            };
        }
    }
    panic!("doubling search exceeded width 2^40·ell — disconnected instance?");
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezetag_instances::generators::{snake, uniform_disk};
    use freezetag_sim::ConcreteWorld;

    #[test]
    fn estimate_brackets_true_radius() {
        for (inst, label) in [
            (uniform_disk(60, 12.0, 2), "disk"),
            (snake(3, 30.0, 2.0, 1.0), "snake"),
        ] {
            let tuple = inst.admissible_tuple();
            let rho_star = inst.params(None).rho_star;
            let mut sim = Sim::new(ConcreteWorld::new(&inst));
            let est = estimate_radius(&mut sim, tuple.ell);
            // Never underestimates below the hole containment, never
            // overestimates beyond the doubling factor.
            assert!(
                est.rho_hat >= rho_star / 1.0_f64.max(std::f64::consts::SQRT_2),
                "{label}: rho_hat {} too small vs rho* {rho_star}",
                est.rho_hat
            );
            assert!(
                est.rho_hat <= 4.0 * rho_star + 4.0 * tuple.ell,
                "{label}: rho_hat {} too large vs rho* {rho_star}",
                est.rho_hat
            );
        }
    }

    #[test]
    fn covered_swarm_is_exact() {
        // Tiny swarm: sampling covers everything, estimate is exact.
        let inst = uniform_disk(5, 2.0, 9);
        let tuple = inst.admissible_tuple();
        let rho_star = inst.params(None).rho_star;
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        let est = estimate_radius(&mut sim, tuple.ell);
        assert!(est.exact);
        assert!((est.rho_hat - rho_star.max(tuple.ell)).abs() < 1e-9);
    }

    #[test]
    fn bounded_separator_scan_matches_full_scan() {
        // Parity with the scan this helper replaced: `known_where(|p|
        // sep.contains(p)).next().is_some()` over every known origin.
        use freezetag_geometry::Point;
        let mut k = Knowledge::with_cell_width(1.5);
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rnd = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 * 2.0 - 1.0
        };
        for i in 0..300 {
            k.note_sighting(RobotId::sleeper(i), Point::new(rnd() * 40.0, rnd() * 40.0));
        }
        // Origins exactly on ring borders (hole corner, outer edge).
        for (j, p) in [
            Point::new(4.0, 4.0),
            Point::new(5.0, 0.0),
            Point::new(-5.0, -5.0),
            Point::new(0.0, -4.0),
        ]
        .into_iter()
        .enumerate()
        {
            k.note_sighting(RobotId::sleeper(300 + j), p);
        }
        for width in [2.0, 5.0, 10.0, 23.0, 77.0, 200.0] {
            for ell in [0.5, 1.0, 3.0] {
                for center in [Point::ORIGIN, Point::new(1.0, -2.0), Point::new(90.0, 90.0)] {
                    let sep = Square::new(center, width).separator(ell);
                    let want = k.known_where(|p| sep.contains(p)).next().is_some();
                    assert_eq!(
                        any_known_in_separator(&k, &sep),
                        want,
                        "width={width} ell={ell} center={center}"
                    );
                }
            }
        }
    }

    #[test]
    fn overhead_is_recorded() {
        let inst = uniform_disk(30, 8.0, 4);
        let tuple = inst.admissible_tuple();
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        let est = estimate_radius(&mut sim, tuple.ell);
        assert!(est.duration > 0.0);
    }
}
