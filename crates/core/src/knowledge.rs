//! The shared team memory, stored struct-of-arrays with a spatial index.
//!
//! The paper's teams exchange variables when co-located; the algorithms in
//! this crate merge `Knowledge` values exactly at those rendezvous.
//! Soundness property: `Knowledge` only ever contains robots that some
//! `look` has returned or that the algorithm woke itself — never
//! undiscovered positions.
//!
//! ## Layout
//!
//! The original store was a `BTreeMap<RobotId, RobotInfo>` that every
//! `DFSampling` step re-scanned in full — the quadratic term that kept
//! `ASeparator`/`AWave` from 10⁵–10⁶-robot runs. This version is dense and
//! grid-indexed:
//!
//! * origin coordinates and known/awake flags live in flat arrays indexed
//!   by [`RobotId::index`] (robot ids are dense — the id *is* the slot);
//! * the flags are **epoch stamps** (`known_at[i] == epoch`), so
//!   [`Knowledge::clear`] is a counter bump, not an `O(n)` refill;
//! * a [`CellGrid`] over the known origins answers bounded region queries
//!   ([`Knowledge::for_each_known_within`],
//!   [`Knowledge::for_each_known_in_rect`]) in O(cells + matches) instead
//!   of O(everything known).
//!
//! Iteration-order contract: the id-ordered iterators ([`Knowledge::iter`],
//! [`Knowledge::known_where`], [`Knowledge::asleep_where`]) report robots
//! in ascending id order exactly as the `BTreeMap` did; the grid-backed
//! visitors trade that order for locality and say so in their docs. The
//! `knowledge_parity` proptest suite pins both against a map-based model.

use freezetag_geometry::{Point, Rect};
use freezetag_graph::CellGrid;
use freezetag_sim::RobotId;

/// What a team knows about an individual robot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobotInfo {
    /// Initial position (robots identify themselves by it — Section 1.2).
    pub origin: Point,
    /// Whether the team knows the robot to be awake.
    pub awake: bool,
}

/// Shared team memory: every robot ever observed (by a `look`) or woken.
///
/// # Example
///
/// ```
/// use freezetag_core::knowledge::Knowledge;
/// use freezetag_geometry::Point;
/// use freezetag_sim::RobotId;
///
/// let mut k = Knowledge::new();
/// k.note_sighting(RobotId::sleeper(0), Point::new(1.0, 0.0));
/// assert!(!k.is_awake(RobotId::sleeper(0)));
/// k.note_awake(RobotId::sleeper(0), Point::new(1.0, 0.0));
/// assert!(k.is_awake(RobotId::sleeper(0)));
/// assert_eq!(k.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Knowledge {
    /// Robot `i` is known iff `known_at[i] == epoch`.
    known_at: Vec<u32>,
    /// Robot `i` is known awake iff `awake_at[i] == epoch`.
    awake_at: Vec<u32>,
    /// Origin coordinates (valid only while known).
    ox: Vec<f64>,
    oy: Vec<f64>,
    /// The grid entry that currently represents robot `i` (stale entries
    /// from origin updates are skipped by comparing against this).
    grid_slot: Vec<u32>,
    /// Current epoch; bumping it forgets everything in O(1).
    epoch: u32,
    /// Number of known robots this epoch.
    len: usize,
    /// Spatial index over known origins.
    grid: CellGrid,
    /// Robot index of each grid entry.
    grid_robot: Vec<u32>,
}

impl Default for Knowledge {
    fn default() -> Self {
        Knowledge::new()
    }
}

impl Knowledge {
    /// Empty knowledge with a unit grid cell.
    pub fn new() -> Self {
        Knowledge::with_cell_width(1.0)
    }

    /// Empty knowledge whose spatial index buckets origins into cells of
    /// `cell_width` — callers pass their connectivity parameter ℓ so the
    /// `2ℓ`-radius queries of `DFSampling` scan O(1) cells.
    ///
    /// # Panics
    ///
    /// Panics if `cell_width <= 0` or not finite.
    pub fn with_cell_width(cell_width: f64) -> Self {
        Knowledge {
            known_at: Vec::new(),
            awake_at: Vec::new(),
            ox: Vec::new(),
            oy: Vec::new(),
            grid_slot: Vec::new(),
            epoch: 1,
            len: 0,
            grid: CellGrid::new(cell_width),
            grid_robot: Vec::new(),
        }
    }

    /// [`clear`](Self::clear) plus a spatial-index re-bucketing to a new
    /// `cell_width` — the reuse path for worker-resident stores serving
    /// jobs with varying ℓ. Equivalent to a fresh
    /// [`with_cell_width`](Self::with_cell_width) but keeps every
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if `cell_width <= 0` or not finite.
    pub fn reset(&mut self, cell_width: f64) {
        self.clear();
        self.grid.reset(cell_width);
    }

    /// Forgets everything in O(previously known), keeping allocations.
    /// The dense per-robot arrays are invalidated by an epoch bump alone.
    pub fn clear(&mut self) {
        self.len = 0;
        self.grid.clear();
        self.grid_robot.clear();
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // Epoch wrap (u32::MAX clears): refill the stamps once so
                // stale epochs can never alias the restarted counter.
                self.known_at.fill(0);
                self.awake_at.fill(0);
                1
            }
        };
    }

    #[inline]
    fn slot(&mut self, id: RobotId) -> usize {
        let i = id.index();
        if i >= self.known_at.len() {
            self.known_at.resize(i + 1, 0);
            self.awake_at.resize(i + 1, 0);
            self.ox.resize(i + 1, 0.0);
            self.oy.resize(i + 1, 0.0);
            self.grid_slot.resize(i + 1, u32::MAX);
        }
        i
    }

    #[inline]
    fn known(&self, i: usize) -> bool {
        self.known_at.get(i).copied() == Some(self.epoch)
    }

    #[inline]
    fn origin(&self, i: usize) -> Point {
        Point::new(self.ox[i], self.oy[i])
    }

    /// Inserts robot `i` (not currently known) with the given origin.
    #[inline]
    fn insert(&mut self, i: usize, origin: Point) {
        self.known_at[i] = self.epoch;
        self.ox[i] = origin.x;
        self.oy[i] = origin.y;
        self.grid_slot[i] = self.grid.push(origin) as u32;
        self.grid_robot.push(i as u32);
        self.len += 1;
    }

    /// Records a sleeping sighting at its initial position.
    ///
    /// For a robot already known *asleep*, the latest sighting wins (as
    /// repeated map inserts did — initial positions never change, so
    /// duplicates are identical anyway). For a robot known *awake* the
    /// recorded origin is kept: its first look wins, and a later
    /// (necessarily inconsistent) report cannot silently relocate it.
    pub fn note_sighting(&mut self, id: RobotId, pos: Point) {
        let i = self.slot(id);
        if !self.known(i) {
            self.insert(i, pos);
        } else if self.awake_at[i] != self.epoch && (self.ox[i] != pos.x || self.oy[i] != pos.y) {
            // Origin update for a sleeping robot: re-index under the new
            // position; the old grid entry goes stale and is skipped by
            // the `grid_slot` check in every query.
            self.ox[i] = pos.x;
            self.oy[i] = pos.y;
            self.grid_slot[i] = self.grid.push(pos) as u32;
            self.grid_robot.push(i as u32);
        }
    }

    /// Records that a robot (with the given origin) is awake. The origin
    /// argument is only used when the robot was entirely unknown; a known
    /// robot keeps its recorded origin.
    pub fn note_awake(&mut self, id: RobotId, origin: Point) {
        let i = self.slot(id);
        if !self.known(i) {
            self.insert(i, origin);
        }
        self.awake_at[i] = self.epoch;
    }

    /// Lookup.
    pub fn get(&self, id: RobotId) -> Option<RobotInfo> {
        let i = id.index();
        self.known(i).then(|| RobotInfo {
            origin: self.origin(i),
            awake: self.awake_at[i] == self.epoch,
        })
    }

    /// Whether the team knows this robot to be awake.
    pub fn is_awake(&self, id: RobotId) -> bool {
        self.awake_at.get(id.index()).copied() == Some(self.epoch)
    }

    /// All known robots, ordered by id.
    pub fn iter(&self) -> impl Iterator<Item = (RobotId, RobotInfo)> + '_ {
        (0..self.known_at.len())
            .filter(|&i| self.known(i))
            .map(|i| {
                (
                    RobotId::from_index(i),
                    RobotInfo {
                        origin: self.origin(i),
                        awake: self.awake_at[i] == self.epoch,
                    },
                )
            })
    }

    /// Known *sleeping* robots whose origin satisfies `filter`, ordered by
    /// id. A full scan — bounded regions should use the grid-backed
    /// visitors instead.
    pub fn asleep_where<'a, F: Fn(Point) -> bool + 'a>(
        &'a self,
        filter: F,
    ) -> impl Iterator<Item = (RobotId, Point)> + 'a {
        self.iter()
            .filter(move |(_, info)| !info.awake && filter(info.origin))
            .map(|(id, info)| (id, info.origin))
    }

    /// Known robots (any status) whose origin satisfies `filter`, ordered
    /// by id. A full scan — bounded regions should use the grid-backed
    /// visitors instead.
    pub fn known_where<'a, F: Fn(Point) -> bool + 'a>(
        &'a self,
        filter: F,
    ) -> impl Iterator<Item = (RobotId, RobotInfo)> + 'a {
        self.iter().filter(move |(_, info)| filter(info.origin))
    }

    /// Calls `f(id, origin, awake)` for every known robot whose origin
    /// lies within Euclidean distance `r` of `q` (inclusive, `EPS` slack —
    /// the exact acceptance of [`CellGrid::within_into`]), in
    /// **unspecified order**. Cost is O(cells scanned + chain lengths).
    #[inline]
    pub fn for_each_known_within(&self, q: Point, r: f64, mut f: impl FnMut(RobotId, Point, bool)) {
        self.grid.for_each_within(q, r, |gi, p| {
            let i = self.grid_robot[gi] as usize;
            if self.grid_slot[i] == gi as u32 {
                f(RobotId::from_index(i), p, self.awake_at[i] == self.epoch);
            }
        });
    }

    /// Calls `f(id, origin, awake)` for every known robot whose origin
    /// satisfies `rect.contains` (closed containment with `EPS` slack —
    /// the test runs through the grid's rect membership kernel), in
    /// **unspecified order**. Callers with a *stricter* predicate (ring
    /// membership, quadrant ownership) still apply it in `f`; the `EPS`
    /// slack guarantees no origin such a predicate accepts is filtered
    /// out here first.
    #[inline]
    pub fn for_each_known_in_rect(&self, rect: &Rect, mut f: impl FnMut(RobotId, Point, bool)) {
        self.grid.for_each_in_rect(rect.min(), rect.max(), |gi, p| {
            let i = self.grid_robot[gi] as usize;
            if self.grid_slot[i] == gi as u32 {
                f(RobotId::from_index(i), p, self.awake_at[i] == self.epoch);
            }
        });
    }

    /// Merges another team's knowledge: unknown robots are adopted with
    /// their origin, already-known robots keep theirs, and awake status is
    /// sticky.
    pub fn merge(&mut self, other: &Knowledge) {
        for (id, info) in other.iter() {
            let i = self.slot(id);
            if !self.known(i) {
                self.insert(i, info.origin);
            }
            if info.awake {
                self.awake_at[i] = self.epoch;
            }
        }
    }

    /// Number of known robots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is known yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sightings_then_wake() {
        let mut k = Knowledge::new();
        k.note_sighting(RobotId::sleeper(0), Point::new(1.0, 0.0));
        assert!(!k.is_awake(RobotId::sleeper(0)));
        k.note_awake(RobotId::sleeper(0), Point::new(1.0, 0.0));
        assert!(k.is_awake(RobotId::sleeper(0)));
        assert_eq!(k.len(), 1);
    }

    #[test]
    fn filters_by_region() {
        let mut k = Knowledge::new();
        k.note_sighting(RobotId::sleeper(0), Point::new(1.0, 0.0));
        k.note_sighting(RobotId::sleeper(1), Point::new(10.0, 0.0));
        k.note_awake(RobotId::sleeper(2), Point::new(2.0, 0.0));
        let near: Vec<_> = k.asleep_where(|p| p.x < 5.0).collect();
        assert_eq!(near, vec![(RobotId::sleeper(0), Point::new(1.0, 0.0))]);
        let known: Vec<_> = k.known_where(|p| p.x < 5.0).collect();
        assert_eq!(known.len(), 2);
    }

    #[test]
    fn merge_is_sticky_on_awake() {
        let mut a = Knowledge::new();
        a.note_sighting(RobotId::sleeper(0), Point::new(1.0, 0.0));
        let mut b = Knowledge::new();
        b.note_awake(RobotId::sleeper(0), Point::new(1.0, 0.0));
        b.note_sighting(RobotId::sleeper(1), Point::new(2.0, 0.0));
        a.merge(&b);
        assert!(a.is_awake(RobotId::sleeper(0)));
        assert_eq!(a.len(), 2);
        // Merging the stale view back does not un-wake.
        let mut stale = Knowledge::new();
        stale.note_sighting(RobotId::sleeper(0), Point::new(1.0, 0.0));
        a.merge(&stale);
        assert!(a.is_awake(RobotId::sleeper(0)));
    }

    #[test]
    fn empty_knowledge() {
        let k = Knowledge::new();
        assert!(k.is_empty());
        assert_eq!(k.iter().count(), 0);
        assert!(k.get(RobotId::SOURCE).is_none());
    }

    #[test]
    fn awake_origin_keeps_its_first_look() {
        // Regression for the silent-overwrite bug: an awake robot's origin
        // must not move when a (necessarily bogus) later sighting arrives.
        let mut k = Knowledge::new();
        k.note_awake(RobotId::sleeper(0), Point::new(1.0, 0.0));
        k.note_sighting(RobotId::sleeper(0), Point::new(9.0, 9.0));
        let info = k.get(RobotId::sleeper(0)).unwrap();
        assert_eq!(info.origin, Point::new(1.0, 0.0), "first look must win");
        assert!(info.awake);
        // note_awake on a known robot also keeps the recorded origin.
        k.note_awake(RobotId::sleeper(0), Point::new(7.0, 7.0));
        assert_eq!(
            k.get(RobotId::sleeper(0)).unwrap().origin,
            Point::new(1.0, 0.0)
        );
        // A *sleeping* robot still takes the latest sighting, as before.
        k.note_sighting(RobotId::sleeper(1), Point::new(2.0, 0.0));
        k.note_sighting(RobotId::sleeper(1), Point::new(3.0, 0.0));
        assert_eq!(
            k.get(RobotId::sleeper(1)).unwrap().origin,
            Point::new(3.0, 0.0)
        );
    }

    #[test]
    fn grid_queries_see_updated_origins_exactly_once() {
        let mut k = Knowledge::new();
        k.note_sighting(RobotId::sleeper(0), Point::new(1.0, 0.0));
        k.note_sighting(RobotId::sleeper(0), Point::new(6.0, 0.0));
        // Old location: stale grid entry must be suppressed.
        let mut seen = Vec::new();
        k.for_each_known_within(Point::new(1.0, 0.0), 1.0, |id, p, _| seen.push((id, p)));
        assert!(seen.is_empty(), "stale origin reported: {seen:?}");
        k.for_each_known_within(Point::new(6.0, 0.0), 1.0, |id, p, _| seen.push((id, p)));
        assert_eq!(seen, vec![(RobotId::sleeper(0), Point::new(6.0, 0.0))]);
        // Bounce back to the original cell: still exactly one report.
        k.note_sighting(RobotId::sleeper(0), Point::new(1.0, 0.0));
        seen.clear();
        k.for_each_known_within(Point::new(1.0, 0.0), 1.0, |id, p, _| seen.push((id, p)));
        assert_eq!(seen.len(), 1, "duplicate grid entries leaked: {seen:?}");
    }

    #[test]
    fn clear_is_an_epoch_bump() {
        let mut k = Knowledge::with_cell_width(2.0);
        for i in 0..10 {
            k.note_sighting(RobotId::sleeper(i), Point::new(i as f64, 0.0));
        }
        k.note_awake(RobotId::sleeper(3), Point::new(3.0, 0.0));
        k.clear();
        assert!(k.is_empty());
        assert!(k.get(RobotId::sleeper(3)).is_none());
        assert!(!k.is_awake(RobotId::sleeper(3)));
        assert_eq!(k.iter().count(), 0);
        let mut hits = 0;
        k.for_each_known_within(Point::new(3.0, 0.0), 50.0, |_, _, _| hits += 1);
        assert_eq!(hits, 0, "grid must forget cleared robots");
        // Reuse after clear behaves like a fresh store.
        k.note_sighting(RobotId::sleeper(3), Point::new(5.0, 5.0));
        assert_eq!(k.len(), 1);
        assert!(!k.is_awake(RobotId::sleeper(3)));
        assert_eq!(
            k.get(RobotId::sleeper(3)).unwrap().origin,
            Point::new(5.0, 5.0)
        );
    }

    #[test]
    fn reset_rebuckets_like_a_fresh_store() {
        let mut reused = Knowledge::with_cell_width(8.0);
        for i in 0..32 {
            reused.note_sighting(RobotId::sleeper(i), Point::new(i as f64, 0.0));
        }
        reused.reset(1.5);
        let mut fresh = Knowledge::with_cell_width(1.5);
        for i in 0..16 {
            let p = Point::new((i % 4) as f64 * 0.7, (i / 4) as f64 * 0.7);
            reused.note_sighting(RobotId::sleeper(i), p);
            fresh.note_sighting(RobotId::sleeper(i), p);
        }
        let collect = |k: &Knowledge| {
            let mut got = Vec::new();
            k.for_each_known_within(Point::new(1.0, 1.0), 1.2, |id, p, _| got.push((id, p)));
            got.sort_unstable_by_key(|&(id, _)| id);
            got
        };
        assert_eq!(collect(&reused), collect(&fresh));
        assert_eq!(reused.len(), fresh.len());
    }

    #[test]
    fn rect_visitor_is_a_superset_with_exact_origins() {
        let mut k = Knowledge::new();
        for i in 0..20 {
            k.note_sighting(
                RobotId::sleeper(i),
                Point::new((i % 5) as f64, (i / 5) as f64),
            );
        }
        let rect = Rect::with_size(Point::new(1.0, 1.0), 2.0, 1.0);
        let mut got = Vec::new();
        k.for_each_known_in_rect(&rect, |id, p, _| {
            if rect.contains(p) {
                got.push(id);
            }
        });
        got.sort_unstable();
        let want: Vec<RobotId> = k
            .known_where(|p| rect.contains(p))
            .map(|(id, _)| id)
            .collect();
        assert_eq!(got, want);
    }
}
