use freezetag_geometry::Point;
use freezetag_sim::RobotId;
use std::collections::BTreeMap;

/// What a team knows about an individual robot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct RobotInfo {
    /// Initial position (robots identify themselves by it — Section 1.2).
    pub origin: Point,
    /// Whether the team knows the robot to be awake.
    pub awake: bool,
}

/// Shared team memory: every robot ever observed (by a `look`) or woken,
/// keyed by id with deterministic iteration order.
///
/// The paper's teams exchange variables when co-located; the algorithms in
/// this crate merge `Knowledge` values exactly at those rendezvous.
/// Soundness property: `Knowledge` only ever contains robots that some
/// `look` has returned or that the algorithm woke itself — never
/// undiscovered positions.
#[derive(Debug, Clone, Default)]
pub(crate) struct Knowledge {
    robots: BTreeMap<RobotId, RobotInfo>,
}

#[cfg_attr(not(test), allow(dead_code))]
impl Knowledge {
    /// Empty knowledge.
    pub fn new() -> Self {
        Knowledge::default()
    }

    /// Records a sleeping sighting at its initial position.
    pub fn note_sighting(&mut self, id: RobotId, pos: Point) {
        self.robots
            .entry(id)
            .or_insert(RobotInfo {
                origin: pos,
                awake: false,
            })
            .origin = pos;
    }

    /// Records that a robot (with the given origin) is awake.
    pub fn note_awake(&mut self, id: RobotId, origin: Point) {
        let info = self.robots.entry(id).or_insert(RobotInfo {
            origin,
            awake: true,
        });
        info.awake = true;
    }

    /// Lookup.
    pub fn get(&self, id: RobotId) -> Option<&RobotInfo> {
        self.robots.get(&id)
    }

    /// Whether the team knows this robot to be awake.
    pub fn is_awake(&self, id: RobotId) -> bool {
        self.robots.get(&id).is_some_and(|i| i.awake)
    }

    /// All known robots, ordered by id.
    pub fn iter(&self) -> impl Iterator<Item = (RobotId, &RobotInfo)> {
        self.robots.iter().map(|(&id, info)| (id, info))
    }

    /// Known *sleeping* robots whose origin satisfies `filter`.
    pub fn asleep_where<'a, F: Fn(Point) -> bool + 'a>(
        &'a self,
        filter: F,
    ) -> impl Iterator<Item = (RobotId, Point)> + 'a {
        self.robots
            .iter()
            .filter(move |(_, i)| !i.awake && filter(i.origin))
            .map(|(&id, i)| (id, i.origin))
    }

    /// Known robots (any status) whose origin satisfies `filter`.
    pub fn known_where<'a, F: Fn(Point) -> bool + 'a>(
        &'a self,
        filter: F,
    ) -> impl Iterator<Item = (RobotId, RobotInfo)> + 'a {
        self.robots
            .iter()
            .filter(move |(_, i)| filter(i.origin))
            .map(|(&id, &i)| (id, i))
    }

    /// Merges another team's knowledge (awake status is sticky).
    pub fn merge(&mut self, other: &Knowledge) {
        for (&id, &info) in &other.robots {
            let e = self.robots.entry(id).or_insert(info);
            e.awake |= info.awake;
        }
    }

    /// Number of known robots.
    pub fn len(&self) -> usize {
        self.robots.len()
    }

    /// Whether nothing is known yet.
    pub fn is_empty(&self) -> bool {
        self.robots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sightings_then_wake() {
        let mut k = Knowledge::new();
        k.note_sighting(RobotId::sleeper(0), Point::new(1.0, 0.0));
        assert!(!k.is_awake(RobotId::sleeper(0)));
        k.note_awake(RobotId::sleeper(0), Point::new(1.0, 0.0));
        assert!(k.is_awake(RobotId::sleeper(0)));
        assert_eq!(k.len(), 1);
    }

    #[test]
    fn filters_by_region() {
        let mut k = Knowledge::new();
        k.note_sighting(RobotId::sleeper(0), Point::new(1.0, 0.0));
        k.note_sighting(RobotId::sleeper(1), Point::new(10.0, 0.0));
        k.note_awake(RobotId::sleeper(2), Point::new(2.0, 0.0));
        let near: Vec<_> = k.asleep_where(|p| p.x < 5.0).collect();
        assert_eq!(near, vec![(RobotId::sleeper(0), Point::new(1.0, 0.0))]);
        let known: Vec<_> = k.known_where(|p| p.x < 5.0).collect();
        assert_eq!(known.len(), 2);
    }

    #[test]
    fn merge_is_sticky_on_awake() {
        let mut a = Knowledge::new();
        a.note_sighting(RobotId::sleeper(0), Point::new(1.0, 0.0));
        let mut b = Knowledge::new();
        b.note_awake(RobotId::sleeper(0), Point::new(1.0, 0.0));
        b.note_sighting(RobotId::sleeper(1), Point::new(2.0, 0.0));
        a.merge(&b);
        assert!(a.is_awake(RobotId::sleeper(0)));
        assert_eq!(a.len(), 2);
        // Merging the stale view back does not un-wake.
        let mut stale = Knowledge::new();
        stale.note_sighting(RobotId::sleeper(0), Point::new(1.0, 0.0));
        a.merge(&stale);
        assert!(a.is_awake(RobotId::sleeper(0)));
    }

    #[test]
    fn empty_knowledge() {
        let k = Knowledge::new();
        assert!(k.is_empty());
        assert_eq!(k.iter().count(), 0);
        assert!(k.get(RobotId::SOURCE).is_none());
    }
}
