//! `AGrid` — the energy-optimal algorithm of Section 4 / 8.1: energy
//! budget `O(ℓ²)` per robot, makespan `O(ξ_ℓ · ℓ)` (Theorem 4).
//!
//! The plane is tiled by squares of width `2ℓ` centred on the grid
//! `{(2kℓ, 2k'ℓ)}` (relative to the source). Round 0 explores and wakes
//! the source's square (Corollary 1). In round `k`, every robot woken in
//! round `k−1` visits the 8 squares adjacent to its own in counter-
//! clockwise order, within fixed time slots; in each slot one designated
//! robot explores the target square and wakes its sleepers with a
//! centralized wake-up tree. The slot schedule is conflict-free: for a
//! fixed slot index the "i-th neighbour" map is a translation, so two
//! different source squares never target the same square in the same slot,
//! and distinct slots are disjoint time windows.

use crate::explore::{dedup_sightings, explore, sighting_offsets, sweep_queries};
use crate::team::Team;
use freezetag_central::{quadtree_wake_tree, realize};
use freezetag_geometry::{sweep, CellCoord, Point, Square, SquareTiling, SQRT_2};
use freezetag_sim::par::FRONTIER_BATCH;
use freezetag_sim::{Recorder, RobotId, Sim, WorldView};
use std::collections::BTreeMap;

/// Minimum concatenated sighting count before per-group target selection
/// fans out to the pool; below this the spawn cost dominates.
const PAR_SELECT_MIN: usize = 1 << 12;

/// Configuration of an `AGrid` run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AGridConfig {
    /// Upper bound ℓ on the connectivity threshold (the only input the
    /// algorithm needs — Section 5).
    pub ell: f64,
}

/// Upper bound on the duration of one *explore-and-wake* of a square of
/// width `r` by a single robot (Corollary 1's `R² + (10 + √2)R`, with our
/// sweep and wake-tree constants made explicit).
pub(crate) fn explore_and_wake_bound(r: f64) -> f64 {
    let rect = Square::new(Point::ORIGIN, r).to_rect();
    // entry to the sweep + sweep + move to centre + centralized wake.
    SQRT_2 * r + sweep::sweep_length_bound(&rect) + SQRT_2 * r + 10.0 * r
}

/// Travel margin between consecutive slots: from anywhere in one target
/// square to the corner of the next (both within the 3×3 neighbourhood of
/// the group's square, diameter `3√2·r < 4.5r`).
pub(crate) fn hop_margin(r: f64) -> f64 {
    4.5 * r
}

/// Duration of one wave slot: explore-and-wake plus the hop to the next
/// adjacent square's corner.
pub(crate) fn slot_duration(r: f64) -> f64 {
    explore_and_wake_bound(r) + hop_margin(r)
}

/// Upper bound on round 0 (the source exploring its own square).
pub(crate) fn round0_bound(r: f64) -> f64 {
    SQRT_2 * r + explore_and_wake_bound(r)
}

/// Absolute start time of wave round `k ≥ 1`. Every robot can compute this
/// from `ℓ` and the global clock alone — the wave needs no messages beyond
/// co-location, which is what makes the fixed slot schedule work.
pub(crate) fn round_start(r: f64, k: usize) -> f64 {
    debug_assert!(k >= 1);
    round0_bound(r) + k as f64 * hop_margin(r) + (k - 1) as f64 * 8.0 * slot_duration(r)
}

/// Runs `AGrid` to completion (wakes every robot, given `ℓ ≥ ℓ*`).
///
/// # Example
///
/// ```
/// use freezetag_core::{a_grid, AGridConfig};
/// use freezetag_instances::generators::grid_lattice;
/// use freezetag_sim::{ConcreteWorld, Sim, WorldView};
///
/// let inst = grid_lattice(3, 6, 1.0);
/// let mut sim = Sim::new(ConcreteWorld::new(&inst));
/// a_grid(&mut sim, &AGridConfig { ell: 1.0 });
/// assert!(sim.world().all_awake());
/// ```
pub fn a_grid<W: WorldView, R: Recorder>(sim: &mut Sim<W, R>, cfg: &AGridConfig) {
    assert!(cfg.ell > 0.0 && cfg.ell.is_finite(), "ell must be positive");
    let r = 2.0 * cfg.ell;
    let src = sim.world().source_pos();
    let tiling = SquareTiling::new(r);
    let cell_of = move |p: Point| tiling.cell_of(p - src);
    let square_of = move |c: CellCoord| {
        let s = tiling.square_of(c);
        Square::new(s.center() + src, s.width())
    };

    // Round 0: the source explores and wakes its own square.
    let home = cell_of(src);
    let t0_bound = round0_bound(r);
    let mut frontier = explore_and_wake(sim, RobotId::SOURCE, &square_of(home), &cell_of, home);
    frontier.push(RobotId::SOURCE);
    assert!(
        sim.time(RobotId::SOURCE) <= t0_bound + 1e-6,
        "round 0 exceeded its bound"
    );
    let t_round0_end = sim.time(RobotId::SOURCE);
    sim.trace_mut().record(
        "grid/round0",
        0.0,
        t_round0_end,
        format!("woke={}", frontier.len() - 1),
    );

    let slot = slot_duration(r);
    // Grace hop: robots woken in the previous round (or the source after
    // round 0) need time to reach their first corner.
    let mut round_begin = round_start(r, 1);
    let mut round = 1usize;
    // Slot execution order is observationally irrelevant on pure-sensing
    // worlds (the ownership filter drops every cross-group sighting), so
    // their slots run through the batched planner below; the adaptive
    // adversary keeps the interleaved legacy order its proofs replay.
    let batched = sim.world().pure_sensing();
    while !frontier.is_empty() {
        // Group the fresh robots by the square they are in.
        let groups = bucket_by_cell(sim, &frontier, &cell_of);
        let mut new_frontier: Vec<RobotId> = Vec::new();
        for slot_idx in 0..8 {
            let slot_start = round_begin + slot_idx as f64 * slot;
            if batched {
                run_slot_batched(
                    sim,
                    &groups,
                    SlotSchedule {
                        slot_idx,
                        slot_start,
                        slot,
                        round,
                    },
                    &tiling,
                    &cell_of,
                    &square_of,
                    &mut new_frontier,
                );
                continue;
            }
            for (cell, robots) in &groups {
                let target_cell = tiling.neighbors8(*cell)[slot_idx];
                let target_sq = square_of(target_cell);
                let corner = target_sq.min_corner();
                for &rb in robots {
                    sim.move_to(rb, corner);
                    assert!(
                        sim.time(rb) <= slot_start + 1e-6,
                        "robot {rb} missed slot {slot_idx} of round {round}"
                    );
                    sim.wait_until(rb, slot_start);
                }
                // One designated explorer per slot, rotating through the
                // group so no robot explores more than ⌈8/|group|⌉ squares.
                let explorer = robots[slot_idx % robots.len()];
                let woken = explore_and_wake(sim, explorer, &target_sq, &cell_of, target_cell);
                assert!(
                    sim.time(explorer) <= slot_start + slot + 1e-6,
                    "slot {slot_idx} of round {round} overran"
                );
                new_frontier.extend(woken);
            }
        }
        sim.trace_mut().record(
            format!("grid/round{round}"),
            round_begin,
            round_begin + 8.0 * slot,
            format!("groups={} woke={}", groups.len(), new_frontier.len()),
        );
        frontier = new_frontier;
        round += 1;
        round_begin = round_start(r, round);
    }
}

/// Groups frontier robots by the cell of their current position — the
/// per-round bucketing both wave drivers (`AGrid`, `AWave`) share.
///
/// Positions are read off the recorder in frontier order; on a parallel
/// pool with more than one batch of robots, the cell lookups run in
/// fixed-size batches and the stable zip merge below is the
/// order-preserving reduction that keeps group contents (and everything
/// downstream) identical at any thread count. Otherwise the direct
/// allocation-free insert loop runs — a single batch would execute inline
/// anyway, so fan-out buys nothing there.
pub(crate) fn bucket_by_cell<W: WorldView, R: Recorder>(
    sim: &Sim<W, R>,
    frontier: &[RobotId],
    cell_of: &(impl Fn(Point) -> CellCoord + Sync),
) -> BTreeMap<CellCoord, Vec<RobotId>> {
    let mut groups: BTreeMap<CellCoord, Vec<RobotId>> = BTreeMap::new();
    if sim.pool().is_sequential() || frontier.len() <= FRONTIER_BATCH {
        for &rb in frontier {
            groups.entry(cell_of(sim.pos(rb))).or_default().push(rb);
        }
    } else {
        let positions: Vec<Point> = frontier.iter().map(|&rb| sim.pos(rb)).collect();
        let cells = sim.pool().map_concat(&positions, FRONTIER_BATCH, |chunk| {
            chunk.iter().map(|&p| cell_of(p)).collect::<Vec<_>>()
        });
        for (&rb, &cell) in frontier.iter().zip(&cells) {
            groups.entry(cell).or_default().push(rb);
        }
    }
    groups
}

/// Timing of one wave slot (bundled to keep the planner's signature sane).
#[derive(Clone, Copy)]
struct SlotSchedule {
    slot_idx: usize,
    slot_start: f64,
    slot: f64,
    round: usize,
}

/// One wave slot on a pure-sensing world, restructured for data
/// parallelism. The slot's groups target pairwise-distinct squares and
/// wake only robots *owned* by their target, so the phases below produce
/// bit-identical results to the interleaved per-group loop:
///
/// 1. **kinematics** (sequential, cheap): every group's corner moves,
///    waits and oblivious sweep trajectory are driven through the
///    recorder, accumulating one `(position, time)` query list for the
///    whole slot;
/// 2. **sensing** (parallel): one [`Sim::look_many_into`] resolves the
///    slot's queries in fixed-size batches on the pool — this is the hot
///    60–65% of a 10⁶-robot run;
/// 3. **target selection** (parallel): each group's sighting slice is
///    deduplicated and ownership-filtered independently;
/// 4. **commit** (sequential): wake trees are realized in group order —
///    the stable order-preserving reduction that merges the parallel
///    phases' wake decisions into the recorder and the world's wake
///    bitset.
///
/// Cross-group visibility is the only thing the reordering can change
/// (a robot woken by its owner mid-slot may still be *seen* by another
/// group), and step 3's ownership filter is exactly what discards it.
#[allow(clippy::too_many_arguments)]
fn run_slot_batched<W: WorldView, R: Recorder>(
    sim: &mut Sim<W, R>,
    groups: &BTreeMap<CellCoord, Vec<RobotId>>,
    sched: SlotSchedule,
    tiling: &SquareTiling,
    cell_of: &(impl Fn(Point) -> CellCoord + Sync),
    square_of: &impl Fn(CellCoord) -> Square,
    new_frontier: &mut Vec<RobotId>,
) {
    struct GroupPlan {
        explorer: RobotId,
        target_cell: CellCoord,
        target_sq: Square,
        q_lo: usize,
        q_hi: usize,
    }
    let SlotSchedule {
        slot_idx,
        slot_start,
        slot,
        round,
    } = sched;
    let mut queries: Vec<(Point, f64)> = Vec::new();
    let mut plans: Vec<GroupPlan> = Vec::new();
    for (cell, robots) in groups {
        let target_cell = tiling.neighbors8(*cell)[slot_idx];
        let target_sq = square_of(target_cell);
        let corner = target_sq.min_corner();
        for &rb in robots {
            sim.move_to(rb, corner);
            assert!(
                sim.time(rb) <= slot_start + 1e-6,
                "robot {rb} missed slot {slot_idx} of round {round}"
            );
            sim.wait_until(rb, slot_start);
        }
        // One designated explorer per slot, rotating through the group so
        // no robot explores more than ⌈8/|group|⌉ squares.
        let explorer = robots[slot_idx % robots.len()];
        let q_lo = queries.len();
        sweep_queries(
            sim,
            &Team::solo(explorer),
            &target_sq.to_rect(),
            target_sq.center(),
            &mut queries,
        );
        plans.push(GroupPlan {
            explorer,
            target_cell,
            target_sq,
            q_lo,
            q_hi: queries.len(),
        });
    }
    let mut flat = Vec::new();
    let mut counts = Vec::new();
    sim.look_many_into(&queries, &mut flat, &mut counts);
    let offsets = sighting_offsets(&counts);
    let select = |p: &GroupPlan| -> Vec<(RobotId, Point)> {
        dedup_sightings(&flat[offsets[p.q_lo]..offsets[p.q_hi]])
            .into_iter()
            .filter(|s| cell_of(s.pos) == p.target_cell)
            .map(|s| (s.id, s.pos))
            .collect()
    };
    let pool = sim.pool();
    let items: Vec<Vec<(RobotId, Point)>> = if pool.is_sequential() || flat.len() < PAR_SELECT_MIN {
        plans.iter().map(select).collect()
    } else {
        pool.map_batches(&plans, 1, |_, ps| select(&ps[0]))
    };
    for (p, items) in plans.iter().zip(items) {
        let tree = quadtree_wake_tree(p.target_sq.center(), &items);
        let woken = realize(sim, p.explorer, &tree);
        assert!(
            sim.time(p.explorer) <= slot_start + slot + 1e-6,
            "slot {slot_idx} of round {round} overran"
        );
        new_frontier.extend(woken);
    }
}

/// Corollary 1: one robot explores `square` (full sweep) and wakes every
/// sleeping robot *owned* by the square (`cell_of(pos) == cell`) with a
/// centralized wake-up tree from the square's centre. Returns the robots
/// woken.
fn explore_and_wake<W: WorldView, R: Recorder, C: Fn(Point) -> CellCoord>(
    sim: &mut Sim<W, R>,
    robot: RobotId,
    square: &Square,
    cell_of: &C,
    cell: CellCoord,
) -> Vec<RobotId> {
    let solo = Team::solo(robot);
    let sightings = explore(sim, &solo, &square.to_rect(), square.center());
    let items: Vec<(RobotId, Point)> = sightings
        .into_iter()
        .filter(|s| cell_of(s.pos) == cell)
        .map(|s| (s.id, s.pos))
        .collect();
    let tree = quadtree_wake_tree(square.center(), &items);
    realize(sim, robot, &tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezetag_instances::generators::{grid_lattice, snake, uniform_disk};
    use freezetag_instances::Instance;
    use freezetag_sim::{validate, ConcreteWorld, ValidationOptions};

    fn run(inst: &Instance, ell: f64) -> freezetag_sim::ValidationReport {
        let mut sim = Sim::new(ConcreteWorld::new(inst));
        a_grid(&mut sim, &AGridConfig { ell });
        assert!(sim.world().all_awake(), "not everyone woke up");
        let (_, schedule, _) = sim.into_parts();
        validate(
            &schedule,
            inst.source(),
            inst.positions(),
            &ValidationOptions::default(),
        )
        .expect("schedule must validate")
    }

    #[test]
    fn wakes_lattice() {
        let inst = grid_lattice(4, 6, 1.2);
        let rep = run(&inst, 1.2);
        assert_eq!(rep.wake_count, 24);
    }

    #[test]
    fn wakes_uniform_disk() {
        let inst = uniform_disk(50, 10.0, 7);
        let tuple = inst.admissible_tuple();
        let rep = run(&inst, tuple.ell);
        assert_eq!(rep.wake_count, 50);
    }

    #[test]
    fn energy_stays_quadratic_in_ell() {
        // Theorem 4: every robot spends O(ℓ²) energy. The wave travels far
        // (makespan grows with ξ) but per-robot energy must not.
        let inst = snake(5, 20.0, 1.5, 1.0);
        let tuple = inst.admissible_tuple();
        let rep = run(&inst, tuple.ell);
        let ell = tuple.ell;
        let budget = 80.0 * ell * ell + 60.0 * ell + 40.0;
        assert!(
            rep.max_energy <= budget,
            "max energy {} exceeds O(ell^2) budget {budget}",
            rep.max_energy
        );
        // And the makespan follows O(ξ·ℓ) in shape.
        let xi = inst.params(Some(ell)).xi_ell.expect("connected");
        assert!(rep.makespan <= 60.0 * xi * ell + 200.0 * ell * ell);
    }

    #[test]
    fn single_neighbor_robot() {
        let inst = Instance::new(vec![Point::new(2.5, 0.0)]);
        // ell = 2: home square [-2,2]^2 does not contain the robot; the
        // wave's first round must find it in the east neighbour.
        let rep = run(&inst, 2.0);
        assert_eq!(rep.wake_count, 1);
    }

    #[test]
    fn bounds_are_monotone() {
        assert!(explore_and_wake_bound(4.0) < explore_and_wake_bound(8.0));
        assert!(slot_duration(4.0) > explore_and_wake_bound(4.0));
    }
}
