//! `AGrid` as a *per-robot program* on the event-driven executor
//! (`freezetag_sim::events`) — every robot computes its behaviour from its
//! own clock, position, snapshots, visible lights of co-located robots,
//! and the state handed over at its wake-up. No global orchestration.
//!
//! The test-suite checks this version produces the same makespan and wake
//! set as the orchestrated [`crate::a_grid`] driver: the wave schedule is
//! genuinely distributed — every quantity it needs (round start times,
//! slot windows, target squares) is derivable from `ℓ`, the global clock
//! and the robot's own square, exactly as Section 8.1 claims.

use crate::grid::{round_start, slot_duration};
use crate::AGridConfig;
use freezetag_central::{quadtree_wake_tree, NodeId, WakeTree};
use freezetag_geometry::{sweep, CellCoord, Point, Square, SquareTiling};
use freezetag_sim::events::{Action, EventSim, RobotProgram, StepContext};
use freezetag_sim::{RobotId, WorldView};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Immutable parameters shared by every robot (handed over on wake-up,
/// like the paper's variable exchange).
#[derive(Debug, Clone, Copy)]
struct GridCfg {
    r: f64,
    src: Point,
}

impl GridCfg {
    fn tiling(&self) -> SquareTiling {
        SquareTiling::new(self.r)
    }

    fn cell_of(&self, p: Point) -> CellCoord {
        self.tiling().cell_of(p - self.src)
    }

    fn square_of(&self, c: CellCoord) -> Square {
        let s = self.tiling().square_of(c);
        Square::new(s.center() + self.src, s.width())
    }

    /// Meeting point of a square: its lower-left corner, nudged inside by
    /// a hair so it cannot coincide with a robot's initial position (which
    /// would confuse the light-based head-count).
    fn gather_point(&self, c: CellCoord) -> Point {
        let inset = self.r * 1e-7;
        self.square_of(c).min_corner() + Point::new(inset, inset)
    }

    fn slot_start(&self, round: usize, slot: usize) -> f64 {
        round_start(self.r, round) + slot as f64 * slot_duration(self.r)
    }

    fn light_code(round: usize, slot: usize) -> u64 {
        (round * 8 + slot + 1) as u64
    }
}

/// Where control goes after a wake-tree realization finishes.
#[derive(Debug, Clone, Copy)]
enum Cont {
    JoinWave,
    NextSlot { round: usize, slot: usize },
}

enum Phase {
    /// Source at t = 0: start the round-0 sweep of its own square.
    SourceStart,
    /// First step of a robot woken at tree `node`: take the first-child
    /// subtree (Algorithm 1) then join the wave.
    WokenInit {
        tree: Rc<WakeTree>,
        node: NodeId,
    },
    /// Boustrophedon sweep of `target`'s square.
    Sweep {
        round: usize,
        slot: usize,
        target: CellCoord,
        snaps: Vec<Point>,
        idx: usize,
        collected: BTreeMap<RobotId, Point>,
        state: SweepState,
        cont: Cont,
    },
    /// Moving towards tree `node`; next step wakes it.
    RealizeArrive {
        tree: Rc<WakeTree>,
        node: NodeId,
        cont: Cont,
    },
    /// Wake of `node` just happened; dispatch children.
    RealizePostWake {
        tree: Rc<WakeTree>,
        node: NodeId,
        cont: Cont,
    },
    /// Travelling to / waiting at a slot gather point.
    Gather {
        round: usize,
        slot: usize,
        stage: GatherStage,
    },
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SweepState {
    Moving,
    Looking,
    ToCenter,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum GatherStage {
    Moving,
    Lighting,
    Waiting,
}

/// One robot's `AGrid` behaviour.
pub struct AGridRobot {
    cfg: GridCfg,
    phase: Phase,
}

impl AGridRobot {
    fn source(cfg: GridCfg) -> Self {
        AGridRobot {
            cfg,
            phase: Phase::SourceStart,
        }
    }

    fn woken(cfg: GridCfg, tree: Rc<WakeTree>, node: NodeId) -> Box<dyn RobotProgram> {
        Box::new(AGridRobot {
            cfg,
            phase: Phase::WokenInit { tree, node },
        })
    }

    fn start_sweep(&mut self, round: usize, slot: usize, target: CellCoord, cont: Cont) -> Action {
        let square = self.cfg.square_of(target);
        let snaps = sweep::snapshot_positions(&square.to_rect());
        let first = snaps[0];
        self.phase = Phase::Sweep {
            round,
            slot,
            target,
            snaps,
            idx: 0,
            collected: BTreeMap::new(),
            state: SweepState::Moving,
            cont,
        };
        Action::MoveTo(first)
    }

    fn realize_enter(&mut self, tree: Rc<WakeTree>, node: NodeId, cont: Cont) -> Action {
        let pos = tree.pos(node);
        self.phase = Phase::RealizeArrive { tree, node, cont };
        Action::MoveTo(pos)
    }

    fn continue_with(&mut self, cont: Cont, ctx: &StepContext<'_>) -> Action {
        match cont {
            Cont::JoinWave => self.join_wave(ctx),
            Cont::NextSlot { round, slot } => self.next_slot(round, slot, ctx),
        }
    }

    fn join_wave(&mut self, ctx: &StepContext<'_>) -> Action {
        // Target round: first wave round starting at or after now. The
        // slot-margin analysis guarantees it is reachable in time.
        let mut round = 1;
        while round_start(self.cfg.r, round) < ctx.now {
            round += 1;
            assert!(round < 1_000_000, "wave round overflow");
        }
        let cell = self.cfg.cell_of(ctx.pos);
        let target = self.cfg.tiling().neighbors8(cell)[0];
        self.phase = Phase::Gather {
            round,
            slot: 0,
            stage: GatherStage::Moving,
        };
        Action::MoveTo(self.cfg.gather_point(target))
    }

    /// Advance the explorer past slot `slot`: it currently stands inside
    /// the slot's target square, so its own cell is the slot-th inverse
    /// translation of where it is.
    fn next_slot(&mut self, round: usize, slot: usize, ctx: &StepContext<'_>) -> Action {
        if slot + 1 >= 8 {
            self.phase = Phase::Done;
            return Action::Halt;
        }
        let target = self.cfg.cell_of(ctx.pos);
        let (di, dj) = DIRS[slot];
        let own = CellCoord::new(target.i - di, target.j - dj);
        let next_target = self.cfg.tiling().neighbors8(own)[slot + 1];
        self.phase = Phase::Gather {
            round,
            slot: slot + 1,
            stage: GatherStage::Moving,
        };
        Action::MoveTo(self.cfg.gather_point(next_target))
    }
}

/// The 8 neighbour offsets in the order of `SquareTiling::neighbors8`.
const DIRS: [(i64, i64); 8] = [
    (1, 0),
    (1, 1),
    (0, 1),
    (-1, 1),
    (-1, 0),
    (-1, -1),
    (0, -1),
    (1, -1),
];

impl AGridRobot {
    /// Own cell given that we currently sit at the gather point of our
    /// slot-`slot` target.
    fn own_cell_from_gather(&self, pos: Point, slot: usize) -> CellCoord {
        let target = self.cfg.cell_of(pos);
        let (di, dj) = DIRS[slot];
        CellCoord::new(target.i - di, target.j - dj)
    }
}

impl RobotProgram for AGridRobot {
    fn step(&mut self, ctx: &StepContext<'_>) -> Action {
        match std::mem::replace(&mut self.phase, Phase::Done) {
            Phase::SourceStart => {
                let home = self.cfg.cell_of(ctx.pos);
                self.start_sweep(0, 0, home, Cont::JoinWave)
            }
            Phase::WokenInit { tree, node } => match *tree.children(node) {
                [] => self.join_wave(ctx),
                [c1, ..] => self.realize_enter(tree, c1, Cont::JoinWave),
            },
            Phase::Sweep {
                round,
                slot,
                target,
                snaps,
                mut idx,
                mut collected,
                state,
                cont,
            } => match state {
                SweepState::Moving => {
                    self.phase = Phase::Sweep {
                        round,
                        slot,
                        target,
                        snaps,
                        idx,
                        collected,
                        state: SweepState::Looking,
                        cont,
                    };
                    Action::Look
                }
                SweepState::Looking => {
                    for s in ctx.sightings.expect("look just completed") {
                        collected.insert(s.id, s.pos);
                    }
                    idx += 1;
                    if idx < snaps.len() {
                        let next = snaps[idx];
                        self.phase = Phase::Sweep {
                            round,
                            slot,
                            target,
                            snaps,
                            idx,
                            collected,
                            state: SweepState::Moving,
                            cont,
                        };
                        Action::MoveTo(next)
                    } else {
                        let center = self.cfg.square_of(target).center();
                        self.phase = Phase::Sweep {
                            round,
                            slot,
                            target,
                            snaps,
                            idx,
                            collected,
                            state: SweepState::ToCenter,
                            cont,
                        };
                        Action::MoveTo(center)
                    }
                }
                SweepState::ToCenter => {
                    // Arrived at the centre: compute the wake tree over the
                    // sleepers owned by the target square (Corollary 1).
                    let items: Vec<(RobotId, Point)> = collected
                        .into_iter()
                        .filter(|&(_, p)| self.cfg.cell_of(p) == target)
                        .collect();
                    let tree = Rc::new(quadtree_wake_tree(ctx.pos, &items));
                    match tree.children(WakeTree::ROOT).first().copied() {
                        Some(child) => self.realize_enter(tree, child, cont),
                        None => self.continue_with(cont, ctx),
                    }
                }
            },
            Phase::RealizeArrive { tree, node, cont } => {
                let target = tree.robot(node);
                let program = AGridRobot::woken(self.cfg, Rc::clone(&tree), node);
                self.phase = Phase::RealizePostWake { tree, node, cont };
                Action::Wake { target, program }
            }
            Phase::RealizePostWake { tree, node, cont } => match *tree.children(node) {
                [] | [_] => self.continue_with(cont, ctx),
                [_, c2] => self.realize_enter(tree, c2, cont),
                _ => unreachable!("WakeTree enforces binary arity"),
            },
            Phase::Gather { round, slot, stage } => match stage {
                GatherStage::Moving => {
                    self.phase = Phase::Gather {
                        round,
                        slot,
                        stage: GatherStage::Lighting,
                    };
                    Action::SetLight(GridCfg::light_code(round, slot))
                }
                GatherStage::Lighting => {
                    let start = self.cfg.slot_start(round, slot);
                    debug_assert!(
                        ctx.now <= start + 1e-6,
                        "robot {} missed slot {slot} of round {round}",
                        ctx.id
                    );
                    self.phase = Phase::Gather {
                        round,
                        slot,
                        stage: GatherStage::Waiting,
                    };
                    Action::WaitUntil(start)
                }
                GatherStage::Waiting => {
                    // Head-count among co-located robots showing this
                    // slot's light; deterministic designation by sorted id.
                    let code = GridCfg::light_code(round, slot);
                    let mut participants: Vec<RobotId> = ctx
                        .colocated
                        .iter()
                        .filter(|&&(_, l)| l == code)
                        .map(|&(id, _)| id)
                        .collect();
                    participants.push(ctx.id);
                    participants.sort_unstable();
                    let explorer = participants[slot % participants.len()];
                    let own = self.own_cell_from_gather(ctx.pos, slot);
                    if explorer == ctx.id {
                        let target = self.cfg.cell_of(ctx.pos);
                        self.start_sweep(round, slot, target, Cont::NextSlot { round, slot })
                    } else if slot + 1 >= 8 {
                        self.phase = Phase::Done;
                        Action::Halt
                    } else {
                        let next_target = self.cfg.tiling().neighbors8(own)[slot + 1];
                        self.phase = Phase::Gather {
                            round,
                            slot: slot + 1,
                            stage: GatherStage::Moving,
                        };
                        Action::MoveTo(self.cfg.gather_point(next_target))
                    }
                }
            },
            Phase::Done => Action::Halt,
        }
    }
}

/// Runs the event-driven `AGrid`: every robot an autonomous program.
/// Returns the finished engine (world + schedule inside).
///
/// # Example
///
/// ```
/// use freezetag_core::{a_grid_events, AGridConfig};
/// use freezetag_instances::generators::grid_lattice;
/// use freezetag_sim::{ConcreteWorld, WorldView};
///
/// let inst = grid_lattice(3, 4, 1.0);
/// let sim = a_grid_events(ConcreteWorld::new(&inst), &AGridConfig { ell: 1.0 });
/// assert!(sim.world().all_awake());
/// ```
pub fn a_grid_events<W: WorldView>(world: W, cfg: &AGridConfig) -> EventSim<W> {
    assert!(cfg.ell > 0.0 && cfg.ell.is_finite(), "ell must be positive");
    let src = world.source_pos();
    let grid_cfg = GridCfg {
        r: 2.0 * cfg.ell,
        src,
    };
    let mut sim = EventSim::new(world);
    sim.run(Box::new(AGridRobot::source(grid_cfg)));
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::a_grid;
    use freezetag_instances::generators::{grid_lattice, snake, uniform_disk};
    use freezetag_instances::Instance;
    use freezetag_sim::{validate, ConcreteWorld, Sim, ValidationOptions};

    fn compare(inst: &Instance, ell: f64) {
        // Orchestrated driver.
        let mut driver = Sim::new(ConcreteWorld::new(inst));
        a_grid(&mut driver, &AGridConfig { ell });
        assert!(driver.world().all_awake(), "driver left robots asleep");
        let (_, driver_schedule, _) = driver.into_parts();

        // Event-driven programs.
        let events = a_grid_events(ConcreteWorld::new(inst), &AGridConfig { ell });
        assert!(events.world().all_awake(), "events left robots asleep");
        let (_, event_schedule) = events.into_parts();

        // Same coverage and (up to the gather-point inset) same makespan.
        assert_eq!(
            driver_schedule.wakes().len(),
            event_schedule.wakes().len(),
            "wake counts differ"
        );
        let d = driver_schedule.makespan();
        let e = event_schedule.makespan();
        assert!(
            (d - e).abs() <= 1e-2 * d.max(1.0),
            "makespans diverge: driver {d}, events {e}"
        );
        // The event schedule independently validates.
        validate(
            &event_schedule,
            inst.source(),
            inst.positions(),
            &ValidationOptions::default(),
        )
        .expect("event schedule validates");
    }

    #[test]
    fn matches_driver_on_lattice() {
        compare(&grid_lattice(4, 5, 1.2), 1.2);
    }

    #[test]
    fn matches_driver_on_uniform_disk() {
        let inst = uniform_disk(40, 9.0, 8);
        let ell = inst.admissible_tuple().ell;
        compare(&inst, ell);
    }

    #[test]
    fn matches_driver_on_snake() {
        let inst = snake(3, 14.0, 2.0, 1.0);
        let ell = inst.admissible_tuple().ell;
        compare(&inst, ell);
    }

    #[test]
    fn single_far_neighbor() {
        let inst = Instance::new(vec![Point::new(2.5, 0.1)]);
        compare(&inst, 2.0);
    }
}
