use freezetag_sim::{Recorder, RobotId, Sim, WorldView};

/// A team: an ordered set of awake robots that move together, stay
/// co-located and time-synchronized between operations.
///
/// All of `ASeparator`'s phases operate on teams (Section 3); the invariant
/// maintained by every public operation is that after it returns, all
/// members share the same position and local time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Team {
    members: Vec<RobotId>,
}

impl Team {
    /// A team from its member list.
    ///
    /// # Panics
    ///
    /// Panics on an empty member list.
    pub fn new(members: Vec<RobotId>) -> Self {
        assert!(!members.is_empty(), "a team needs at least one member");
        Team { members }
    }

    /// A one-robot team — the designated-explorer case of the wave drivers
    /// and the single-searcher primitives.
    pub fn solo(robot: RobotId) -> Self {
        Team {
            members: vec![robot],
        }
    }

    /// The designated leader (first member) — performs wakes and
    /// centralized computations on behalf of the team.
    pub fn lead(&self) -> RobotId {
        self.members[0]
    }

    /// Members in order.
    pub fn members(&self) -> &[RobotId] {
        &self.members
    }

    /// Team size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Adds a freshly-woken recruit (must already be co-located and
    /// synchronized by the caller).
    pub fn push(&mut self, r: RobotId) {
        self.members.push(r);
    }

    /// Current common position (the leader's).
    pub fn pos<W: WorldView, R: Recorder>(&self, sim: &Sim<W, R>) -> freezetag_geometry::Point {
        sim.pos(self.lead())
    }

    /// Current common time (max over members; equals each member's time
    /// when the sync invariant holds).
    pub fn time<W: WorldView, R: Recorder>(&self, sim: &Sim<W, R>) -> f64 {
        self.members
            .iter()
            .map(|&r| sim.time(r))
            .fold(0.0, f64::max)
    }

    /// Moves every member to `dest` and synchronizes; returns the common
    /// arrival time.
    pub fn move_all<W: WorldView, R: Recorder>(
        &self,
        sim: &mut Sim<W, R>,
        dest: freezetag_geometry::Point,
    ) -> f64 {
        for &r in &self.members {
            sim.move_to(r, dest);
        }
        sim.barrier(&self.members)
    }

    /// Synchronizes members at their common latest time (they must already
    /// be co-located).
    pub fn sync<W: WorldView, R: Recorder>(&self, sim: &mut Sim<W, R>) -> f64 {
        sim.barrier(&self.members)
    }

    /// Splits the team into `k` non-empty sub-teams of near-equal size, in
    /// member order. When the team has fewer than `k` members, returns
    /// fewer (but at least one) sub-teams.
    pub fn split(&self, k: usize) -> Vec<Team> {
        assert!(k > 0, "cannot split into zero sub-teams");
        let k = k.min(self.members.len());
        let base = self.members.len() / k;
        let extra = self.members.len() % k;
        let mut out = Vec::with_capacity(k);
        let mut idx = 0;
        for i in 0..k {
            let size = base + usize::from(i < extra);
            out.push(Team::new(self.members[idx..idx + size].to_vec()));
            idx += size;
        }
        out
    }

    /// Merges several co-located teams into one (caller must have
    /// synchronized them, e.g. with a barrier at a meeting point).
    pub fn merge(teams: Vec<Team>) -> Team {
        let members: Vec<RobotId> = teams.into_iter().flat_map(|t| t.members).collect();
        Team::new(members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezetag_geometry::Point;
    use freezetag_instances::Instance;
    use freezetag_sim::ConcreteWorld;

    fn three_robot_sim() -> (Sim<ConcreteWorld>, Team) {
        let inst = Instance::new(vec![Point::new(0.5, 0.0), Point::new(0.8, 0.0)]);
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        sim.move_to(RobotId::SOURCE, Point::new(0.5, 0.0));
        let a = sim.wake(RobotId::SOURCE, RobotId::sleeper(0));
        sim.move_to(RobotId::SOURCE, Point::new(0.8, 0.0));
        sim.move_to(a, Point::new(0.8, 0.0));
        sim.barrier(&[RobotId::SOURCE, a]);
        let b = sim.wake(RobotId::SOURCE, RobotId::sleeper(1));
        let team = Team::new(vec![RobotId::SOURCE, a, b]);
        team.sync(&mut sim);
        (sim, team)
    }

    #[test]
    fn move_all_keeps_colocation_and_sync() {
        let (mut sim, team) = three_robot_sim();
        let t = team.move_all(&mut sim, Point::new(5.0, 5.0));
        for &r in team.members() {
            assert_eq!(sim.pos(r), Point::new(5.0, 5.0));
            assert!((sim.time(r) - t).abs() < 1e-9);
        }
    }

    #[test]
    fn split_sizes_are_balanced() {
        let t = Team::new((0..10).map(RobotId::from_index).collect());
        let parts = t.split(4);
        let sizes: Vec<usize> = parts.iter().map(Team::len).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        // Small teams produce fewer parts, never empty ones.
        let small = Team::new(vec![RobotId::SOURCE]);
        assert_eq!(small.split(4).len(), 1);
    }

    #[test]
    fn merge_preserves_order() {
        let a = Team::new(vec![RobotId::from_index(0), RobotId::from_index(1)]);
        let b = Team::new(vec![RobotId::from_index(2)]);
        let m = Team::merge(vec![a, b]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.lead(), RobotId::from_index(0));
    }

    #[test]
    #[should_panic]
    fn empty_team_panics() {
        let _ = Team::new(vec![]);
    }
}
