//! `DFSampling` — the distributed ℓ-sampling of Section 2.4 / 6.5
//! (Lemma 5).
//!
//! A team performs a depth-first search of the `2ℓ`-disk graph of the
//! robots inside a region, starting from a set of *seeds*. A visited
//! position joins the sample `P'` only if it is more than `ℓ` away from
//! every current sample member — so `P'` is an ℓ-sampling. Sleeping robots
//! at sampled positions are woken and recruited into the team (speeding up
//! subsequent ball explorations). The search stops when `|P'|` reaches the
//! target `4ℓ` or when every seed's component is exhausted — in the latter
//! case the region is *covered*: every robot in it has been discovered
//! (property (2) of Lemma 5, which justifies `ASeparator`'s termination
//! rounds).
//!
//! ## Cost shape
//!
//! Every step of the DFS inner loop is a bounded cell scan: the
//! covered-check against `P'` and the `explored` set live in ℓ-cell
//! [`CellGrid`]s, and the next-move selection is a `2ℓ`-radius query
//! against the grid-indexed [`Knowledge`] store — O(local density) per
//! step where the original rescanned every known robot. The schedules are
//! byte-identical to that linear-scan implementation: the grids apply the
//! exact same acceptance predicates, and ties in the next-move selection
//! break on the robot id just as the id-ordered scan did (pinned by the
//! `schedule_identity` suite).

use crate::explore::explore_noted;
use crate::knowledge::Knowledge;
use crate::team::Team;
use freezetag_geometry::{Point, Square};
use freezetag_graph::CellGrid;
use freezetag_sim::{Recorder, Sim, WorldView};
use std::cell::RefCell;

/// Result of a [`df_sampling`] run.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SamplingOutcome {
    /// The ℓ-sampling `P'` (positions, pairwise more than ℓ apart).
    pub sample: Vec<Point>,
    /// Robots woken (and recruited into the team) during the search.
    pub recruits: Vec<freezetag_sim::RobotId>,
    /// Whether the search exhausted every reachable position: the region
    /// is covered by `P'` and every robot in it is now in `knowledge`.
    pub covered: bool,
}

thread_local! {
    /// Reused sample/explored grids: `ASeparator` runs thousands of
    /// `df_sampling` calls, and the grids' table allocations survive
    /// between them ([`CellGrid::reset`] re-widths per call).
    static DF_SCRATCH: RefCell<Option<(CellGrid, CellGrid)>> = const { RefCell::new(None) };
}

/// Runs `DFSampling` on `region` from `seeds`.
///
/// * `in_region` — ownership filter: only positions it accepts are
///   sampled/woken (callers pass quadrant-ownership predicates so sibling
///   teams never race on border robots).
/// * `target` — stop as soon as `|P'|` reaches this (the paper's `4ℓ`).
///
/// The team ends somewhere inside the region, synchronized; callers
/// typically move it to a meeting point next.
#[allow(clippy::too_many_arguments)] // mirrors the paper's DFSampling signature
pub(crate) fn df_sampling<W: WorldView, R: Recorder, F: Fn(Point) -> bool>(
    sim: &mut Sim<W, R>,
    team: &mut Team,
    knowledge: &mut Knowledge,
    region: Square,
    seeds: &[Point],
    in_region: F,
    ell: f64,
    target: usize,
) -> SamplingOutcome {
    let mut sample: Vec<Point> = Vec::new();
    let mut recruits = Vec::new();
    let mut truncated = false;
    let (mut sample_grid, mut explored_grid) = DF_SCRATCH
        .with(|s| s.borrow_mut().take())
        .unwrap_or_else(|| (CellGrid::new(1.0), CellGrid::new(1.0)));
    // Sample points are pairwise > ℓ apart, so an ℓ-cell holds O(1) of
    // them; `explored` holds visited positions, equally sparse.
    sample_grid.reset(ell);
    explored_grid.reset(ell);

    // Sort(X): order seeds by the clockwise parameter of their projection
    // onto the region border (Section 6.5).
    let mut ordered: Vec<Point> = seeds.to_vec();
    ordered.sort_by(|a, b| {
        region
            .border_parameter(*a)
            .partial_cmp(&region.border_parameter(*b))
            .expect("finite coordinates")
    });

    'seeds: for &seed in &ordered {
        if sample.len() >= target {
            truncated = true;
            break;
        }
        // Covered iff some sample point is within ℓ (+EPS) — the same
        // acceptance the linear scan over `sample` applied.
        if sample_grid.any_within(seed, ell) {
            continue;
        }
        // Move to the seed and start a DFS branch there.
        team.move_all(sim, seed);
        visit(
            sim,
            team,
            knowledge,
            &mut sample,
            &mut sample_grid,
            &mut recruits,
            seed,
            &in_region,
        );
        let mut stack = vec![seed];
        while let Some(&cur) = stack.last() {
            if sample.len() >= target {
                truncated = true;
                break 'seeds;
            }
            // Discover the 2ℓ-ball around the current position (once —
            // radius 0 against the explored grid is exactly `approx_eq`).
            if !explored_grid.any_within(cur, 0.0) {
                explored_grid.push(cur);
                let ball = Square::new(cur, 4.0 * ell).to_rect();
                explore_noted(sim, team, &ball, cur, knowledge);
            }
            // Next DFS move: nearest known, in-region, uncovered position
            // within 2ℓ. The grid visits candidates in no particular
            // order, so ties in the squared distance break on the robot
            // id — reproducing the minimum the id-ordered scan returned.
            let mut best: Option<(f64, usize, Point)> = None;
            knowledge.for_each_known_within(cur, 2.0 * ell, |id, origin, _| {
                if in_region(origin) && !sample_grid.any_within(origin, ell) {
                    let d2 = origin.dist_sq(cur);
                    let idx = id.index();
                    let better = match best {
                        None => true,
                        Some((bd2, bidx, _)) => d2 < bd2 || (d2 == bd2 && idx < bidx),
                    };
                    if better {
                        best = Some((d2, idx, origin));
                    }
                }
            });
            match best {
                Some((_, _, q)) => {
                    team.move_all(sim, q);
                    visit(
                        sim,
                        team,
                        knowledge,
                        &mut sample,
                        &mut sample_grid,
                        &mut recruits,
                        q,
                        &in_region,
                    );
                    stack.push(q);
                }
                None => {
                    stack.pop();
                    if let Some(&parent) = stack.last() {
                        team.move_all(sim, parent);
                    }
                }
            }
        }
    }

    DF_SCRATCH.with(|s| *s.borrow_mut() = Some((sample_grid, explored_grid)));
    SamplingOutcome {
        sample,
        recruits,
        covered: !truncated,
    }
}

/// On arrival at a sampled position: add it to `P'` and wake/recruit any
/// sleeping robot sitting there — but only robots *owned* by this team's
/// region (`in_region`), so sibling teams never race on a border robot.
#[allow(clippy::too_many_arguments)]
fn visit<W: WorldView, R: Recorder, F: Fn(Point) -> bool>(
    sim: &mut Sim<W, R>,
    team: &mut Team,
    knowledge: &mut Knowledge,
    sample: &mut Vec<Point>,
    sample_grid: &mut CellGrid,
    recruits: &mut Vec<freezetag_sim::RobotId>,
    pos: Point,
    in_region: &F,
) {
    // Only owned positions count towards the ℓ-sampling `P'` — a border
    // seed owned by a sibling region may *start* a DFS branch (the
    // coverage argument of Lemma 5 needs it as an entry point) but must
    // not inflate this region's sample, or empty border quadrants would
    // appear to hit the 4ℓ target and recurse pointlessly.
    if in_region(pos) {
        sample.push(pos);
        sample_grid.push(pos);
    }
    // A look at the position itself keeps the adversarial world honest
    // (the robot must be discoverable where we stand) and refreshes
    // knowledge.
    for s in sim.look(team.lead()) {
        knowledge.note_sighting(s.id, s.pos);
    }
    // Wake every known sleeping robot exactly at this position (usually
    // one; co-located robots all wake here). Radius 0 against the origin
    // grid is the `approx_eq(pos)` acceptance of the old full scan; the
    // collected candidates are sorted so wakes happen in id order as
    // before.
    let mut here: Vec<(freezetag_sim::RobotId, Point)> = Vec::new();
    knowledge.for_each_known_within(pos, 0.0, |id, origin, awake| {
        if !awake && in_region(origin) {
            here.push((id, origin));
        }
    });
    here.sort_unstable_by_key(|&(id, _)| id);
    for (id, origin) in here {
        let woken = sim.wake(team.lead(), id);
        knowledge.note_awake(id, origin);
        team.push(woken);
        recruits.push(woken);
        team.sync(sim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freezetag_instances::Instance;
    use freezetag_sim::{ConcreteWorld, RobotId};

    fn run(
        inst: &Instance,
        region: Square,
        ell: f64,
        target: usize,
    ) -> (SamplingOutcome, Team, Knowledge, Sim<ConcreteWorld>) {
        let mut sim = Sim::new(ConcreteWorld::new(inst));
        let mut team = Team::new(vec![RobotId::SOURCE]);
        let mut knowledge = Knowledge::with_cell_width(ell);
        knowledge.note_awake(RobotId::SOURCE, inst.source());
        let seeds = vec![inst.source()];
        let out = df_sampling(
            &mut sim,
            &mut team,
            &mut knowledge,
            region,
            &seeds,
            |_| true,
            ell,
            target,
        );
        (out, team, knowledge, sim)
    }

    #[test]
    fn covers_a_small_chain_and_discovers_everyone() {
        // Chain of 6 robots spaced 1.5 (ell = 2): target larger than n so
        // the DFS must exhaust and report covered.
        let pts: Vec<Point> = (1..=6).map(|i| Point::new(i as f64 * 1.5, 0.0)).collect();
        let inst = Instance::new(pts);
        let region = Square::new(Point::ORIGIN, 40.0);
        let (out, team, knowledge, sim) = run(&inst, region, 2.0, 100);
        assert!(out.covered);
        // Every robot is discovered...
        for i in 0..6 {
            assert!(knowledge.get(RobotId::sleeper(i)).is_some(), "robot {i}");
        }
        // ...and the sampling is an ℓ-separated set.
        for (a, sa) in out.sample.iter().enumerate() {
            for sb in out.sample.iter().skip(a + 1) {
                assert!(sa.dist(*sb) > 2.0, "sample points too close");
            }
        }
        // Recruits joined the team.
        assert_eq!(team.len(), 1 + out.recruits.len());
        assert!(!out.recruits.is_empty());
        let _ = sim;
    }

    #[test]
    fn stops_at_target() {
        // Dense line, spacing 2.05 > ell so every robot is sampleable
        // (pairwise > ell apart) and reachable (within 2ℓ hops).
        let pts: Vec<Point> = (1..=30).map(|i| Point::new(i as f64 * 2.05, 0.0)).collect();
        let inst = Instance::new(pts);
        let region = Square::new(Point::ORIGIN, 200.0);
        let (out, ..) = run(&inst, region, 2.0, 5);
        assert!(!out.covered);
        assert_eq!(out.sample.len(), 5);
    }

    #[test]
    fn sampling_cardinality_obeys_lemma_4() {
        // Lemma 4: an ℓ-sampling of a width-R square has at most
        // 16R²/(πℓ²) points.
        let pts: Vec<Point> = (0..50)
            .flat_map(|i| {
                (0..2).map(move |j| {
                    Point::new(0.7 + (i % 10) as f64, 0.5 + j as f64 + (i / 10) as f64)
                })
            })
            .collect();
        let inst = Instance::new(pts);
        let r = 24.0;
        let region = Square::new(Point::ORIGIN, r);
        let ell = 2.0;
        let (out, ..) = run(&inst, region, ell, 10_000);
        let bound = 16.0 * r * r / (std::f64::consts::PI * ell * ell);
        assert!(
            (out.sample.len() as f64) <= bound,
            "|P'|={} exceeds Lemma 4 bound {bound}",
            out.sample.len()
        );
    }

    #[test]
    fn region_filter_is_respected() {
        let pts = vec![
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(-1.0, 0.0), // excluded by filter
        ];
        let inst = Instance::new(pts);
        let region = Square::new(Point::ORIGIN, 20.0);
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        let mut team = Team::new(vec![RobotId::SOURCE]);
        let mut knowledge = Knowledge::new();
        let out = df_sampling(
            &mut sim,
            &mut team,
            &mut knowledge,
            region,
            &[Point::ORIGIN],
            |p| p.x >= 0.0,
            1.5,
            100,
        );
        assert!(out.covered);
        // The out-of-region robot is discovered but never woken.
        assert!(!sim.world().is_awake(RobotId::sleeper(2)));
        assert!(knowledge.get(RobotId::sleeper(2)).is_some());
        // (1,0) is covered by the sample at the origin seed, so it stays
        // asleep (a terminating round would wake it); (2,0) is sampled and
        // recruited.
        assert!(!sim.world().is_awake(RobotId::sleeper(0)));
        assert!(knowledge.get(RobotId::sleeper(0)).is_some());
        assert!(sim.world().is_awake(RobotId::sleeper(1)));
        assert_eq!(out.recruits.len(), 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_instance() -> impl Strategy<Value = (Instance, f64)> {
            (
                prop::collection::vec((-12.0f64..12.0, -12.0f64..12.0), 3..25),
                1.0f64..3.0,
            )
                .prop_filter_map("positions must avoid the source", |(raw, ell)| {
                    let pts: Vec<Point> = raw
                        .into_iter()
                        .map(|(x, y)| Point::new(x, y))
                        .filter(|p| p.norm() > 1e-3)
                        .collect();
                    if pts.len() < 2 {
                        None
                    } else {
                        Some((Instance::new(pts), ell))
                    }
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// The output is always an ℓ-sampling (pairwise > ℓ), its
            /// cardinality obeys Lemma 4, and on `covered` outcomes every
            /// robot in the region has been discovered.
            #[test]
            fn sampling_invariants((inst, ell) in arb_instance()) {
                let r = 30.0;
                let region = Square::new(Point::ORIGIN, r);
                let mut sim = Sim::new(ConcreteWorld::new(&inst));
                let mut team = Team::new(vec![RobotId::SOURCE]);
                let mut knowledge = Knowledge::with_cell_width(ell);
                knowledge.note_awake(RobotId::SOURCE, inst.source());
                let out = df_sampling(
                    &mut sim, &mut team, &mut knowledge,
                    region, &[inst.source()], |_| true, ell, 10_000,
                );
                // ℓ-separation.
                for (i, a) in out.sample.iter().enumerate() {
                    for b in out.sample.iter().skip(i + 1) {
                        prop_assert!(a.dist(*b) > ell, "sample not ℓ-separated");
                    }
                }
                // Lemma 4 cardinality.
                let cap = 16.0 * r * r / (std::f64::consts::PI * ell * ell);
                prop_assert!((out.sample.len() as f64) <= cap);
                // Coverage ⟹ every robot connected to the source within
                // the region via 2ℓ hops is discovered. Conservative
                // check: robots within ℓ of a sample point are known.
                if out.covered {
                    for (i, p) in inst.positions().iter().enumerate() {
                        let covered = out
                            .sample
                            .iter()
                            .any(|s| s.dist(*p) <= ell + freezetag_geometry::EPS);
                        if covered {
                            prop_assert!(
                                knowledge.get(RobotId::sleeper(i)).is_some(),
                                "covered robot {i} undiscovered"
                            );
                        }
                    }
                }
                // Recruits are exactly the robots the world saw woken by us.
                for r in &out.recruits {
                    prop_assert!(sim.world().is_awake(*r));
                }
            }
        }
    }

    #[test]
    fn empty_seed_set_is_covered_noop() {
        let inst = Instance::new(vec![Point::new(1.0, 0.0)]);
        let mut sim = Sim::new(ConcreteWorld::new(&inst));
        let mut team = Team::new(vec![RobotId::SOURCE]);
        let mut knowledge = Knowledge::new();
        let out = df_sampling(
            &mut sim,
            &mut team,
            &mut knowledge,
            Square::new(Point::ORIGIN, 10.0),
            &[],
            |_| true,
            1.0,
            8,
        );
        assert!(out.covered);
        assert!(out.sample.is_empty());
        assert!(out.recruits.is_empty());
    }
}
