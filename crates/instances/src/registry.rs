//! String-keyed scenario registry: every generator in this crate, plus the
//! adversarial lower-bound constructions, addressable by name with named
//! numeric parameters. Scenarios become *data* — an experiment plan (see
//! `freezetag-exp`) or a CLI invocation names a generator and a parameter
//! map instead of hard-coding a function call, so new sweeps need no new
//! code.
//!
//! Unknown generator names and unknown parameter keys are hard errors: a
//! typo in a plan fails loudly instead of silently running the defaults.
//!
//! # Example
//!
//! ```
//! use freezetag_instances::registry;
//! use std::collections::BTreeMap;
//!
//! let mut params = BTreeMap::new();
//! params.insert("n".to_string(), 30.0);
//! params.insert("radius".to_string(), 8.0);
//! let inst = registry::build_instance("disk", &params, 7).unwrap();
//! assert_eq!(inst.n(), 30);
//! ```

use crate::adversarial::{theorem2_layout, theorem3_layout, AdversarialLayout};
use crate::generators::{clustered, grid_lattice, ring, snake, two_clusters_bridge, uniform_disk};
use crate::path_construction::{theorem6_instance, Theorem6Params};
use crate::Instance;
use freezetag_geometry::Point;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Named parameter map of a scenario (insertion-order independent).
pub type ParamMap = BTreeMap<String, f64>;

/// One named parameter accepted by a generator.
#[derive(Debug, Clone, Copy)]
pub struct ParamSpec {
    /// Key as written in plans and on the CLI (without the `--`).
    pub key: &'static str,
    /// Value used when the key is absent.
    pub default: f64,
    /// One-line description for usage text.
    pub doc: &'static str,
}

/// Static description of a registered generator.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorInfo {
    /// Canonical registry key.
    pub name: &'static str,
    /// Accepted shorthand names.
    pub aliases: &'static [&'static str],
    /// One-line description for usage text.
    pub summary: &'static str,
    /// Whether the construction consumes the seed (unseeded generators are
    /// fully determined by their parameters).
    pub seeded: bool,
    /// Whether [`build`] yields an [`AdversarialLayout`] instead of a
    /// concrete [`Instance`].
    pub adversarial: bool,
    /// Accepted parameters with defaults.
    pub params: &'static [ParamSpec],
}

/// What a registered scenario builds.
#[derive(Debug, Clone, PartialEq)]
pub enum Built {
    /// A concrete instance: all robot positions fixed upfront.
    Concrete(Instance),
    /// An adaptive lower-bound layout (positions pinned at run time by
    /// `freezetag-sim::AdversarialWorld`).
    Adversarial(AdversarialLayout),
}

/// Error looking up or building a registered scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// No generator under that name or alias.
    UnknownGenerator {
        /// The name that failed to resolve.
        name: String,
    },
    /// A parameter key the generator does not accept.
    UnknownParam {
        /// Canonical generator name.
        generator: &'static str,
        /// The offending key.
        key: String,
    },
    /// A parameter value outside the generator's domain.
    InvalidParam {
        /// Canonical generator name.
        generator: &'static str,
        /// The offending key.
        key: &'static str,
        /// What went wrong.
        message: String,
    },
    /// A concrete instance was requested from an adversarial construction.
    NotConcrete {
        /// Canonical generator name.
        generator: &'static str,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownGenerator { name } => {
                let known: Vec<&str> = GENERATORS.iter().map(|g| g.name).collect();
                write!(
                    f,
                    "unknown generator '{name}' (known: {})",
                    known.join(", ")
                )
            }
            RegistryError::UnknownParam { generator, key } => {
                let info = lookup(generator).expect("registered");
                let allowed: Vec<&str> = info.params.iter().map(|p| p.key).collect();
                write!(
                    f,
                    "generator '{generator}' has no parameter '{key}' (accepted: {})",
                    allowed.join(", ")
                )
            }
            RegistryError::InvalidParam {
                generator,
                key,
                message,
            } => write!(f, "generator '{generator}', parameter '{key}': {message}"),
            RegistryError::NotConcrete { generator } => write!(
                f,
                "generator '{generator}' is adversarial: it builds a layout, not a concrete instance"
            ),
        }
    }
}

impl Error for RegistryError {}

macro_rules! p {
    ($key:literal, $default:expr, $doc:literal) => {
        ParamSpec {
            key: $key,
            default: $default,
            doc: $doc,
        }
    };
}

/// Every registered generator, in display order.
pub const GENERATORS: &[GeneratorInfo] = &[
    GeneratorInfo {
        name: "uniform_disk",
        aliases: &["disk"],
        summary: "n robots uniform in a disk around the source",
        seeded: true,
        adversarial: false,
        params: &[
            p!("n", 60.0, "number of robots"),
            p!("radius", 12.0, "disk radius"),
        ],
    },
    GeneratorInfo {
        name: "grid_lattice",
        aliases: &["lattice"],
        summary: "side x side lattice, threshold exactly `spacing`",
        seeded: false,
        adversarial: false,
        params: &[
            p!("side", 8.0, "robots per lattice side"),
            p!("spacing", 1.5, "lattice spacing"),
        ],
    },
    GeneratorInfo {
        name: "snake",
        aliases: &[],
        summary: "serpentine corridor with high eccentricity ratio",
        seeded: false,
        adversarial: false,
        params: &[
            p!("legs", 4.0, "number of horizontal legs"),
            p!("leg", 30.0, "leg length"),
            p!("riser", 2.0, "vertical riser height"),
            p!("spacing", 1.0, "robot spacing along the path"),
        ],
    },
    GeneratorInfo {
        name: "ring",
        aliases: &[],
        summary: "robots on a circle plus a radial chain to the source",
        seeded: true,
        adversarial: false,
        params: &[
            p!("n", 36.0, "robots on the circle"),
            p!("radius", 10.0, "circle radius"),
            p!("spacing", 1.0, "chain link spacing"),
        ],
    },
    GeneratorInfo {
        name: "clustered",
        aliases: &["clusters"],
        summary: "blobs chained to the source (warehouse aisles)",
        seeded: true,
        adversarial: false,
        params: &[
            p!("clusters", 4.0, "number of blobs"),
            p!("per", 15.0, "robots per blob"),
            p!("cradius", 1.5, "blob radius"),
            p!("spread", 18.0, "blob centre spread"),
        ],
    },
    GeneratorInfo {
        name: "two_clusters_bridge",
        aliases: &["bridge"],
        summary: "two dense blobs joined by a sparse chain",
        seeded: true,
        adversarial: false,
        params: &[
            p!("per", 20.0, "robots per blob"),
            p!("cradius", 1.5, "blob radius"),
            p!("gap", 24.0, "blob distance"),
            p!("chain", 2.0, "chain link spacing"),
        ],
    },
    GeneratorInfo {
        name: "skewed",
        aliases: &[],
        summary: "dense disk plus one distant straggler",
        seeded: true,
        adversarial: false,
        params: &[
            p!("n", 100.0, "robots in the dense disk"),
            p!("radius", 3.0, "dense disk radius"),
            p!("far", 80.0, "straggler distance (on the diagonal)"),
        ],
    },
    GeneratorInfo {
        name: "uniform_1m",
        aliases: &["disk_1m"],
        summary: "10^6 robots uniform in a disk; explicit ell (scale family)",
        seeded: true,
        adversarial: false,
        params: &[
            p!("n", 1_000_000.0, "number of robots"),
            p!("radius", 640.0, "disk radius"),
            p!(
                "ell",
                4.0,
                "asserted connectivity bound handed to the algorithms"
            ),
        ],
    },
    GeneratorInfo {
        name: "grid_1m",
        aliases: &["lattice_1m"],
        summary: "1000 x 1000 lattice (10^6 robots); explicit ell",
        seeded: false,
        adversarial: false,
        params: &[
            p!("side", 1000.0, "robots per lattice side"),
            p!("spacing", 1.0, "lattice spacing"),
            p!("ell", 1.0, "asserted connectivity bound (the spacing)"),
        ],
    },
    GeneratorInfo {
        name: "skewed_500k",
        aliases: &[],
        summary: "5*10^5-robot dense disk plus a distant straggler; explicit ell",
        seeded: true,
        adversarial: false,
        params: &[
            p!("n", 500_000.0, "robots in the dense disk"),
            p!("radius", 300.0, "dense disk radius"),
            p!("far", 500.0, "straggler distance (on the diagonal)"),
            p!(
                "ell",
                420.0,
                "asserted connectivity bound (>= sqrt(2)*far - radius)"
            ),
        ],
    },
    GeneratorInfo {
        name: "wave_100k",
        aliases: &[],
        summary: "10^5-robot disk tuned for AWave at scale; explicit ell",
        seeded: true,
        adversarial: false,
        params: &[
            p!("n", 100_000.0, "number of robots"),
            p!("radius", 200.0, "disk radius"),
            p!(
                "ell",
                4.0,
                "asserted connectivity bound handed to the algorithms"
            ),
        ],
    },
    GeneratorInfo {
        name: "separator_100k",
        aliases: &[],
        summary: "10^5-robot disk tuned for ASeparator at scale; explicit ell",
        seeded: true,
        adversarial: false,
        params: &[
            p!("n", 100_000.0, "number of robots"),
            p!("radius", 200.0, "disk radius"),
            p!(
                "ell",
                4.0,
                "asserted connectivity bound handed to the algorithms"
            ),
        ],
    },
    GeneratorInfo {
        name: "theorem6",
        aliases: &["path"],
        summary: "rectilinear path with prescribed eccentricity (Thm 6)",
        seeded: false,
        adversarial: false,
        params: &[
            p!("ell", 1.0, "connectivity parameter"),
            p!("rho", 40.0, "radius bound"),
            p!("budget", 3.0, "energy budget the construction defeats"),
            p!("xi", 40.0, "prescribed eccentricity"),
        ],
    },
    GeneratorInfo {
        name: "theorem2",
        aliases: &["adversarial_grid"],
        summary: "adaptive grid-of-disks lower bound (Thm 2)",
        seeded: false,
        adversarial: true,
        params: &[
            p!("ell", 4.0, "connectivity parameter (>= 1)"),
            p!("rho", 32.0, "radius bound"),
            p!("n", 4000.0, "maximum number of disks"),
        ],
    },
    GeneratorInfo {
        name: "theorem3",
        aliases: &["adversarial_hidden"],
        summary: "robots hidden in one disk (energy infeasibility, Thm 3)",
        seeded: false,
        adversarial: true,
        params: &[
            p!("ell", 4.0, "disk radius (> 1)"),
            p!("n", 1.0, "hidden robots"),
        ],
    },
];

/// Resolves a name or alias to its registry entry.
pub fn lookup(name: &str) -> Option<&'static GeneratorInfo> {
    GENERATORS
        .iter()
        .find(|g| g.name == name || g.aliases.contains(&name))
}

/// Checks that `name` resolves and every key in `params` is accepted,
/// without building anything. Used by plan validation so that a typo fails
/// before a sweep starts.
///
/// Validation covers the full parameter domain — generic positivity and
/// count bounds plus each construction's cross-field constraints — so an
/// experiment plan can reject a bad scenario *before* any job runs.
///
/// # Errors
///
/// [`RegistryError::UnknownGenerator`], [`RegistryError::UnknownParam`]
/// or [`RegistryError::InvalidParam`].
pub fn validate(name: &str, params: &ParamMap) -> Result<&'static GeneratorInfo, RegistryError> {
    let info = lookup(name).ok_or_else(|| RegistryError::UnknownGenerator {
        name: name.to_string(),
    })?;
    for key in params.keys() {
        if !info.params.iter().any(|p| p.key == key) {
            return Err(RegistryError::UnknownParam {
                generator: info.name,
                key: key.clone(),
            });
        }
    }
    let r = Resolved { info, params };
    for spec in info.params {
        r.get(spec.key)?;
    }
    check_constraints(&r)?;
    Ok(info)
}

/// Cross-field constraints of the constructions that have them, shared by
/// [`validate`] (fail-early, no building) and hence [`build`].
fn check_constraints(r: &Resolved<'_>) -> Result<(), RegistryError> {
    match r.info.name {
        "theorem6" => {
            let (ell, rho) = (r.get("ell")?, r.get("rho")?);
            let (budget, xi) = (r.get("budget")?, r.get("xi")?);
            if budget <= ell {
                return Err(RegistryError::InvalidParam {
                    generator: r.info.name,
                    key: "budget",
                    message: format!("construction requires budget > ell ({budget} <= {ell})"),
                });
            }
            let cap = rho * rho / (2.0 * (budget + 1.0)) + 1.0;
            if xi < rho - 1e-9 || xi > cap + 1e-9 {
                return Err(RegistryError::InvalidParam {
                    generator: r.info.name,
                    key: "xi",
                    message: format!(
                        "xi must lie in [rho, rho^2/(2(budget+1)) + 1] = [{rho}, {cap}]"
                    ),
                });
            }
        }
        "theorem2" => {
            let (ell, rho) = (r.get("ell")?, r.get("rho")?);
            if ell < 1.0 {
                return Err(RegistryError::InvalidParam {
                    generator: r.info.name,
                    key: "ell",
                    message: "construction assumes ell >= 1".into(),
                });
            }
            if rho < ell {
                return Err(RegistryError::InvalidParam {
                    generator: r.info.name,
                    key: "rho",
                    message: format!("need rho >= ell, got rho={rho} < ell={ell}"),
                });
            }
        }
        "grid_1m" => {
            let (spacing, ell) = (r.get("spacing")?, r.get("ell")?);
            if ell < spacing - 1e-9 {
                return Err(RegistryError::InvalidParam {
                    generator: r.info.name,
                    key: "ell",
                    message: format!(
                        "lattice threshold is the spacing: need ell >= spacing ({ell} < {spacing})"
                    ),
                });
            }
        }
        "skewed_500k" => {
            let (radius, far, ell) = (r.get("radius")?, r.get("far")?, r.get("ell")?);
            let gap = std::f64::consts::SQRT_2 * far - radius;
            if ell < gap - 1e-9 {
                return Err(RegistryError::InvalidParam {
                    generator: r.info.name,
                    key: "ell",
                    message: format!(
                        "the straggler sits {gap:.1} beyond the disk: need ell >= sqrt(2)*far - radius"
                    ),
                });
            }
        }
        "theorem3" if r.get("ell")? <= 1.0 => {
            return Err(RegistryError::InvalidParam {
                generator: r.info.name,
                key: "ell",
                message: "theorem 3 needs ell > 1".into(),
            });
        }
        _ => {}
    }
    Ok(())
}

struct Resolved<'a> {
    info: &'static GeneratorInfo,
    params: &'a ParamMap,
}

impl Resolved<'_> {
    fn get(&self, key: &'static str) -> Result<f64, RegistryError> {
        let spec = self
            .info
            .params
            .iter()
            .find(|p| p.key == key)
            .expect("registered parameter");
        let v = self.params.get(key).copied().unwrap_or(spec.default);
        if !v.is_finite() || v <= 0.0 {
            return Err(RegistryError::InvalidParam {
                generator: self.info.name,
                key,
                message: format!("must be a positive finite number, got {v}"),
            });
        }
        Ok(v)
    }

    fn get_count(&self, key: &'static str) -> Result<usize, RegistryError> {
        let v = self.get(key)?;
        if v > 1e9 {
            return Err(RegistryError::InvalidParam {
                generator: self.info.name,
                key,
                message: format!("count {v} is unreasonably large"),
            });
        }
        Ok((v.round() as usize).max(1))
    }
}

/// Builds the scenario registered under `name` (or an alias) with the
/// given parameters; absent keys take their defaults, the seed is ignored
/// by unseeded generators.
///
/// # Errors
///
/// Any [`RegistryError`]: unknown name, unknown key, or a value outside
/// the generator's domain.
pub fn build(name: &str, params: &ParamMap, seed: u64) -> Result<Built, RegistryError> {
    let info = validate(name, params)?;
    let r = Resolved { info, params };
    let built = match info.name {
        "uniform_disk" => Built::Concrete(uniform_disk(r.get_count("n")?, r.get("radius")?, seed)),
        "grid_lattice" => {
            let side = r.get_count("side")?;
            Built::Concrete(grid_lattice(side, side, r.get("spacing")?))
        }
        "snake" => Built::Concrete(snake(
            r.get_count("legs")?,
            r.get("leg")?,
            r.get("riser")?,
            r.get("spacing")?,
        )),
        "ring" => Built::Concrete(ring(
            r.get_count("n")?,
            r.get("radius")?,
            r.get("spacing")?,
            seed,
        )),
        "clustered" => Built::Concrete(clustered(
            r.get_count("clusters")?,
            r.get_count("per")?,
            r.get("cradius")?,
            r.get("spread")?,
            seed,
        )),
        "two_clusters_bridge" => Built::Concrete(two_clusters_bridge(
            r.get_count("per")?,
            r.get("cradius")?,
            r.get("gap")?,
            r.get("chain")?,
            seed,
        )),
        "skewed" | "skewed_500k" => {
            let far = r.get("far")?;
            let mut pts: Vec<Point> = uniform_disk(r.get_count("n")?, r.get("radius")?, seed)
                .positions()
                .to_vec();
            pts.push(Point::new(far, far));
            Built::Concrete(Instance::new(pts))
        }
        "uniform_1m" | "wave_100k" | "separator_100k" => {
            Built::Concrete(uniform_disk(r.get_count("n")?, r.get("radius")?, seed))
        }
        "grid_1m" => {
            let side = r.get_count("side")?;
            Built::Concrete(grid_lattice(side, side, r.get("spacing")?))
        }
        "theorem6" => {
            let p = Theorem6Params {
                ell: r.get("ell")?,
                rho: r.get("rho")?,
                budget: r.get("budget")?,
                xi: r.get("xi")?,
            };
            Built::Concrete(theorem6_instance(&p))
        }
        "theorem2" => Built::Adversarial(theorem2_layout(
            r.get("ell")?,
            r.get("rho")?,
            r.get_count("n")?,
        )),
        "theorem3" => Built::Adversarial(theorem3_layout(r.get("ell")?, r.get_count("n")?)),
        other => unreachable!("unhandled registered generator {other}"),
    };
    Ok(built)
}

/// The asserted connectivity bound `ℓ` of a *scale family* — a generator
/// whose parameter set includes an explicit `ell` the operator vouches for
/// — resolved against `params` (falling back to the family default).
/// `None` for ordinary generators, whose exact `ℓ*` is computed from the
/// built instance.
///
/// The paper's algorithms take `(ℓ, ρ)` as *inputs* (Section 1.2);
/// computing `ℓ*` exactly is an `O(n²)` convenience of the experiment
/// harness that 10⁶-robot sweeps cannot afford. The scale families trade
/// that pass for a declared bound, checked only where geometry pins it
/// (lattice spacing, straggler gap).
pub fn preset_ell(name: &str, params: &ParamMap) -> Option<f64> {
    let info = lookup(name)?;
    if !matches!(
        info.name,
        "uniform_1m" | "grid_1m" | "skewed_500k" | "wave_100k" | "separator_100k"
    ) {
        return None;
    }
    Resolved { info, params }.get("ell").ok()
}

/// Like [`build`] but requires a concrete instance.
///
/// # Errors
///
/// Any [`build`] error, plus [`RegistryError::NotConcrete`] for the
/// adversarial constructions.
pub fn build_instance(name: &str, params: &ParamMap, seed: u64) -> Result<Instance, RegistryError> {
    match build(name, params, seed)? {
        Built::Concrete(inst) => Ok(inst),
        Built::Adversarial(_) => Err(RegistryError::NotConcrete {
            generator: lookup(name).expect("validated").name,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(kv: &[(&str, f64)]) -> ParamMap {
        kv.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn alias_builds_the_same_instance_as_the_direct_call() {
        let via_registry =
            build_instance("disk", &params(&[("n", 40.0), ("radius", 8.0)]), 3).unwrap();
        assert_eq!(via_registry, uniform_disk(40, 8.0, 3));
        let canonical =
            build_instance("uniform_disk", &params(&[("n", 40.0), ("radius", 8.0)]), 3).unwrap();
        assert_eq!(via_registry, canonical);
    }

    #[test]
    fn defaults_apply_for_absent_keys() {
        let inst = build_instance("lattice", &params(&[("side", 4.0)]), 0).unwrap();
        assert_eq!(inst, grid_lattice(4, 4, 1.5));
    }

    #[test]
    fn every_generator_builds_with_defaults() {
        for info in GENERATORS {
            // The scale families default to 10⁵–10⁶ robots; build them
            // shrunk so this stays a unit test (their full-size defaults
            // are exercised by the scale smoke sweep in CI).
            let p = match info.name {
                "uniform_1m" | "wave_100k" | "separator_100k" => {
                    params(&[("n", 500.0), ("radius", 15.0)])
                }
                "grid_1m" => params(&[("side", 20.0)]),
                "skewed_500k" => params(&[("n", 500.0)]),
                _ => ParamMap::new(),
            };
            let built = build(info.name, &p, 1)
                .unwrap_or_else(|e| panic!("{} failed on defaults: {e}", info.name));
            match built {
                Built::Concrete(inst) => assert!(inst.n() > 0, "{} empty", info.name),
                Built::Adversarial(layout) => assert!(layout.n() > 0, "{} empty", info.name),
            }
        }
    }

    #[test]
    fn scale_families_declare_their_ell_and_check_geometry() {
        assert_eq!(preset_ell("uniform_1m", &ParamMap::new()), Some(4.0));
        assert_eq!(preset_ell("disk_1m", &params(&[("ell", 6.0)])), Some(6.0));
        assert_eq!(preset_ell("grid_1m", &ParamMap::new()), Some(1.0));
        assert_eq!(preset_ell("skewed_500k", &ParamMap::new()), Some(420.0));
        assert_eq!(preset_ell("wave_100k", &ParamMap::new()), Some(4.0));
        assert_eq!(
            preset_ell("separator_100k", &params(&[("ell", 5.0)])),
            Some(5.0)
        );
        // The 100k families are the 10^5 members of the disk family.
        let w = build_instance("wave_100k", &params(&[("n", 60.0), ("radius", 9.0)]), 2).unwrap();
        assert_eq!(w, uniform_disk(60, 9.0, 2));
        let s = build_instance(
            "separator_100k",
            &params(&[("n", 60.0), ("radius", 9.0)]),
            2,
        )
        .unwrap();
        assert_eq!(s, w);
        // Ordinary generators compute ℓ* instead of asserting it.
        assert_eq!(preset_ell("disk", &ParamMap::new()), None);
        assert_eq!(preset_ell("theorem2", &ParamMap::new()), None);
        // Geometry-pinned bounds are validated.
        let err = validate("grid_1m", &params(&[("spacing", 2.0), ("ell", 1.0)])).unwrap_err();
        assert!(err.to_string().contains("spacing"), "{err}");
        let err = validate("skewed_500k", &params(&[("ell", 10.0)])).unwrap_err();
        assert!(err.to_string().contains("straggler"), "{err}");
        // A shrunk family member builds the same instance as its base
        // generator with the mapped parameters.
        let a = build_instance("uniform_1m", &params(&[("n", 50.0), ("radius", 9.0)]), 5).unwrap();
        assert_eq!(a, uniform_disk(50, 9.0, 5));
    }

    #[test]
    fn unknown_generator_and_param_are_rejected() {
        let err = build("warp", &ParamMap::new(), 1).unwrap_err();
        assert!(matches!(err, RegistryError::UnknownGenerator { .. }));
        assert!(err.to_string().contains("uniform_disk"));
        let err = build("disk", &params(&[("spacing", 2.0)]), 1).unwrap_err();
        assert!(matches!(err, RegistryError::UnknownParam { .. }));
        assert!(err.to_string().contains("radius"), "{err}");
    }

    #[test]
    fn invalid_values_are_rejected_not_panicking() {
        let err = build("disk", &params(&[("radius", -1.0)]), 1).unwrap_err();
        assert!(matches!(err, RegistryError::InvalidParam { .. }));
        let err = build("theorem3", &params(&[("ell", 0.5)]), 1).unwrap_err();
        assert!(matches!(err, RegistryError::InvalidParam { .. }));
        let err = build("theorem6", &params(&[("xi", 4000.0)]), 1).unwrap_err();
        assert!(matches!(err, RegistryError::InvalidParam { .. }));
    }

    #[test]
    fn adversarial_generators_refuse_concrete_builds() {
        let err = build_instance("theorem2", &ParamMap::new(), 1).unwrap_err();
        assert!(matches!(err, RegistryError::NotConcrete { .. }));
        let Built::Adversarial(layout) = build("theorem2", &ParamMap::new(), 1).unwrap() else {
            panic!("theorem2 must be adversarial");
        };
        assert!(layout.n() > 0);
    }

    #[test]
    fn skewed_has_its_straggler() {
        let Built::Concrete(inst) =
            build("skewed", &params(&[("n", 20.0), ("far", 50.0)]), 9).unwrap()
        else {
            panic!("skewed is concrete");
        };
        assert_eq!(inst.n(), 21);
        assert!(inst.positions().iter().any(|p| p.norm() > 60.0));
    }

    #[test]
    fn lookup_resolves_aliases_and_rejects_unknowns() {
        assert_eq!(lookup("bridge").unwrap().name, "two_clusters_bridge");
        assert_eq!(lookup("clusters").unwrap().name, "clustered");
        assert!(lookup("nope").is_none());
    }
}
