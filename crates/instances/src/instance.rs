use freezetag_geometry::Point;
use freezetag_graph::InstanceParams;
use std::fmt;

/// The input tuple `(ℓ, ρ, n)` handed to a dFTP algorithm (Section 1.2).
///
/// Admissibility means `ℓ ≤ ρ ≤ nℓ`; algorithms must in addition be run on
/// instances with `ℓ* ≤ ℓ` and `ρ* ≤ ρ` (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissibleTuple {
    /// Upper bound on the connectivity threshold `ℓ*`.
    pub ell: f64,
    /// Upper bound on the radius `ρ*`.
    pub rho: f64,
    /// Number of sleeping robots.
    pub n: usize,
}

impl AdmissibleTuple {
    /// Creates a tuple, checking admissibility.
    ///
    /// # Panics
    ///
    /// Panics if `ℓ ≤ 0`, any value is not finite, or `ℓ ≤ ρ ≤ nℓ` fails.
    pub fn new(ell: f64, rho: f64, n: usize) -> Self {
        assert!(ell > 0.0 && ell.is_finite(), "ell must be positive");
        assert!(rho.is_finite(), "rho must be finite");
        assert!(
            ell <= rho + freezetag_geometry::EPS,
            "inadmissible: ell={ell} > rho={rho}"
        );
        assert!(
            rho <= n as f64 * ell + freezetag_geometry::EPS,
            "inadmissible: rho={rho} > n*ell={}",
            n as f64 * ell
        );
        AdmissibleTuple { ell, rho, n }
    }

    /// The team-size target `4ℓ` of `ASeparator`, rounded up to an integer
    /// robot count and never below 4.
    pub fn team_target(&self) -> usize {
        ((4.0 * self.ell).ceil() as usize).max(4)
    }

    /// The canonical rounding from measured (or declared) bounds to an
    /// integer tuple, shared by [`Instance::admissible_tuple`] and the
    /// experiment engine's preset-ℓ path: epsilon-ceil both values (arc-
    /// length sampling can put a bound at `k + 1e-15`, and a plain ceil
    /// would silently double it), clamp `ℓ ≥ 1` and `ρ ≥ ℓ`.
    ///
    /// # Errors
    ///
    /// A message when the rounded tuple violates `ρ ≤ nℓ` — reachable
    /// when a *declared* `ℓ` is combined with too few robots for the
    /// instance radius (measured bounds satisfy it by Proposition 1).
    pub fn rounded(ell_bound: f64, rho_bound: f64, n: usize) -> Result<Self, String> {
        assert!(
            ell_bound.is_finite() && rho_bound.is_finite(),
            "tuple bounds must be finite"
        );
        let ell = (ell_bound - 1e-9).ceil().max(1.0);
        let rho = (rho_bound.max(ell) - 1e-9).ceil();
        if rho > n as f64 * ell + freezetag_geometry::EPS {
            return Err(format!(
                "inadmissible tuple: rho={rho} exceeds n*ell={} (n={n}, ell={ell})",
                n as f64 * ell
            ));
        }
        Ok(AdmissibleTuple::new(ell, rho, n))
    }
}

impl fmt::Display for AdmissibleTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(ℓ={}, ρ={}, n={})", self.ell, self.rho, self.n)
    }
}

/// A static dFTP instance: the source position and the initial positions of
/// the `n` sleeping robots.
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_instances::Instance;
///
/// let inst = Instance::new(vec![Point::new(1.0, 0.0), Point::new(2.0, 0.0)]);
/// assert_eq!(inst.n(), 2);
/// let params = inst.params(None);
/// assert!((params.rho_star - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    source: Point,
    positions: Vec<Point>,
}

impl Instance {
    /// An instance with the source at the origin (the paper's convention
    /// `p₀ = (0,0)`).
    ///
    /// # Panics
    ///
    /// Panics if any position is not finite or coincides with the source
    /// (the paper requires `s ∉ P`).
    pub fn new(positions: Vec<Point>) -> Self {
        Instance::with_source(Point::ORIGIN, positions)
    }

    /// An instance with an explicit source position.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Instance::new`].
    pub fn with_source(source: Point, positions: Vec<Point>) -> Self {
        assert!(source.is_finite(), "source position must be finite");
        for (i, p) in positions.iter().enumerate() {
            assert!(p.is_finite(), "position {i} is not finite");
            assert!(
                p.dist(source) > freezetag_geometry::EPS,
                "position {i} coincides with the source (s ∉ P required)"
            );
        }
        Instance { source, positions }
    }

    /// The source position `p₀`.
    pub fn source(&self) -> Point {
        self.source
    }

    /// The sleeping robots' initial positions `P` (robot `i` is
    /// `positions()[i]`).
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Number of sleeping robots `n`.
    pub fn n(&self) -> usize {
        self.positions.len()
    }

    /// All points with the source first: index 0 is `s`, index `i + 1` is
    /// robot `i`. This is the vertex order used for disk-graph
    /// computations.
    pub fn all_points(&self) -> Vec<Point> {
        let mut v = Vec::with_capacity(self.n() + 1);
        v.push(self.source);
        v.extend_from_slice(&self.positions);
        v
    }

    /// Exact instance parameters `(ρ*, ℓ*, ξ_ℓ)`; `ell = None` evaluates
    /// the eccentricity at `ℓ = ℓ*`.
    pub fn params(&self, ell: Option<f64>) -> InstanceParams {
        InstanceParams::compute(&self.all_points(), 0, ell)
    }

    /// The canonical admissible tuple of this instance: `ℓ = ℓ*` (rounded
    /// up to the next integer, following the paper's integrality
    /// convention), `ρ = max(ρ*, ℓ)` rounded up. Proposition 1 guarantees
    /// the result is admissible.
    ///
    /// # Panics
    ///
    /// Panics for an empty instance (`n = 0` gives no positive `ℓ*`).
    pub fn admissible_tuple(&self) -> AdmissibleTuple {
        assert!(self.n() > 0, "empty instance has no admissible tuple");
        let p = self.params(None);
        AdmissibleTuple::rounded(p.ell_star, p.rho_star, self.n())
            .expect("Proposition 1: measured bounds round to an admissible tuple")
    }

    /// A tuple with slack: `ℓ` and `ρ` multiplied by the given factors
    /// (≥ 1), for experiments that feed the algorithms loose bounds.
    ///
    /// # Panics
    ///
    /// Panics if a factor is < 1 or the result is inadmissible.
    pub fn loose_tuple(&self, ell_factor: f64, rho_factor: f64) -> AdmissibleTuple {
        assert!(
            ell_factor >= 1.0 && rho_factor >= 1.0,
            "slack factors must be >= 1"
        );
        let base = self.admissible_tuple();
        let ell = (base.ell * ell_factor - 1e-9).ceil();
        // Clamp to the admissible ceiling ρ ≤ nℓ.
        let rho = (base.rho * rho_factor - 1e-9)
            .ceil()
            .max(ell)
            .min(self.n() as f64 * ell);
        AdmissibleTuple::new(ell, rho, self.n())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_validation() {
        let t = AdmissibleTuple::new(2.0, 8.0, 10);
        assert_eq!(t.team_target(), 8);
        assert_eq!(format!("{t}"), "(ℓ=2, ρ=8, n=10)");
    }

    #[test]
    #[should_panic]
    fn tuple_rejects_ell_above_rho() {
        let _ = AdmissibleTuple::new(3.0, 2.0, 10);
    }

    #[test]
    #[should_panic]
    fn tuple_rejects_rho_above_n_ell() {
        let _ = AdmissibleTuple::new(1.0, 5.0, 4);
    }

    #[test]
    fn team_target_has_floor_of_four() {
        assert_eq!(AdmissibleTuple::new(0.5, 0.5, 1).team_target(), 4);
        assert_eq!(AdmissibleTuple::new(2.5, 5.0, 10).team_target(), 10);
    }

    #[test]
    fn instance_accessors() {
        let inst = Instance::new(vec![Point::new(1.0, 0.0), Point::new(0.0, 2.0)]);
        assert_eq!(inst.n(), 2);
        assert_eq!(inst.source(), Point::ORIGIN);
        assert_eq!(inst.all_points().len(), 3);
        assert_eq!(inst.all_points()[0], Point::ORIGIN);
    }

    #[test]
    #[should_panic]
    fn instance_rejects_source_collision() {
        let _ = Instance::new(vec![Point::ORIGIN]);
    }

    #[test]
    fn admissible_tuple_is_admissible_and_covers_params() {
        let inst = Instance::new(vec![
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.5),
        ]);
        let t = inst.admissible_tuple();
        let p = inst.params(None);
        assert!(p.admits(t.ell, t.rho, t.n));
    }

    #[test]
    fn loose_tuple_scales() {
        let inst = Instance::new(vec![Point::new(1.0, 0.0), Point::new(2.0, 0.0)]);
        let t = inst.loose_tuple(2.0, 3.0);
        let base = inst.admissible_tuple();
        assert!(t.ell >= base.ell * 2.0 - 1.0);
        assert!(t.rho >= base.rho);
    }

    #[test]
    fn params_at_custom_ell() {
        let inst = Instance::new(vec![Point::new(1.0, 0.0), Point::new(2.0, 0.0)]);
        let p = inst.params(Some(0.5));
        assert_eq!(p.xi_ell, None); // 0.5-disk graph disconnected
        let p2 = inst.params(Some(1.0));
        assert_eq!(p2.xi_ell, Some(2.0));
    }
}
