//! Instances of the distributed Freeze Tag Problem: point sets with a
//! source, exact parameter computation, reproducible generators, and the
//! paper's lower-bound constructions.
//!
//! An [`Instance`] is the static data of a dFTP run: the source position
//! and the initial positions `P` of the sleeping robots. The three
//! complexity parameters `(ρ*, ℓ*, ξ_ℓ)` are computed exactly through
//! `freezetag-graph`, and [`Instance::admissible_tuple`] derives the
//! `(ℓ, ρ, n)` input handed to the distributed algorithms (Definition 1 of
//! the paper).
//!
//! The [`generators`] module builds reproducible workloads (uniform disks,
//! clusters, lattices, snakes with large eccentricity, …); the
//! [`adversarial`] module builds the *adaptive* lower-bound layouts of
//! Theorems 2 and 3 (the actual adversary lives in `freezetag-sim`, which
//! owns the sensing interface); [`path_construction`] builds the explicit
//! rectilinear instances of Theorem 6.
//!
//! # Example
//!
//! ```
//! use freezetag_instances::generators::uniform_disk;
//!
//! let inst = uniform_disk(50, 10.0, 7);
//! assert_eq!(inst.n(), 50);
//! let t = inst.admissible_tuple();
//! assert!(t.ell <= t.rho && t.rho <= t.n as f64 * t.ell);
//! ```

pub mod adversarial;
pub mod generators;
mod instance;
pub mod io;
pub mod path_construction;
pub mod registry;

pub use instance::{AdmissibleTuple, Instance};
