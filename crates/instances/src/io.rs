//! Plain-text (CSV) import/export of instances — lets downstream users run
//! the algorithms on their own swarm layouts and archive generated ones,
//! without pulling in a serialization framework.
//!
//! Format: one `x,y` pair per line; the first line is the source position,
//! every following line a sleeping robot. `#`-prefixed lines and blank
//! lines are ignored.

use crate::Instance;
use freezetag_geometry::Point;
use std::error::Error;
use std::fmt;

/// Error parsing an instance from CSV text.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseInstanceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseInstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseInstanceError {}

/// Serializes an instance to CSV (source first).
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_instances::{io, Instance};
///
/// let inst = Instance::new(vec![Point::new(1.0, 2.0)]);
/// let text = io::to_csv(&inst);
/// let back = io::from_csv(&text).unwrap();
/// assert_eq!(inst, back);
/// ```
pub fn to_csv(instance: &Instance) -> String {
    let mut out = String::from("# freezetag instance: source first, robots follow\n");
    let s = instance.source();
    out.push_str(&format!("{},{}\n", s.x, s.y));
    for p in instance.positions() {
        out.push_str(&format!("{},{}\n", p.x, p.y));
    }
    out
}

/// Parses an instance from CSV text (inverse of [`to_csv`]).
///
/// # Errors
///
/// Returns [`ParseInstanceError`] on malformed lines, non-finite
/// coordinates, an empty file, or a robot placed exactly on the source.
pub fn from_csv(text: &str) -> Result<Instance, ParseInstanceError> {
    let mut points: Vec<(usize, Point)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',');
        let parse = |s: Option<&str>, what: &str| -> Result<f64, ParseInstanceError> {
            s.map(str::trim)
                .filter(|v| !v.is_empty())
                .ok_or_else(|| ParseInstanceError {
                    line: i + 1,
                    message: format!("missing {what} coordinate"),
                })?
                .parse::<f64>()
                .map_err(|e| ParseInstanceError {
                    line: i + 1,
                    message: format!("bad {what} coordinate: {e}"),
                })
        };
        let x = parse(parts.next(), "x")?;
        let y = parse(parts.next(), "y")?;
        if parts.next().is_some() {
            return Err(ParseInstanceError {
                line: i + 1,
                message: "expected exactly two comma-separated values".into(),
            });
        }
        let p = Point::new(x, y);
        if !p.is_finite() {
            return Err(ParseInstanceError {
                line: i + 1,
                message: "coordinates must be finite".into(),
            });
        }
        points.push((i + 1, p));
    }
    let Some(&(_, source)) = points.first() else {
        return Err(ParseInstanceError {
            line: 0,
            message: "no points found".into(),
        });
    };
    let positions: Vec<Point> = points[1..].iter().map(|&(_, p)| p).collect();
    for &(line, p) in &points[1..] {
        if p.dist(source) <= freezetag_geometry::EPS {
            return Err(ParseInstanceError {
                line,
                message: "robot coincides with the source (s ∉ P required)".into(),
            });
        }
    }
    Ok(Instance::with_source(source, positions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::uniform_disk;

    #[test]
    fn round_trip_preserves_instances() {
        let inst = uniform_disk(25, 7.0, 99);
        let back = from_csv(&to_csv(&inst)).expect("round trip");
        assert_eq!(inst, back);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# header\n\n0,0\n# robot below\n1.5,2.5\n";
        let inst = from_csv(text).unwrap();
        assert_eq!(inst.n(), 1);
        assert_eq!(inst.positions()[0], Point::new(1.5, 2.5));
    }

    #[test]
    fn custom_source_positions_survive() {
        let inst = Instance::with_source(Point::new(3.0, -1.0), vec![Point::new(4.0, 0.0)]);
        let back = from_csv(&to_csv(&inst)).unwrap();
        assert_eq!(back.source(), Point::new(3.0, -1.0));
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let err = from_csv("0,0\nabc,2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bad x"));
        let err = from_csv("0,0\n1\n").unwrap_err();
        assert!(err.message.contains("missing y"));
        let err = from_csv("0,0\n1,2,3\n").unwrap_err();
        assert!(err.message.contains("exactly two"));
        let err = from_csv("").unwrap_err();
        assert_eq!(err.line, 0);
    }

    #[test]
    fn source_collision_is_reported_with_line() {
        let err = from_csv("1,1\n1,1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("source"));
    }
}
