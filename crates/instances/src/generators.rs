//! Reproducible instance generators.
//!
//! Every generator takes an explicit `seed` (when randomized) and
//! guarantees a *connected* instance: the generated point set, together
//! with the source at the origin, has a finite connectivity threshold that
//! the construction controls. The generators cover the workload families
//! used by the paper's complexity statements:
//!
//! * [`uniform_disk`] — dense swarms where `ρ* ≈ ξ_ℓ` (makespan dominated
//!   by `ρ`);
//! * [`snake`] — serpentine corridors where `ξ_ℓ ≫ ρ*` (separating `AGrid`
//!   from `AWave`);
//! * [`grid_lattice`], [`ring`], [`clustered`], [`two_clusters_bridge`] —
//!   structured mid-cases.

use crate::Instance;
use freezetag_geometry::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// `n` robots uniform in the disk of the given `radius` around the source,
/// then *stitched*: any robot left disconnected from the source is pulled
/// towards it until the whole instance is connected at threshold
/// `≈ radius·2/√n`… in practice we simply resample isolated outliers, so
/// the exact `ℓ*` is computed, not prescribed.
///
/// # Panics
///
/// Panics if `n == 0` or `radius <= 0`.
pub fn uniform_disk(n: usize, radius: f64, seed: u64) -> Instance {
    assert!(n > 0, "need at least one robot");
    assert!(radius > 0.0, "radius must be positive");
    let mut r = rng(seed);
    let mut pts = Vec::with_capacity(n);
    while pts.len() < n {
        let x: f64 = r.gen_range(-radius..=radius);
        let y: f64 = r.gen_range(-radius..=radius);
        let p = Point::new(x, y);
        if p.norm() <= radius && p.norm() > 1e-6 {
            pts.push(p);
        }
    }
    Instance::new(pts)
}

/// Robots on the nodes of a `rows × cols` lattice with the given spacing,
/// lower-left node adjacent to the source. The connectivity threshold is
/// exactly `spacing`.
///
/// # Panics
///
/// Panics if `rows == 0`, `cols == 0` or `spacing <= 0`.
pub fn grid_lattice(rows: usize, cols: usize, spacing: f64) -> Instance {
    assert!(rows > 0 && cols > 0, "lattice must be non-empty");
    assert!(spacing > 0.0, "spacing must be positive");
    let mut pts = Vec::with_capacity(rows * cols);
    for i in 0..cols {
        for j in 0..rows {
            let p = Point::new((i + 1) as f64 * spacing, j as f64 * spacing);
            pts.push(p);
        }
    }
    Instance::new(pts)
}

/// A serpentine corridor: robots every `spacing` along a rectilinear snake
/// of `legs` horizontal legs of the given `leg_length`, alternating
/// direction, with vertical risers of height `riser`. High `ξ_ℓ / ρ*`
/// ratio — the workload that separates the energy-constrained algorithms.
///
/// # Panics
///
/// Panics if any dimension is non-positive or `legs == 0`.
pub fn snake(legs: usize, leg_length: f64, riser: f64, spacing: f64) -> Instance {
    assert!(legs > 0, "need at least one leg");
    assert!(
        leg_length > 0.0 && riser > 0.0 && spacing > 0.0,
        "snake dimensions must be positive"
    );
    let mut waypoints = vec![Point::ORIGIN];
    let mut y = 0.0;
    for leg in 0..legs {
        let x = if leg % 2 == 0 { leg_length } else { 0.0 };
        waypoints.push(Point::new(x, y));
        if leg + 1 < legs {
            y += riser;
            waypoints.push(Point::new(x, y));
        }
    }
    let poly = freezetag_geometry::Polyline::from_points(waypoints);
    let total = poly.length();
    let count = (total / spacing).floor() as usize;
    let mut pts = Vec::with_capacity(count);
    for k in 1..=count {
        pts.push(poly.point_at(k as f64 * spacing));
    }
    Instance::new(pts)
}

/// `n` robots evenly spaced on a circle of the given `radius` centred at
/// the source, plus a radial chain of `⌈radius/spacing⌉` robots linking the
/// source to the circle so the instance is connected.
///
/// # Panics
///
/// Panics if `n == 0`, `radius <= 0` or `spacing <= 0`.
pub fn ring(n: usize, radius: f64, spacing: f64, seed: u64) -> Instance {
    assert!(n > 0, "need at least one robot");
    assert!(radius > 0.0 && spacing > 0.0, "dimensions must be positive");
    let mut r = rng(seed);
    let phase: f64 = r.gen_range(0.0..std::f64::consts::TAU);
    let mut pts = Vec::new();
    for k in 0..n {
        let a = phase + std::f64::consts::TAU * k as f64 / n as f64;
        pts.push(Point::new(radius * a.cos(), radius * a.sin()));
    }
    // Radial chain from the source to the first ring robot.
    let target = pts[0];
    let links = (radius / spacing).ceil() as usize;
    for k in 1..links {
        pts.push(Point::ORIGIN.lerp(target, k as f64 / links as f64));
    }
    Instance::new(pts)
}

/// `clusters` Gaussian-ish blobs of `per_cluster` robots each, blob centres
/// themselves chained to the source so the instance is connected. Models
/// the "warehouse aisles" scenario of the examples.
///
/// # Panics
///
/// Panics if any count is zero or any radius non-positive.
pub fn clustered(
    clusters: usize,
    per_cluster: usize,
    cluster_radius: f64,
    spread: f64,
    seed: u64,
) -> Instance {
    assert!(clusters > 0 && per_cluster > 0, "counts must be positive");
    assert!(
        cluster_radius > 0.0 && spread > 0.0,
        "radii must be positive"
    );
    let mut r = rng(seed);
    let mut pts = Vec::new();
    let mut centers = Vec::new();
    for c in 0..clusters {
        let a = std::f64::consts::TAU * c as f64 / clusters as f64;
        let d = spread * (0.5 + 0.5 * (c as f64 + 1.0) / clusters as f64);
        centers.push(Point::new(d * a.cos(), d * a.sin()));
    }
    for &center in &centers {
        for _ in 0..per_cluster {
            let dx: f64 = r.gen_range(-cluster_radius..=cluster_radius);
            let dy: f64 = r.gen_range(-cluster_radius..=cluster_radius);
            let p = center + Point::new(dx, dy);
            if p.norm() > 1e-6 {
                pts.push(p);
            }
        }
        // Chain the cluster centre back to the source with links every
        // cluster_radius, keeping the instance connected at threshold
        // O(cluster_radius).
        let links = (center.norm() / cluster_radius).ceil() as usize;
        for k in 1..links {
            let p = Point::ORIGIN.lerp(center, k as f64 / links as f64);
            if p.norm() > 1e-6 {
                pts.push(p);
            }
        }
    }
    Instance::new(pts)
}

/// Two dense blobs of `per_cluster` robots at distance `gap`, joined by a
/// sparse chain with link distance `chain_spacing`; the connectivity
/// threshold is governed by the chain, the radius by the far blob.
///
/// # Panics
///
/// Panics if counts are zero or distances non-positive.
pub fn two_clusters_bridge(
    per_cluster: usize,
    cluster_radius: f64,
    gap: f64,
    chain_spacing: f64,
    seed: u64,
) -> Instance {
    assert!(per_cluster > 0, "counts must be positive");
    assert!(
        cluster_radius > 0.0 && gap > 0.0 && chain_spacing > 0.0,
        "distances must be positive"
    );
    let mut r = rng(seed);
    let mut pts = Vec::new();
    let far = Point::new(gap, 0.0);
    for center in [Point::new(cluster_radius, 0.0), far] {
        for _ in 0..per_cluster {
            let dx: f64 = r.gen_range(-cluster_radius..=cluster_radius);
            let dy: f64 = r.gen_range(-cluster_radius..=cluster_radius);
            let p = center + Point::new(dx, dy);
            if p.norm() > 1e-6 {
                pts.push(p);
            }
        }
    }
    let links = (gap / chain_spacing).ceil() as usize;
    for k in 1..links {
        pts.push(Point::ORIGIN.lerp(far, k as f64 / links as f64));
    }
    Instance::new(pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_disk_is_reproducible_and_bounded() {
        let a = uniform_disk(40, 8.0, 3);
        let b = uniform_disk(40, 8.0, 3);
        assert_eq!(a, b);
        assert_eq!(a.n(), 40);
        for p in a.positions() {
            assert!(p.norm() <= 8.0 + 1e-9);
        }
        let c = uniform_disk(40, 8.0, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn lattice_threshold_equals_spacing() {
        let inst = grid_lattice(4, 5, 2.0);
        assert_eq!(inst.n(), 20);
        let p = inst.params(None);
        assert!((p.ell_star - 2.0).abs() < 1e-9, "got {}", p.ell_star);
    }

    #[test]
    fn snake_has_large_eccentricity_ratio() {
        let inst = snake(6, 30.0, 2.0, 1.0);
        let p = inst.params(None);
        let xi = p.xi_ell.expect("snake connected at ell*");
        // Six 30-long legs: path length ~190, radius ~32.
        assert!(
            xi > 2.0 * p.rho_star,
            "xi={xi} rho={} not serpentine enough",
            p.rho_star
        );
        assert!(p.ell_star <= 1.0 + 1e-9);
    }

    #[test]
    fn ring_is_connected_at_moderate_threshold() {
        let inst = ring(36, 10.0, 1.0, 5);
        let p = inst.params(None);
        assert!(p.xi_ell.is_some());
        assert!(p.ell_star <= 2.0, "ell* = {}", p.ell_star);
        assert!((p.rho_star - 10.0).abs() < 1e-6);
    }

    #[test]
    fn clustered_is_connected() {
        let inst = clustered(4, 15, 1.5, 20.0, 11);
        let p = inst.params(None);
        assert!(p.xi_ell.is_some(), "clusters must be chained to source");
        assert!(inst.n() >= 60);
    }

    #[test]
    fn bridge_threshold_is_chain_spacing() {
        let inst = two_clusters_bridge(20, 1.0, 30.0, 2.0, 9);
        let p = inst.params(None);
        assert!(p.ell_star <= 2.0 + 1e-6, "ell* = {}", p.ell_star);
        assert!(p.rho_star >= 29.0);
    }

    #[test]
    #[should_panic]
    fn zero_robots_rejected() {
        let _ = uniform_disk(0, 5.0, 1);
    }
}
