//! Theorem 6 construction (Section 9.3): instances with *prescribed*
//! ℓ-eccentricity.
//!
//! The point set is spread along a rectilinear path `Π` made of horizontal
//! segments of length `H = ρ/√2` and vertical segments of length
//! `V = B + 1` (so an energy-`B` robot can never shortcut between two
//! horizontal corridors). The path length — and hence `ξ_ℓ` — can be
//! dialled to any admissible `ξ ∈ [ρ, min(nℓ − ρ/3, ρ²/(2(B+1)) + 1)]`.

use crate::Instance;
use freezetag_geometry::{Point, Polyline};

/// Parameters accepted by [`theorem6_instance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Theorem6Params {
    /// Connectivity parameter ℓ (robot spacing along the path).
    pub ell: f64,
    /// Radius bound ρ.
    pub rho: f64,
    /// Energy budget `B` the construction defeats (`B > ℓ` required).
    pub budget: f64,
    /// Prescribed ℓ-eccentricity ξ.
    pub xi: f64,
}

impl Theorem6Params {
    /// Upper end of the valid ξ range for a given `n`:
    /// `min(nℓ − ρ/3, ρ²/(2(B+1)) + 1)`.
    pub fn xi_max(&self, n: usize) -> f64 {
        let a = n as f64 * self.ell - self.rho / 3.0;
        let b = self.rho * self.rho / (2.0 * (self.budget + 1.0)) + 1.0;
        a.min(b)
    }
}

/// The rectilinear path `Π` of the construction, truncated at arc-length ξ.
///
/// Waypoints follow Section 9.3: `u_j = (0, j(B+1))`,
/// `v_j = (ρ/√2, j(B+1))`; section `j` is the horizontal `[u_j v_j]` (or
/// its reverse) followed by a vertical riser on alternating sides.
pub fn theorem6_path(p: &Theorem6Params) -> Polyline {
    let h = p.rho / std::f64::consts::SQRT_2;
    let v = p.budget + 1.0;
    let sections = (p.xi / (h + v)).floor() as usize;
    let mut poly = Polyline::new(Point::ORIGIN);
    let mut total = 0.0;
    let mut j = 0usize;
    // Build whole sections until adding one more would exceed ξ.
    while j < sections.max(1) && total + h + v <= p.xi + freezetag_geometry::EPS {
        let y = j as f64 * v;
        let (from_x, to_x) = if j.is_multiple_of(2) {
            (0.0, h)
        } else {
            (h, 0.0)
        };
        poly.push(Point::new(to_x, y));
        poly.push(Point::new(to_x, y + v));
        let _ = from_x;
        total += h + v;
        j += 1;
    }
    // Final partial stretch so the arc length is exactly ξ.
    let remaining = (p.xi - total).max(0.0);
    if remaining > freezetag_geometry::EPS {
        let y = j as f64 * v;
        let (from_x, to_x) = if j.is_multiple_of(2) {
            (0.0, h)
        } else {
            (h, 0.0)
        };
        let horizontal = remaining.min(h);
        let t = horizontal / h;
        let end_x = from_x + (to_x - from_x) * t;
        poly.push(Point::new(end_x, y));
        let vertical = remaining - horizontal;
        if vertical > freezetag_geometry::EPS {
            poly.push(Point::new(end_x, y + vertical));
        }
    }
    poly
}

/// Builds the Theorem 6 instance: robots every ℓ along `Π` (which pins
/// `ξ_ℓ` to ≈ ξ), plus a spur from `v₀ = (ρ/√2, 0)` to `w₀ = (ρ, 0)` so the
/// radius is exactly ρ.
///
/// # Panics
///
/// Panics unless `B > ℓ > 0` and `ρ ≤ ξ ≤ ρ²/(2(B+1)) + 1` (the validity
/// range of the construction, Equation 15).
pub fn theorem6_instance(p: &Theorem6Params) -> Instance {
    assert!(p.ell > 0.0, "ell must be positive");
    assert!(p.budget > p.ell, "construction requires B > ell");
    assert!(p.xi >= p.rho - freezetag_geometry::EPS, "need xi >= rho");
    let cap = p.rho * p.rho / (2.0 * (p.budget + 1.0)) + 1.0;
    assert!(
        p.xi <= cap + freezetag_geometry::EPS,
        "xi={} exceeds geometric cap {}",
        p.xi,
        cap
    );
    let poly = theorem6_path(p);
    let mut pts = Vec::new();
    let total = poly.length();
    let count = (total / p.ell).ceil() as usize;
    for k in 1..=count {
        let d = (k as f64 * p.ell).min(total);
        let q = poly.point_at(d);
        if q.norm() > 1e-9 {
            pts.push(q);
        }
    }
    // Spur to w0 = (rho, 0) so that rho* = rho. Include v0 itself: the
    // arc-length sampling of Π does not necessarily place a robot exactly
    // at the corner, and the spur must attach to the path within ℓ.
    let v0 = Point::new(p.rho / std::f64::consts::SQRT_2, 0.0);
    let w0 = Point::new(p.rho, 0.0);
    let spur_len = v0.dist(w0);
    let links = (spur_len / p.ell).ceil() as usize;
    for k in 0..=links {
        let q = v0.lerp(w0, k as f64 / links as f64);
        if pts.iter().all(|r| r.dist(q) > 1e-9) {
            pts.push(q);
        }
    }
    Instance::new(pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(xi: f64) -> Theorem6Params {
        Theorem6Params {
            ell: 1.0,
            rho: 20.0,
            budget: 4.0,
            xi,
        }
    }

    #[test]
    fn path_length_matches_xi() {
        for xi in [20.0, 30.0, 41.0] {
            let p = params(xi);
            let poly = theorem6_path(&p);
            assert!(
                (poly.length() - xi).abs() < 1e-6,
                "xi={xi} got {}",
                poly.length()
            );
        }
    }

    #[test]
    fn instance_has_prescribed_eccentricity() {
        let p = params(35.0);
        let inst = theorem6_instance(&p);
        let ip = inst.params(Some(p.ell));
        let xi = ip.xi_ell.expect("path instance connected at ell");
        // ξ_ℓ within a small factor of ξ (discretization slack of one hop
        // per segment).
        assert!(xi >= 0.8 * p.xi, "xi_ell={xi} too small vs ξ={}", p.xi);
        assert!(xi <= 1.2 * p.xi + p.rho, "xi_ell={xi} too large");
    }

    #[test]
    fn radius_is_rho() {
        let p = params(30.0);
        let inst = theorem6_instance(&p);
        let ip = inst.params(Some(p.ell));
        assert!((ip.rho_star - p.rho).abs() < p.ell + 1e-6);
    }

    #[test]
    fn vertical_separation_defeats_budget() {
        // Any two points on distinct horizontal corridors are >= B+1 apart
        // vertically unless connected through the riser.
        let p = params(40.0);
        let inst = theorem6_instance(&p);
        let v = p.budget + 1.0;
        for a in inst.positions() {
            for b in inst.positions() {
                let same_corridor = (a.y / v).floor() == (b.y / v).floor();
                if !same_corridor && (a.y - b.y).abs() < v - 1e-9 {
                    // Points in different sections closer than V vertically
                    // must lie on a riser (x = 0 or x = H).
                    let h = p.rho / std::f64::consts::SQRT_2;
                    let on_riser = |q: &Point| q.x < 1e-6 || (q.x - h).abs() < 1e-6;
                    assert!(
                        on_riser(a) || on_riser(b),
                        "shortcut between corridors: {a} {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn xi_max_formula() {
        let p = params(30.0);
        let cap = p.xi_max(100);
        assert!((cap - (20.0 * 20.0 / 10.0 + 1.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn rejects_budget_not_above_ell() {
        let p = Theorem6Params {
            ell: 5.0,
            rho: 20.0,
            budget: 5.0,
            xi: 25.0,
        };
        let _ = theorem6_instance(&p);
    }
}
