//! Adversarial lower-bound layouts (Theorems 2 and 3, Section 9.1–9.2).
//!
//! The Theorem 2 construction places one sleeping robot in each disk
//! `D_c = B_c(ℓ/4)` over a connected set of grid centres `C_m ⊂ (ℓ/2·Z)²`,
//! at *the last position of the disk explored by the algorithm*. The robot
//! positions are therefore adaptive; this module builds the static part
//! (the centre set, including the vertical spine that forces the `Ω(ρ)`
//! term), and `freezetag-sim::AdversarialWorld` plays the adversary against
//! any algorithm driven through the sensing interface.

use freezetag_geometry::Point;
use std::collections::{HashSet, VecDeque};

/// Static description of an adaptive lower-bound instance: one robot per
/// disk `B_c(disk_radius)`, positioned adversarially at runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialLayout {
    /// The connectivity parameter ℓ the construction is built for.
    pub ell: f64,
    /// The radius bound ρ of the construction.
    pub rho: f64,
    /// Disk centres `C_m`, one sleeping robot per disk.
    pub centers: Vec<Point>,
    /// Disk radius (ℓ/4 for Theorem 2, ℓ for Theorem 3).
    pub disk_radius: f64,
}

impl AdversarialLayout {
    /// Number of sleeping robots (= number of disks).
    pub fn n(&self) -> usize {
        self.centers.len()
    }

    /// Total disk area the algorithm must (in the worst case) observe:
    /// `m · π · r²`; half of it lower-bounds the total movement because a
    /// unit-vision robot uncovers new area at rate at most 2 per unit
    /// distance (proof of Theorem 2).
    pub fn total_disk_area(&self) -> f64 {
        self.n() as f64 * std::f64::consts::PI * self.disk_radius * self.disk_radius
    }
}

/// Builds the Theorem 2 layout for parameters `(ℓ, ρ, n)`.
///
/// The centre set starts with the vertical spine
/// `{(0, i·ℓ/2) : 1 ≤ i ≤ ⌊ρ/ℓ⌋}` (which forces the `Ω(ρ)` travel term),
/// then grows by breadth-first search over grid-adjacent centres inside the
/// disk of radius `ρ − ℓ/4`, up to `m = min(n, |C*|)` centres. Adjacent
/// centres are `ℓ/2` apart, and any two points of adjacent disks are within
/// `ℓ` (Lemma 13), so the resulting point set always has `ℓ* ≤ ℓ`.
///
/// # Panics
///
/// Panics if `ℓ < 1`, `ρ < ℓ` or `n == 0`.
pub fn theorem2_layout(ell: f64, rho: f64, n: usize) -> AdversarialLayout {
    assert!(ell >= 1.0, "construction assumes ell >= 1");
    assert!(rho >= ell, "need rho >= ell");
    assert!(n > 0, "need at least one robot");
    let step = ell / 2.0;
    let limit = rho - ell / 4.0;
    let in_range = |c: Point| c.norm() <= limit + freezetag_geometry::EPS;
    let key = |c: Point| ((c.x / step).round() as i64, (c.y / step).round() as i64);

    // Spine first (skipping the origin, which is the source's cell).
    let spine_len = ((rho / ell).floor() as usize).min(n).max(1);
    let mut centers: Vec<Point> = Vec::new();
    let mut seen: HashSet<(i64, i64)> = HashSet::new();
    seen.insert((0, 0));
    let mut queue: VecDeque<Point> = VecDeque::new();
    for i in 1..=spine_len {
        let c = Point::new(0.0, i as f64 * step);
        if in_range(c) && seen.insert(key(c)) {
            centers.push(c);
            queue.push_back(c);
        }
    }
    // BFS growth over 4-adjacent grid centres until m centres collected.
    while centers.len() < n {
        let Some(c) = queue.pop_front() else {
            break; // |C*| exhausted: m = |C*| < n
        };
        for (dx, dy) in [(step, 0.0), (0.0, step), (-step, 0.0), (0.0, -step)] {
            let nb = c + Point::new(dx, dy);
            if in_range(nb) && seen.insert(key(nb)) {
                centers.push(nb);
                queue.push_back(nb);
                if centers.len() == n {
                    break;
                }
            }
        }
    }
    AdversarialLayout {
        ell,
        rho,
        centers,
        disk_radius: ell / 4.0,
    }
}

/// Builds the Theorem 3 layout: `n` robots hidden in the single disk
/// `B_{(0,0)}(ℓ)`; an algorithm with energy budget `B < π(ℓ² − 1)/2`
/// cannot discover the hidden position, hence wakes nobody.
///
/// # Panics
///
/// Panics if `ℓ <= 1` (the disk must exceed the initial vision radius) or
/// `n == 0`.
pub fn theorem3_layout(ell: f64, n: usize) -> AdversarialLayout {
    assert!(ell > 1.0, "theorem 3 needs ell > 1");
    assert!(n > 0, "need at least one robot");
    AdversarialLayout {
        ell,
        rho: ell,
        // All robots share one adversarial disk centred at the source: the
        // adversary will co-locate them at the last explored position.
        centers: vec![Point::ORIGIN; n],
        disk_radius: ell,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spine_is_present_and_centers_in_range() {
        let l = theorem2_layout(4.0, 32.0, 200);
        // Spine points (0, 2), (0, 4), ... must be present.
        for i in 1..=8 {
            let c = Point::new(0.0, i as f64 * 2.0);
            assert!(
                l.centers.iter().any(|&p| p.dist(c) < 1e-9),
                "missing spine centre {c}"
            );
        }
        for c in &l.centers {
            assert!(c.norm() <= 32.0 - 1.0 + 1e-9);
            assert!(c.norm() > 1e-9, "origin must not carry a robot");
        }
    }

    #[test]
    fn centers_are_distinct_and_on_half_ell_grid() {
        let l = theorem2_layout(2.0, 16.0, 150);
        let mut seen = std::collections::HashSet::new();
        for c in &l.centers {
            let k = (
                (c.x / 1.0_f64).round() as i64,
                (c.y / 1.0_f64).round() as i64,
            );
            assert!(seen.insert(k), "duplicate centre {c}");
            assert!((c.x - k.0 as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn growth_is_connected_via_grid_adjacency() {
        let l = theorem2_layout(4.0, 24.0, 60);
        // Every centre (plus the origin) must be reachable through
        // (ℓ/2)-grid adjacency — the paper's connectivity requirement.
        let step = 2.0;
        let mut pts = vec![Point::ORIGIN];
        pts.extend_from_slice(&l.centers);
        let g = freezetag_graph::DiskGraph::new(pts, step + 1e-9);
        assert!(g.is_connected());
    }

    #[test]
    fn resulting_disks_give_ell_connectivity() {
        // Any two points of adjacent disks are within ℓ (Lemma 13): with
        // robots at the worst corners the threshold stays <= ell.
        let l = theorem2_layout(4.0, 16.0, 40);
        let mut pts = vec![Point::ORIGIN];
        // Worst case: each robot at the far boundary of its disk.
        for c in &l.centers {
            let dir = if c.norm() > 0.0 { *c / c.norm() } else { *c };
            pts.push(*c + dir * l.disk_radius);
        }
        let t = freezetag_graph::connectivity_threshold(&pts);
        assert!(t <= l.ell + 1e-9, "threshold {t} exceeds ell {}", l.ell);
    }

    #[test]
    fn cardinality_caps_at_available_centers() {
        let small = theorem2_layout(4.0, 8.0, 10_000);
        // |C| >= 1 + rho^2/ell^2 by Lemma 12, but bounded.
        assert!(small.n() < 10_000);
        assert!(small.n() >= (8.0_f64 / 4.0).powi(2) as usize);
    }

    #[test]
    fn theorem3_layout_shape() {
        let l = theorem3_layout(8.0, 3);
        assert_eq!(l.n(), 3);
        assert_eq!(l.disk_radius, 8.0);
        assert!((l.total_disk_area() - 3.0 * std::f64::consts::PI * 64.0).abs() < 1e-9);
    }
}
