//! Block-compressed schedule recording: full trajectories at a fraction of
//! the flat-segment footprint.
//!
//! [`FullRecorder`](crate::FullRecorder) spends 48 B per move (a
//! [`Segment`] is four f64 pairs); at 10⁶ robots that is the memory wall
//! that keeps validated runs an order of magnitude behind stats runs.
//! [`CompressedRecorder`] exploits the structure of Freeze-Tag timelines:
//!
//! * **Implied `from`** — timelines are contiguous, so a move's departure
//!   point is the previous event's arrival point and is never stored.
//! * **Implied times** — moves run at unit speed, so a move's end time is
//!   `start + dist(from, to)` and is *recomputed* on decode with the same
//!   float ops the recorder used, which keeps every derived aggregate
//!   bit-identical. Only waits store a time, delta-coded against the
//!   monotone per-robot clock.
//! * **XOR field coding** — consecutive coordinates share sign, exponent
//!   and high mantissa bits (sweeps are axis-aligned, hops are short), so
//!   each f64 is stored as `SAME` (0 bytes), a LEB128 varint of
//!   `prev_bits ^ new_bits`, or 8 raw bytes — whichever is smallest.
//! * **Varint wake ids** — wake events delta-code waker/target indices
//!   (zigzag varints) and XOR-code time/position against the previous
//!   event.
//!
//! Events are grouped into fixed-size blocks ([`SEG_BLOCK_EVENTS`] per
//! robot, [`WAKE_BLOCK_EVENTS`] in the wake log) with a small uncompressed
//! header holding the decoder state at the block boundary, so decode is
//! block-local: the streaming validator and [`position_at`] touch one
//! block at a time instead of materialising whole timelines.
//!
//! [`position_at`]: crate::record::ReplayRecorder::position_at
//! [`Segment`]: crate::Segment

use crate::record::ReplayRecorder;
use crate::{Recorder, RobotId, Segment, WakeEvent};
use freezetag_geometry::Point;

/// Segment events per compression block (per robot).
///
/// 64 events × ~10 B ≈ 640 B per block against a 32 B header: ~5% header
/// overhead, while a block decode buffer stays well inside L1.
pub const SEG_BLOCK_EVENTS: usize = 64;

/// Wake events per wake-log snapshot block.
pub const WAKE_BLOCK_EVENTS: usize = 256;

const MODE_SAME: u8 = 0;
const MODE_XOR: u8 = 1;
const MODE_RAW: u8 = 2;

#[inline]
fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

#[inline]
fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

#[inline]
fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return v;
        }
        shift += 7;
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Cheapest encoding for an f64 transition `prev_bits -> next_bits`.
#[inline]
fn field_mode(prev: u64, next: u64) -> u8 {
    let x = prev ^ next;
    if x == 0 {
        MODE_SAME
    } else if varint_len(x) < 8 {
        MODE_XOR
    } else {
        MODE_RAW
    }
}

#[inline]
fn write_field(out: &mut Vec<u8>, mode: u8, prev: u64, next: u64) {
    match mode {
        MODE_SAME => {}
        MODE_XOR => write_varint(out, prev ^ next),
        _ => out.extend_from_slice(&next.to_le_bytes()),
    }
}

#[inline]
fn read_field(bytes: &[u8], pos: &mut usize, mode: u8, prev: u64) -> u64 {
    match mode {
        MODE_SAME => prev,
        MODE_XOR => prev ^ read_varint(bytes, pos),
        _ => {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&bytes[*pos..*pos + 8]);
            *pos += 8;
            u64::from_le_bytes(raw)
        }
    }
}

/// Per-block header: byte offset of the block's first event plus the exact
/// decoder state (time, position) at the block boundary.
#[derive(Debug, Clone, Copy)]
struct SegBlock {
    byte_start: usize,
    start_time: f64,
    start_x: f64,
    start_y: f64,
}

/// Wake-log snapshot: decoder state *before* the block's first event.
#[derive(Debug, Clone, Copy)]
struct WakeSnapshot {
    byte_start: usize,
    waker: u64,
    target: u64,
    time_bits: u64,
    x_bits: u64,
    y_bits: u64,
}

/// Append-only compressed wake-event log with block snapshots for seeking.
#[derive(Debug, Clone, Default)]
struct WakeLog {
    bytes: Vec<u8>,
    snaps: Vec<WakeSnapshot>,
    len: usize,
    prev_waker: u64,
    prev_target: u64,
    prev_time: u64,
    prev_x: u64,
    prev_y: u64,
}

impl WakeLog {
    fn push(&mut self, w: &WakeEvent) {
        if self.len.is_multiple_of(WAKE_BLOCK_EVENTS) {
            self.snaps.push(WakeSnapshot {
                byte_start: self.bytes.len(),
                waker: self.prev_waker,
                target: self.prev_target,
                time_bits: self.prev_time,
                x_bits: self.prev_x,
                y_bits: self.prev_y,
            });
        }
        let wi = w.waker.index() as u64;
        let ti = w.target.index() as u64;
        let tb = w.time.to_bits();
        let xb = w.pos.x.to_bits();
        let yb = w.pos.y.to_bits();
        let tm = field_mode(self.prev_time, tb);
        let xm = field_mode(self.prev_x, xb);
        let ym = field_mode(self.prev_y, yb);
        self.bytes.push(tm | (xm << 2) | (ym << 4));
        write_varint(&mut self.bytes, zigzag(wi as i64 - self.prev_waker as i64));
        write_varint(&mut self.bytes, zigzag(ti as i64 - self.prev_target as i64));
        write_field(&mut self.bytes, tm, self.prev_time, tb);
        write_field(&mut self.bytes, xm, self.prev_x, xb);
        write_field(&mut self.bytes, ym, self.prev_y, yb);
        self.prev_waker = wi;
        self.prev_target = ti;
        self.prev_time = tb;
        self.prev_x = xb;
        self.prev_y = yb;
        self.len += 1;
    }

    fn iter_from(&self, start: usize) -> WakeIter<'_> {
        if start >= self.len {
            return WakeIter {
                log: self,
                pos: self.bytes.len(),
                idx: self.len,
                waker: 0,
                target: 0,
                time_bits: 0,
                x_bits: 0,
                y_bits: 0,
            };
        }
        let snap = self.snaps[start / WAKE_BLOCK_EVENTS];
        let mut it = WakeIter {
            log: self,
            pos: snap.byte_start,
            idx: (start / WAKE_BLOCK_EVENTS) * WAKE_BLOCK_EVENTS,
            waker: snap.waker,
            target: snap.target,
            time_bits: snap.time_bits,
            x_bits: snap.x_bits,
            y_bits: snap.y_bits,
        };
        while it.idx < start {
            it.next();
        }
        it
    }
}

/// Lazy decoder over the compressed wake log, starting at an arbitrary
/// event index (seeking lands on the preceding block snapshot and
/// skip-decodes at most [`WAKE_BLOCK_EVENTS`] − 1 events).
#[derive(Debug)]
pub struct WakeIter<'a> {
    log: &'a WakeLog,
    pos: usize,
    idx: usize,
    waker: u64,
    target: u64,
    time_bits: u64,
    x_bits: u64,
    y_bits: u64,
}

impl Iterator for WakeIter<'_> {
    type Item = WakeEvent;

    fn next(&mut self) -> Option<WakeEvent> {
        if self.idx >= self.log.len {
            return None;
        }
        let bytes = &self.log.bytes;
        let op = bytes[self.pos];
        self.pos += 1;
        let tm = op & 3;
        let xm = (op >> 2) & 3;
        let ym = (op >> 4) & 3;
        let dw = unzigzag(read_varint(bytes, &mut self.pos));
        let dt = unzigzag(read_varint(bytes, &mut self.pos));
        self.waker = (self.waker as i64 + dw) as u64;
        self.target = (self.target as i64 + dt) as u64;
        self.time_bits = read_field(bytes, &mut self.pos, tm, self.time_bits);
        self.x_bits = read_field(bytes, &mut self.pos, xm, self.x_bits);
        self.y_bits = read_field(bytes, &mut self.pos, ym, self.y_bits);
        self.idx += 1;
        Some(WakeEvent {
            waker: RobotId::from_index(self.waker as usize),
            target: RobotId::from_index(self.target as usize),
            time: f64::from_bits(self.time_bits),
            pos: Point::new(f64::from_bits(self.x_bits), f64::from_bits(self.y_bits)),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.log.len - self.idx;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for WakeIter<'_> {}

const ASLEEP: f64 = f64::NAN;

/// The block-compressed full-record implementation: complete trajectories
/// (every segment recoverable bit-exactly) at ≤ 12 B per move instead of
/// the flat 48.
///
/// Current per-robot state lives in the same flat arrays
/// [`StatsRecorder`](crate::StatsRecorder) uses, updated with the same
/// float ops in the same order, so every aggregate is bit-identical to
/// both other recorders (pinned by `recorder_parity`). Trajectories decode
/// block-locally through [`CompressedRecorder::segments`] /
/// [`ReplayRecorder::position_at`], which is what the streaming validator
/// ([`validate_compressed`](crate::validate_compressed)) consumes.
#[derive(Debug, Clone)]
pub struct CompressedRecorder {
    // Indexed by RobotId::index(); NaN in `wake_times` means "asleep".
    wake_times: Vec<f64>,
    times: Vec<f64>,
    pos_x: Vec<f64>,
    pos_y: Vec<f64>,
    travels: Vec<f64>,
    seg_bytes: Vec<Vec<u8>>,
    seg_blocks: Vec<Vec<SegBlock>>,
    seg_counts: Vec<u32>,
    wakes: WakeLog,
    active: usize,
    makespan_acc: f64,
}

impl CompressedRecorder {
    #[inline]
    fn check_active(&self, robot: RobotId) -> usize {
        let i = robot.index();
        assert!(
            !self.wake_times[i].is_nan(),
            "robot has no timeline (asleep)"
        );
        i
    }

    /// Number of recorded segments (moves + waits) for `robot`.
    pub fn segment_count(&self, robot: RobotId) -> usize {
        self.seg_counts[robot.index()] as usize
    }

    /// Total recorded segments over all robots.
    pub fn total_segments(&self) -> usize {
        self.seg_counts.iter().map(|&c| c as usize).sum()
    }

    /// Activation position of `robot`, `None` if asleep.
    pub fn start_pos(&self, robot: RobotId) -> Option<Point> {
        let i = robot.index();
        if self.wake_times[i].is_nan() {
            return None;
        }
        // No event has happened before a robot's first block, so block 0's
        // header state *is* the activation state.
        Some(match self.seg_blocks[i].first() {
            Some(b) => Point::new(b.start_x, b.start_y),
            None => Point::new(self.pos_x[i], self.pos_y[i]),
        })
    }

    /// Lazily decoded segments of `robot` in chronological order, one
    /// block in memory at a time. Empty for asleep robots.
    pub fn segments(&self, robot: RobotId) -> SegmentIter<'_> {
        SegmentIter {
            rec: self,
            robot: robot.index(),
            next_block: 0,
            buf: Vec::new(),
            buf_pos: 0,
        }
    }

    /// Lazy wake-event decoder starting at event index `start`.
    pub fn wake_events_from(&self, start: usize) -> WakeIter<'_> {
        self.wakes.iter_from(start)
    }

    /// Compressed payload bytes (segment streams + block headers + wake
    /// log) — the part of [`Recorder::memory_bytes`] that grows with the
    /// number of recorded events.
    pub fn compressed_bytes(&self) -> usize {
        self.seg_bytes.iter().map(Vec::len).sum::<usize>()
            + self
                .seg_blocks
                .iter()
                .map(|b| b.len() * std::mem::size_of::<SegBlock>())
                .sum::<usize>()
            + self.wakes.bytes.len()
            + self.wakes.snaps.len() * std::mem::size_of::<WakeSnapshot>()
    }

    /// Effective recording footprint per segment event: compressed payload
    /// (including block headers) divided by segment count. NaN when
    /// nothing was recorded.
    pub fn bytes_per_move(&self) -> f64 {
        let moves = self.total_segments();
        let bytes = self.seg_bytes.iter().map(Vec::len).sum::<usize>()
            + self
                .seg_blocks
                .iter()
                .map(|b| b.len() * std::mem::size_of::<SegBlock>())
                .sum::<usize>();
        bytes as f64 / moves as f64
    }

    /// Decodes block `k` of robot index `i` into `out` (cleared first).
    fn decode_block(&self, i: usize, k: usize, out: &mut Vec<Segment>) {
        out.clear();
        let blocks = &self.seg_blocks[i];
        let bytes = &self.seg_bytes[i];
        let total = self.seg_counts[i] as usize;
        let count = (total - k * SEG_BLOCK_EVENTS).min(SEG_BLOCK_EVENTS);
        let mut pos = blocks[k].byte_start;
        let mut t = blocks[k].start_time;
        let mut x = blocks[k].start_x;
        let mut y = blocks[k].start_y;
        for _ in 0..count {
            let op = bytes[pos];
            pos += 1;
            if op & 1 == 0 {
                let xm = (op >> 1) & 3;
                let ym = (op >> 3) & 3;
                let nx = f64::from_bits(read_field(bytes, &mut pos, xm, x.to_bits()));
                let ny = f64::from_bits(read_field(bytes, &mut pos, ym, y.to_bits()));
                let from = Point::new(x, y);
                let to = Point::new(nx, ny);
                // Same op Timeline::move_to used, on the same inputs: the
                // recomputed end time is bit-identical to the recorded run.
                let end = t + from.dist(to);
                out.push(Segment {
                    start_time: t,
                    end_time: end,
                    from,
                    to,
                });
                t = end;
                x = nx;
                y = ny;
            } else {
                let tm = (op >> 1) & 3;
                let nt = f64::from_bits(read_field(bytes, &mut pos, tm, t.to_bits()));
                let at = Point::new(x, y);
                out.push(Segment {
                    start_time: t,
                    end_time: nt,
                    from: at,
                    to: at,
                });
                t = nt;
            }
        }
    }

    /// End time of block `k` of robot index `i` — the next block's header
    /// time, or the robot's current time for the last block. Both are the
    /// exact end time of the block's last decoded segment.
    #[inline]
    fn block_end(&self, i: usize, k: usize) -> f64 {
        match self.seg_blocks[i].get(k + 1) {
            Some(b) => b.start_time,
            None => self.times[i],
        }
    }
}

/// Streaming segment decoder: materialises one [`SEG_BLOCK_EVENTS`]-sized
/// block at a time, never a whole timeline.
#[derive(Debug)]
pub struct SegmentIter<'a> {
    rec: &'a CompressedRecorder,
    robot: usize,
    next_block: usize,
    buf: Vec<Segment>,
    buf_pos: usize,
}

impl Iterator for SegmentIter<'_> {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        if self.buf_pos == self.buf.len() {
            if self.next_block >= self.rec.seg_blocks[self.robot].len() {
                return None;
            }
            self.rec
                .decode_block(self.robot, self.next_block, &mut self.buf);
            self.next_block += 1;
            self.buf_pos = 0;
            if self.buf.is_empty() {
                return None;
            }
        }
        let s = self.buf[self.buf_pos];
        self.buf_pos += 1;
        Some(s)
    }
}

impl Recorder for CompressedRecorder {
    fn with_capacity(n: usize) -> Self {
        CompressedRecorder {
            wake_times: vec![ASLEEP; n + 1],
            times: vec![0.0; n + 1],
            pos_x: vec![0.0; n + 1],
            pos_y: vec![0.0; n + 1],
            travels: vec![0.0; n + 1],
            seg_bytes: vec![Vec::new(); n + 1],
            seg_blocks: vec![Vec::new(); n + 1],
            seg_counts: vec![0; n + 1],
            wakes: WakeLog::default(),
            active: 0,
            makespan_acc: 0.0,
        }
    }

    fn activate(&mut self, robot: RobotId, time: f64, pos: Point) {
        let i = robot.index();
        assert!(self.wake_times[i].is_nan(), "robot {robot} activated twice");
        self.wake_times[i] = time;
        self.times[i] = time;
        self.pos_x[i] = pos.x;
        self.pos_y[i] = pos.y;
        self.travels[i] = 0.0;
        self.active += 1;
    }

    fn is_active(&self, robot: RobotId) -> bool {
        !self.wake_times[robot.index()].is_nan()
    }

    fn current_time(&self, robot: RobotId) -> Option<f64> {
        let i = robot.index();
        (!self.wake_times[i].is_nan()).then(|| self.times[i])
    }

    fn current_pos(&self, robot: RobotId) -> Option<Point> {
        let i = robot.index();
        (!self.wake_times[i].is_nan()).then(|| Point::new(self.pos_x[i], self.pos_y[i]))
    }

    fn move_to(&mut self, robot: RobotId, dest: Point) -> f64 {
        let i = self.check_active(robot);
        if (self.seg_counts[i] as usize).is_multiple_of(SEG_BLOCK_EVENTS) {
            self.seg_blocks[i].push(SegBlock {
                byte_start: self.seg_bytes[i].len(),
                start_time: self.times[i],
                start_x: self.pos_x[i],
                start_y: self.pos_y[i],
            });
        }
        let px = self.pos_x[i].to_bits();
        let py = self.pos_y[i].to_bits();
        let xb = dest.x.to_bits();
        let yb = dest.y.to_bits();
        let xm = field_mode(px, xb);
        let ym = field_mode(py, yb);
        let out = &mut self.seg_bytes[i];
        out.push((xm << 1) | (ym << 3));
        write_field(out, xm, px, xb);
        write_field(out, ym, py, yb);
        self.seg_counts[i] += 1;
        // Same operations in the same order as Timeline::move_to +
        // Timeline::travel: one dist per move, accumulated per robot.
        let d = Point::new(self.pos_x[i], self.pos_y[i]).dist(dest);
        let end = self.times[i] + d;
        self.times[i] = end;
        self.pos_x[i] = dest.x;
        self.pos_y[i] = dest.y;
        self.travels[i] += d;
        end
    }

    fn reserve_moves(&mut self, robot: RobotId, extra: usize) {
        // ~10 B per encoded move on typical sweeps; a pure capacity hint.
        self.seg_bytes[robot.index()].reserve(extra * 10);
    }

    fn wait_until(&mut self, robot: RobotId, t: f64) {
        let i = self.check_active(robot);
        // Mirrors Timeline::wait_until: a wait event is recorded exactly
        // when the timeline would push a wait segment.
        if t > self.times[i] + freezetag_geometry::EPS {
            if (self.seg_counts[i] as usize).is_multiple_of(SEG_BLOCK_EVENTS) {
                self.seg_blocks[i].push(SegBlock {
                    byte_start: self.seg_bytes[i].len(),
                    start_time: self.times[i],
                    start_x: self.pos_x[i],
                    start_y: self.pos_y[i],
                });
            }
            let pt = self.times[i].to_bits();
            let tb = t.to_bits();
            let tm = field_mode(pt, tb);
            let out = &mut self.seg_bytes[i];
            out.push(1 | (tm << 1));
            write_field(out, tm, pt, tb);
            self.seg_counts[i] += 1;
            self.times[i] = t;
        }
    }

    fn record_wake(&mut self, event: WakeEvent) {
        // Running max in log order — the same op sequence as the
        // fold(0.0, f64::max) the other recorders derive makespan with.
        self.makespan_acc = f64::max(self.makespan_acc, event.time);
        self.wakes.push(&event);
    }

    fn wake_count(&self) -> usize {
        self.wakes.len
    }

    fn for_each_wake_from(&self, start: usize, f: &mut dyn FnMut(&WakeEvent)) {
        for w in self.wakes.iter_from(start) {
            f(&w);
        }
    }

    fn wake_time(&self, robot: RobotId) -> Option<f64> {
        let t = self.wake_times[robot.index()];
        (!t.is_nan()).then_some(t)
    }

    fn travel(&self, robot: RobotId) -> Option<f64> {
        let i = robot.index();
        (!self.wake_times[i].is_nan()).then(|| self.travels[i])
    }

    fn active_count(&self) -> usize {
        self.active
    }

    fn makespan(&self) -> f64 {
        self.makespan_acc
    }

    fn completion_time(&self) -> f64 {
        // Index order, exactly like Schedule::completion_time.
        (0..self.times.len())
            .filter(|&i| !self.wake_times[i].is_nan())
            .map(|i| self.times[i])
            .fold(0.0, f64::max)
    }

    fn max_energy(&self) -> f64 {
        (0..self.travels.len())
            .filter(|&i| !self.wake_times[i].is_nan())
            .map(|i| self.travels[i])
            .fold(0.0, f64::max)
    }

    fn total_energy(&self) -> f64 {
        (0..self.travels.len())
            .filter(|&i| !self.wake_times[i].is_nan())
            .map(|i| self.travels[i])
            .fold(0.0, |a, b| a + b)
    }

    fn memory_bytes(&self) -> usize {
        // Lengths, not capacities: byte-identical across thread counts.
        self.wake_times.len() * 8 * 5
            + self.seg_counts.len() * 4
            + self.seg_bytes.len() * std::mem::size_of::<Vec<u8>>()
            + self.seg_blocks.len() * std::mem::size_of::<Vec<SegBlock>>()
            + self.compressed_bytes()
    }
}

impl ReplayRecorder for CompressedRecorder {
    fn position_at(&self, robot: RobotId, t: f64) -> Option<Point> {
        let i = robot.index();
        if self.wake_times[i].is_nan() {
            return None;
        }
        let nseg = self.seg_counts[i] as usize;
        // Mirrors Timeline::position_at exactly, block by block.
        if t <= self.wake_times[i] || nseg == 0 {
            return Some(if nseg == 0 {
                Point::new(self.pos_x[i], self.pos_y[i])
            } else {
                let b = self.seg_blocks[i][0];
                Point::new(b.start_x, b.start_y)
            });
        }
        // First block whose end time is >= t: since per-robot segment end
        // times are nondecreasing and block_end(k) is the exact end time
        // of block k's last segment, this lands on the block containing
        // the segment Timeline's partition_point would select.
        let nb = self.seg_blocks[i].len();
        let mut lo = 0;
        let mut hi = nb;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.block_end(i, mid) < t {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == nb {
            return Some(Point::new(self.pos_x[i], self.pos_y[i]));
        }
        let mut buf = Vec::with_capacity(SEG_BLOCK_EVENTS);
        self.decode_block(i, lo, &mut buf);
        let k = buf.partition_point(|s| s.end_time < t);
        Some(match buf.get(k) {
            Some(s) => s.position_at(t),
            None => Point::new(self.pos_x[i], self.pos_y[i]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FullRecorder;

    /// A deterministic scripted run exercising moves, waits, no-op waits,
    /// wakes, and enough events to cross several block boundaries.
    fn drive<R: Recorder>(rec: &mut R, robots: usize, moves_each: usize) {
        rec.activate(RobotId::SOURCE, 0.0, Point::ORIGIN);
        for r in 0..robots {
            let target = RobotId::sleeper(r);
            let pos = Point::new(r as f64 * 0.25 + 1.0, (r % 3) as f64 * 0.5);
            let t = rec.move_to(RobotId::SOURCE, pos);
            rec.record_wake(WakeEvent {
                waker: RobotId::SOURCE,
                target,
                time: t,
                pos,
            });
            rec.activate(target, t, pos);
            for m in 0..moves_each {
                // Axis-aligned hops (one coordinate unchanged) mixed with
                // diagonal hops and waits.
                match m % 4 {
                    0 => {
                        let p = rec.current_pos(target).unwrap();
                        rec.move_to(target, Point::new(p.x + 0.125, p.y));
                    }
                    1 => {
                        let p = rec.current_pos(target).unwrap();
                        rec.move_to(target, Point::new(p.x, p.y + 0.33));
                    }
                    2 => {
                        let now = rec.current_time(target).unwrap();
                        rec.wait_until(target, now + 0.5);
                        rec.wait_until(target, now); // past: no-op
                    }
                    _ => {
                        let p = rec.current_pos(target).unwrap();
                        rec.move_to(target, Point::new(p.x - 0.07, p.y + 0.01));
                    }
                }
            }
        }
    }

    #[test]
    fn segments_round_trip_bit_exactly() {
        let mut full = FullRecorder::with_capacity(4);
        let mut comp = CompressedRecorder::with_capacity(4);
        // 200 events per robot crosses three 64-event block boundaries.
        drive(&mut full, 4, 200);
        drive(&mut comp, 4, 200);
        for i in 0..=4 {
            let r = RobotId::from_index(i);
            let decoded: Vec<Segment> = comp.segments(r).collect();
            let expected = full
                .schedule()
                .timeline(r)
                .map(|tl| tl.segments().to_vec())
                .unwrap_or_default();
            assert_eq!(decoded.len(), expected.len(), "segment count {r}");
            for (k, (d, e)) in decoded.iter().zip(&expected).enumerate() {
                assert_eq!(d.start_time.to_bits(), e.start_time.to_bits(), "{r}#{k}");
                assert_eq!(d.end_time.to_bits(), e.end_time.to_bits(), "{r}#{k}");
                assert_eq!(d.from, e.from, "{r}#{k}");
                assert_eq!(d.to, e.to, "{r}#{k}");
            }
        }
    }

    #[test]
    fn aggregates_match_full_bitwise() {
        let mut full = FullRecorder::with_capacity(6);
        let mut comp = CompressedRecorder::with_capacity(6);
        drive(&mut full, 6, 70);
        drive(&mut comp, 6, 70);
        assert_eq!(full.makespan().to_bits(), comp.makespan().to_bits());
        assert_eq!(
            full.completion_time().to_bits(),
            comp.completion_time().to_bits()
        );
        assert_eq!(full.max_energy().to_bits(), comp.max_energy().to_bits());
        assert_eq!(full.total_energy().to_bits(), comp.total_energy().to_bits());
        for i in 0..=6 {
            let r = RobotId::from_index(i);
            assert_eq!(full.wake_time(r), comp.wake_time(r), "wake_time {r}");
            assert_eq!(
                full.travel(r).map(f64::to_bits),
                comp.travel(r).map(f64::to_bits),
                "travel {r}"
            );
            assert_eq!(full.current_time(r), comp.current_time(r));
            assert_eq!(full.current_pos(r), comp.current_pos(r));
        }
        assert_eq!(full.active_count(), comp.active_count());
        assert_eq!(full.wake_count(), comp.wake_count());
        let decoded: Vec<WakeEvent> = comp.wake_events_from(0).collect();
        assert_eq!(full.wakes(), decoded.as_slice());
    }

    #[test]
    fn position_at_matches_timeline_on_a_sample_grid() {
        let mut full = FullRecorder::with_capacity(3);
        let mut comp = CompressedRecorder::with_capacity(3);
        drive(&mut full, 3, 150);
        drive(&mut comp, 3, 150);
        let horizon = full.completion_time() + 1.0;
        for i in 0..=3 {
            let r = RobotId::from_index(i);
            let mut t = -0.5;
            while t < horizon {
                let expected = full.schedule().timeline(r).map(|tl| tl.position_at(t));
                let got = comp.position_at(r, t);
                assert_eq!(expected, got, "position_at({r}, {t})");
                t += 0.09;
            }
            // Exact segment boundaries too.
            if let Some(tl) = full.schedule().timeline(r) {
                for s in tl.segments() {
                    assert_eq!(
                        Some(tl.position_at(s.end_time)),
                        comp.position_at(r, s.end_time)
                    );
                }
            }
        }
    }

    #[test]
    fn wake_iter_seeks_across_snapshot_blocks() {
        let mut comp = CompressedRecorder::with_capacity(700);
        let mut reference = Vec::new();
        comp.activate(RobotId::SOURCE, 0.0, Point::ORIGIN);
        for r in 0..700 {
            let pos = Point::new(r as f64 * 0.01, 1.0 / (r + 1) as f64);
            let t = comp.move_to(RobotId::SOURCE, pos);
            let w = WakeEvent {
                waker: RobotId::SOURCE,
                target: RobotId::sleeper(r),
                time: t,
                pos,
            };
            comp.record_wake(w);
            comp.activate(RobotId::sleeper(r), t, pos);
            reference.push(w);
        }
        // Seeks landing mid-block, on block boundaries, and past the end.
        for start in [0, 1, 63, 255, 256, 257, 511, 512, 699, 700, 701] {
            let got: Vec<WakeEvent> = comp.wake_events_from(start).collect();
            let want = &reference[start.min(reference.len())..];
            assert_eq!(got.as_slice(), want, "iter_from({start})");
        }
    }

    #[test]
    fn compressed_footprint_beats_full_by_4x_on_sweep_moves() {
        let mut full = FullRecorder::with_capacity(1);
        let mut comp = CompressedRecorder::with_capacity(1);
        full.activate(RobotId::SOURCE, 0.0, Point::ORIGIN);
        comp.activate(RobotId::SOURCE, 0.0, Point::ORIGIN);
        // Axis-aligned sweep, the dominant move pattern of AWave/explore.
        for k in 0..10_000 {
            let p = Point::new((k % 100) as f64 * 0.5, (k / 100) as f64 * 0.5);
            full.move_to(RobotId::SOURCE, p);
            comp.move_to(RobotId::SOURCE, p);
        }
        let per_move = comp.bytes_per_move();
        assert!(
            per_move <= 12.0,
            "compressed footprint {per_move:.2} B/move exceeds the 12 B budget"
        );
        assert!(
            comp.memory_bytes() * 4 <= full.memory_bytes(),
            "compressed {} vs full {}",
            comp.memory_bytes(),
            full.memory_bytes()
        );
    }

    #[test]
    fn memory_bytes_counts_lengths_only() {
        let mut comp = CompressedRecorder::with_capacity(1);
        comp.activate(RobotId::SOURCE, 0.0, Point::ORIGIN);
        let before = comp.memory_bytes();
        comp.reserve_moves(RobotId::SOURCE, 4096);
        assert_eq!(
            comp.memory_bytes(),
            before,
            "capacity hints must not change accounting"
        );
        comp.move_to(RobotId::SOURCE, Point::new(1.0, 0.0));
        assert!(comp.memory_bytes() > before, "recorded events must count");
    }

    #[test]
    #[should_panic]
    fn double_activation_panics() {
        let mut rec = CompressedRecorder::with_capacity(1);
        rec.activate(RobotId::SOURCE, 0.0, Point::ORIGIN);
        rec.activate(RobotId::SOURCE, 1.0, Point::ORIGIN);
    }

    #[test]
    #[should_panic]
    fn moving_sleeping_robot_panics() {
        let mut rec = CompressedRecorder::with_capacity(1);
        rec.move_to(RobotId::sleeper(0), Point::ORIGIN);
    }
}
