use crate::cancel::{CancelToken, Cancelled, DEADLINE_STRIDE};
use crate::record::{FullRecorder, Recorder, StatsRecorder};
use crate::{
    CompressedRecorder, ParPool, RobotId, Schedule, Sighting, Trace, WakeEvent, WorldView,
};
use freezetag_geometry::Point;

/// The simulation driver: couples a [`WorldView`] (restricted sensing) with
/// a [`Recorder`] (time/energy accounting).
///
/// Algorithms manipulate robots exclusively through this API:
/// [`Sim::move_to`], [`Sim::wait_until`], [`Sim::look`] and [`Sim::wake`].
/// Misuse — moving a sleeping robot, waking from a distance, waking an
/// already-awake robot — panics immediately: those are algorithm bugs, not
/// recoverable conditions.
///
/// The recorder is a type parameter defaulting to [`FullRecorder`] (full
/// per-robot segment timelines, as the validator and SVG renderer need);
/// [`Sim::with_stats`] builds a constant-memory [`StatsRecorder`] driver
/// for aggregate-only sweeps at 10⁶-robot scale, and
/// [`Sim::with_recorder`] accepts any custom recorder.
///
/// # Example
///
/// ```
/// use freezetag_geometry::Point;
/// use freezetag_instances::Instance;
/// use freezetag_sim::{ConcreteWorld, RobotId, Sim};
///
/// let inst = Instance::new(vec![Point::new(2.0, 0.0)]);
/// let mut sim = Sim::new(ConcreteWorld::new(&inst));
/// sim.move_to(RobotId::SOURCE, Point::new(2.0, 0.0));
/// assert_eq!(sim.time(RobotId::SOURCE), 2.0);
/// ```
#[derive(Debug)]
pub struct Sim<W, R = FullRecorder> {
    world: W,
    recorder: R,
    trace: Trace,
    pool: ParPool,
    cancel: CancelToken,
    cancel_polls: u32,
}

impl<W: WorldView> Sim<W> {
    /// Starts a fully-recorded simulation at time 0 with only the source
    /// awake, at the world's source position.
    pub fn new(world: W) -> Self {
        let recorder = FullRecorder::with_capacity(world.n());
        Sim::with_recorder(world, recorder)
    }

    /// The schedule recorded so far (full recorder only).
    pub fn schedule(&self) -> &Schedule {
        self.recorder.schedule()
    }

    /// Consumes the simulation, returning `(world, schedule, trace)`.
    pub fn into_parts(self) -> (W, Schedule, Trace) {
        (self.world, self.recorder.into_schedule(), self.trace)
    }
}

impl<W: WorldView> Sim<W, StatsRecorder> {
    /// Starts a constant-memory simulation: per-robot aggregates only, no
    /// segment timelines. The run cannot be validated or rendered, but
    /// every aggregate matches a [`FullRecorder`] run bit-for-bit.
    pub fn with_stats(world: W) -> Self {
        let recorder = StatsRecorder::with_capacity(world.n());
        Sim::with_recorder(world, recorder)
    }
}

impl<W: WorldView> Sim<W, CompressedRecorder> {
    /// Starts a block-compressed full-record simulation: complete
    /// trajectories at ≤ 12 B/move, validated by
    /// [`validate_compressed`](crate::validate_compressed), with every
    /// aggregate bit-identical to a [`FullRecorder`] run.
    pub fn with_compressed(world: W) -> Self {
        let recorder = CompressedRecorder::with_capacity(world.n());
        Sim::with_recorder(world, recorder)
    }
}

impl<W: WorldView, R: Recorder> Sim<W, R> {
    /// Starts a simulation over an arbitrary recorder (which must be fresh
    /// — no robot activated yet).
    pub fn with_recorder(world: W, mut recorder: R) -> Self {
        recorder.activate(RobotId::SOURCE, 0.0, world.source_pos());
        Sim {
            world,
            recorder,
            trace: Trace::new(),
            pool: ParPool::sequential(),
            cancel: CancelToken::never(),
            cancel_polls: 0,
        }
    }

    /// Attaches a [`ParPool`] for deterministic intra-run parallelism
    /// (builder style). The pool only accelerates pure batched work —
    /// sensing fan-out on pure-sensing worlds, frontier bucketing — so the
    /// run's observable results are bit-identical for any pool width; the
    /// default is sequential.
    #[must_use]
    pub fn with_pool(mut self, pool: ParPool) -> Self {
        self.pool = pool;
        self
    }

    /// The configured intra-run parallelism (1 = sequential, the
    /// default). This is the `--sim-threads` value a sweep job runs with.
    pub fn sim_threads(&self) -> usize {
        self.pool.threads()
    }

    /// The pool batched operations run on (`Copy`; owns no threads).
    pub fn pool(&self) -> ParPool {
        self.pool
    }

    /// Attaches a [`CancelToken`] (builder style). The run polls it at
    /// every sensing checkpoint — [`Sim::look_into`],
    /// [`Sim::look_many_into`], [`Sim::wake`] — and aborts by unwinding
    /// with [`Cancelled`] once it fires (caught at the engine boundary by
    /// [`catch_cancel`](crate::catch_cancel)). Polling is a pure read, so
    /// an uncancelled run is bit-identical with or without a token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// The attached cancellation token (inert by default).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The cooperative cancellation checkpoint: cheap flag poll on every
    /// call, wall-clock deadline re-check every [`DEADLINE_STRIDE`] calls.
    /// Unwinds with [`Cancelled`] (bypassing the panic hook) once the
    /// token fires.
    #[inline]
    fn cancel_checkpoint(&mut self) {
        self.cancel_polls = self.cancel_polls.wrapping_add(1);
        let deep = self.cancel_polls.is_multiple_of(DEADLINE_STRIDE);
        if self.cancel.should_stop(deep) {
            Cancelled::unwind();
        }
    }

    /// Read access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Read access to the recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// The phase trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the phase trace (algorithms annotate spans).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Number of recorded wake events (available on every recorder).
    pub fn wake_count(&self) -> usize {
        self.recorder.wake_count()
    }

    /// Visits wake events from index `start` onward in recording order —
    /// the streaming replacement for a wake slice, so compressed recorders
    /// never materialise the log. Drivers polling for *new* wakes (the
    /// wave frontier) pass the count they saw last.
    pub fn for_each_wake_from(&self, start: usize, mut f: impl FnMut(&WakeEvent)) {
        self.recorder.for_each_wake_from(start, &mut f);
    }

    /// Consumes the simulation, returning `(world, recorder, trace)`.
    pub fn into_recorder_parts(self) -> (W, R, Trace) {
        (self.world, self.recorder, self.trace)
    }

    /// Current time of an awake robot.
    ///
    /// # Panics
    ///
    /// Panics if the robot is asleep.
    pub fn time(&self, robot: RobotId) -> f64 {
        self.recorder.current_time(robot).expect("robot is asleep")
    }

    /// Current position of an awake robot.
    ///
    /// # Panics
    ///
    /// Panics if the robot is asleep.
    pub fn pos(&self, robot: RobotId) -> Point {
        self.recorder.current_pos(robot).expect("robot is asleep")
    }

    /// Moves an awake robot in a straight line at unit speed; returns the
    /// arrival time.
    ///
    /// # Panics
    ///
    /// Panics if the robot is asleep.
    pub fn move_to(&mut self, robot: RobotId, dest: Point) -> f64 {
        self.recorder.move_to(robot, dest)
    }

    /// Hints that about `extra` more moves of `robot` follow (see
    /// [`Recorder::reserve_moves`]): sweep drivers announce their snapshot
    /// counts so full-profile segment storage allocates once per sweep
    /// instead of growing mid-flight. Never changes recorded contents.
    ///
    /// # Panics
    ///
    /// Panics if the robot is asleep (full recorder only).
    pub fn reserve_moves(&mut self, robot: RobotId, extra: usize) {
        self.recorder.reserve_moves(robot, extra);
    }

    /// Makes an awake robot wait (at its position) until absolute time `t`;
    /// times in the past are a no-op so barrier joins are painless.
    ///
    /// # Panics
    ///
    /// Panics if the robot is asleep.
    pub fn wait_until(&mut self, robot: RobotId, t: f64) {
        self.recorder.wait_until(robot, t);
    }

    /// Takes a snapshot from the robot's current position at its current
    /// time: sleeping robots within Euclidean distance 1. Allocates a
    /// fresh vector; hot loops should prefer [`Sim::look_into`].
    ///
    /// # Panics
    ///
    /// Panics if the robot is asleep.
    pub fn look(&mut self, robot: RobotId) -> Vec<Sighting> {
        let mut out = Vec::new();
        self.look_into(robot, &mut out);
        out
    }

    /// Buffer-reusing snapshot: clears `out` and fills it with the
    /// sleeping robots within Euclidean distance 1 of the robot's current
    /// position, sorted by id. Reusing one buffer across a sweep makes the
    /// hottest loop of every algorithm allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the robot is asleep.
    pub fn look_into(&mut self, robot: RobotId, out: &mut Vec<Sighting>) {
        self.cancel_checkpoint();
        let (pos, time) = (self.pos(robot), self.time(robot));
        self.world.look_into(pos, time, out);
    }

    /// Batched snapshots at explicit `(position, time)` pairs — the
    /// sensing side of a sweep whose trajectory was already driven (see
    /// `sweep` planning in the algorithms): clears and fills `out` with
    /// every query's sightings concatenated in query order, and `counts`
    /// with the per-query sighting counts, counting `queries.len()` looks.
    ///
    /// Equivalent to one [`Sim::look_into`] per query in order; on worlds
    /// with pure sensing the queries fan out over the sim's [`ParPool`]
    /// with an order-preserving merge, bit-identical at any thread count.
    pub fn look_many_into(
        &mut self,
        queries: &[(Point, f64)],
        out: &mut Vec<Sighting>,
        counts: &mut Vec<u32>,
    ) {
        self.cancel_checkpoint();
        let pool = self.pool;
        self.world.look_batch_into(queries, &pool, out, counts);
    }

    /// Wakes `target`, which must be co-located with `waker` (within
    /// `EPS`). The woken robot's timeline starts at the waker's current
    /// time at the target's initial position. Returns `target`.
    ///
    /// # Panics
    ///
    /// Panics if `waker` is asleep, `target` is already awake, `target`'s
    /// position is unknown to the world, or the two are not co-located —
    /// all of which are algorithm bugs.
    pub fn wake(&mut self, waker: RobotId, target: RobotId) -> RobotId {
        self.cancel_checkpoint();
        let (wpos, time) = (self.pos(waker), self.time(waker));
        let tpos = self
            .world
            .position(target)
            .unwrap_or_else(|| panic!("waking undiscovered robot {target}"));
        let d = wpos.dist(tpos);
        assert!(
            d <= 1e-6,
            "robot {waker} tried to wake {target} from distance {d}"
        );
        self.world
            .wake(target, time)
            .unwrap_or_else(|e| panic!("wake failed: {e}"));
        self.recorder.activate(target, time, tpos);
        self.recorder.record_wake(WakeEvent {
            waker,
            target,
            time,
            pos: tpos,
        });
        target
    }

    /// Synchronizes a group of awake robots to their common latest time;
    /// returns that barrier time. This is how co-located teams realize the
    /// paper's "wait until the four teams can merge".
    ///
    /// # Panics
    ///
    /// Panics if any robot is asleep or `robots` is empty.
    pub fn barrier(&mut self, robots: &[RobotId]) -> f64 {
        assert!(!robots.is_empty(), "empty barrier");
        let t = robots
            .iter()
            .map(|&r| self.time(r))
            .fold(f64::NEG_INFINITY, f64::max);
        for &r in robots {
            self.wait_until(r, t);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConcreteWorld;
    use freezetag_instances::Instance;

    fn instance() -> Instance {
        Instance::new(vec![
            Point::new(0.5, 0.0),
            Point::new(1.0, 0.0),
            Point::new(5.0, 0.0),
        ])
    }

    fn sim() -> Sim<ConcreteWorld> {
        Sim::new(ConcreteWorld::new(&instance()))
    }

    #[test]
    fn source_starts_at_origin_time_zero() {
        let s = sim();
        assert_eq!(s.time(RobotId::SOURCE), 0.0);
        assert_eq!(s.pos(RobotId::SOURCE), Point::ORIGIN);
    }

    #[test]
    fn wake_chain() {
        let mut s = sim();
        let seen = s.look(RobotId::SOURCE);
        assert_eq!(seen.len(), 2);
        s.move_to(RobotId::SOURCE, seen[0].pos);
        let r0 = s.wake(RobotId::SOURCE, seen[0].id);
        assert_eq!(s.time(r0), 0.5);
        assert_eq!(s.pos(r0), Point::new(0.5, 0.0));
        // The woken robot can now act on its own.
        s.move_to(r0, Point::new(1.0, 0.0));
        s.wake(r0, RobotId::sleeper(1));
        assert_eq!(s.schedule().wakes().len(), 2);
        assert_eq!(s.schedule().makespan(), 1.0);
    }

    #[test]
    fn stats_driver_matches_full_driver_on_a_chain() {
        let inst = instance();
        let script = |mut s: Sim<ConcreteWorld, StatsRecorder>| -> (f64, f64, f64) {
            let mut buf = Vec::new();
            s.look_into(RobotId::SOURCE, &mut buf);
            assert_eq!(buf.len(), 2);
            s.move_to(RobotId::SOURCE, buf[0].pos);
            let r0 = s.wake(RobotId::SOURCE, buf[0].id);
            s.move_to(r0, Point::new(1.0, 0.0));
            s.wake(r0, RobotId::sleeper(1));
            let (_, rec, _) = s.into_recorder_parts();
            (rec.makespan(), rec.total_energy(), rec.max_energy())
        };
        let (mk, te, me) = script(Sim::with_stats(ConcreteWorld::new(&inst)));
        let mut full = Sim::new(ConcreteWorld::new(&inst));
        let seen = full.look(RobotId::SOURCE);
        full.move_to(RobotId::SOURCE, seen[0].pos);
        let r0 = full.wake(RobotId::SOURCE, seen[0].id);
        full.move_to(r0, Point::new(1.0, 0.0));
        full.wake(r0, RobotId::sleeper(1));
        let (_, schedule, _) = full.into_parts();
        assert_eq!(mk.to_bits(), schedule.makespan().to_bits());
        assert_eq!(te.to_bits(), schedule.total_energy().to_bits());
        assert_eq!(me.to_bits(), schedule.max_energy().to_bits());
    }

    #[test]
    fn look_into_reuses_the_buffer() {
        let mut s = sim();
        let mut buf = vec![
            Sighting {
                id: RobotId::sleeper(2),
                pos: Point::ORIGIN,
            };
            4
        ];
        s.look_into(RobotId::SOURCE, &mut buf);
        let ids: Vec<RobotId> = buf.iter().map(|x| x.id).collect();
        assert_eq!(ids, vec![RobotId::sleeper(0), RobotId::sleeper(1)]);
    }

    #[test]
    #[should_panic]
    fn waking_from_afar_panics() {
        let mut s = sim();
        s.wake(RobotId::SOURCE, RobotId::sleeper(2)); // 5 units away
    }

    #[test]
    #[should_panic]
    fn moving_sleeping_robot_panics() {
        let mut s = sim();
        s.move_to(RobotId::sleeper(0), Point::ORIGIN);
    }

    #[test]
    fn barrier_aligns_times() {
        let mut s = sim();
        s.move_to(RobotId::SOURCE, Point::new(0.5, 0.0));
        let r0 = s.wake(RobotId::SOURCE, RobotId::sleeper(0));
        s.move_to(r0, Point::new(1.0, 0.0));
        let r1 = s.wake(r0, RobotId::sleeper(1));
        s.move_to(r1, Point::new(3.0, 0.0));
        let t = s.barrier(&[RobotId::SOURCE, r0, r1]);
        assert_eq!(t, 3.0);
        assert_eq!(s.time(RobotId::SOURCE), 3.0);
        assert_eq!(s.time(r0), 3.0);
    }

    #[test]
    fn sim_threads_default_and_builder() {
        let s = sim();
        assert_eq!(s.sim_threads(), 1);
        assert!(s.pool().is_sequential());
        let s = sim().with_pool(ParPool::new(3));
        assert_eq!(s.sim_threads(), 3);
    }

    #[test]
    fn look_many_matches_single_looks() {
        let mut s = sim();
        let queries = vec![
            (Point::ORIGIN, 0.0),
            (Point::new(4.5, 0.0), 0.0),
            (Point::new(100.0, 100.0), 0.0),
        ];
        let (mut flat, mut counts) = (Vec::new(), Vec::new());
        s.look_many_into(&queries, &mut flat, &mut counts);
        assert_eq!(counts, vec![2, 1, 0]);
        assert_eq!(flat.len(), 3);
        assert_eq!(flat[2].id, RobotId::sleeper(2));
        assert_eq!(s.world().look_count(), 3);
    }

    #[test]
    fn cancelled_token_unwinds_at_the_next_look() {
        use crate::cancel::{catch_cancel, CancelToken, Cancelled};
        let token = CancelToken::new();
        token.cancel();
        let r = catch_cancel(|| {
            let mut s = sim().with_cancel(token);
            s.look(RobotId::SOURCE);
            unreachable!("checkpoint must fire before sensing");
        });
        assert_eq!(r, Err(Cancelled));
    }

    #[test]
    fn inert_token_changes_nothing() {
        use crate::cancel::CancelToken;
        let mut plain = sim();
        let mut tokened = sim().with_cancel(CancelToken::new());
        assert_eq!(
            plain.look(RobotId::SOURCE).len(),
            tokened.look(RobotId::SOURCE).len()
        );
        assert!(!tokened.cancel_token().is_cancelled());
    }

    #[test]
    fn look_is_at_current_position() {
        let mut s = sim();
        s.move_to(RobotId::SOURCE, Point::new(4.5, 0.0));
        let seen = s.look(RobotId::SOURCE);
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].id, RobotId::sleeper(2));
    }
}
